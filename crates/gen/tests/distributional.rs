//! Distributional integration tests: generated workloads must pass (or
//! fail) chi-square goodness-of-fit exactly as their construction
//! dictates. The mining stack itself is the test instrument.

use sigstr_core::{chi_square_counts, find_mss, Model};
use sigstr_gen::markov::{generate_binary_persistence, generate_paper_markov};
use sigstr_gen::walk::{generate_prices, Regime};
use sigstr_gen::{dist, generate_iid, seeded_rng, StringKind};
use sigstr_stats::chi2;

/// Whole-string goodness-of-fit: a string drawn from a model must be
/// consistent with it (p-value not absurdly small), and inconsistent with
/// a different model.
#[test]
fn generated_strings_fit_their_own_model() {
    let mut rng = seeded_rng(0xD15);
    let models = [
        dist::uniform(4).unwrap(),
        dist::geometric(4).unwrap(),
        dist::harmonic(4).unwrap(),
        dist::zipf(4, 1.7).unwrap(),
    ];
    for model in &models {
        let seq = generate_iid(30_000, model, &mut rng).unwrap();
        let counts = seq.count_vector(0, seq.len());
        let counts_u64: Vec<u64> = counts.iter().map(|&c| u64::from(c)).collect();
        let x2 = sigstr_stats::pearson::chi_square_from_counts(&counts_u64, model.probs());
        let p = chi2::sf(x2, 3.0);
        assert!(p > 1e-4, "own-model fit rejected: X² = {x2}, p = {p}");
    }
    // Cross-fit must fail loudly: geometric data against the uniform model.
    let geo = generate_iid(30_000, &models[1], &mut rng).unwrap();
    let counts = geo.count_vector(0, geo.len());
    let x2 = chi_square_counts(&counts, &models[0]);
    assert!(
        chi2::sf(x2, 3.0) < 1e-12,
        "geometric data passed as uniform"
    );
}

/// Figure-4 property at generation level: the uniform string minimizes
/// whole-string X² against the uniform model among the four families.
#[test]
fn null_family_scores_lowest_against_null_model() {
    let mut rng = seeded_rng(0xD16);
    let k = 5;
    let model = Model::uniform(k).unwrap();
    let mut scores = Vec::new();
    for kind in StringKind::figure4() {
        let seq = kind.generate(20_000, k, &mut rng).unwrap();
        let counts = seq.count_vector(0, seq.len());
        scores.push((kind.label(), chi_square_counts(&counts, &model)));
    }
    let null_score = scores[0].1;
    for (label, score) in &scores[1..] {
        // Markov marginals are near-uniform, so compare only the i.i.d.
        // skewed families strictly.
        if *label != "Markov" {
            assert!(
                *score > null_score,
                "{label} whole-string X² {score} not above null {null_score}"
            );
        }
    }
}

/// Persistence-biased chains look marginally fair but fail a runs-style
/// analysis: the MSS under the uniform null must grow with the bias.
#[test]
fn persistence_bias_is_monotone_in_x2max() {
    let model = Model::uniform(2).unwrap();
    let mut previous = 0.0;
    for (i, &p) in [0.5f64, 0.6, 0.7, 0.8].iter().enumerate() {
        let mut rng = seeded_rng(0xD17 + i as u64);
        // Average over three draws to stabilize the ordering.
        let mut total = 0.0;
        for r in 0..3 {
            let mut rng2 = seeded_rng(0xD18 + i as u64 * 10 + r);
            let seq = generate_binary_persistence(20_000, p, &mut rng2).unwrap();
            total += find_mss(&seq, &model).unwrap().best.chi_square;
        }
        let _ = &mut rng;
        let mean = total / 3.0;
        assert!(
            mean > previous * 0.9,
            "X²_max not growing with persistence: p = {p}, {mean} vs {previous}"
        );
        previous = mean;
    }
}

/// The paper's Markov process has near-uniform stationary marginals (the
/// transition matrix is circulant), so its single-letter counts stay
/// balanced even though adjacent symbols correlate.
#[test]
fn paper_markov_marginals_near_uniform() {
    let mut rng = seeded_rng(0xD19);
    let k = 5;
    let seq = generate_paper_markov(50_000, k, &mut rng).unwrap();
    let counts = seq.count_vector(0, seq.len());
    let model = Model::uniform(k).unwrap();
    let x2 = chi_square_counts(&counts, &model);
    // χ²(4) at p = 1e-6 is ≈ 33; circulant marginals should sit far below.
    assert!(x2 < 33.0, "marginals unexpectedly skewed: X² = {x2}");
}

/// Price walks: without regimes the up/down string is Bernoulli(base_up);
/// with a regime, the regime window dominates the mining result.
#[test]
fn price_walks_encode_to_expected_strings() {
    let mut rng = seeded_rng(0xD1A);
    let flat = generate_prices(20_000, 100.0, 0.01, 0.55, &[], &mut rng);
    let updown = sigstr_data_free_encode(&flat.prices);
    let ups = updown.iter().filter(|&&u| u).count();
    let ratio = ups as f64 / updown.len() as f64;
    assert!((ratio - 0.55).abs() < 0.02, "up-ratio {ratio}");

    let regime = Regime {
        start: 5_000,
        end: 7_000,
        up_prob: 0.95,
    };
    let trending = generate_prices(20_000, 100.0, 0.01, 0.55, &[regime], &mut rng);
    let seq = sigstr_data_bools(&trending.prices);
    let model = Model::from_probs(vec![0.45, 0.55]).unwrap();
    let mss = find_mss(&seq, &model).unwrap();
    let overlap = mss
        .best
        .end
        .min(7_000)
        .saturating_sub(mss.best.start.max(5_000));
    assert!(
        overlap > 1_000,
        "regime not dominant: {}..{}",
        mss.best.start,
        mss.best.end
    );
}

fn sigstr_data_free_encode(prices: &[f64]) -> Vec<bool> {
    prices.windows(2).map(|w| w[1] > w[0]).collect()
}

fn sigstr_data_bools(prices: &[f64]) -> sigstr_core::Sequence {
    let bits: Vec<bool> = sigstr_data_free_encode(prices);
    sigstr_core::Sequence::from_bools(&bits).unwrap()
}
