//! Workload generators for significant-substring mining.
//!
//! Everything the paper's experiments need to synthesize (§7):
//!
//! * [`dist`] — the multinomial distributions of §7.1.2: uniform (the null
//!   model), geometric (`p_i ∝ 1/2^i`), harmonic (`p_i ∝ 1/i`) and the
//!   general Zipf family.
//! * [`bernoulli`] — i.i.d. strings from any [`sigstr_core::Model`].
//! * [`markov`] — Markov-chain strings: the paper's §7.1.2 process
//!   (`q_{ij} ∝ 1/2^{(i−j) mod k}`) and the binary persistence chain used
//!   by the §7.4 cryptology study.
//! * [`anomaly`] — splice anomalous segments into a background string,
//!   keeping the ground truth for recovery tests.
//! * [`walk`] — random-walk price series with drift regimes (the §7.5.2
//!   stock substitute).
//! * [`sports`] — win/loss sequences with dominance eras (the §7.5.1
//!   baseball substitute).
//! * [`kinds`] — the string taxonomy of Figure 4 behind one enum.
//!
//! All generators take `&mut impl Rng`; deterministic experiments seed a
//! `StdRng` via [`seeded_rng`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod anomaly;
pub mod bernoulli;
pub mod dist;
pub mod kinds;
pub mod markov;
pub mod sports;
pub mod walk;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic RNG for reproducible experiments.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

pub use bernoulli::generate_iid;
pub use kinds::StringKind;
