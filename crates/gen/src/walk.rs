//! Random-walk price series with drift regimes — the paper's §7.5.2
//! substitute substrate.
//!
//! The paper analyzes daily closes of the Dow Jones, S&P 500 and IBM under
//! the random-walk hypothesis: prices move up or down each day with a
//! fixed probability, and statistically significant substrings of the
//! up/down string correspond to drift periods (booms and crashes). Without
//! the Yahoo-Finance data we synthesize geometric random walks whose
//! *drift regimes* are placed explicitly, so the ground truth is known and
//! the mining pipeline is exercised identically (encode → estimate p̂ →
//! mine).

use rand::Rng;

/// A drift regime: during `days`, the daily up-move probability is
/// `up_prob` (outside any regime the base probability applies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regime {
    /// First day of the regime (index into the series).
    pub start: usize,
    /// One past the last day.
    pub end: usize,
    /// Probability that a day inside the regime closes up.
    pub up_prob: f64,
}

/// A generated price series with its ground-truth regimes.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceSeries {
    /// Daily closing prices (length `n + 1`: initial price plus `n` days).
    pub prices: Vec<f64>,
    /// The regimes that were applied.
    pub regimes: Vec<Regime>,
}

impl PriceSeries {
    /// Number of daily moves (one less than the number of prices).
    pub fn days(&self) -> usize {
        self.prices.len().saturating_sub(1)
    }

    /// Total relative change over `range` (e.g. `0.68` = +68%), as the
    /// paper's Table 5 "Change" column.
    pub fn change(&self, start: usize, end: usize) -> f64 {
        self.prices[end] / self.prices[start] - 1.0
    }
}

/// Generate a geometric random walk of `days` daily moves.
///
/// Each day the price is multiplied by `1 + step` on an up day and
/// `1 − step` on a down day; the up probability is `base_up` except inside
/// a regime. Regimes may not overlap and must fit in `0..days`.
pub fn generate_prices(
    days: usize,
    initial: f64,
    step: f64,
    base_up: f64,
    regimes: &[Regime],
    rng: &mut impl Rng,
) -> PriceSeries {
    assert!(days > 0, "need at least one day");
    assert!(initial > 0.0 && step > 0.0 && step < 1.0);
    assert!((0.0..=1.0).contains(&base_up));
    let mut sorted: Vec<Regime> = regimes.to_vec();
    sorted.sort_by_key(|r| r.start);
    for pair in sorted.windows(2) {
        assert!(pair[0].end <= pair[1].start, "regimes overlap");
    }
    if let Some(last) = sorted.last() {
        assert!(last.end <= days, "regime extends past the series");
    }
    let mut prices = Vec::with_capacity(days + 1);
    prices.push(initial);
    let mut price = initial;
    for day in 0..days {
        let p_up = sorted
            .iter()
            .find(|r| (r.start..r.end).contains(&day))
            .map_or(base_up, |r| r.up_prob);
        let up = rng.gen::<f64>() < p_up;
        price *= if up { 1.0 + step } else { 1.0 - step };
        prices.push(price);
    }
    PriceSeries {
        prices,
        regimes: sorted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn lengths_and_positivity() {
        let mut rng = seeded_rng(4);
        let s = generate_prices(1000, 100.0, 0.01, 0.5, &[], &mut rng);
        assert_eq!(s.days(), 1000);
        assert_eq!(s.prices.len(), 1001);
        assert!(s.prices.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn bull_regime_raises_prices() {
        let mut rng = seeded_rng(8);
        let regime = Regime {
            start: 200,
            end: 500,
            up_prob: 0.8,
        };
        let s = generate_prices(1000, 100.0, 0.01, 0.5, &[regime], &mut rng);
        let change = s.change(200, 500);
        assert!(change > 0.5, "bull regime produced change {change}");
    }

    #[test]
    fn bear_regime_lowers_prices() {
        let mut rng = seeded_rng(8);
        let regime = Regime {
            start: 100,
            end: 400,
            up_prob: 0.2,
        };
        let s = generate_prices(600, 100.0, 0.01, 0.5, &[regime], &mut rng);
        assert!(s.change(100, 400) < -0.3);
    }

    #[test]
    fn deterministic_with_seed() {
        let a = generate_prices(300, 50.0, 0.02, 0.5, &[], &mut seeded_rng(5));
        let b = generate_prices(300, 50.0, 0.02, 0.5, &[], &mut seeded_rng(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "regimes overlap")]
    fn overlapping_regimes_panic() {
        let mut rng = seeded_rng(0);
        let r1 = Regime {
            start: 0,
            end: 100,
            up_prob: 0.8,
        };
        let r2 = Regime {
            start: 50,
            end: 150,
            up_prob: 0.2,
        };
        generate_prices(200, 100.0, 0.01, 0.5, &[r1, r2], &mut rng);
    }

    #[test]
    #[should_panic(expected = "regime extends")]
    fn out_of_range_regime_panics() {
        let mut rng = seeded_rng(0);
        let r = Regime {
            start: 150,
            end: 300,
            up_prob: 0.8,
        };
        generate_prices(200, 100.0, 0.01, 0.5, &[r], &mut rng);
    }
}
