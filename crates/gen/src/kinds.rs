//! The string taxonomy of the paper's Figure 4 behind one enum.

use rand::Rng;
use sigstr_core::{Result, Sequence};

use crate::{bernoulli, dist, markov};

/// The input-string families compared in the paper's §7.1.2 / Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StringKind {
    /// Null model: i.i.d. uniform (equal multinomial probabilities).
    Null,
    /// I.i.d. with geometrically decaying probabilities (`p_i ∝ 1/2^i`).
    Geometric,
    /// I.i.d. with harmonically decaying probabilities (`p_i ∝ 1/i`) —
    /// the figure's "Zapian" (Zipf, exponent 1).
    Harmonic,
    /// I.i.d. Zipf with a configurable exponent.
    Zipf(f64),
    /// First-order Markov chain with `q_{ij} ∝ 1/2^{(i−j) mod k}`.
    Markov,
}

impl StringKind {
    /// Generate a string of this kind.
    pub fn generate(self, n: usize, k: usize, rng: &mut impl Rng) -> Result<Sequence> {
        match self {
            StringKind::Null => bernoulli::generate_iid(n, &dist::uniform(k)?, rng),
            StringKind::Geometric => bernoulli::generate_iid(n, &dist::geometric(k)?, rng),
            StringKind::Harmonic => bernoulli::generate_iid(n, &dist::harmonic(k)?, rng),
            StringKind::Zipf(s) => bernoulli::generate_iid(n, &dist::zipf(k, s)?, rng),
            StringKind::Markov => markov::generate_paper_markov(n, k, rng),
        }
    }

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            StringKind::Null => "Null",
            StringKind::Geometric => "Geometric",
            StringKind::Harmonic => "Zipfian",
            StringKind::Zipf(_) => "Zipf",
            StringKind::Markov => "Markov",
        }
    }

    /// The four families of Figure 4, in legend order.
    pub fn figure4() -> [StringKind; 4] {
        [
            StringKind::Null,
            StringKind::Geometric,
            StringKind::Harmonic,
            StringKind::Markov,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn all_kinds_generate() {
        let mut rng = seeded_rng(1);
        for kind in [
            StringKind::Null,
            StringKind::Geometric,
            StringKind::Harmonic,
            StringKind::Zipf(1.5),
            StringKind::Markov,
        ] {
            let s = kind.generate(500, 5, &mut rng).unwrap();
            assert_eq!(s.len(), 500);
            assert_eq!(s.k(), 5);
        }
    }

    #[test]
    fn labels_match_legends() {
        assert_eq!(StringKind::Null.label(), "Null");
        assert_eq!(StringKind::Geometric.label(), "Geometric");
        assert_eq!(StringKind::Harmonic.label(), "Zipfian");
        assert_eq!(StringKind::Markov.label(), "Markov");
        assert_eq!(StringKind::figure4().len(), 4);
    }

    #[test]
    fn geometric_skews_toward_first_symbol() {
        let mut rng = seeded_rng(6);
        let s = StringKind::Geometric.generate(20_000, 4, &mut rng).unwrap();
        let counts = s.count_vector(0, s.len());
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[3]);
    }
}
