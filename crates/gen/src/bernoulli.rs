//! I.i.d. (memoryless Bernoulli) string generation — the paper's null
//! model source.

use rand::Rng;
use sigstr_core::{Model, Result, Sequence};

/// Sample one symbol from a model using a uniform draw.
#[inline]
pub fn sample_symbol(model: &Model, rng: &mut impl Rng) -> u8 {
    let mut u: f64 = rng.gen();
    for (c, &p) in model.probs().iter().enumerate() {
        if u < p {
            return c as u8;
        }
        u -= p;
    }
    // Floating-point underflow at the boundary: return the last symbol.
    (model.k() - 1) as u8
}

/// Generate an i.i.d. string of length `n` from `model` (paper: "each
/// character … generated independently from the underlying distribution
/// using the standard uniform (0,1) random number generator").
pub fn generate_iid(n: usize, model: &Model, rng: &mut impl Rng) -> Result<Sequence> {
    let symbols: Vec<u8> = (0..n).map(|_| sample_symbol(model, rng)).collect();
    Sequence::from_symbols(symbols, model.k())
}

/// Convenience: uniform null-model string over alphabet `k`.
pub fn generate_null(n: usize, k: usize, rng: &mut impl Rng) -> Result<Sequence> {
    generate_iid(n, &Model::uniform(k)?, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn generates_requested_length_and_alphabet() {
        let mut rng = seeded_rng(1);
        let model = Model::uniform(4).unwrap();
        let s = generate_iid(1000, &model, &mut rng).unwrap();
        assert_eq!(s.len(), 1000);
        assert_eq!(s.k(), 4);
        assert!(s.symbols().iter().all(|&c| c < 4));
    }

    #[test]
    fn empirical_frequencies_near_model() {
        let mut rng = seeded_rng(7);
        let model = Model::from_probs(vec![0.1, 0.2, 0.7]).unwrap();
        let n = 50_000;
        let s = generate_iid(n, &model, &mut rng).unwrap();
        let counts = s.count_vector(0, n);
        for (c, &count) in counts.iter().enumerate() {
            let freq = f64::from(count) / n as f64;
            assert!(
                (freq - model.p(c)).abs() < 0.01,
                "char {c}: freq {freq} vs p {}",
                model.p(c)
            );
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let model = Model::uniform(2).unwrap();
        let a = generate_iid(100, &model, &mut seeded_rng(42)).unwrap();
        let b = generate_iid(100, &model, &mut seeded_rng(42)).unwrap();
        assert_eq!(a, b);
        let c = generate_iid(100, &model, &mut seeded_rng(43)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn null_string_passes_chi_square_sanity() {
        // The full-string X² of a null sample should look like a χ²(k−1)
        // draw — tiny compared with an anomalous string.
        let mut rng = seeded_rng(3);
        let s = generate_null(20_000, 2, &mut rng).unwrap();
        let model = Model::uniform(2).unwrap();
        let counts = s.count_vector(0, s.len());
        let x2 = sigstr_core::chi_square_counts(&counts, &model);
        // P[χ²(1) > 15] ≈ 1e-4; a seeded draw sits far below.
        assert!(x2 < 15.0, "suspicious null string: X² = {x2}");
    }

    #[test]
    fn zero_length_rejected() {
        let mut rng = seeded_rng(0);
        let model = Model::uniform(2).unwrap();
        assert!(generate_iid(0, &model, &mut rng).is_err());
    }
}
