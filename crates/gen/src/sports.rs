//! Win/loss sequences with dominance eras — the paper's §7.5.1 substitute
//! substrate (the Yankees–Red-Sox rivalry).
//!
//! The real dataset (baseball-reference.com) is a string of ~2086 game
//! outcomes over a century with a handful of famous dominance eras. We
//! synthesize the same shape: a base win probability with era overrides,
//! ground truth retained so tests can check the mined patches land on the
//! planted eras.

use rand::Rng;
use sigstr_core::{Result, Sequence};

/// A dominance era: games `start..end` are won with probability
/// `win_prob` (by the team the string encodes as 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Era {
    /// First game index of the era.
    pub start: usize,
    /// One past the last game.
    pub end: usize,
    /// Win probability inside the era.
    pub win_prob: f64,
}

/// A generated rivalry: the binary outcome string (1 = reference team won)
/// and the planted eras.
#[derive(Debug, Clone, PartialEq)]
pub struct Rivalry {
    /// Game outcomes (1 = win for the reference team).
    pub outcomes: Sequence,
    /// The planted eras.
    pub eras: Vec<Era>,
}

impl Rivalry {
    /// Overall win ratio of the reference team.
    pub fn win_ratio(&self) -> f64 {
        let wins = self.outcomes.count_vector(0, self.outcomes.len())[1];
        f64::from(wins) / self.outcomes.len() as f64
    }

    /// Win ratio over a game range.
    pub fn win_ratio_range(&self, start: usize, end: usize) -> f64 {
        let wins = self.outcomes.count_vector(start, end)[1];
        f64::from(wins) / (end - start) as f64
    }
}

/// Generate a rivalry of `games` outcomes with base win probability
/// `base_win` and the given (non-overlapping, in-range) eras.
pub fn generate_rivalry(
    games: usize,
    base_win: f64,
    eras: &[Era],
    rng: &mut impl Rng,
) -> Result<Rivalry> {
    assert!((0.0..=1.0).contains(&base_win));
    let mut sorted: Vec<Era> = eras.to_vec();
    sorted.sort_by_key(|e| e.start);
    for pair in sorted.windows(2) {
        assert!(pair[0].end <= pair[1].start, "eras overlap");
    }
    if let Some(last) = sorted.last() {
        assert!(last.end <= games, "era extends past the schedule");
    }
    let outcomes: Vec<u8> = (0..games)
        .map(|game| {
            let p = sorted
                .iter()
                .find(|e| (e.start..e.end).contains(&game))
                .map_or(base_win, |e| e.win_prob);
            u8::from(rng.gen::<f64>() < p)
        })
        .collect();
    Ok(Rivalry {
        outcomes: Sequence::from_symbols(outcomes, 2)?,
        eras: sorted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn base_ratio_without_eras() {
        let mut rng = seeded_rng(10);
        let r = generate_rivalry(20_000, 0.5427, &[], &mut rng).unwrap();
        // The paper's overall Yankee ratio is 54.27%.
        assert!((r.win_ratio() - 0.5427).abs() < 0.01);
    }

    #[test]
    fn eras_shift_local_ratios() {
        let mut rng = seeded_rng(20);
        let eras = [
            Era {
                start: 500,
                end: 700,
                win_prob: 0.76,
            },
            Era {
                start: 1200,
                end: 1240,
                win_prob: 0.13,
            },
        ];
        let r = generate_rivalry(2086, 0.54, &eras, &mut rng).unwrap();
        assert!(r.win_ratio_range(500, 700) > 0.65);
        assert!(r.win_ratio_range(1200, 1240) < 0.30);
    }

    #[test]
    fn mined_patch_lands_on_planted_era() {
        let mut rng = seeded_rng(30);
        let eras = [Era {
            start: 800,
            end: 1000,
            win_prob: 0.85,
        }];
        let r = generate_rivalry(2086, 0.54, &eras, &mut rng).unwrap();
        let model = sigstr_core::Model::estimate(&r.outcomes).unwrap();
        let mss = sigstr_core::find_mss(&r.outcomes, &model).unwrap();
        // The mined patch must overlap the planted era substantially.
        let overlap = mss
            .best
            .end
            .min(1000)
            .saturating_sub(mss.best.start.max(800));
        assert!(
            overlap > 100,
            "mined {}..{} misses era 800..1000",
            mss.best.start,
            mss.best.end
        );
    }

    #[test]
    #[should_panic(expected = "eras overlap")]
    fn overlapping_eras_panic() {
        let mut rng = seeded_rng(0);
        let eras = [
            Era {
                start: 0,
                end: 100,
                win_prob: 0.8,
            },
            Era {
                start: 99,
                end: 150,
                win_prob: 0.2,
            },
        ];
        let _ = generate_rivalry(200, 0.5, &eras, &mut rng);
    }
}
