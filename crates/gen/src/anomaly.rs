//! Anomaly injection: splice segments drawn from a different model into a
//! background string, keeping the ground truth.
//!
//! This synthesizes the paper's motivating scenario (§1): "an external
//! event occurring in the middle of a string may be causing the particular
//! substring to deviate significantly from the expected behavior by
//! inflating or deflating the probabilities of occurrence of some
//! characters".

use rand::Rng;
use sigstr_core::{Error, Model, Result, Sequence};

use crate::bernoulli::sample_symbol;

/// A planted anomaly: the range that was overwritten and the model its
/// symbols were drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct Planted {
    /// Start of the overwritten range (inclusive).
    pub start: usize,
    /// End of the overwritten range (exclusive).
    pub end: usize,
    /// The anomalous model.
    pub model: Model,
}

impl Planted {
    /// Overlap length with another range (Jaccard-style recovery metrics).
    pub fn overlap(&self, start: usize, end: usize) -> usize {
        let lo = self.start.max(start);
        let hi = self.end.min(end);
        hi.saturating_sub(lo)
    }

    /// Jaccard similarity between the planted range and a mined range.
    pub fn jaccard(&self, start: usize, end: usize) -> f64 {
        let inter = self.overlap(start, end);
        let union = (self.end - self.start) + (end - start) - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }
}

/// Overwrite `range` of `seq` with i.i.d. draws from `anomaly_model`.
///
/// Returns the modified sequence and the ground-truth record.
pub fn inject_segment(
    seq: &Sequence,
    range: std::ops::Range<usize>,
    anomaly_model: &Model,
    rng: &mut impl Rng,
) -> Result<(Sequence, Planted)> {
    if anomaly_model.k() != seq.k() {
        return Err(Error::AlphabetMismatch {
            model_k: anomaly_model.k(),
            seq_k: seq.k(),
        });
    }
    if range.start >= range.end || range.end > seq.len() {
        return Err(Error::InvalidParameter {
            what: "range",
            details: format!(
                "injection range {}..{} invalid for string of length {}",
                range.start,
                range.end,
                seq.len()
            ),
        });
    }
    let mut symbols = seq.symbols().to_vec();
    for slot in &mut symbols[range.clone()] {
        *slot = sample_symbol(anomaly_model, rng);
    }
    let planted = Planted {
        start: range.start,
        end: range.end,
        model: anomaly_model.clone(),
    };
    Ok((Sequence::from_symbols(symbols, seq.k())?, planted))
}

/// Generate a null-model background of length `n` and plant one anomalous
/// segment of length `len` at a random offset.
pub fn background_with_anomaly(
    n: usize,
    background: &Model,
    anomaly_model: &Model,
    len: usize,
    rng: &mut impl Rng,
) -> Result<(Sequence, Planted)> {
    if len == 0 || len > n {
        return Err(Error::InvalidParameter {
            what: "len",
            details: format!("anomaly length {len} invalid for string of length {n}"),
        });
    }
    let base = crate::bernoulli::generate_iid(n, background, rng)?;
    let start = rng.gen_range(0..=(n - len));
    inject_segment(&base, start..start + len, anomaly_model, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn injection_only_touches_range() {
        let mut rng = seeded_rng(2);
        let model = Model::uniform(2).unwrap();
        let base = crate::bernoulli::generate_iid(100, &model, &mut rng).unwrap();
        let hot = Model::from_probs(vec![0.05, 0.95]).unwrap();
        let (mutated, planted) = inject_segment(&base, 30..50, &hot, &mut rng).unwrap();
        assert_eq!(planted.start, 30);
        assert_eq!(planted.end, 50);
        for i in (0..30).chain(50..100) {
            assert_eq!(base.symbol(i), mutated.symbol(i), "position {i} changed");
        }
    }

    #[test]
    fn planted_overlap_and_jaccard() {
        let model = Model::uniform(2).unwrap();
        let p = Planted {
            start: 10,
            end: 20,
            model,
        };
        assert_eq!(p.overlap(0, 5), 0);
        assert_eq!(p.overlap(15, 25), 5);
        assert_eq!(p.overlap(10, 20), 10);
        assert!((p.jaccard(10, 20) - 1.0).abs() < 1e-12);
        assert!((p.jaccard(15, 25) - 5.0 / 15.0).abs() < 1e-12);
        assert_eq!(p.jaccard(0, 0), 0.0);
    }

    #[test]
    fn mss_recovers_strong_anomaly() {
        // End-to-end: a strongly biased segment in a fair background is
        // recovered by the MSS with high overlap.
        let mut rng = seeded_rng(77);
        let background = Model::uniform(2).unwrap();
        let hot = Model::from_probs(vec![0.02, 0.98]).unwrap();
        let (seq, planted) =
            background_with_anomaly(5_000, &background, &hot, 200, &mut rng).unwrap();
        let mss = sigstr_core::find_mss(&seq, &background).unwrap();
        assert!(
            planted.jaccard(mss.best.start, mss.best.end) > 0.5,
            "poor recovery: planted {}..{}, found {}..{}",
            planted.start,
            planted.end,
            mss.best.start,
            mss.best.end
        );
        assert!(mss.best.p_value(2) < 1e-10);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let mut rng = seeded_rng(0);
        let model = Model::uniform(2).unwrap();
        let base = crate::bernoulli::generate_iid(50, &model, &mut rng).unwrap();
        let other_k = Model::uniform(3).unwrap();
        assert!(inject_segment(&base, 0..10, &other_k, &mut rng).is_err());
        assert!(inject_segment(&base, 10..10, &model, &mut rng).is_err());
        assert!(inject_segment(&base, 40..60, &model, &mut rng).is_err());
        assert!(background_with_anomaly(50, &model, &model, 0, &mut rng).is_err());
        assert!(background_with_anomaly(50, &model, &model, 51, &mut rng).is_err());
    }
}
