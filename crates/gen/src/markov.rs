//! Markov-chain string generation (paper §7.1.2 type (c) and §7.4).

use rand::Rng;
use sigstr_core::markov::TransitionModel;
use sigstr_core::{Result, Sequence};

/// Generate a string of length `n` from a first-order Markov chain.
///
/// The first symbol is drawn uniformly; each subsequent symbol from the
/// transition row of its predecessor.
pub fn generate_markov(n: usize, tm: &TransitionModel, rng: &mut impl Rng) -> Result<Sequence> {
    let k = tm.k();
    if n == 0 {
        return Sequence::from_symbols(Vec::new(), k); // EmptySequence error
    }
    let mut symbols = Vec::with_capacity(n);
    let mut prev = rng.gen_range(0..k);
    symbols.push(prev as u8);
    for _ in 1..n {
        let mut u: f64 = rng.gen();
        let mut next = k - 1;
        for b in 0..k {
            let q = tm.q(prev, b);
            if u < q {
                next = b;
                break;
            }
            u -= q;
        }
        symbols.push(next as u8);
        prev = next;
    }
    Sequence::from_symbols(symbols, k)
}

/// The paper's Markov string (§7.1.2 (c)): state transition probability of
/// `a_j` following `a_i` proportional to `1/2^{(i−j) mod k}`.
pub fn generate_paper_markov(n: usize, k: usize, rng: &mut impl Rng) -> Result<Sequence> {
    let tm = TransitionModel::paper_process(k)?;
    generate_markov(n, &tm, rng)
}

/// Binary string from a persistence chain: the next symbol repeats the
/// previous one with probability `p` (paper §7.4 — an "inefficient RNG"
/// whose hidden correlation the MSS should expose; `p = 0.5` is a perfect
/// RNG).
pub fn generate_binary_persistence(n: usize, p: f64, rng: &mut impl Rng) -> Result<Sequence> {
    let tm = TransitionModel::binary_persistence(p)?;
    generate_markov(n, &tm, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seeded_rng;

    #[test]
    fn persistence_bias_shows_in_run_lengths() {
        let mut rng = seeded_rng(11);
        let n = 20_000;
        let sticky = generate_binary_persistence(n, 0.8, &mut rng).unwrap();
        let fair = generate_binary_persistence(n, 0.5, &mut rng).unwrap();
        let repeats =
            |s: &Sequence| -> usize { s.symbols().windows(2).filter(|w| w[0] == w[1]).count() };
        let sticky_rate = repeats(&sticky) as f64 / (n - 1) as f64;
        let fair_rate = repeats(&fair) as f64 / (n - 1) as f64;
        assert!(
            (sticky_rate - 0.8).abs() < 0.02,
            "sticky rate {sticky_rate}"
        );
        assert!((fair_rate - 0.5).abs() < 0.02, "fair rate {fair_rate}");
    }

    #[test]
    fn paper_markov_empirical_transitions() {
        let mut rng = seeded_rng(5);
        let k = 3;
        let s = generate_paper_markov(60_000, k, &mut rng).unwrap();
        let tm = TransitionModel::paper_process(k).unwrap();
        // Empirical transition frequencies should approximate the matrix.
        let mut counts = vec![0u32; k * k];
        let mut row_totals = vec![0u32; k];
        for w in s.symbols().windows(2) {
            counts[w[0] as usize * k + w[1] as usize] += 1;
            row_totals[w[0] as usize] += 1;
        }
        for a in 0..k {
            for b in 0..k {
                let freq = f64::from(counts[a * k + b]) / f64::from(row_totals[a]);
                assert!(
                    (freq - tm.q(a, b)).abs() < 0.02,
                    "q({a},{b}): {freq} vs {}",
                    tm.q(a, b)
                );
            }
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let a = generate_binary_persistence(500, 0.6, &mut seeded_rng(9)).unwrap();
        let b = generate_binary_persistence(500, 0.6, &mut seeded_rng(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_parameters() {
        let mut rng = seeded_rng(0);
        assert!(generate_binary_persistence(100, 0.0, &mut rng).is_err());
        assert!(generate_binary_persistence(100, 1.0, &mut rng).is_err());
        assert!(generate_binary_persistence(0, 0.5, &mut rng).is_err());
    }
}
