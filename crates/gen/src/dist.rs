//! The multinomial distribution families of the paper's experiments
//! (§7.1.2).

use sigstr_core::{Model, Result};

/// The uniform distribution over `k` characters — the paper's null model
/// for synthetic strings ("a memoryless Bernoulli source where the
/// multinomial probabilities of all the characters are equal").
pub fn uniform(k: usize) -> Result<Model> {
    Model::uniform(k)
}

/// Geometric distribution: `p_i ∝ 1/2^i` (paper §7.1.2 (a)).
pub fn geometric(k: usize) -> Result<Model> {
    weights_to_model((0..k).map(|i| 0.5f64.powi(i as i32)))
}

/// Harmonic distribution: `p_i ∝ 1/i` (paper §7.1.2 (b); the figure
/// legend's "Zapian" is this family — Zipf with exponent 1).
pub fn harmonic(k: usize) -> Result<Model> {
    zipf(k, 1.0)
}

/// Zipf distribution with exponent `s`: `p_i ∝ 1/i^s` for ranks
/// `i = 1..=k`.
pub fn zipf(k: usize, s: f64) -> Result<Model> {
    weights_to_model((1..=k).map(move |i| (i as f64).powf(-s)))
}

/// Normalize raw positive weights into a [`Model`].
pub fn weights_to_model(weights: impl IntoIterator<Item = f64>) -> Result<Model> {
    let weights: Vec<f64> = weights.into_iter().collect();
    let total: f64 = weights.iter().sum();
    Model::from_probs(weights.into_iter().map(|w| w / total).collect())
}

/// The Figure-3 family `S1`: `k = 3`, `P = {p₀, 0.5 − p₀, 0.5}`.
pub fn fig3_s1(p0: f64) -> Result<Model> {
    Model::from_probs(vec![p0, 0.5 - p0, 0.5])
}

/// The Figure-3 family `S2`: `k = 5`, `P = {p₀, 0.5 − p₀, 0.1, 0.2, 0.2}`.
pub fn fig3_s2(p0: f64) -> Result<Model> {
    Model::from_probs(vec![p0, 0.5 - p0, 0.1, 0.2, 0.2])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_probs_sum_to_one(m: &Model) {
        let total: f64 = m.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_halves() {
        let m = geometric(4).unwrap();
        assert_probs_sum_to_one(&m);
        for i in 0..3 {
            assert!((m.p(i) / m.p(i + 1) - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn harmonic_ratios() {
        let m = harmonic(5).unwrap();
        assert_probs_sum_to_one(&m);
        // p_1/p_2 = 2, p_1/p_3 = 3, …
        for i in 1..5 {
            assert!((m.p(0) / m.p(i) - (i + 1) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_generalizes_harmonic_and_uniform() {
        let h = harmonic(6).unwrap();
        let z1 = zipf(6, 1.0).unwrap();
        for i in 0..6 {
            assert!((h.p(i) - z1.p(i)).abs() < 1e-12);
        }
        let z0 = zipf(6, 0.0).unwrap();
        let u = uniform(6).unwrap();
        for i in 0..6 {
            assert!((z0.p(i) - u.p(i)).abs() < 1e-12);
        }
    }

    #[test]
    fn fig3_families_valid_in_paper_range() {
        // Paper sweeps p₀ ∈ {0.05 .. 0.25}.
        for i in 1..=5 {
            let p0 = 0.05 * i as f64;
            let s1 = fig3_s1(p0).unwrap();
            assert_eq!(s1.k(), 3);
            assert_probs_sum_to_one(&s1);
            let s2 = fig3_s2(p0).unwrap();
            assert_eq!(s2.k(), 5);
            assert_probs_sum_to_one(&s2);
        }
        // p₀ = 0.5 would zero out the second character.
        assert!(fig3_s1(0.5).is_err());
    }

    #[test]
    fn degenerate_weights_rejected() {
        assert!(weights_to_model([1.0]).is_err());
        assert!(weights_to_model([1.0, 0.0]).is_err());
        assert!(geometric(1).is_err());
    }
}
