//! The one latency histogram both tiers share.
//!
//! The server and the router used to carry separate hand-rolled
//! histogram types that happened to agree on bucket bounds; this is
//! the single implementation, with the bounds next to it, so the two
//! `/metrics` pages stay apples-to-apples by construction.

use std::sync::atomic::{AtomicU64, Ordering};

/// Latency histogram bucket upper bounds, in microseconds (a final
/// `+Inf` bucket is implicit). Shared by every process in the fleet.
pub const LATENCY_BUCKETS_US: [u64; 8] = [100, 250, 500, 1_000, 5_000, 10_000, 100_000, 1_000_000];

/// Cumulative latency histogram (micro-second buckets + `+Inf`),
/// lock-free on the observe path.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Record one latency sample.
    pub fn observe_us(&self, us: u64) {
        let slot = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Append Prometheus-style `_bucket`/`_sum`/`_count` lines (no
    /// `# TYPE` — the caller declares the type once per metric name,
    /// which may cover several labeled renderings). `labels` is either
    /// empty or a `key="value"` list stitched in before the `le` label.
    pub fn render(&self, out: &mut String, name: &str, labels: &str) {
        let open = if labels.is_empty() {
            "{".to_string()
        } else {
            format!("{{{labels},")
        };
        let mut cumulative = 0;
        for (i, &bound) in LATENCY_BUCKETS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{open}le=\"{bound}\"}} {cumulative}\n"
            ));
        }
        cumulative += self.buckets[LATENCY_BUCKETS_US.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{open}le=\"+Inf\"}} {cumulative}\n"));
        let block = if labels.is_empty() {
            String::new()
        } else {
            format!("{{{labels}}}")
        };
        out.push_str(&format!("{name}_sum{block} {}\n", self.sum_us()));
        out.push_str(&format!("{name}_count{block} {}\n", self.count()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe_us(50);
        h.observe_us(200);
        h.observe_us(2_000_000);
        let mut out = String::new();
        h.render(&mut out, "x", "");
        assert!(out.contains("x_bucket{le=\"100\"} 1\n"));
        assert!(out.contains("x_bucket{le=\"250\"} 2\n"));
        assert!(out.contains("x_bucket{le=\"1000000\"} 2\n"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3\n"));
        assert!(out.contains("x_count 3\n"));
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_us(), 2_000_250);
    }

    #[test]
    fn labels_stitch_before_le() {
        let h = Histogram::default();
        h.observe_us(400);
        let mut out = String::new();
        h.render(&mut out, "x", "shard=\"a:1\"");
        assert!(
            out.contains("x_bucket{shard=\"a:1\",le=\"500\"} 1\n"),
            "{out}"
        );
        assert!(out.contains("x_sum{shard=\"a:1\"} 400\n"));
        assert!(out.contains("x_count{shard=\"a:1\"} 1\n"));
    }
}
