//! Std-only observability primitives shared by every process in the
//! fleet: the corpus server, the scatter-gather router, and the CLI.
//!
//! The crate sits *below* `sigstr-corpus` in the dependency graph so
//! the serving layers can record spans from anywhere — the corpus
//! cache, the live-document freeze path, the router's hedging
//! coordinator — without a callback registry. Four pieces:
//!
//! * **Traces and spans** — a request is one [`Trace`]: a 128-bit
//!   [`TraceId`] minted at the edge (or adopted from the
//!   [`TRACE_HEADER`] a router stamped on the hop), plus per-stage
//!   [`Span`]s measured with monotonic clocks. The active trace rides
//!   a thread-local ([`attach`]/[`current`]), so deep layers call
//!   [`span`] and get a no-op guard when nothing is being traced —
//!   the untraced fast path costs one TLS read.
//! * **Flight recorder** — a fixed-size ring of recent sealed traces
//!   per process ([`FlightRecorder`]), served as JSON by
//!   `/debug/traces`. One mutex around a `VecDeque`, touched once per
//!   request at seal time — never on the per-span path.
//! * **Shared histogram** — [`hist::Histogram`] with one set of bucket
//!   bounds ([`hist::LATENCY_BUCKETS_US`]) used by both the server and
//!   the router, so cross-tier latency comparison is apples-to-apples.
//! * **Exposition lint** — [`lint::lint_exposition`] walks a rendered
//!   `/metrics` page and enforces the
//!   `sigstr_<subsystem>_<name>_<unit>` naming convention plus
//!   Prometheus text-format shape (`# TYPE` before samples, counters
//!   end in `_total`, histograms carry a unit).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod hist;
pub mod lint;
pub mod recorder;

pub use recorder::{FlightRecorder, TraceFilter};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// The header that propagates a trace ID across the router→shard hop
/// (32 lower-case hex characters), echoed back on responses.
pub const TRACE_HEADER: &str = "x-sigstr-trace";

// ---------------------------------------------------------------------------
// Trace IDs.
// ---------------------------------------------------------------------------

/// A 128-bit trace identifier, minted once at the edge of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u128);

/// Per-process mint counter; folded into the seed so two IDs minted in
/// the same clock tick still differ.
static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl TraceId {
    /// Mint a fresh ID: SplitMix64 over wall clock, pid, and a
    /// per-process counter. Not cryptographic — collision-resistant
    /// enough to tell requests apart in a flight recorder.
    pub fn mint() -> TraceId {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
            .unwrap_or(0);
        let count = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
        let hi = splitmix64(nanos ^ u64::from(std::process::id()).rotate_left(32));
        let lo = splitmix64(count.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ nanos.rotate_left(17));
        TraceId((u128::from(hi) << 64) | u128::from(lo))
    }

    /// The 32-character lower-case hex wire form.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the wire form; `None` for anything but 32 hex characters.
    pub fn parse(text: &str) -> Option<TraceId> {
        if text.len() != 32 {
            return None;
        }
        u128::from_str_radix(text, 16).ok().map(TraceId)
    }
}

// ---------------------------------------------------------------------------
// Spans and sealed traces.
// ---------------------------------------------------------------------------

/// One timed stage of a request, offset-addressed from the trace start.
#[derive(Debug, Clone)]
pub struct Span {
    /// Stage name (`queue`, `parse`, `cache`, `scan`, `attempt`, …).
    pub name: &'static str,
    /// Microseconds from the trace origin to the stage start.
    pub start_us: u64,
    /// Stage duration in microseconds.
    pub dur_us: u64,
    /// Stage attributes (`shard`, `outcome`, `examined`, …).
    pub attrs: Vec<(&'static str, String)>,
}

/// A sealed, immutable trace: what the flight recorder stores and
/// `/debug/traces` serves.
#[derive(Debug, Clone)]
pub struct Trace {
    /// The edge-minted (or adopted) identifier.
    pub id: TraceId,
    /// The routed path (`/v1/query`).
    pub route: String,
    /// The response status.
    pub status: u16,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// End-to-end duration in microseconds.
    pub total_us: u64,
    /// Stages, sorted by start offset.
    pub spans: Vec<Span>,
}

fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Trace {
    /// Render the trace as one JSON object.
    pub fn to_json(&self) -> String {
        self.to_json_with("")
    }

    /// Render the trace as one JSON object with `extra` (either empty
    /// or a raw `,"key":value…` tail) spliced in before the closing
    /// brace — how the router embeds shard-side traces it joined.
    pub fn to_json_with(&self, extra: &str) -> String {
        let mut out = format!(
            "{{\"id\":\"{}\",\"route\":\"{}\",\"status\":{},\"start_unix_ms\":{},\"total_us\":{},\"spans\":[",
            self.id.to_hex(),
            json_escape(&self.route),
            self.status,
            self.start_unix_ms,
            self.total_us,
        );
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"start_us\":{},\"dur_us\":{},\"attrs\":{{",
                span.name, span.start_us, span.dur_us
            ));
            for (j, (key, value)) in span.attrs.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{key}\":\"{}\"", json_escape(value)));
            }
            out.push_str("}}");
        }
        out.push(']');
        out.push_str(extra);
        out.push('}');
        out
    }
}

/// Render a `/debug/traces` body: `{"traces":[…]}` from pre-rendered
/// per-trace JSON objects (so callers can splice joined children in).
pub fn render_traces_body(rendered: &[String]) -> String {
    let mut out = String::from("{\"traces\":[");
    for (i, trace) in rendered.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(trace);
    }
    out.push_str("]}\n");
    out
}

// ---------------------------------------------------------------------------
// The active (in-flight) trace.
// ---------------------------------------------------------------------------

/// A trace being built: the span sink every [`SpanGuard`] drops into.
/// Shared as an [`Arc`] so coordinators can hand it to scatter threads.
#[derive(Debug)]
pub struct ActiveTrace {
    id: TraceId,
    origin: Instant,
    start_unix_ms: u64,
    spans: Mutex<Vec<Span>>,
}

/// A shareable handle to an in-flight trace.
pub type TraceHandle = Arc<ActiveTrace>;

impl ActiveTrace {
    /// Begin a trace whose origin is *now*.
    pub fn begin(id: TraceId) -> TraceHandle {
        Self::begin_at(id, Instant::now())
    }

    /// Begin a trace with an explicit origin in the recent past (the
    /// admission-queue entry time, so the queue-wait span starts at
    /// offset zero).
    pub fn begin_at(id: TraceId, origin: Instant) -> TraceHandle {
        let start_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        Arc::new(ActiveTrace {
            id,
            origin,
            start_unix_ms,
            spans: Mutex::new(Vec::with_capacity(8)),
        })
    }

    /// The trace's identifier.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Record one finished stage. Instants before the origin clamp to
    /// offset zero (a queue entry measured on another thread can race
    /// the origin by nanoseconds).
    pub fn record(
        &self,
        name: &'static str,
        start: Instant,
        end: Instant,
        attrs: Vec<(&'static str, String)>,
    ) {
        let start_us = us_between(self.origin, start);
        let dur_us = us_between(start, end);
        let mut spans = self.spans.lock().expect("trace spans poisoned");
        spans.push(Span {
            name,
            start_us,
            dur_us,
            attrs,
        });
    }

    /// Seal the trace: snapshot the spans (sorted by start offset) into
    /// an immutable [`Trace`]. Spans recorded after the seal — a hedge
    /// loser limping home — are dropped with the handle.
    pub fn seal(&self, route: String, status: u16) -> Trace {
        let mut spans = self.spans.lock().expect("trace spans poisoned").clone();
        spans.sort_by_key(|s| s.start_us);
        Trace {
            id: self.id,
            route,
            status,
            start_unix_ms: self.start_unix_ms,
            total_us: us_between(self.origin, Instant::now()),
            spans,
        }
    }
}

fn us_between(earlier: Instant, later: Instant) -> u64 {
    u64::try_from(later.saturating_duration_since(earlier).as_micros()).unwrap_or(u64::MAX)
}

thread_local! {
    static CURRENT: RefCell<Option<TraceHandle>> = const { RefCell::new(None) };
}

/// Make `handle` the thread's active trace until the guard drops
/// (restoring whatever was active before — attachments nest).
pub fn attach(handle: TraceHandle) -> AttachGuard {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(handle));
    AttachGuard { previous }
}

/// Restores the previously-attached trace on drop.
pub struct AttachGuard {
    previous: Option<TraceHandle>,
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// The thread's active trace, if any (clone the handle into scatter
/// threads and [`attach`] it there).
pub fn current() -> Option<TraceHandle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// The active trace's ID in wire form — what an outbound hop puts in
/// [`TRACE_HEADER`].
pub fn current_id_hex() -> Option<String> {
    CURRENT.with(|c| c.borrow().as_ref().map(|h| h.id().to_hex()))
}

/// Open a stage span against the thread's active trace. A no-op guard
/// (one TLS read, no allocation) when nothing is being traced.
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        trace: current(),
        name,
        start: Instant::now(),
        attrs: Vec::new(),
    }
}

/// RAII span: records `[construction, drop]` against the trace it was
/// opened under. Attributes added on the no-op guard vanish for free.
pub struct SpanGuard {
    trace: Option<TraceHandle>,
    name: &'static str,
    start: Instant,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    /// Attach a string attribute.
    pub fn attr(&mut self, key: &'static str, value: impl Into<String>) {
        if self.trace.is_some() {
            self.attrs.push((key, value.into()));
        }
    }

    /// Attach a numeric attribute.
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        self.attr(key, value.to_string());
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(trace) = self.trace.take() {
            trace.record(
                self.name,
                self.start,
                Instant::now(),
                std::mem::take(&mut self.attrs),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_roundtrip_and_differ() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        let hex = a.to_hex();
        assert_eq!(hex.len(), 32);
        assert_eq!(TraceId::parse(&hex), Some(a));
        assert_eq!(TraceId::parse("zz"), None);
        assert_eq!(TraceId::parse(&hex[..31]), None);
    }

    #[test]
    fn spans_record_against_the_attached_trace() {
        let trace = ActiveTrace::begin(TraceId::mint());
        {
            let _g = attach(Arc::clone(&trace));
            assert_eq!(current_id_hex(), Some(trace.id().to_hex()));
            let mut span = span("scan");
            span.attr_u64("examined", 42);
            span.attr("tier", "sse2");
        }
        assert!(current().is_none(), "guard must restore the empty state");
        let sealed = trace.seal("/v1/query".into(), 200);
        assert_eq!(sealed.spans.len(), 1);
        assert_eq!(sealed.spans[0].name, "scan");
        assert_eq!(
            sealed.spans[0].attrs,
            vec![("examined", "42".to_string()), ("tier", "sse2".to_string())]
        );
    }

    #[test]
    fn unattached_spans_are_noops() {
        let mut span = span("scan");
        span.attr("dropped", "yes");
        drop(span);
        assert!(current().is_none());
    }

    #[test]
    fn attachments_nest_and_restore() {
        let outer = ActiveTrace::begin(TraceId::mint());
        let inner = ActiveTrace::begin(TraceId::mint());
        let _o = attach(Arc::clone(&outer));
        {
            let _i = attach(Arc::clone(&inner));
            assert_eq!(current().unwrap().id(), inner.id());
        }
        assert_eq!(current().unwrap().id(), outer.id());
    }

    #[test]
    fn sealed_json_is_wellformed_and_escaped() {
        let trace = ActiveTrace::begin(TraceId(0xabc));
        let start = Instant::now();
        trace.record("write", start, start, vec![("note", "say \"hi\"\n".into())]);
        let sealed = trace.seal("/v1/query".into(), 200);
        let json = sealed.to_json();
        assert!(json.starts_with("{\"id\":\"00000000000000000000000000000abc\""));
        assert!(json.contains("\"note\":\"say \\\"hi\\\"\\n\""), "{json}");
        let joined = sealed.to_json_with(",\"shards\":[]");
        assert!(joined.ends_with(",\"shards\":[]}"), "{joined}");
    }
}
