//! A lint for rendered Prometheus text exposition: format shape plus
//! the fleet's `sigstr_<subsystem>_<name>_<unit>` naming convention.
//!
//! The serving crates run this over their fully-rendered `/metrics`
//! pages in unit tests, so a future PR that adds a counter with a
//! drifting name (`sigstr_foo` with no subsystem, a counter without
//! `_total`, a histogram without a unit) fails fast instead of
//! shipping a dashboard-hostile series.

use std::collections::{HashMap, HashSet};

/// Subsystems a metric may belong to (the token after `sigstr_`).
pub const SUBSYSTEMS: [&str; 5] = ["http", "cache", "live", "router", "trace"];

/// Suffixes a gauge may end with: a unit (`bytes`, `us`) or a counted
/// noun for unitless level gauges (`depth`, `engines`, `documents`, …).
const GAUGE_SUFFIXES: [&str; 11] = [
    "bytes",
    "us",
    "depth",
    "engines",
    "documents",
    "symbols",
    "watches",
    "generation",
    "up",
    "state",
    "traces",
];

/// Units a histogram's base name may end with.
const HISTOGRAM_UNITS: [&str; 3] = ["us", "seconds", "bytes"];

/// Lint one rendered exposition page. Returns the violations (empty
/// means the page is clean); each entry names the offending line.
pub fn lint_exposition(text: &str) -> Vec<String> {
    let mut violations = Vec::new();
    // Metric name -> declared type.
    let mut declared: HashMap<String, String> = HashMap::new();
    let mut seen_samples: HashSet<String> = HashSet::new();

    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next()) else {
                violations.push(format!("malformed TYPE line: `{line}`"));
                continue;
            };
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                violations.push(format!("`{name}`: unknown type `{kind}`"));
                continue;
            }
            if declared
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                violations.push(format!("`{name}`: duplicate # TYPE declaration"));
            }
            lint_name(name, kind, &mut violations);
            continue;
        }
        if line.starts_with("# HELP ") {
            continue;
        }
        if line.starts_with('#') {
            violations.push(format!("unexpected comment line: `{line}`"));
            continue;
        }
        // A sample: `name value` or `name{labels} value`.
        let name_end = line.find(['{', ' ']).unwrap_or(line.len());
        let full_name = &line[..name_end];
        let rest = &line[name_end..];
        let value = match rest.strip_prefix('{') {
            Some(labeled) => match labeled.split_once('}') {
                Some((labels, value)) => {
                    if labels.is_empty() {
                        violations.push(format!("`{full_name}`: empty label block"));
                    }
                    value
                }
                None => {
                    violations.push(format!("`{full_name}`: unterminated label block"));
                    continue;
                }
            },
            None => rest,
        };
        if value.trim().parse::<f64>().is_err() {
            violations.push(format!(
                "`{full_name}`: sample value `{}` is not a number",
                value.trim()
            ));
        }
        // Histogram samples declare the base name; everything else
        // declares itself.
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stripped = full_name.strip_suffix(suffix)?;
                (declared.get(stripped).map(String::as_str) == Some("histogram"))
                    .then_some(stripped)
            })
            .unwrap_or(full_name);
        match declared.get(base).map(String::as_str) {
            None => violations.push(format!(
                "`{full_name}`: sample without a # TYPE declaration"
            )),
            Some("histogram") if base == full_name => violations.push(format!(
                "`{full_name}`: histogram sample must end in _bucket/_sum/_count"
            )),
            _ => {}
        }
        seen_samples.insert(base.to_string());
    }
    for (name, _) in declared {
        if !seen_samples.contains(&name) {
            violations.push(format!("`{name}`: declared but never sampled"));
        }
    }
    violations.sort();
    violations
}

/// Enforce `sigstr_<subsystem>_<name>_<unit>` on one declared name.
fn lint_name(name: &str, kind: &str, violations: &mut Vec<String>) {
    let Some(rest) = name.strip_prefix("sigstr_") else {
        violations.push(format!("`{name}`: missing the `sigstr_` prefix"));
        return;
    };
    if !rest
        .chars()
        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        || rest.contains("__")
        || rest.ends_with('_')
    {
        violations.push(format!("`{name}`: not lower_snake_case"));
        return;
    }
    let segments: Vec<&str> = rest.split('_').collect();
    if segments.len() < 2 {
        violations.push(format!(
            "`{name}`: need `sigstr_<subsystem>_<name>` (at least three segments)"
        ));
        return;
    }
    if !SUBSYSTEMS.contains(&segments[0]) {
        violations.push(format!(
            "`{name}`: unknown subsystem `{}` (expected one of {SUBSYSTEMS:?})",
            segments[0]
        ));
    }
    let last = *segments.last().expect("at least two segments");
    match kind {
        "counter" if last != "total" => {
            violations.push(format!("`{name}`: counters must end in `_total`"));
        }
        "histogram" if !HISTOGRAM_UNITS.contains(&last) => {
            violations.push(format!(
                "`{name}`: histograms must end in a unit ({HISTOGRAM_UNITS:?})"
            ));
        }
        "gauge" if !GAUGE_SUFFIXES.contains(&last) => {
            violations.push(format!(
                "`{name}`: gauges must end in a unit or counted noun ({GAUGE_SUFFIXES:?})"
            ));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_page_passes() {
        let page = "\
# TYPE sigstr_http_requests_total counter
sigstr_http_requests_total 10
# TYPE sigstr_http_queue_depth gauge
sigstr_http_queue_depth 0
# TYPE sigstr_http_request_latency_us histogram
sigstr_http_request_latency_us_bucket{le=\"100\"} 1
sigstr_http_request_latency_us_bucket{le=\"+Inf\"} 1
sigstr_http_request_latency_us_sum 40
sigstr_http_request_latency_us_count 1
";
        assert_eq!(lint_exposition(page), Vec::<String>::new());
    }

    #[test]
    fn convention_drift_is_caught() {
        let cases = [
            // Counter without _total.
            ("# TYPE sigstr_http_requests counter\nsigstr_http_requests 1\n", "_total"),
            // Unknown subsystem.
            ("# TYPE sigstr_misc_things_total counter\nsigstr_misc_things_total 1\n", "subsystem"),
            // Histogram without a unit.
            (
                "# TYPE sigstr_http_latency histogram\nsigstr_http_latency_bucket{le=\"+Inf\"} 1\nsigstr_http_latency_sum 1\nsigstr_http_latency_count 1\n",
                "unit",
            ),
            // Gauge with a free-form suffix.
            ("# TYPE sigstr_http_stuff gauge\nsigstr_http_stuff 1\n", "gauges"),
            // Sample with no TYPE at all.
            ("sigstr_http_requests_total 1\n", "# TYPE"),
            // Missing prefix.
            ("# TYPE requests_total counter\nrequests_total 1\n", "sigstr_"),
        ];
        for (page, needle) in cases {
            let violations = lint_exposition(page);
            assert!(
                violations.iter().any(|v| v.contains(needle)),
                "expected a violation mentioning `{needle}` for:\n{page}\ngot: {violations:?}"
            );
        }
    }

    #[test]
    fn duplicate_type_and_unsampled_declarations_are_caught() {
        let page = "\
# TYPE sigstr_http_requests_total counter
# TYPE sigstr_http_requests_total counter
sigstr_http_requests_total 1
# TYPE sigstr_http_queue_depth gauge
";
        let violations = lint_exposition(page);
        assert!(
            violations.iter().any(|v| v.contains("duplicate")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("never sampled")),
            "{violations:?}"
        );
    }

    #[test]
    fn bad_values_and_labels_are_caught() {
        let page = "\
# TYPE sigstr_http_requests_total counter
sigstr_http_requests_total{} 1
sigstr_http_requests_total abc
";
        let violations = lint_exposition(page);
        assert!(
            violations.iter().any(|v| v.contains("empty label")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("not a number")),
            "{violations:?}"
        );
    }
}
