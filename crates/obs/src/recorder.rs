//! The per-process flight recorder: a fixed-size ring of recent sealed
//! traces, plus the filter grammar `/debug/traces` exposes.
//!
//! The ring is one mutex around a `VecDeque`, touched exactly once per
//! request (at seal time) and at scrape time — span recording never
//! goes near it. At the default 256-trace capacity with a handful of
//! spans each, the recorder stays well under a megabyte per process.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::{Trace, TraceId};

/// Default ring capacity (recent traces kept per process).
pub const DEFAULT_CAPACITY: usize = 256;

/// A fixed-size ring buffer of sealed traces.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: Mutex<VecDeque<Trace>>,
    recorded: AtomicU64,
    slow: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` traces (0 disables it).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity,
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(DEFAULT_CAPACITY))),
            recorded: AtomicU64::new(0),
            slow: AtomicU64::new(0),
        }
    }

    /// Push one sealed trace, evicting the oldest beyond capacity.
    pub fn record(&self, trace: Trace) {
        if self.capacity == 0 {
            return;
        }
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// Count one slow-query log emission (the threshold check and the
    /// actual logging stay with the caller, who owns the sink).
    pub fn note_slow(&self) {
        self.slow.fetch_add(1, Ordering::Relaxed);
    }

    /// Traces ever recorded (not just the ones still in the ring).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Slow-query log lines emitted.
    pub fn slow(&self) -> u64 {
        self.slow.load(Ordering::Relaxed)
    }

    /// Traces currently held.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Matching traces, newest first, capped at `filter.limit`.
    pub fn snapshot(&self, filter: &TraceFilter) -> Vec<Trace> {
        let ring = self.ring.lock().expect("flight recorder poisoned");
        ring.iter()
            .rev()
            .filter(|t| filter.matches(t))
            .take(filter.limit)
            .cloned()
            .collect()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

/// The `/debug/traces` filter: every field is conjunctive.
#[derive(Debug, Clone)]
pub struct TraceFilter {
    /// Exact trace ID (`?id=<32 hex>`).
    pub id: Option<TraceId>,
    /// Route prefix (`?route=/v1/query`).
    pub route_prefix: Option<String>,
    /// Exact response status (`?status=503`).
    pub status: Option<u16>,
    /// Minimum end-to-end latency (`?min_us=1000`).
    pub min_total_us: u64,
    /// Maximum traces returned (`?limit=20`).
    pub limit: usize,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter {
            id: None,
            route_prefix: None,
            status: None,
            min_total_us: 0,
            limit: 32,
        }
    }
}

impl TraceFilter {
    /// Whether `trace` passes every set field.
    pub fn matches(&self, trace: &Trace) -> bool {
        if let Some(id) = self.id {
            if trace.id != id {
                return false;
            }
        }
        if let Some(prefix) = &self.route_prefix {
            if !trace.route.starts_with(prefix.as_str()) {
                return false;
            }
        }
        if let Some(status) = self.status {
            if trace.status != status {
                return false;
            }
        }
        trace.total_us >= self.min_total_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u128, route: &str, status: u16, total_us: u64) -> Trace {
        Trace {
            id: TraceId(id),
            route: route.into(),
            status,
            start_unix_ms: 0,
            total_us,
            spans: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let recorder = FlightRecorder::new(2);
        for i in 0..5u128 {
            recorder.record(trace(i, "/v1/query", 200, 10));
        }
        assert_eq!(recorder.len(), 2);
        assert_eq!(recorder.recorded(), 5);
        let recent = recorder.snapshot(&TraceFilter::default());
        // Newest first.
        assert_eq!(recent[0].id, TraceId(4));
        assert_eq!(recent[1].id, TraceId(3));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let recorder = FlightRecorder::new(0);
        recorder.record(trace(1, "/v1/query", 200, 10));
        assert!(recorder.is_empty());
    }

    #[test]
    fn filters_are_conjunctive() {
        let recorder = FlightRecorder::default();
        recorder.record(trace(1, "/v1/query", 200, 50));
        recorder.record(trace(2, "/v1/batch", 200, 5_000));
        recorder.record(trace(3, "/v1/query", 503, 9_000));
        let slow_queries = recorder.snapshot(&TraceFilter {
            route_prefix: Some("/v1/query".into()),
            min_total_us: 1_000,
            ..TraceFilter::default()
        });
        assert_eq!(slow_queries.len(), 1);
        assert_eq!(slow_queries[0].id, TraceId(3));
        let by_id = recorder.snapshot(&TraceFilter {
            id: Some(TraceId(2)),
            ..TraceFilter::default()
        });
        assert_eq!(by_id.len(), 1);
        let by_status = recorder.snapshot(&TraceFilter {
            status: Some(503),
            ..TraceFilter::default()
        });
        assert_eq!(by_status.len(), 1);
        assert_eq!(by_status[0].id, TraceId(3));
    }
}
