//! Statistical special functions and distributions.
//!
//! This crate is the numerical substrate of the `sigstr` workspace, the Rust
//! reproduction of *Sachan & Bhattacharya, "Mining Statistically Significant
//! Substrings using the Chi-Square Statistic" (VLDB 2012)*. Everything here
//! is implemented from scratch in pure Rust (the offline dependency policy of
//! the workspace does not include a statistics crate):
//!
//! * [`gamma`] — log-gamma and the regularized incomplete gamma functions,
//!   the work-horses behind every chi-square tail probability.
//! * [`beta`] — log-beta and the regularized incomplete beta function,
//!   used for binomial tail probabilities.
//! * [`erf`] — error function and its complement/inverse.
//! * [`normal`] — the normal distribution (pdf/cdf/sf/quantile).
//! * [`chi2`] — the chi-square distribution with real-valued degrees of
//!   freedom (pdf/cdf/sf/quantile), which the paper's `X²` statistic
//!   converges to under the null model (paper Theorem 3).
//! * [`binomial`] — binomial pmf/cdf/sf, used by the paper's analysis of the
//!   per-character count `Y_i ~ Binomial(n, p_i)` (paper Eq. 23).
//! * [`multinomial`] — exact multinomial probabilities (paper Eq. 1) and the
//!   *exact* p-value by enumeration (paper Eq. 2) for small cases; used as a
//!   test oracle for the chi-square approximation.
//! * [`pearson`] — Pearson's `X²` statistic (paper Eq. 4/5), the likelihood
//!   ratio `G` statistic (paper Eq. 3) and p-values for both.
//! * [`bounds`] — Hoeffding and Chernoff concentration bounds used in the
//!   paper's running-time analysis (Lemma 5, Lemma 8).
//! * [`extreme`] — the Gumbel law of the maximum chi-square (the paper's
//!   Lemma 3/4 machinery and its `X²_max ≈ 2 ln n` benchmark, §7.4/§8).
//! * [`descriptive`] — small-sample summaries (mean/variance/extrema) used by
//!   the experiment harness when averaging repeated runs.
//!
//! # Accuracy
//!
//! The special functions target close-to-machine double precision over the
//! parameter ranges exercised by substring mining (degrees of freedom `1 ≤ df
//! ≤ 256`, statistics up to a few thousand). They are validated in the test
//! suite against closed forms (`χ²(2)` is `Exp(1/2)`, so its cdf is
//! `1 − e^{−x/2}`), against high-precision reference values, and against each
//! other through identities (`P + Q = 1`, `Γ(x+1) = xΓ(x)`,
//! `I_x(a,b) = 1 − I_{1−x}(b,a)`, …).
//!
//! # Example
//!
//! ```
//! use sigstr_stats::{chi2, pearson};
//!
//! // A fair-coin substring of length 100 with 70 heads.
//! let observed = [70.0, 30.0];
//! let expected = [50.0, 50.0];
//! let x2 = pearson::chi_square(&observed, &expected);
//! assert!((x2 - 16.0).abs() < 1e-12);
//!
//! // Its p-value under the chi-square approximation with k - 1 = 1 df.
//! let p = chi2::sf(x2, 1.0);
//! assert!(p < 1e-4);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod beta;
pub mod binomial;
pub mod bounds;
pub mod chi2;
pub mod descriptive;
pub mod erf;
pub mod extreme;
pub mod gamma;
pub mod multinomial;
pub mod normal;
pub mod pearson;

pub use chi2::ChiSquared;
pub use normal::Normal;
pub use pearson::{chi_square, chi_square_from_counts, g_statistic};
