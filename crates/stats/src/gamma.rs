//! Log-gamma and the regularized incomplete gamma functions.
//!
//! These are the numerical core of every chi-square probability in the
//! workspace: the chi-square cdf with `df` degrees of freedom is the
//! regularized lower incomplete gamma `P(df/2, x/2)`.
//!
//! `ln_gamma` uses the Lanczos approximation (g = 7, 9 terms), accurate to
//! about 15 significant digits over the positive axis. The incomplete gamma
//! functions follow the classic series / continued-fraction split at
//! `x = a + 1` with a modified Lentz evaluation of the continued fraction.

/// Lanczos coefficients for `g = 7`, `n = 9`.
const LANCZOS_G: f64 = 7.0;
#[allow(clippy::excessive_precision, clippy::approx_constant)]
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_59,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the absolute value of the gamma function.
///
/// Accurate to roughly machine precision for `x > 0`. For non-positive `x`
/// the reflection formula is used; at the poles (`x = 0, -1, -2, …`) the
/// result is `f64::INFINITY`.
///
/// # Examples
///
/// ```
/// use sigstr_stats::gamma::ln_gamma;
/// // Γ(5) = 4! = 24
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-12);
/// // Γ(1/2) = √π
/// assert!((ln_gamma(0.5) - 0.5723649429247001).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x < 0.5 {
        if x <= 0.0 && x == x.floor() {
            return f64::INFINITY; // pole at non-positive integers
        }
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx).
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        return std::f64::consts::PI.ln() - sin_pi_x.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// The gamma function `Γ(x)`.
///
/// Computed from [`ln_gamma`]; overflows to `f64::INFINITY` for `x ≳ 171.6`.
pub fn gamma(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x <= 0.0 && x == x.floor() {
        return f64::NAN; // poles
    }
    let lg = ln_gamma(x);
    let magnitude = lg.exp();
    if x > 0.0 {
        magnitude
    } else {
        // Sign of Γ(x) for negative non-integer x alternates by interval.
        let sin_pi_x = (std::f64::consts::PI * x).sin();
        if sin_pi_x < 0.0 {
            -magnitude
        } else {
            magnitude
        }
    }
}

/// Maximum number of iterations for the series / continued fraction.
const MAX_ITER: usize = 600;
/// Relative accuracy target.
const EPS: f64 = 1e-15;
/// Smallest representable scale for the Lentz algorithm.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)` rises from 0 at `x = 0` to 1 as `x → ∞`.
/// Requires `a > 0` and `x ≥ 0`; returns `f64::NAN` otherwise.
///
/// # Examples
///
/// ```
/// use sigstr_stats::gamma::reg_lower_gamma;
/// // P(1, x) = 1 − e^{−x}
/// let x = 1.7;
/// assert!((reg_lower_gamma(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-14);
/// ```
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// Computed directly by continued fraction in the right tail, so it stays
/// accurate (no cancellation) even when `P(a, x)` is within `1e-16` of 1.
///
/// # Examples
///
/// ```
/// use sigstr_stats::gamma::reg_upper_gamma;
/// // Q(1, x) = e^{−x}; stays accurate deep in the tail.
/// let x = 40.0;
/// assert!((reg_upper_gamma(1.0, x) / (-x).exp() - 1.0).abs() < 1e-12);
/// ```
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || x.is_nan() || x < 0.0 {
        return f64::NAN;
    }
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_cf(a, x)
    }
}

/// Series expansion of `P(a, x)`, convergent (and used) for `x < a + 1`.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    let log_prefix = a * x.ln() - x - ln_gamma(a);
    (sum * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Continued-fraction expansion of `Q(a, x)` (modified Lentz), for `x ≥ a+1`.
fn upper_cf(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    let log_prefix = a * x.ln() - x - ln_gamma(a);
    (h * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Natural log of the factorial, `ln(n!)`, exact-intent wrapper over
/// [`ln_gamma`].
///
/// Used by the exact multinomial probability (paper Eq. 1).
pub fn ln_factorial(n: u64) -> f64 {
    // Small values from a table for exactness and speed.
    #[allow(clippy::excessive_precision, clippy::approx_constant)]
    const TABLE: [f64; 21] = [
        0.0,
        0.0,
        0.693_147_180_559_945_3,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
        30.671_860_106_080_672,
        33.505_073_450_136_89,
        36.395_445_208_033_05,
        39.339_884_187_199_495,
        42.335_616_460_753_485,
    ];
    if (n as usize) < TABLE.len() {
        TABLE[n as usize]
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Binomial coefficient `C(n, k)` as a float, via log-factorials.
///
/// Exact for small arguments (verified in tests up to `C(60, 30)`); large
/// values are accurate to double precision relative error.
pub fn binomial_coefficient(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    (ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            assert_close(ln_gamma(n as f64 + 1.0), (fact * n as f64).ln(), 1e-13);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer_values() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2, Γ(5/2) = 3√π/4
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert_close(ln_gamma(0.5), sqrt_pi.ln(), 1e-14);
        assert_close(ln_gamma(1.5), (sqrt_pi / 2.0).ln(), 1e-14);
        assert_close(ln_gamma(2.5), (3.0 * sqrt_pi / 4.0).ln(), 1e-14);
    }

    #[test]
    fn ln_gamma_reference_values() {
        // Reference values computed with mpmath at 50 digits.
        assert_close(ln_gamma(10.0), 12.801827480081469, 1e-14);
        assert_close(ln_gamma(100.0), 359.1342053695754, 1e-14);
        assert_close(ln_gamma(0.1), 2.252712651734206, 1e-14);
        assert_close(ln_gamma(1e-3), 6.907178885383853, 1e-12);
    }

    #[test]
    fn ln_gamma_recurrence() {
        // ln Γ(x+1) = ln x + ln Γ(x)
        for &x in &[0.3, 0.7, 1.2, 3.6, 9.9, 25.0, 120.5] {
            assert_close(ln_gamma(x + 1.0), x.ln() + ln_gamma(x), 1e-13);
        }
    }

    #[test]
    fn ln_gamma_poles_are_infinite() {
        assert!(ln_gamma(0.0).is_infinite());
        assert!(ln_gamma(-1.0).is_infinite());
        assert!(ln_gamma(-5.0).is_infinite());
    }

    #[test]
    fn gamma_negative_non_integer() {
        // Γ(−0.5) = −2√π
        assert_close(gamma(-0.5), -2.0 * std::f64::consts::PI.sqrt(), 1e-12);
        // Γ(−1.5) = 4√π/3
        assert_close(gamma(-1.5), 4.0 * std::f64::consts::PI.sqrt() / 3.0, 1e-12);
    }

    #[test]
    fn reg_gamma_complementarity() {
        for &a in &[0.5, 1.0, 2.5, 7.0, 40.0, 123.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 55.0, 200.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert_close(p + q, 1.0, 1e-12);
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn reg_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{−x}
        for &x in &[0.1, 0.9, 2.0, 5.0, 15.0] {
            assert_close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-13);
        }
    }

    #[test]
    fn reg_gamma_reference_values() {
        // scipy.special.gammainc reference values.
        assert_close(reg_lower_gamma(0.5, 0.5), 0.6826894921370859, 1e-12);
        assert_close(reg_lower_gamma(3.0, 2.0), 0.32332358381693654, 1e-12);
        assert_close(reg_upper_gamma(5.0, 10.0), 0.029252688076961127, 1e-11);
        assert_close(reg_lower_gamma(10.0, 3.0), 0.0011024881301847435, 1e-11);
    }

    #[test]
    fn reg_gamma_monotone_in_x() {
        for &a in &[0.5, 1.0, 4.0, 16.0] {
            let mut prev = -1.0;
            for i in 0..200 {
                let x = i as f64 * 0.25;
                let p = reg_lower_gamma(a, x);
                assert!(p >= prev, "P({a}, {x}) decreased");
                prev = p;
            }
        }
    }

    #[test]
    fn reg_gamma_domain_errors() {
        assert!(reg_lower_gamma(0.0, 1.0).is_nan());
        assert!(reg_lower_gamma(-1.0, 1.0).is_nan());
        assert!(reg_lower_gamma(1.0, -0.5).is_nan());
        assert!(reg_upper_gamma(0.0, 1.0).is_nan());
    }

    #[test]
    fn reg_gamma_edges() {
        assert_eq!(reg_lower_gamma(3.0, 0.0), 0.0);
        assert_eq!(reg_upper_gamma(3.0, 0.0), 1.0);
        assert!(reg_lower_gamma(2.0, 1e6) > 1.0 - 1e-15);
    }

    #[test]
    fn ln_factorial_table_and_tail_agree() {
        assert_close(ln_factorial(20), ln_gamma(21.0), 1e-14);
        assert_close(ln_factorial(21), ln_gamma(22.0), 1e-14);
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
    }

    #[test]
    fn binomial_coefficients_exact_small() {
        assert_eq!(binomial_coefficient(0, 0).round(), 1.0);
        assert_eq!(binomial_coefficient(5, 2).round(), 10.0);
        assert_eq!(binomial_coefficient(20, 10).round(), 184_756.0);
        assert_eq!(binomial_coefficient(40, 20).round(), 137_846_528_820.0);
        // C(60, 30) exceeds 2^53; check to relative double precision instead.
        let c = binomial_coefficient(60, 30);
        assert!((c / 118_264_581_564_861_424.0 - 1.0).abs() < 1e-12);
        assert_eq!(binomial_coefficient(4, 9), 0.0);
    }

    #[test]
    fn pascal_identity() {
        for n in 2..40u64 {
            for k in 1..n {
                let lhs = binomial_coefficient(n, k);
                let rhs = binomial_coefficient(n - 1, k - 1) + binomial_coefficient(n - 1, k);
                assert_close(lhs, rhs, 1e-10);
            }
        }
    }
}
