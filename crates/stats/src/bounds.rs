//! Concentration inequalities used in the paper's running-time analysis.
//!
//! * Hoeffding's inequality bounds the deviation of a character count from
//!   its mean (paper Lemma 5, condition (ii), citing \[16\]).
//! * The multiplicative Chernoff bound backs the top-t analysis (paper
//!   Lemma 8).
//!
//! These are exposed as a library so the test-suite can check the claimed
//! high-probability events empirically, and so downstream users can size
//! strings for a target confidence.

/// Hoeffding upper bound on `Pr[S − E[S] ≥ t]` for a sum `S` of `n`
/// independent random variables each confined to `[lo, hi]`:
/// `exp(−2t² / (n·(hi − lo)²))`.
///
/// Returns `f64::NAN` for invalid geometry (`hi ≤ lo`, `n = 0`, `t < 0`).
pub fn hoeffding_upper(n: u64, lo: f64, hi: f64, t: f64) -> f64 {
    if n == 0 || hi <= lo || t < 0.0 || !t.is_finite() {
        return f64::NAN;
    }
    let width = hi - lo;
    (-2.0 * t * t / (n as f64 * width * width)).exp().min(1.0)
}

/// Hoeffding bound specialized to Bernoulli sums (the paper's Eq. 29/30
/// instantiation with `a_i = 0`, `b_i = 1`): `Pr[Y − np ≥ t] ≤ exp(−2t²/n)`.
pub fn hoeffding_bernoulli(n: u64, t: f64) -> f64 {
    hoeffding_upper(n, 0.0, 1.0, t)
}

/// Multiplicative Chernoff bound for a Binomial(n, p) lower tail:
/// `Pr[X ≤ (1 − δ)·np] ≤ exp(−δ²·np / 2)` for `0 ≤ δ ≤ 1`.
pub fn chernoff_lower(n: u64, p: f64, delta: f64) -> f64 {
    if !(0.0..=1.0).contains(&delta) || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    (-delta * delta * n as f64 * p / 2.0).exp().min(1.0)
}

/// Multiplicative Chernoff bound for a Binomial(n, p) upper tail:
/// `Pr[X ≥ (1 + δ)·np] ≤ exp(−δ²·np / 3)` for `0 ≤ δ ≤ 1`.
pub fn chernoff_upper(n: u64, p: f64, delta: f64) -> f64 {
    if !(0.0..=1.0).contains(&delta) || !(0.0..=1.0).contains(&p) {
        return f64::NAN;
    }
    (-delta * delta * n as f64 * p / 3.0).exp().min(1.0)
}

/// The deviation budget used in the paper's Lemma 5(ii):
/// `t = (1/4)·√(l·p·ln l)`. With Hoeffding this event fails with
/// probability at most `l^{−p/8}`.
pub fn lemma5_deviation_budget(l: u64, p: f64) -> f64 {
    0.25 * (l as f64 * p * (l as f64).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_decreases_in_t() {
        let mut prev = 2.0;
        for i in 0..20 {
            let t = i as f64;
            let b = hoeffding_bernoulli(100, t);
            assert!(b <= prev);
            prev = b;
        }
    }

    #[test]
    fn hoeffding_known_value() {
        // exp(−2·25/100) = exp(−1/2)
        let b = hoeffding_bernoulli(100, 5.0);
        assert!((b - (-0.5f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn hoeffding_respects_interval_width() {
        // Wider support ⇒ weaker bound.
        let narrow = hoeffding_upper(50, 0.0, 1.0, 3.0);
        let wide = hoeffding_upper(50, 0.0, 2.0, 3.0);
        assert!(narrow < wide);
    }

    #[test]
    fn hoeffding_invalid_inputs() {
        assert!(hoeffding_upper(0, 0.0, 1.0, 1.0).is_nan());
        assert!(hoeffding_upper(5, 1.0, 1.0, 1.0).is_nan());
        assert!(hoeffding_upper(5, 0.0, 1.0, -1.0).is_nan());
    }

    #[test]
    fn chernoff_bounds_are_probabilities() {
        for &delta in &[0.0, 0.1, 0.5, 1.0] {
            let lo = chernoff_lower(1000, 0.3, delta);
            let hi = chernoff_upper(1000, 0.3, delta);
            assert!((0.0..=1.0).contains(&lo));
            assert!((0.0..=1.0).contains(&hi));
        }
        assert!(chernoff_lower(10, 0.5, 1.5).is_nan());
        assert!(chernoff_upper(10, 1.5, 0.5).is_nan());
    }

    #[test]
    fn lemma5_budget_grows_sublinearly() {
        let b1 = lemma5_deviation_budget(100, 0.5);
        let b2 = lemma5_deviation_budget(10_000, 0.5);
        // Budget grows, but much slower than l.
        assert!(b2 > b1);
        assert!(b2 / b1 < 100.0 / 2.0);
    }

    #[test]
    fn hoeffding_validates_lemma5_failure_rate() {
        // Lemma 5(ii): Pr[Y − lp ≥ (1/4)√(lp ln l)] ≤ l^{−p/8}.
        for &l in &[100u64, 1000, 10_000] {
            let p = 0.5;
            let t = lemma5_deviation_budget(l, p);
            let bound = hoeffding_bernoulli(l, t);
            let claimed = (l as f64).powf(-p / 8.0);
            assert!(
                bound <= claimed * (1.0 + 1e-9),
                "l = {l}: bound {bound} vs claimed {claimed}"
            );
        }
    }
}
