//! The normal (Gaussian) distribution.
//!
//! Used by the paper's analysis: `Binomial(n, p)` converges to
//! `Normal(np, np(1−p))` (paper Theorem 2), which underlies the convergence
//! of the `X²` statistic to the chi-square distribution (paper Theorem 3).

use crate::erf::{erf, erf_inv, erfc};

/// A normal distribution with mean `mu` and standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Create a normal distribution.
    ///
    /// Returns `None` when `sigma` is not strictly positive or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Option<Self> {
        if mu.is_finite() && sigma.is_finite() && sigma > 0.0 {
            Some(Self { mu, sigma })
        } else {
            None
        }
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// Variance of the distribution.
    pub fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function `Pr[X ≤ x]`.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    /// Survival function `Pr[X > x]`, accurate in the right tail.
    pub fn sf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(z)
    }

    /// Quantile function (inverse cdf).
    ///
    /// Requires `0 < p < 1` (returns `±∞` at the endpoints, `f64::NAN`
    /// outside).
    pub fn quantile(&self, p: f64) -> f64 {
        if p.is_nan() || !(0.0..=1.0).contains(&p) {
            return f64::NAN;
        }
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.mu + self.sigma * std::f64::consts::SQRT_2 * erf_inv(2.0 * p - 1.0)
    }

    /// The z-score of an observation.
    pub fn z_score(&self, x: f64) -> f64 {
        (x - self.mu) / self.sigma
    }
}

/// Standard normal cdf `Φ(x)` — convenience wrapper.
pub fn phi(x: f64) -> f64 {
    Normal::standard().cdf(x)
}

/// Standard normal quantile `Φ⁻¹(p)` — convenience wrapper.
pub fn phi_inv(p: f64) -> f64 {
    Normal::standard().quantile(p)
}

/// Normal approximation to `Binomial(n, p)` (paper Theorem 2).
///
/// Returns `None` under the same conditions as [`Normal::new`] (e.g. `p`
/// equal to 0 or 1 gives zero variance).
pub fn binomial_normal_approx(n: u64, p: f64) -> Option<Normal> {
    let mean = n as f64 * p;
    let var = n as f64 * p * (1.0 - p);
    Normal::new(mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn standard_cdf_reference_values() {
        assert_close(phi(0.0), 0.5, 1e-15);
        assert_close(phi(1.0), 0.8413447460685429, 1e-13);
        assert_close(phi(1.96), 0.9750021048517795, 1e-13);
        assert_close(phi(-2.575829303548901), 0.005, 1e-10);
    }

    #[test]
    fn pdf_integrates_roughly_to_one() {
        let n = Normal::standard();
        let mut sum = 0.0;
        let h = 0.001;
        let mut x = -10.0;
        while x < 10.0 {
            sum += n.pdf(x) * h;
            x += h;
        }
        assert_close(sum, 1.0, 1e-6);
    }

    #[test]
    fn quantile_roundtrip() {
        let n = Normal::new(3.0, 2.5).unwrap();
        for i in 1..100 {
            let p = i as f64 / 100.0;
            assert_close(n.cdf(n.quantile(p)), p, 1e-10);
        }
    }

    #[test]
    fn sf_tail_accuracy() {
        // Φ̄(6) ≈ 9.865876450376946e-10
        assert_close(Normal::standard().sf(6.0), 9.865876450376946e-10, 1e-9);
    }

    #[test]
    fn shifted_scaled_consistency() {
        let n = Normal::new(-1.0, 0.5).unwrap();
        assert_close(n.cdf(-1.0), 0.5, 1e-14);
        assert_close(n.z_score(0.0), 2.0, 1e-15);
        assert_close(n.variance(), 0.25, 1e-15);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Normal::new(0.0, 0.0).is_none());
        assert!(Normal::new(0.0, -1.0).is_none());
        assert!(Normal::new(f64::NAN, 1.0).is_none());
        assert!(Normal::new(0.0, f64::INFINITY).is_none());
    }

    #[test]
    fn binomial_approximation_moments() {
        let approx = binomial_normal_approx(100, 0.3).unwrap();
        assert_close(approx.mean(), 30.0, 1e-15);
        assert_close(approx.variance(), 21.0, 1e-12);
        assert!(binomial_normal_approx(100, 0.0).is_none());
    }

    #[test]
    fn quantile_edges() {
        let n = Normal::standard();
        assert!(n.quantile(0.0).is_infinite());
        assert!(n.quantile(1.0).is_infinite());
        assert!(n.quantile(-0.1).is_nan());
        assert!(n.quantile(1.0001).is_nan());
    }
}
