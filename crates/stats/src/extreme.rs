//! Extreme-value theory for the maximum chi-square statistic.
//!
//! The paper observes (§7.4, §8) that `X²_max` of a null string grows as
//! `≈ 2 ln n`, and its Lemma 3/4 machinery is exactly the extreme-value
//! argument: the maximum of `m` i.i.d. `χ²` variables concentrates around
//! the `(1 − 1/m)`-quantile, and its fluctuations converge to a **Gumbel**
//! law. This module provides the Gumbel distribution, a moment fit, and
//! the theoretical location/scale of `max of m χ²(df)` so the Fig.-2 /
//! Table-2 benchmark can be computed instead of eyeballed.

use crate::chi2::ChiSquared;

/// Euler–Mascheroni constant.
pub const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// The Gumbel (type-I extreme value) distribution with location `mu` and
/// scale `beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    mu: f64,
    beta: f64,
}

impl Gumbel {
    /// Create a Gumbel distribution (`beta > 0`).
    pub fn new(mu: f64, beta: f64) -> Option<Self> {
        if mu.is_finite() && beta.is_finite() && beta > 0.0 {
            Some(Self { mu, beta })
        } else {
            None
        }
    }

    /// Location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mean `μ + γ·β`.
    pub fn mean(&self) -> f64 {
        self.mu + EULER_GAMMA * self.beta
    }

    /// Variance `π²β²/6`.
    pub fn variance(&self) -> f64 {
        std::f64::consts::PI * std::f64::consts::PI * self.beta * self.beta / 6.0
    }

    /// Cumulative distribution `exp(−exp(−(x−μ)/β))`.
    pub fn cdf(&self, x: f64) -> f64 {
        (-(-(x - self.mu) / self.beta).exp()).exp()
    }

    /// Probability density.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.beta;
        ((-z - (-z).exp()).exp()) / self.beta
    }

    /// Quantile `μ − β·ln(−ln p)` for `0 < p < 1`.
    pub fn quantile(&self, p: f64) -> f64 {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            return f64::NAN;
        }
        if p == 0.0 {
            return f64::NEG_INFINITY;
        }
        if p == 1.0 {
            return f64::INFINITY;
        }
        self.mu - self.beta * (-(p.ln())).ln()
    }

    /// Method-of-moments fit from a sample: `β = s·√6/π`,
    /// `μ = x̄ − γ·β`. Returns `None` for degenerate samples.
    pub fn fit_moments(sample: &[f64]) -> Option<Self> {
        let summary = crate::descriptive::summarize(sample)?;
        if summary.n < 2 || summary.variance <= 0.0 {
            return None;
        }
        let beta = summary.std_dev() * 6.0f64.sqrt() / std::f64::consts::PI;
        let mu = summary.mean - EULER_GAMMA * beta;
        Self::new(mu, beta)
    }
}

/// The Gumbel approximation to the maximum of `m` i.i.d. `χ²(df)`
/// variables: location = the `(1 − 1/m)`-quantile of `χ²(df)`, scale =
/// `1 / (m·f(location))` where `f` is the chi-square density.
///
/// For `df = 2` (ternary alphabets) this gives exactly the paper's
/// Lemma 3 asymptotics: location `= 2 ln m`, scale `= 2`. For general `df`
/// the location is `2 ln m + (df − 2)·ln ln m − …`, still `Θ(ln m)` —
/// the `X²_max ≈ 2 ln n` benchmark.
pub fn max_chi2_gumbel(m: f64, df: f64) -> Option<Gumbel> {
    if m.is_nan() || m <= 1.0 || df.is_nan() || df <= 0.0 {
        return None;
    }
    let dist = ChiSquared::new(df)?;
    let location = dist.quantile(1.0 - 1.0 / m);
    let density = dist.pdf(location);
    if density.is_nan() || density <= 0.0 {
        return None;
    }
    Gumbel::new(location, 1.0 / (m * density))
}

/// The paper's `X²_max` benchmark for a null string of length `n` over an
/// alphabet of size `k`: the expected maximum of `Θ(n)` independent
/// `χ²(k−1)` variables. Deviating far above this flags hidden structure
/// (paper §7.4).
pub fn x2max_benchmark(n: usize, k: usize) -> f64 {
    match max_chi2_gumbel(n as f64, (k - 1) as f64) {
        Some(g) => g.mean(),
        None => f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn gumbel_cdf_quantile_roundtrip() {
        let g = Gumbel::new(3.0, 1.5).unwrap();
        for i in 1..40 {
            let p = i as f64 / 40.0;
            assert_close(g.cdf(g.quantile(p)), p, 1e-12);
        }
    }

    #[test]
    fn gumbel_moments() {
        let g = Gumbel::new(0.0, 1.0).unwrap();
        assert_close(g.mean(), EULER_GAMMA, 1e-12);
        assert_close(g.variance(), std::f64::consts::PI.powi(2) / 6.0, 1e-12);
    }

    #[test]
    fn gumbel_pdf_integrates_to_one() {
        let g = Gumbel::new(1.0, 2.0).unwrap();
        let mut sum = 0.0;
        let h = 0.01;
        let mut x = -20.0;
        while x < 60.0 {
            sum += g.pdf(x) * h;
            x += h;
        }
        assert_close(sum, 1.0, 1e-4);
    }

    #[test]
    fn gumbel_invalid_params() {
        assert!(Gumbel::new(0.0, 0.0).is_none());
        assert!(Gumbel::new(0.0, -1.0).is_none());
        assert!(Gumbel::new(f64::NAN, 1.0).is_none());
        let g = Gumbel::new(0.0, 1.0).unwrap();
        assert!(g.quantile(-0.1).is_nan());
        assert!(g.quantile(0.0).is_infinite());
    }

    #[test]
    fn moment_fit_recovers_parameters() {
        // Sample via inverse cdf with a deterministic stream of uniforms.
        let truth = Gumbel::new(10.0, 2.5).unwrap();
        let mut state = 0xDEAD_BEEF_u64;
        let sample: Vec<f64> = (0..20_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1);
                let u = ((state >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
                truth.quantile(u)
            })
            .collect();
        let fitted = Gumbel::fit_moments(&sample).unwrap();
        assert_close(fitted.mu(), truth.mu(), 0.02);
        assert_close(fitted.beta(), truth.beta(), 0.03);
        assert!(Gumbel::fit_moments(&[1.0]).is_none());
        assert!(Gumbel::fit_moments(&[2.0, 2.0, 2.0]).is_none());
    }

    #[test]
    fn chi2_two_df_maximum_matches_lemma3() {
        // χ²(2) is Exp(1/2): the (1−1/m)-quantile is exactly 2 ln m and
        // the Gumbel scale is exactly 2 — the paper's Lemma 3 numbers.
        let m = 10_000.0;
        let g = max_chi2_gumbel(m, 2.0).unwrap();
        assert_close(g.mu(), 2.0 * m.ln(), 1e-6);
        assert_close(g.beta(), 2.0, 1e-6);
    }

    #[test]
    fn benchmark_grows_logarithmically() {
        let b1 = x2max_benchmark(1_000, 2);
        let b2 = x2max_benchmark(10_000, 2);
        let b3 = x2max_benchmark(100_000, 2);
        assert!(b1 < b2 && b2 < b3);
        // Increments per decade are roughly constant (log growth), and of
        // order 2 ln 10 ≈ 4.6.
        let d1 = b2 - b1;
        let d2 = b3 - b2;
        assert!((d1 / d2 - 1.0).abs() < 0.25, "d1 = {d1}, d2 = {d2}");
        assert!((3.0..7.0).contains(&d1));
    }

    #[test]
    fn benchmark_matches_paper_table2_scale() {
        // Paper Table 2, p = 0.5 column: X²_max ranges 12.18 (n = 1000) to
        // 17.89 (n = 20000). The benchmark must land in the same band.
        let b_small = x2max_benchmark(1_000, 2);
        let b_large = x2max_benchmark(20_000, 2);
        assert!((9.0..16.0).contains(&b_small), "b_small = {b_small}");
        assert!((14.0..22.0).contains(&b_large), "b_large = {b_large}");
    }

    #[test]
    fn degenerate_max_params() {
        assert!(max_chi2_gumbel(1.0, 2.0).is_none());
        assert!(max_chi2_gumbel(100.0, 0.0).is_none());
        assert!(x2max_benchmark(0, 2).is_nan());
    }
}
