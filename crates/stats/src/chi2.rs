//! The chi-square distribution.
//!
//! Under the null model, the paper's `X²` statistic over an alphabet of size
//! `k` converges to `χ²(k − 1)` (paper Theorem 3). The survival function
//! here turns any mined `X²` value into a p-value, and the quantile turns a
//! significance level `α` into an `X²` threshold for the Problem-3 variant.

use crate::gamma::{ln_gamma, reg_lower_gamma, reg_upper_gamma};

/// A chi-square distribution with (possibly fractional) degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChiSquared {
    df: f64,
}

impl ChiSquared {
    /// Create a chi-square distribution with `df > 0` degrees of freedom.
    pub fn new(df: f64) -> Option<Self> {
        if df.is_finite() && df > 0.0 {
            Some(Self { df })
        } else {
            None
        }
    }

    /// Degrees of freedom.
    pub fn df(&self) -> f64 {
        self.df
    }

    /// Mean (`= df`).
    pub fn mean(&self) -> f64 {
        self.df
    }

    /// Variance (`= 2·df`).
    pub fn variance(&self) -> f64 {
        2.0 * self.df
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            // Limit depends on df: +∞ for df < 2, 1/2 for df = 2, 0 above.
            return match self.df.partial_cmp(&2.0).expect("df is finite") {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => 0.5,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        let half = self.df / 2.0;
        let ln_pdf =
            (half - 1.0) * x.ln() - x / 2.0 - half * std::f64::consts::LN_2 - ln_gamma(half);
        ln_pdf.exp()
    }

    /// Cumulative distribution function `Pr[X ≤ x] = P(df/2, x/2)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x <= 0.0 {
            return 0.0;
        }
        reg_lower_gamma(self.df / 2.0, x / 2.0)
    }

    /// Survival function `Pr[X > x] = Q(df/2, x/2)` — the p-value of an
    /// observed statistic `x` (paper §1: `p-value = 1 − F(z₀)`).
    ///
    /// Evaluated directly by continued fraction so tiny p-values keep full
    /// relative accuracy.
    pub fn sf(&self, x: f64) -> f64 {
        if x.is_nan() {
            return f64::NAN;
        }
        if x <= 0.0 {
            return 1.0;
        }
        reg_upper_gamma(self.df / 2.0, x / 2.0)
    }

    /// Quantile function (inverse cdf): smallest `x` with `cdf(x) ≥ p`.
    ///
    /// Requires `0 ≤ p < 1`; `p = 0` maps to 0 and values outside `[0, 1)`
    /// give `f64::NAN`. Uses the Wilson–Hilferty cube-root normal
    /// approximation as a seed, then Newton iterations guarded by bisection.
    pub fn quantile(&self, p: f64) -> f64 {
        if p.is_nan() || !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return f64::INFINITY;
            }
            return f64::NAN;
        }
        if p == 0.0 {
            return 0.0;
        }
        // Wilson–Hilferty starting point.
        let df = self.df;
        let z = crate::normal::phi_inv(p);
        let a = 2.0 / (9.0 * df);
        let mut x = df * (1.0 - a + z * a.sqrt()).powi(3);
        if !x.is_finite() || x <= 0.0 {
            x = df; // fall back to the mean
        }
        // Bracket the root.
        let (mut lo, mut hi) = (0.0f64, x.max(df) * 2.0 + 10.0);
        while self.cdf(hi) < p {
            lo = hi;
            hi *= 2.0;
            if hi > 1e300 {
                return f64::INFINITY;
            }
        }
        // Newton with bisection safeguard.
        for _ in 0..128 {
            let f = self.cdf(x) - p;
            if f.abs() < 1e-14 {
                break;
            }
            if f > 0.0 {
                hi = x;
            } else {
                lo = x;
            }
            let d = self.pdf(x);
            let newton = if d > 0.0 { x - f / d } else { f64::NAN };
            x = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            if hi - lo < 1e-14 * (1.0 + hi) {
                break;
            }
        }
        x
    }
}

/// `Pr[χ²(df) ≤ x]` — convenience wrapper.
pub fn cdf(x: f64, df: f64) -> f64 {
    ChiSquared::new(df).map_or(f64::NAN, |d| d.cdf(x))
}

/// `Pr[χ²(df) > x]` — the p-value of an observed chi-square statistic.
pub fn sf(x: f64, df: f64) -> f64 {
    ChiSquared::new(df).map_or(f64::NAN, |d| d.sf(x))
}

/// Quantile of `χ²(df)` — e.g. `quantile(0.95, 1.0) ≈ 3.8415` is the 5%
/// critical value for a binary alphabet.
pub fn quantile(p: f64, df: f64) -> f64 {
    ChiSquared::new(df).map_or(f64::NAN, |d| d.quantile(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn two_df_is_exponential() {
        // χ²(2) has cdf 1 − e^{−x/2} exactly (paper Eq. 25).
        let d = ChiSquared::new(2.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 3.0, 7.0, 20.0, 60.0] {
            assert_close(d.cdf(x), 1.0 - (-x / 2.0).exp(), 1e-13);
            assert_close(d.sf(x), (-x / 2.0).exp(), 1e-12);
            assert_close(d.pdf(x), 0.5 * (-x / 2.0).exp(), 1e-13);
        }
    }

    #[test]
    fn critical_values_match_tables() {
        // Classic chi-square critical values (scipy.stats.chi2.ppf).
        assert_close(quantile(0.95, 1.0), 3.841458820694124, 1e-10);
        assert_close(quantile(0.95, 2.0), 5.991464547107979, 1e-10);
        assert_close(quantile(0.99, 4.0), 13.276704135987622, 1e-10);
        assert_close(quantile(0.95, 9.0), 16.918977604620448, 1e-10);
    }

    #[test]
    fn cdf_reference_values() {
        assert_close(cdf(1.0, 1.0), 0.6826894921370859, 1e-12);
        assert_close(cdf(5.0, 3.0), 0.8282028557032669, 1e-12);
        assert_close(sf(10.0, 4.0), 0.040427681994512805, 1e-11);
        assert_close(sf(30.0, 2.0), 3.059023205018258e-7, 1e-10);
    }

    #[test]
    fn quantile_cdf_roundtrip() {
        for &df in &[1.0, 2.0, 4.0, 9.0, 255.0] {
            let d = ChiSquared::new(df).unwrap();
            for i in 1..40 {
                let p = i as f64 / 40.0;
                let x = d.quantile(p);
                assert_close(d.cdf(x), p, 1e-9);
            }
        }
    }

    #[test]
    fn moments() {
        let d = ChiSquared::new(7.0).unwrap();
        assert_eq!(d.mean(), 7.0);
        assert_eq!(d.variance(), 14.0);
        assert_eq!(d.df(), 7.0);
    }

    #[test]
    fn pdf_at_zero_limits() {
        assert!(ChiSquared::new(1.0).unwrap().pdf(0.0).is_infinite());
        assert_eq!(ChiSquared::new(2.0).unwrap().pdf(0.0), 0.5);
        assert_eq!(ChiSquared::new(3.0).unwrap().pdf(0.0), 0.0);
    }

    #[test]
    fn invalid_parameters() {
        assert!(ChiSquared::new(0.0).is_none());
        assert!(ChiSquared::new(-1.0).is_none());
        assert!(ChiSquared::new(f64::NAN).is_none());
        assert!(cdf(1.0, 0.0).is_nan());
    }

    #[test]
    fn negative_statistic_edges() {
        let d = ChiSquared::new(3.0).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.sf(-1.0), 1.0);
        assert_eq!(d.pdf(-1.0), 0.0);
    }

    #[test]
    fn deep_tail_pvalues_do_not_underflow_to_garbage() {
        // χ²(1) sf at 100: scipy gives 1.5225e-23.
        let p = sf(100.0, 1.0);
        assert!(p > 0.0 && p < 1e-20);
        assert_close(p, 1.522495739426084e-23, 1e-8);
    }

    #[test]
    fn quantile_edge_probabilities() {
        let d = ChiSquared::new(5.0).unwrap();
        assert_eq!(d.quantile(0.0), 0.0);
        assert!(d.quantile(1.0).is_infinite());
        assert!(d.quantile(-0.5).is_nan());
    }
}
