//! Pearson's `X²` statistic and the likelihood-ratio `G` statistic.
//!
//! These are the two asymptotic approximations to the exact multinomial
//! p-value that the paper discusses (Eq. 3 and Eq. 4/5). The paper adopts
//! Pearson's `X²` because it converges to `χ²(k − 1)` *from below*, reducing
//! type-I errors; we provide both, plus the count-vector convenience forms
//! used throughout the mining code.

use crate::chi2;

/// Pearson's chi-square statistic from observed and expected frequencies
/// (paper Eq. 4): `X² = Σ (O_i − E_i)² / E_i`.
///
/// Entries with `E_i = 0` are skipped when `O_i = 0` too and contribute
/// `f64::INFINITY` otherwise. Length mismatch gives `f64::NAN`.
pub fn chi_square(observed: &[f64], expected: &[f64]) -> f64 {
    if observed.len() != expected.len() {
        return f64::NAN;
    }
    let mut x2 = 0.0;
    for (&o, &e) in observed.iter().zip(expected) {
        if e <= 0.0 {
            if o != 0.0 {
                return f64::INFINITY;
            }
            continue;
        }
        let d = o - e;
        x2 += d * d / e;
    }
    x2
}

/// Pearson's chi-square from a count vector and model probabilities, in the
/// simplified form of paper Eq. 5: `X² = Σ Y_i²/(l·p_i) − l`.
///
/// `l` is the total count. Returns 0 for an empty configuration (`l = 0`),
/// `f64::INFINITY` when a zero-probability character was observed, and
/// `f64::NAN` on length mismatch.
pub fn chi_square_from_counts(counts: &[u64], probs: &[f64]) -> f64 {
    if counts.len() != probs.len() {
        return f64::NAN;
    }
    let l: u64 = counts.iter().sum();
    if l == 0 {
        return 0.0;
    }
    let lf = l as f64;
    let mut sum = 0.0;
    for (&y, &p) in counts.iter().zip(probs) {
        if y == 0 {
            continue;
        }
        if p <= 0.0 {
            return f64::INFINITY;
        }
        let yf = y as f64;
        sum += yf * yf / p;
    }
    sum / lf - lf
}

/// The likelihood-ratio statistic `−2 ln(LR)` (paper Eq. 3), also known as
/// the `G` statistic: `G = 2 Σ Y_i ln(Y_i / (l·p_i))`.
///
/// Zero-count categories contribute 0 (the `x ln x → 0` limit). Returns
/// `f64::INFINITY` when a zero-probability character was observed and
/// `f64::NAN` on length mismatch.
pub fn g_statistic(counts: &[u64], probs: &[f64]) -> f64 {
    if counts.len() != probs.len() {
        return f64::NAN;
    }
    let l: u64 = counts.iter().sum();
    if l == 0 {
        return 0.0;
    }
    let lf = l as f64;
    let mut g = 0.0;
    for (&y, &p) in counts.iter().zip(probs) {
        if y == 0 {
            continue;
        }
        if p <= 0.0 {
            return f64::INFINITY;
        }
        let yf = y as f64;
        g += yf * (yf / (lf * p)).ln();
    }
    2.0 * g
}

/// P-value of a Pearson `X²` statistic over `k` categories under the
/// `χ²(k − 1)` approximation (paper Theorem 3).
pub fn chi_square_p_value(x2: f64, k: usize) -> f64 {
    if k < 2 {
        return f64::NAN;
    }
    chi2::sf(x2, (k - 1) as f64)
}

/// The `X²` threshold corresponding to significance level `alpha` over `k`
/// categories: statistics above the threshold have p-value below `alpha`.
///
/// This converts a Problem-3 significance level into the `α₀` chi-square
/// cutoff used by the threshold-mining variant.
pub fn threshold_for_significance(alpha: f64, k: usize) -> f64 {
    if k < 2 || !(0.0..=1.0).contains(&alpha) {
        return f64::NAN;
    }
    chi2::quantile(1.0 - alpha, (k - 1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn eq4_and_eq5_forms_agree() {
        // The simplified Eq. 5 must equal the textbook Eq. 4.
        let counts = [7u64, 2, 11];
        let probs = [0.25, 0.25, 0.5];
        let l: u64 = counts.iter().sum();
        let observed: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let expected: Vec<f64> = probs.iter().map(|&p| p * l as f64).collect();
        assert_close(
            chi_square_from_counts(&counts, &probs),
            chi_square(&observed, &expected),
            1e-12,
        );
    }

    #[test]
    fn perfectly_expected_counts_score_zero() {
        assert_close(chi_square_from_counts(&[25, 25], &[0.5, 0.5]), 0.0, 1e-12);
        assert_close(
            chi_square_from_counts(&[10, 20, 30], &[1.0 / 6.0, 2.0 / 6.0, 3.0 / 6.0]),
            0.0,
            1e-10,
        );
        assert_close(g_statistic(&[25, 25], &[0.5, 0.5]), 0.0, 1e-12);
    }

    #[test]
    fn known_value_fair_coin() {
        // 70/30 over fair coin: X² = (20²/50)·2 = 16.
        assert_close(chi_square_from_counts(&[70, 30], &[0.5, 0.5]), 16.0, 1e-12);
    }

    #[test]
    fn order_of_categories_is_irrelevant_given_matching_probs() {
        let x1 = chi_square_from_counts(&[3, 9, 1], &[0.2, 0.5, 0.3]);
        let x2 = chi_square_from_counts(&[9, 1, 3], &[0.5, 0.3, 0.2]);
        assert_close(x1, x2, 1e-12);
    }

    #[test]
    fn g_close_to_x2_near_null() {
        // Both statistics are asymptotically χ²(k−1); near the null they
        // nearly coincide.
        let counts = [52u64, 48];
        let probs = [0.5, 0.5];
        let x2 = chi_square_from_counts(&counts, &probs);
        let g = g_statistic(&counts, &probs);
        assert!((x2 - g).abs() < 0.01, "x2 = {x2}, g = {g}");
    }

    #[test]
    fn x2_below_g_for_skewed_samples() {
        // X² converges from below, G from above (paper §1, [21, 24]):
        // for overdispersed observations G ≥ X² typically holds.
        let counts = [30u64, 2];
        let probs = [0.5, 0.5];
        assert!(g_statistic(&counts, &probs) > chi_square_from_counts(&counts, &probs));
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        assert_eq!(chi_square_from_counts(&[0, 0], &[0.5, 0.5]), 0.0);
        assert_eq!(g_statistic(&[0, 0, 0], &[0.3, 0.3, 0.4]), 0.0);
        assert!(chi_square_from_counts(&[1], &[0.5, 0.5]).is_nan());
        assert_eq!(chi_square_from_counts(&[1, 1], &[0.0, 1.0]), f64::INFINITY);
        assert_eq!(g_statistic(&[1, 1], &[0.0, 1.0]), f64::INFINITY);
    }

    #[test]
    fn p_value_and_threshold_are_inverses() {
        for &k in &[2usize, 3, 5, 10] {
            for &alpha in &[0.1, 0.05, 0.01] {
                let t = threshold_for_significance(alpha, k);
                assert_close(chi_square_p_value(t, k), alpha, 1e-8);
            }
        }
    }

    #[test]
    fn p_value_of_5_percent_critical_value_binary() {
        assert_close(chi_square_p_value(3.841458820694124, 2), 0.05, 1e-9);
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(chi_square_p_value(1.0, 1).is_nan());
        assert!(threshold_for_significance(0.05, 0).is_nan());
        assert!(threshold_for_significance(1.5, 3).is_nan());
    }
}
