//! The binomial distribution.
//!
//! Per-character substring counts are binomial under the paper's null model
//! (`Y_i ~ Binomial(l, p_i)`, paper Eq. 23). The exact tails here serve as
//! oracles for the normal approximation used in the paper's analysis and
//! power the coin-flip p-value example from the paper's introduction.

use crate::beta::reg_inc_beta;
use crate::gamma::ln_factorial;

/// A binomial distribution with `n` trials and success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Create a binomial distribution. Requires `0 ≤ p ≤ 1`.
    pub fn new(n: u64, p: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&p) {
            Some(Self { n, p })
        } else {
            None
        }
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `np`.
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Variance `np(1−p)`.
    pub fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    /// Natural log of the probability mass `Pr[X = k]`.
    pub fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        // Degenerate edges p = 0 / p = 1.
        if self.p == 0.0 {
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 {
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        let n = self.n as f64;
        let kf = k as f64;
        ln_factorial(self.n) - ln_factorial(k) - ln_factorial(self.n - k)
            + kf * self.p.ln()
            + (n - kf) * (1.0 - self.p).ln()
    }

    /// Probability mass `Pr[X = k]`.
    pub fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    /// Cumulative distribution `Pr[X ≤ k] = I_{1−p}(n − k, k + 1)`.
    pub fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        if self.p == 0.0 {
            return 1.0;
        }
        if self.p == 1.0 {
            return 0.0; // k < n here
        }
        reg_inc_beta(1.0 - self.p, (self.n - k) as f64, k as f64 + 1.0)
    }

    /// Survival `Pr[X > k] = 1 − cdf(k)`, computed without cancellation via
    /// the complementary incomplete beta.
    pub fn sf(&self, k: u64) -> f64 {
        if k >= self.n {
            return 0.0;
        }
        if self.p == 0.0 {
            return 0.0;
        }
        if self.p == 1.0 {
            return 1.0;
        }
        reg_inc_beta(self.p, k as f64 + 1.0, (self.n - k) as f64)
    }

    /// One-sided upper-tail p-value `Pr[X ≥ k]` — the paper's coin example:
    /// the probability of *at least* `k` successes.
    pub fn p_value_upper(&self, k: u64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        self.sf(k - 1)
    }

    /// Two-sided p-value by symmetry doubling (as in the paper's footnote 1),
    /// clamped to 1.
    pub fn p_value_two_sided_doubled(&self, k: u64) -> f64 {
        let upper = self.p_value_upper(k);
        let lower = self.cdf(k);
        (2.0 * upper.min(lower)).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn paper_coin_example() {
        // Paper §1: 19 heads in 20 fair flips ⇒ p ≈ 0.002% = (C(20,19)+C(20,20))/2^20.
        let b = Binomial::new(20, 0.5).unwrap();
        let expect = (20.0 + 1.0) / (1u64 << 20) as f64;
        assert_close(b.p_value_upper(19), expect, 1e-12);
        // Two-sided doubles it (paper footnote 1).
        assert_close(b.p_value_two_sided_doubled(19), 2.0 * expect, 1e-12);
    }

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(30, 0.37).unwrap();
        let total: f64 = (0..=30).map(|k| b.pmf(k)).sum();
        assert_close(total, 1.0, 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_partial_sums() {
        let b = Binomial::new(25, 0.73).unwrap();
        let mut acc = 0.0;
        for k in 0..=25 {
            acc += b.pmf(k);
            assert_close(b.cdf(k), acc, 1e-11);
            assert_close(b.sf(k), 1.0 - acc, 1e-10);
        }
    }

    #[test]
    fn symmetric_fair_coin() {
        let b = Binomial::new(11, 0.5).unwrap();
        for k in 0..=11 {
            assert_close(b.pmf(k), b.pmf(11 - k), 1e-13);
        }
    }

    #[test]
    fn moments() {
        let b = Binomial::new(100, 0.3).unwrap();
        assert_close(b.mean(), 30.0, 1e-15);
        assert_close(b.variance(), 21.0, 1e-13);
        assert_eq!(b.n(), 100);
        assert_close(b.p(), 0.3, 0.0);
    }

    #[test]
    fn degenerate_probabilities() {
        let zero = Binomial::new(10, 0.0).unwrap();
        assert_eq!(zero.pmf(0), 1.0);
        assert_eq!(zero.pmf(3), 0.0);
        assert_eq!(zero.cdf(0), 1.0);
        let one = Binomial::new(10, 1.0).unwrap();
        assert_eq!(one.pmf(10), 1.0);
        assert_eq!(one.pmf(9), 0.0);
        assert_eq!(one.sf(9), 1.0);
    }

    #[test]
    fn out_of_range_k() {
        let b = Binomial::new(5, 0.4).unwrap();
        assert_eq!(b.pmf(6), 0.0);
        assert_eq!(b.cdf(7), 1.0);
        assert_eq!(b.sf(5), 0.0);
        assert_eq!(b.p_value_upper(0), 1.0);
    }

    #[test]
    fn invalid_p_rejected() {
        assert!(Binomial::new(5, -0.1).is_none());
        assert!(Binomial::new(5, 1.5).is_none());
        assert!(Binomial::new(5, f64::NAN).is_none());
    }

    #[test]
    fn large_n_tail_matches_pmf_sum() {
        // Independent check in the large-n regime: the incomplete-beta tail
        // must equal the brute-force pmf sum.
        let b = Binomial::new(1000, 0.5).unwrap();
        let direct: f64 = (550..=1000).map(|k| b.pmf(k)).sum();
        assert_close(b.sf(549), direct, 1e-10);
        // And agree with the normal approximation to a few percent.
        let approx = crate::normal::binomial_normal_approx(1000, 0.5)
            .unwrap()
            .sf(549.5);
        assert!((b.sf(549) / approx - 1.0).abs() < 0.05);
    }
}
