//! Error function, its complement and its inverse.
//!
//! `erf` / `erfc` are thin wrappers over the regularized incomplete gamma
//! functions (`erf(x) = P(1/2, x²)` for `x ≥ 0`), which keeps them accurate
//! to near machine precision without a separate rational approximation.

use crate::gamma::{reg_lower_gamma, reg_upper_gamma};

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// Odd in `x`, with range `(−1, 1)`.
///
/// # Examples
///
/// ```
/// use sigstr_stats::erf::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// assert_eq!(erf(0.0), 0.0);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        reg_lower_gamma(0.5, x * x)
    } else {
        -reg_lower_gamma(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Stays accurate deep in the right tail (no cancellation), which matters
/// for tiny p-values.
pub fn erfc(x: f64) -> f64 {
    if x.is_nan() {
        return f64::NAN;
    }
    if x >= 0.0 {
        reg_upper_gamma(0.5, x * x)
    } else {
        1.0 + reg_lower_gamma(0.5, x * x)
    }
}

/// Inverse error function: `erf_inv(erf(x)) = x` for finite `x`.
///
/// Requires `−1 < y < 1`; returns `±∞` at `±1` and `f64::NAN` outside.
/// Uses a rational initial estimate followed by two Newton steps, giving
/// close-to-machine accuracy across the domain.
pub fn erf_inv(y: f64) -> f64 {
    if y.is_nan() || !(-1.0..=1.0).contains(&y) {
        return f64::NAN;
    }
    if y == 1.0 {
        return f64::INFINITY;
    }
    if y == -1.0 {
        return f64::NEG_INFINITY;
    }
    if y == 0.0 {
        return 0.0;
    }
    // Initial approximation (Winitzki).
    #[allow(clippy::excessive_precision)]
    let a = 0.147;
    let ln1my2 = (1.0 - y * y).ln();
    let term1 = 2.0 / (std::f64::consts::PI * a) + ln1my2 / 2.0;
    let mut x = (y.signum()) * ((term1 * term1 - ln1my2 / a).sqrt() - term1).sqrt();
    // Newton refinement on f(x) = erf(x) − y.
    let two_over_sqrt_pi = 2.0 / std::f64::consts::PI.sqrt();
    for _ in 0..3 {
        let err = erf(x) - y;
        let deriv = two_over_sqrt_pi * (-x * x).exp();
        if deriv == 0.0 {
            break;
        }
        x -= err / deriv;
    }
    x
}

#[cfg(test)]
#[allow(clippy::excessive_precision)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.5), 0.5204998778130465, 1e-14);
        assert_close(erf(1.0), 0.8427007929497149, 1e-14);
        assert_close(erf(2.0), 0.9953222650189527, 1e-14);
        assert_close(erf(3.0), 0.9999779095030014, 1e-14);
    }

    #[test]
    fn erfc_tail_accuracy() {
        // erfc(5) ≈ 1.5374597944280349e-12 — must not be computed as 1 − erf.
        assert_close(erfc(5.0), 1.5374597944280349e-12, 1e-10);
        assert_close(erfc(10.0), 2.088487583762545e-45, 1e-9);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = (i as f64 - 50.0) / 10.0;
            assert_close(erf(-x), -erf(x), 1e-14);
            assert!(erf(x).abs() <= 1.0);
            assert_close(erf(x) + erfc(x), 1.0, 1e-13);
        }
    }

    #[test]
    fn erf_inv_roundtrip() {
        for i in 1..40 {
            let x = i as f64 / 10.0 - 2.0;
            if x == 0.0 {
                continue;
            }
            let y = erf(x);
            assert_close(erf_inv(y), x, 1e-10);
        }
    }

    #[test]
    fn erf_inv_edges() {
        assert_eq!(erf_inv(0.0), 0.0);
        assert!(erf_inv(1.0).is_infinite());
        assert!(erf_inv(-1.0).is_infinite() && erf_inv(-1.0) < 0.0);
        assert!(erf_inv(1.5).is_nan());
    }
}
