//! Small-sample descriptive statistics.
//!
//! The experiment harness averages repeated runs ("averaged over different
//! runs", paper Table 1) and fits log–log slopes (paper Figs. 1, 2, 5).
//! These helpers keep that logic in one tested place.

/// Summary of a sample: count, mean, (sample) variance, extrema.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (0 when `n < 2`).
    pub variance: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Summary {
    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }
}

/// Summarize a sample. Returns `None` for an empty slice or when any value
/// is non-finite.
pub fn summarize(values: &[f64]) -> Option<Summary> {
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let variance = if n > 1 {
        values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(Summary {
        n,
        mean,
        variance,
        min,
        max,
    })
}

/// Result of an ordinary least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 for a perfect fit).
    pub r_squared: f64,
}

/// Least-squares fit of a straight line through `(x, y)` pairs.
///
/// Returns `None` with fewer than two points, non-finite values, or zero
/// variance in `x`. The paper reads empirical complexity exponents off
/// log–log plots — `fit_line` over `(ln n, ln iterations)` gives the slope
/// (≈1.5 for the pruned algorithm, ≈2 for the trivial scan).
pub fn fit_line(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.len() < 2 {
        return None;
    }
    if points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
        return None;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let r = p.1 - (slope * p.0 + intercept);
            r * r
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LineFit {
        slope,
        intercept,
        r_squared,
    })
}

/// Log–log slope fit: `fit_line` over `(ln x, ln y)`.
///
/// Skips nothing — any non-positive coordinate makes the fit `None`.
pub fn fit_loglog(points: &[(f64, f64)]) -> Option<LineFit> {
    if points.iter().any(|(x, y)| *x <= 0.0 || *y <= 0.0) {
        return None;
    }
    let logged: Vec<(f64, f64)> = points.iter().map(|(x, y)| (x.ln(), y.ln())).collect();
    fit_line(&logged)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn summary_basic() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_close(s.mean, 2.5, 1e-15);
        assert_close(s.variance, 5.0 / 3.0, 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_close(s.std_dev(), (5.0f64 / 3.0).sqrt(), 1e-12);
    }

    #[test]
    fn summary_single_and_empty() {
        let s = summarize(&[7.5]).unwrap();
        assert_eq!(s.variance, 0.0);
        assert!(summarize(&[]).is_none());
        assert!(summarize(&[1.0, f64::NAN]).is_none());
        assert!(summarize(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn perfect_line_fit() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 - 2.0)).collect();
        let fit = fit_line(&pts).unwrap();
        assert_close(fit.slope, 3.0, 1e-12);
        assert_close(fit.intercept, -2.0, 1e-12);
        assert_close(fit.r_squared, 1.0, 1e-12);
    }

    #[test]
    fn noisy_fit_reasonable() {
        let pts = [(0.0, 0.1), (1.0, 0.9), (2.0, 2.1), (3.0, 2.9)];
        let fit = fit_line(&pts).unwrap();
        assert!((fit.slope - 1.0).abs() < 0.1);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn degenerate_fits_rejected() {
        assert!(fit_line(&[(1.0, 1.0)]).is_none());
        assert!(fit_line(&[(2.0, 1.0), (2.0, 5.0)]).is_none());
        assert!(fit_line(&[(1.0, f64::NAN), (2.0, 1.0)]).is_none());
    }

    #[test]
    fn loglog_recovers_power_law() {
        // y = 4 · x^1.5  ⇒ slope 1.5 in log–log space.
        let pts: Vec<(f64, f64)> = (1..=12)
            .map(|i| {
                let x = (i * 100) as f64;
                (x, 4.0 * x.powf(1.5))
            })
            .collect();
        let fit = fit_loglog(&pts).unwrap();
        assert_close(fit.slope, 1.5, 1e-9);
        assert_close(fit.intercept, 4.0f64.ln(), 1e-9);
    }

    #[test]
    fn loglog_rejects_nonpositive() {
        assert!(fit_loglog(&[(0.0, 1.0), (1.0, 2.0)]).is_none());
        assert!(fit_loglog(&[(1.0, -1.0), (2.0, 2.0)]).is_none());
    }
}
