//! Exact multinomial probabilities and exact p-values.
//!
//! Paper Eq. 1 gives the probability of a count configuration under the
//! memoryless Bernoulli model; Eq. 2 defines the exact p-value as the total
//! probability of configurations *at least as extreme* (extremeness measured
//! by the `X²` statistic, per the paper's discussion). Exact enumeration is
//! exponential in general — the paper's entire motivation for the chi-square
//! approximation — but for small `l` and `k` it is feasible and serves as the
//! ground-truth oracle in our test suite.

use crate::gamma::ln_factorial;
use crate::pearson::chi_square_from_counts;

/// Natural log of the multinomial pmf (paper Eq. 1):
/// `Pr[C = (Y_1..Y_k)] = l! ∏ p_i^{Y_i} / Y_i!` with `l = ΣY_i`.
///
/// Returns `f64::NEG_INFINITY` when some `p_i = 0` has `Y_i > 0`, and
/// `f64::NAN` when `counts` and `probs` have different lengths.
pub fn ln_multinomial_pmf(counts: &[u64], probs: &[f64]) -> f64 {
    if counts.len() != probs.len() {
        return f64::NAN;
    }
    let l: u64 = counts.iter().sum();
    let mut acc = ln_factorial(l);
    for (&y, &p) in counts.iter().zip(probs) {
        if y == 0 {
            continue;
        }
        if p <= 0.0 {
            return f64::NEG_INFINITY;
        }
        acc += y as f64 * p.ln() - ln_factorial(y);
    }
    acc
}

/// Multinomial pmf (paper Eq. 1).
pub fn multinomial_pmf(counts: &[u64], probs: &[f64]) -> f64 {
    ln_multinomial_pmf(counts, probs).exp()
}

/// Exact p-value of an observed count configuration (paper Eq. 2): the total
/// probability, under the null model, of every configuration of the same
/// total whose `X²` statistic is **at least** that of the observation.
///
/// Enumerates all `C(l + k − 1, k − 1)` compositions — use only for small
/// `l`/`k` (the test oracle use case). Returns `f64::NAN` on length mismatch
/// or empty input.
pub fn exact_p_value(observed: &[u64], probs: &[f64]) -> f64 {
    if observed.len() != probs.len() || observed.is_empty() {
        return f64::NAN;
    }
    let l: u64 = observed.iter().sum();
    let threshold = chi_square_from_counts(observed, probs);
    let k = observed.len();
    let mut config = vec![0u64; k];
    let mut total = 0.0;
    enumerate_compositions(l, 0, &mut config, &mut |c: &[u64]| {
        // Tolerance guards ties: configurations with (numerically) equal X²
        // count as "at least as extreme" per Eq. 2.
        if chi_square_from_counts(c, probs) >= threshold - 1e-9 {
            total += multinomial_pmf(c, probs);
        }
    });
    total.min(1.0)
}

/// Visit every way of writing `remaining` as an ordered sum over
/// `config[idx..]`.
fn enumerate_compositions(
    remaining: u64,
    idx: usize,
    config: &mut Vec<u64>,
    visit: &mut impl FnMut(&[u64]),
) {
    if idx == config.len() - 1 {
        config[idx] = remaining;
        visit(config);
        return;
    }
    for y in 0..=remaining {
        config[idx] = y;
        enumerate_compositions(remaining - y, idx + 1, config, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn pmf_binary_matches_binomial() {
        use crate::binomial::Binomial;
        let b = Binomial::new(12, 0.3).unwrap();
        for heads in 0..=12u64 {
            let multi = multinomial_pmf(&[heads, 12 - heads], &[0.3, 0.7]);
            assert_close(multi, b.pmf(heads), 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_ternary() {
        let probs = [0.2, 0.3, 0.5];
        let l = 8u64;
        let mut total = 0.0;
        for a in 0..=l {
            for b in 0..=(l - a) {
                total += multinomial_pmf(&[a, b, l - a - b], &probs);
            }
        }
        assert_close(total, 1.0, 1e-12);
    }

    #[test]
    fn zero_probability_category() {
        assert_eq!(multinomial_pmf(&[1, 0], &[0.0, 1.0]), 0.0);
        assert_close(multinomial_pmf(&[0, 3], &[0.0, 1.0]), 1.0, 1e-14);
    }

    #[test]
    fn length_mismatch_is_nan() {
        assert!(ln_multinomial_pmf(&[1, 2], &[1.0]).is_nan());
        assert!(exact_p_value(&[1, 2], &[1.0]).is_nan());
        assert!(exact_p_value(&[], &[]).is_nan());
    }

    #[test]
    fn exact_p_value_coin_example() {
        // Paper §1 coin example, restated as a 2-category multinomial:
        // 19 heads / 1 tail in 20 fair flips; extreme = X² ≥ observed.
        // Extreme configurations: {19H,20H,19T,20T} ⇒ 2·(20+1)/2^20.
        let p = exact_p_value(&[19, 1], &[0.5, 0.5]);
        assert_close(p, 2.0 * 21.0 / (1u64 << 20) as f64, 1e-10);
    }

    #[test]
    fn exact_p_value_everything_extreme() {
        // The most probable configuration has the smallest X², so using it
        // as the observation makes every configuration "at least as
        // extreme" ⇒ p-value 1.
        let p = exact_p_value(&[5, 5], &[0.5, 0.5]);
        assert_close(p, 1.0, 1e-12);
    }

    #[test]
    fn exact_p_value_monotone_in_extremeness() {
        let probs = [0.5, 0.5];
        let mut prev = f64::INFINITY;
        for heads in 5..=10u64 {
            let p = exact_p_value(&[heads, 10 - heads], &probs);
            assert!(p <= prev + 1e-12, "p-value must shrink as counts skew");
            prev = p;
        }
    }

    #[test]
    fn chi2_approximation_close_to_exact_for_moderate_l() {
        // The VLDB paper's premise: the chi-square tail approximates the
        // exact multinomial p-value for large samples. Check within a loose
        // multiplicative band at l = 40, k = 2.
        let observed = [28u64, 12];
        let probs = [0.5, 0.5];
        let exact = exact_p_value(&observed, &probs);
        let x2 = chi_square_from_counts(&observed, &probs);
        let approx = crate::chi2::sf(x2, 1.0);
        assert!(exact > 0.0 && approx > 0.0);
        let ratio = exact / approx;
        assert!(
            (0.3..3.0).contains(&ratio),
            "exact = {exact}, approx = {approx}"
        );
    }
}
