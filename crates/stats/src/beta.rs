//! Log-beta and the regularized incomplete beta function.
//!
//! `I_x(a, b)` is used for binomial tail probabilities:
//! `Pr[Binomial(n, p) ≤ k] = I_{1−p}(n − k, k + 1)`.

use crate::gamma::ln_gamma;

/// Natural logarithm of the beta function `B(a, b) = Γ(a)Γ(b)/Γ(a+b)`.
///
/// Requires `a > 0`, `b > 0`; returns `f64::NAN` otherwise.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || b.is_nan() || b <= 0.0 {
        return f64::NAN;
    }
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

const MAX_ITER: usize = 400;
const EPS: f64 = 1e-15;
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Rises from 0 at `x = 0` to 1 at `x = 1`. Requires `a > 0`, `b > 0` and
/// `0 ≤ x ≤ 1`; returns `f64::NAN` otherwise.
///
/// Evaluated with the continued fraction of Numerical-Recipes pedigree,
/// using the symmetry `I_x(a,b) = 1 − I_{1−x}(b,a)` to stay in the rapidly
/// convergent region `x < (a+1)/(a+b+2)`.
///
/// # Examples
///
/// ```
/// use sigstr_stats::beta::reg_inc_beta;
/// // I_x(1, 1) = x (uniform cdf)
/// assert!((reg_inc_beta(0.25, 1.0, 1.0) - 0.25).abs() < 1e-14);
/// // I_x(1, b) = 1 − (1−x)^b
/// let (x, b) = (0.3, 4.0);
/// assert!((reg_inc_beta(x, 1.0, b) - (1.0 - (1.0 - x).powf(b))).abs() < 1e-14);
/// ```
pub fn reg_inc_beta(x: f64, a: f64, b: f64) -> f64 {
    if a.is_nan() || a <= 0.0 || b.is_nan() || b <= 0.0 || !(0.0..=1.0).contains(&x) {
        return f64::NAN;
    }
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        (front * beta_cf(x, a, b) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - front * beta_cf(1.0 - x, b, a) / b).clamp(0.0, 1.0)
    }
}

/// Continued fraction for the incomplete beta function (modified Lentz).
fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn ln_beta_symmetry_and_values() {
        assert_close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-13);
        assert_close(ln_beta(0.5, 0.5), std::f64::consts::PI.ln(), 1e-13);
        for &(a, b) in &[(1.5, 2.5), (3.0, 7.0), (0.2, 9.0)] {
            assert_close(ln_beta(a, b), ln_beta(b, a), 1e-14);
        }
    }

    #[test]
    fn inc_beta_uniform_case() {
        for i in 0..=20 {
            let x = i as f64 / 20.0;
            assert_close(reg_inc_beta(x, 1.0, 1.0), x, 1e-13);
        }
    }

    #[test]
    fn inc_beta_symmetry_identity() {
        for &(a, b) in &[(2.0, 5.0), (0.5, 0.5), (10.0, 3.0), (7.5, 7.5)] {
            for i in 1..10 {
                let x = i as f64 / 10.0;
                let lhs = reg_inc_beta(x, a, b);
                let rhs = 1.0 - reg_inc_beta(1.0 - x, b, a);
                assert_close(lhs, rhs, 1e-12);
            }
        }
    }

    #[test]
    fn inc_beta_reference_values() {
        // scipy.special.betainc reference values.
        assert_close(reg_inc_beta(0.5, 2.0, 2.0), 0.5, 1e-13);
        assert_close(reg_inc_beta(0.3, 2.0, 5.0), 0.579825, 2e-6);
        assert_close(reg_inc_beta(0.9, 10.0, 2.0), 0.6973568802, 1e-9);
    }

    #[test]
    fn inc_beta_monotone_in_x() {
        let (a, b) = (3.5, 1.25);
        let mut prev = -1.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let v = reg_inc_beta(x, a, b);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn inc_beta_domain_errors() {
        assert!(reg_inc_beta(-0.1, 1.0, 1.0).is_nan());
        assert!(reg_inc_beta(1.1, 1.0, 1.0).is_nan());
        assert!(reg_inc_beta(0.5, 0.0, 1.0).is_nan());
        assert!(reg_inc_beta(0.5, 1.0, -2.0).is_nan());
    }
}
