//! Property tests for the statistical substrate: identities that must hold
//! across random parameter draws.

use proptest::prelude::*;

use sigstr_stats::beta::{ln_beta, reg_inc_beta};
use sigstr_stats::binomial::Binomial;
use sigstr_stats::chi2::ChiSquared;
use sigstr_stats::erf::{erf, erfc};
use sigstr_stats::gamma::{ln_gamma, reg_lower_gamma, reg_upper_gamma};
use sigstr_stats::multinomial::multinomial_pmf;
use sigstr_stats::normal::Normal;
use sigstr_stats::pearson::{chi_square_from_counts, g_statistic};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Γ(x+1) = x·Γ(x) in log space.
    #[test]
    fn gamma_recurrence(x in 0.1f64..60.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-10 * (1.0 + rhs.abs()));
    }

    /// P(a,x) + Q(a,x) = 1 and both lie in [0,1].
    #[test]
    fn incomplete_gamma_complementary(a in 0.05f64..80.0, x in 0.0f64..200.0) {
        let p = reg_lower_gamma(a, x);
        let q = reg_upper_gamma(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-10);
    }

    /// P(a, ·) is non-decreasing.
    #[test]
    fn incomplete_gamma_monotone(a in 0.1f64..40.0, x in 0.0f64..100.0, dx in 0.0f64..10.0) {
        prop_assert!(reg_lower_gamma(a, x + dx) + 1e-12 >= reg_lower_gamma(a, x));
    }

    /// B(a,b) = B(b,a).
    #[test]
    fn beta_symmetric(a in 0.05f64..50.0, b in 0.05f64..50.0) {
        prop_assert!((ln_beta(a, b) - ln_beta(b, a)).abs() < 1e-10);
    }

    /// I_x(a,b) = 1 − I_{1−x}(b,a).
    #[test]
    fn inc_beta_reflection(x in 0.001f64..0.999, a in 0.1f64..30.0, b in 0.1f64..30.0) {
        let lhs = reg_inc_beta(x, a, b);
        let rhs = 1.0 - reg_inc_beta(1.0 - x, b, a);
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    /// erf is odd, bounded, and complements erfc.
    #[test]
    fn erf_identities(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    /// Normal quantile inverts the cdf.
    #[test]
    fn normal_quantile_roundtrip(mu in -10.0f64..10.0, sigma in 0.1f64..10.0, p in 0.001f64..0.999) {
        let n = Normal::new(mu, sigma).expect("valid");
        let x = n.quantile(p);
        prop_assert!((n.cdf(x) - p).abs() < 1e-8);
    }

    /// Chi-square cdf/sf complement and quantile roundtrip.
    #[test]
    fn chi2_identities(df in 0.5f64..100.0, x in 0.0f64..300.0, p in 0.01f64..0.99) {
        let d = ChiSquared::new(df).expect("valid");
        prop_assert!((d.cdf(x) + d.sf(x) - 1.0).abs() < 1e-10);
        let q = d.quantile(p);
        prop_assert!((d.cdf(q) - p).abs() < 1e-7);
    }

    /// Binomial cdf + sf = 1 and pmf sums over a window stay bounded.
    #[test]
    fn binomial_complement(n in 1u64..300, p in 0.01f64..0.99, k in 0u64..300) {
        let b = Binomial::new(n, p).expect("valid");
        let k = k.min(n);
        prop_assert!((b.cdf(k) + b.sf(k) - 1.0).abs() < 1e-9);
        prop_assert!(b.pmf(k) <= 1.0 + 1e-12);
    }

    /// Multinomial pmf is a probability and binary case matches binomial.
    #[test]
    fn multinomial_binary_matches_binomial(n in 1u64..40, y in 0u64..40, p in 0.05f64..0.95) {
        let y = y.min(n);
        let pmf = multinomial_pmf(&[y, n - y], &[p, 1.0 - p]);
        let b = Binomial::new(n, p).expect("valid").pmf(y);
        prop_assert!((pmf - b).abs() < 1e-10 * (1.0 + b));
    }

    /// X² and G are non-negative and zero exactly at expectation-shaped
    /// counts (checked at proportional counts).
    #[test]
    fn statistics_nonnegative(counts in prop::collection::vec(0u64..200, 2..6)) {
        let k = counts.len();
        let probs = vec![1.0 / k as f64; k];
        let x2 = chi_square_from_counts(&counts, &probs);
        let g = g_statistic(&counts, &probs);
        prop_assert!(x2 >= -1e-9);
        prop_assert!(g >= -1e-9);
    }

    /// The chi-square statistic is scale-consistent: doubling all counts
    /// doubles X² (for fixed composition).
    #[test]
    fn chi_square_doubles_with_counts(counts in prop::collection::vec(0u64..100, 3)) {
        let total: u64 = counts.iter().sum();
        prop_assume!(total > 0);
        let probs = [0.25, 0.35, 0.4];
        let x2 = chi_square_from_counts(&counts, &probs);
        let doubled: Vec<u64> = counts.iter().map(|&c| c * 2).collect();
        let x2_doubled = chi_square_from_counts(&doubled, &probs);
        prop_assert!((x2_doubled - 2.0 * x2).abs() < 1e-8 * (1.0 + x2));
    }
}
