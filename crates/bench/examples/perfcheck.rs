//! Quick interleaved A/B of the production scan kernel against the
//! pre-rewrite reference engine — the low-ceremony loop used while
//! iterating on kernel changes:
//!
//! ```bash
//! cargo run --release -p sigstr-bench --example perfcheck
//! ```
//!
//! Reference and fast runs alternate within each workload so frequency
//! drift and cache warmth hit both sides equally; medians of 9 are
//! printed. The reportable numbers come from `repro bench_smoke`.

use sigstr_core::{find_mss, find_mss_reference, Model};
use sigstr_gen::{generate_iid, seeded_rng};
use std::time::Instant;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.total_cmp(b));
    v[v.len() / 2]
}

fn main() {
    for &(k, n) in &[
        (2usize, 16_384usize),
        (2, 65_536),
        (4, 65_536),
        (10, 65_536),
    ] {
        let model = Model::uniform(k).unwrap();
        let mut rng = seeded_rng(0xBE7C_0001 + n as u64);
        let seq = generate_iid(n, &model, &mut rng).unwrap();
        let mut refs = vec![];
        let mut fasts = vec![];
        for _ in 0..9 {
            let t0 = Instant::now();
            std::hint::black_box(find_mss_reference(&seq, &model).unwrap());
            refs.push(t0.elapsed().as_secs_f64());
            let t0 = Instant::now();
            std::hint::black_box(find_mss(&seq, &model).unwrap());
            fasts.push(t0.elapsed().as_secs_f64());
        }
        let (r, f) = (median(refs), median(fasts));
        println!(
            "k={k} n={n}: ref {:.2}ms fast {:.2}ms ratio {:.2}",
            r * 1e3,
            f * 1e3,
            r / f
        );
    }
}
