//! Criterion analogue of Table 1: the four MSS algorithms (plus the
//! blocked baseline and the parallel scan) on one null string.

use criterion::{criterion_group, criterion_main, Criterion};
use sigstr_core::{baseline, find_mss, find_mss_parallel, Model, Sequence};
use sigstr_gen::{generate_iid, seeded_rng};

const N: usize = 20_000;

fn make_input() -> (Sequence, Model) {
    let model = Model::uniform(2).expect("model");
    let mut rng = seeded_rng(0xBE7C_0002);
    let seq = generate_iid(N, &model, &mut rng).expect("generation");
    (seq, model)
}

fn bench_algorithms(c: &mut Criterion) {
    let (seq, model) = make_input();
    let mut group = c.benchmark_group("algorithms_n20000");
    group.sample_size(10);
    group.bench_function("ours", |b| b.iter(|| find_mss(&seq, &model).expect("mss")));
    group.bench_function("trivial", |b| {
        b.iter(|| baseline::trivial::find_mss(&seq, &model).expect("mss"))
    });
    group.bench_function("blocked", |b| {
        b.iter(|| baseline::blocked::find_mss(&seq, &model).expect("mss"))
    });
    group.bench_function("arlm", |b| {
        b.iter(|| baseline::arlm::find_mss(&seq, &model).expect("mss"))
    });
    group.bench_function("agmm", |b| {
        b.iter(|| baseline::agmm::find_mss(&seq, &model).expect("mss"))
    });
    group.bench_function("ours_parallel", |b| {
        b.iter(|| find_mss_parallel(&seq, &model, 0).expect("mss"))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
