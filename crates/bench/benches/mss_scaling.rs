//! Criterion analogue of Figure 1a: MSS wall-clock scaling with `n`.
//!
//! The pruned algorithm should scale ≈ n^1.5 while the trivial scan
//! scales ≈ n²; compare the growth factors between consecutive sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sigstr_core::{baseline, find_mss, find_mss_reference, Model, Sequence};
use sigstr_gen::{generate_iid, seeded_rng};

fn make_input(n: usize) -> (Sequence, Model) {
    let model = Model::uniform(2).expect("model");
    let mut rng = seeded_rng(0xBE7C_0001u64 + n as u64);
    let seq = generate_iid(n, &model, &mut rng).expect("generation");
    (seq, model)
}

fn bench_ours(c: &mut Criterion) {
    let mut group = c.benchmark_group("mss_scaling/ours");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384, 65_536] {
        let (seq, model) = make_input(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| find_mss(&seq, &model).expect("mss"))
        });
    }
    group.finish();
}

/// The acceptance-gate comparison: the same pruned scan through the
/// pre-rewrite generic engine. `mss_scaling/ours ÷ mss_scaling/reference`
/// at equal `n` is the specialization speedup (target ≥ 2× at k = 2).
fn bench_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("mss_scaling/reference");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384, 65_536] {
        let (seq, model) = make_input(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| find_mss_reference(&seq, &model).expect("mss"))
        });
    }
    group.finish();
}

fn bench_trivial(c: &mut Criterion) {
    let mut group = c.benchmark_group("mss_scaling/trivial");
    group.sample_size(10);
    for &n in &[4_096usize, 16_384] {
        let (seq, model) = make_input(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| baseline::trivial::find_mss(&seq, &model).expect("mss"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ours, bench_reference, bench_trivial);
criterion_main!(benches);
