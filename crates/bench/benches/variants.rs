//! Criterion analogue of Figures 5–7: the top-t, threshold and
//! min-length variants.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigstr_core::{above_threshold, mss_min_length, top_t, Model, Sequence};
use sigstr_gen::{generate_iid, seeded_rng};

const N: usize = 20_000;

fn make_input() -> (Sequence, Model) {
    let model = Model::uniform(2).expect("model");
    let mut rng = seeded_rng(0xBE7C_0003);
    let seq = generate_iid(N, &model, &mut rng).expect("generation");
    (seq, model)
}

fn bench_topt(c: &mut Criterion) {
    let (seq, model) = make_input();
    let mut group = c.benchmark_group("variants/top_t");
    group.sample_size(10);
    for &t in &[10usize, 100, 2_000] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| top_t(&seq, &model, t).expect("top-t"))
        });
    }
    group.finish();
}

fn bench_threshold(c: &mut Criterion) {
    let (seq, model) = make_input();
    let mut group = c.benchmark_group("variants/threshold");
    group.sample_size(10);
    // alpha below X²_max (expensive) and above it (cheap) — Fig. 6's two
    // regimes. X²_max ≈ 2 ln 20000 ≈ 19.8.
    for &alpha in &[10.0f64, 30.0, 50.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(alpha as u64),
            &alpha,
            |b, &alpha| b.iter(|| above_threshold(&seq, &model, alpha).expect("threshold")),
        );
    }
    group.finish();
}

fn bench_minlen(c: &mut Criterion) {
    let (seq, model) = make_input();
    let mut group = c.benchmark_group("variants/min_length");
    group.sample_size(10);
    for &gamma in &[0usize, N / 2, (N * 9) / 10] {
        group.bench_with_input(BenchmarkId::from_parameter(gamma), &gamma, |b, &gamma| {
            b.iter(|| mss_min_length(&seq, &model, gamma).expect("min-length"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_topt, bench_threshold, bench_minlen);
criterion_main!(benches);
