//! Microbenchmarks of the numerical kernels: chi-square scoring, the skip
//! solver and the distribution functions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sigstr_core::skip::max_safe_skip;
use sigstr_core::{chi_square_counts, Model};
use sigstr_stats::chi2;
use sigstr_stats::gamma::{ln_gamma, reg_lower_gamma};

fn bench_scoring(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/score");
    let model2 = Model::uniform(2).expect("model");
    let model10 = Model::uniform(10).expect("model");
    let counts2 = [523u32, 477];
    let counts10 = [93u32, 107, 101, 99, 95, 104, 96, 103, 100, 102];
    group.bench_function("chi_square_k2", |b| {
        b.iter(|| chi_square_counts(black_box(&counts2), &model2))
    });
    group.bench_function("chi_square_k10", |b| {
        b.iter(|| chi_square_counts(black_box(&counts10), &model10))
    });
    group.finish();
}

fn bench_skip(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/skip");
    let model2 = Model::uniform(2).expect("model");
    let model10 = Model::uniform(10).expect("model");
    let counts2 = [523u32, 477];
    let counts10 = [93u32, 107, 101, 99, 95, 104, 96, 103, 100, 102];
    let x2_2 = chi_square_counts(&counts2, &model2);
    let x2_10 = chi_square_counts(&counts10, &model10);
    group.bench_function("max_safe_skip_k2", |b| {
        b.iter(|| max_safe_skip(black_box(&counts2), 1000, x2_2, 18.0, &model2))
    });
    group.bench_function("max_safe_skip_k10", |b| {
        b.iter(|| max_safe_skip(black_box(&counts10), 1000, x2_10, 30.0, &model10))
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/distributions");
    group.bench_function("ln_gamma", |b| b.iter(|| ln_gamma(black_box(12.34))));
    group.bench_function("reg_lower_gamma", |b| {
        b.iter(|| reg_lower_gamma(black_box(4.5), black_box(3.2)))
    });
    group.bench_function("chi2_sf", |b| b.iter(|| chi2::sf(black_box(18.2), 1.0)));
    group.bench_function("chi2_quantile", |b| {
        b.iter(|| chi2::quantile(black_box(0.999), 1.0))
    });
    group.finish();
}

criterion_group!(benches, bench_scoring, bench_skip, bench_distributions);
criterion_main!(benches);
