//! Ablation benches for the design choices called out in `DESIGN.md`:
//!
//! * **Pruning rule**: adaptive chain-cover skips (ours) vs fixed-block
//!   pruning (blocked) vs none (trivial) — isolates the value of solving
//!   the Eq.-21 quadratic instead of testing fixed jumps.
//! * **Count substrate**: prefix-count `O(k)` scoring vs rescanning the
//!   substring `O(l)` — the paper's §2 argument for count arrays.
//! * **Parallelism**: worker count sweep with shared pruning budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigstr_core::{baseline, find_mss, find_mss_parallel, Model, Sequence};
use sigstr_gen::{generate_iid, seeded_rng};

const N: usize = 16_384;

fn make_input(n: usize) -> (Sequence, Model) {
    let model = Model::uniform(2).expect("model");
    let mut rng = seeded_rng(0x00AB_1A7E);
    let seq = generate_iid(n, &model, &mut rng).expect("generation");
    (seq, model)
}

fn bench_pruning_rule(c: &mut Criterion) {
    let (seq, model) = make_input(N);
    let mut group = c.benchmark_group("ablation/pruning_rule");
    group.sample_size(10);
    group.bench_function("adaptive_skip(ours)", |b| {
        b.iter(|| find_mss(&seq, &model).expect("mss"))
    });
    group.bench_function("fixed_blocks", |b| {
        b.iter(|| baseline::blocked::find_mss(&seq, &model).expect("mss"))
    });
    group.bench_function("none(trivial)", |b| {
        b.iter(|| baseline::trivial::find_mss(&seq, &model).expect("mss"))
    });
    group.finish();
}

/// Trivial MSS that rescans each substring instead of using prefix counts
/// or the incremental scorer — the no-substrate ablation.
fn rescan_mss(seq: &Sequence, model: &Model) -> f64 {
    let n = seq.len();
    let k = model.k();
    let mut best = f64::NEG_INFINITY;
    let mut counts = vec![0u32; k];
    for start in 0..n {
        for end in (start + 1)..=n {
            counts.fill(0);
            for &s in &seq.symbols()[start..end] {
                counts[s as usize] += 1;
            }
            best = best.max(sigstr_core::chi_square_counts(&counts, model));
        }
    }
    best
}

fn bench_count_substrate(c: &mut Criterion) {
    // Small n: the rescan variant is O(n³).
    let (seq, model) = make_input(512);
    let mut group = c.benchmark_group("ablation/count_substrate_n512");
    group.sample_size(10);
    group.bench_function("incremental_counts", |b| {
        b.iter(|| baseline::trivial::find_mss(&seq, &model).expect("mss"))
    });
    group.bench_function("rescan_per_substring", |b| {
        b.iter(|| rescan_mss(&seq, &model))
    });
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let (seq, model) = make_input(65_536);
    let mut group = c.benchmark_group("ablation/parallel_n65536");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| find_mss_parallel(&seq, &model, threads).expect("mss")),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pruning_rule,
    bench_count_substrate,
    bench_parallel
);
criterion_main!(benches);
