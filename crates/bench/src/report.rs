//! Experiment reports: aligned console tables and TSV persistence.

use std::fmt::Write as _;

/// One experiment's output: a table plus free-form notes.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Stable identifier (`fig1a`, `table3`, …).
    pub id: &'static str,
    /// Human title, matching the paper artifact.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Table rows (stringified cells).
    pub rows: Vec<Vec<String>>,
    /// Observations: fitted slopes, shape checks, deviations from the
    /// paper's exact setup.
    pub notes: Vec<String>,
}

impl Report {
    /// Create an empty report.
    pub fn new(id: &'static str, title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            id,
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row (cells already stringified).
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.columns.len());
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Render as an aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let rule_len = header.join("  ").len();
        let _ = writeln!(out, "{}", "-".repeat(rule_len));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", cells.join("  "));
        }
        for note in &self.notes {
            let _ = writeln!(out, "note: {note}");
        }
        out
    }

    /// Render as a machine-readable JSON document (hand-rolled — the
    /// offline build carries no serde). Shape:
    ///
    /// ```json
    /// {"id": "...", "title": "...", "columns": [...],
    ///  "rows": [[...], ...], "notes": [...]}
    /// ```
    ///
    /// Cells stay strings, exactly as rendered into the table; numeric
    /// consumers parse the columns they care about.
    pub fn to_json(&self) -> String {
        fn esc(text: &str) -> String {
            let mut out = String::with_capacity(text.len() + 2);
            for ch in text.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn str_array(items: &[String]) -> String {
            let quoted: Vec<String> = items.iter().map(|i| format!("\"{}\"", esc(i))).collect();
            format!("[{}]", quoted.join(","))
        }
        let rows: Vec<String> = self.rows.iter().map(|row| str_array(row)).collect();
        format!(
            "{{\"id\":\"{}\",\"title\":\"{}\",\"columns\":{},\"rows\":[{}],\"notes\":{}}}\n",
            esc(self.id),
            esc(&self.title),
            str_array(&self.columns),
            rows.join(","),
            str_array(&self.notes)
        )
    }

    /// Render as TSV (header + rows; notes as trailing `# comments`).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        for note in &self.notes {
            let _ = writeln!(out, "# {note}");
        }
        out
    }
}

/// Format a float with fixed decimals, for table cells.
pub fn cell_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Format an integer cell.
pub fn cell_u(value: u64) -> String {
    value.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Report {
        let mut r = Report::new("figX", "demo", &["n", "iters"]);
        r.push_row(vec!["100".into(), "1234".into()]);
        r.push_row(vec!["200000".into(), "9".into()]);
        r.note("slope = 1.5");
        r
    }

    #[test]
    fn render_aligns_columns() {
        let text = demo().render();
        assert!(text.contains("== figX — demo =="));
        let lines: Vec<&str> = text.lines().collect();
        // Header, rule, two rows, one note.
        assert_eq!(lines.len(), 6);
        assert!(lines[5].starts_with("note: slope"));
        // Right-aligned: both data rows have the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn tsv_roundtrip_shape() {
        let tsv = demo().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines[0], "n\titers");
        assert_eq!(lines[1], "100\t1234");
        assert!(lines[3].starts_with("# slope"));
    }

    #[test]
    fn cells() {
        assert_eq!(cell_f(1.23456, 2), "1.23");
        assert_eq!(cell_u(42), "42");
    }

    #[test]
    fn json_shape_and_escaping() {
        let mut r = Report::new("bench_smoke", "kernel \"timings\"", &["engine", "ms"]);
        r.push_row(vec!["specialized".into(), "12.5".into()]);
        r.note("line\nbreak");
        let json = r.to_json();
        assert!(json.starts_with("{\"id\":\"bench_smoke\""));
        assert!(json.contains("\\\"timings\\\""));
        assert!(json.contains("\"rows\":[[\"specialized\",\"12.5\"]]"));
        assert!(json.contains("line\\nbreak"));
        assert!(json.ends_with("}\n"));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the offline build).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
