//! Tables 3–6: the baseball and stock-market applications
//! (synthetic substitutes with the paper's eras/regimes planted —
//! see `DESIGN.md` §5).

use sigstr_core::score::scored_cmp;
use sigstr_core::{above_threshold, baseline, find_mss, Model, Scored, Sequence};
use sigstr_data::{baseball, stocks};
use sigstr_gen::seeded_rng;

use crate::report::{cell_f, Report};
use crate::{dedupe_overlapping, fmt_duration, time, Scale};

/// Deterministic dataset seeds shared by Tables 3/4 and 5/6.
const BASEBALL_SEED: u64 = 0xBA5E_BA11;
const STOCKS_SEED: u64 = 0x570C_C500;

/// Mine `want` *distinct* high-significance patches: collect everything
/// above `alpha` (Problem 3), sort by descending `X²`, then greedily drop
/// overlaps. A top-t query would return `t` shifts of the single dominant
/// patch; the threshold variant sees every qualifying patch.
fn mine_distinct_patches(seq: &Sequence, model: &Model, want: usize, alpha: f64) -> Vec<Scored> {
    let mut items = above_threshold(seq, model, alpha).expect("threshold").items;
    items.sort_by(|a, b| scored_cmp(b, a));
    dedupe_overlapping(&items, 0.3, want)
}

/// Table 3: the five most significant Yankees–Red-Sox patches.
pub fn table3(_scale: Scale) -> Report {
    let mut report = Report::new(
        "table3",
        "performance of Yankees against Red Sox: top-5 significant patches",
        &["start", "end", "X² val", "games", "wins", "win%"],
    );
    let ds = baseball::generate(&mut seeded_rng(BASEBALL_SEED));
    let model = Model::estimate(&ds.rivalry.outcomes).expect("estimate");
    // alpha = 8: low enough that all five planted eras qualify, high
    // enough to keep the candidate set small (n ≈ 2k).
    let patches = mine_distinct_patches(&ds.rivalry.outcomes, &model, 5, 8.0);
    for patch in &patches {
        let games = patch.len();
        let wins = ds.rivalry.outcomes.count_vector(patch.start, patch.end)[1] as usize;
        report.push_row(vec![
            ds.date_of(patch.start).to_string(),
            ds.date_of(patch.end - 1).to_string(),
            cell_f(patch.chi_square, 2),
            games.to_string(),
            wins.to_string(),
            format!("{:.2}%", 100.0 * wins as f64 / games as f64),
        ]);
    }
    report.note(
        "synthetic rivalry with the paper's Table-3 eras planted at their dates (DESIGN.md §5)",
    );
    report.note("paper: best patch = 1924–1933 Yankee era (~76% wins); runner-ups include the 1911–13 Red-Sox era");
    report
}

/// Table 4: algorithm comparison on the sports string.
pub fn table4(_scale: Scale) -> Report {
    let mut report = Report::new(
        "table4",
        "comparison with other techniques, sports data",
        &["algo", "X² val", "start", "end", "time"],
    );
    let ds = baseball::generate(&mut seeded_rng(BASEBALL_SEED));
    let model = Model::estimate(&ds.rivalry.outcomes).expect("estimate");
    run_comparison_rows(&mut report, &ds.rivalry.outcomes, &model, |s| {
        (
            ds.date_of(s.start).to_string(),
            ds.date_of(s.end - 1).to_string(),
        )
    });
    report.note(
        "paper Table 4: Trivial/Our/ARLM find the same optimal patch; AGMM returns a lower-X² one",
    );
    report
}

/// Table 5: significant good and bad periods for the three securities.
pub fn table5(scale: Scale) -> Report {
    let mut report = Report::new(
        "table5",
        "significant periods for the securities (good = rising, bad = falling)",
        &["period", "security", "start", "end", "X² val", "change"],
    );
    let specs = select_specs(scale);
    for (i, spec) in specs.iter().enumerate() {
        let ds = stocks::generate(spec, &mut seeded_rng(STOCKS_SEED + i as u64));
        // alpha just above the null-model ceiling 2 ln n ≈ 20, so the
        // collected set is dominated by planted-regime windows.
        let alpha = 2.2 * (ds.updown.len() as f64).ln();
        let patches = mine_distinct_patches(&ds.updown, &ds.model, 6, alpha);
        let up_base = ds.model.p(1);
        let mut good: Vec<&Scored> = Vec::new();
        let mut bad: Vec<&Scored> = Vec::new();
        for p in &patches {
            let ups = ds.updown.count_vector(p.start, p.end)[1] as f64;
            if ups / p.len() as f64 >= up_base {
                good.push(p);
            } else {
                bad.push(p);
            }
        }
        for (label, list) in [("Good", good), ("Bad", bad)] {
            for p in list.into_iter().take(2) {
                let change = ds.change(p.start..p.end);
                report.push_row(vec![
                    label.to_string(),
                    ds.spec.name.to_string(),
                    ds.date_of_move(p.start).to_string(),
                    ds.date_of_move(p.end - 1).to_string(),
                    cell_f(p.chi_square, 2),
                    format!("{:+.2}%", 100.0 * change),
                ]);
            }
        }
    }
    report.note("synthetic walks with the paper's Table-5 drift regimes planted at their dates (DESIGN.md §5)");
    report.note("paper: bad periods cluster in 1929–32, 1973–74, 2000–03; good in the 1950s boom");
    report
}

/// Table 6: algorithm comparison on the stock strings (Dow and S&P, as in
/// the paper).
pub fn table6(scale: Scale) -> Report {
    let mut report = Report::new(
        "table6",
        "comparison with other techniques, stock returns",
        &["algo", "sec.", "X²", "start", "end", "change", "time"],
    );
    let specs = select_specs(scale);
    for (i, spec) in specs.iter().enumerate().take(2) {
        let ds = stocks::generate(spec, &mut seeded_rng(STOCKS_SEED + i as u64));
        let short = if spec.name.starts_with("Dow") {
            "Dow"
        } else {
            "S&P"
        };
        type Algo = (
            &'static str,
            fn(&Sequence, &Model) -> sigstr_core::Result<sigstr_core::MssResult>,
        );
        let algos: Vec<Algo> = vec![
            ("Trivial", baseline::trivial::find_mss),
            ("Our", find_mss),
            ("ARLM", baseline::arlm::find_mss),
            ("AGMM", baseline::agmm::find_mss),
        ];
        for (name, algo) in algos {
            let (result, elapsed) = time(|| algo(&ds.updown, &ds.model).expect("mss"));
            let change = ds.change(result.best.start..result.best.end);
            report.push_row(vec![
                name.to_string(),
                short.to_string(),
                cell_f(result.best.chi_square, 2),
                ds.date_of_move(result.best.start).to_string(),
                ds.date_of_move(result.best.end - 1).to_string(),
                format!("{:+.1}%", 100.0 * change),
                fmt_duration(elapsed),
            ]);
        }
    }
    report.note("paper Table 6: Trivial/Our/ARLM agree; Our is ~10x faster than Trivial and faster than ARLM; AGMM misses the optimum");
    report
}

fn select_specs(scale: Scale) -> Vec<stocks::StockSpec> {
    match scale {
        Scale::Full => stocks::all_specs(),
        Scale::Quick => {
            // Shrink the series (keep the earliest regimes) for smoke runs.
            let mut specs = stocks::all_specs();
            for spec in &mut specs {
                spec.days = spec.days.min(4_000);
                let last = spec
                    .first_day
                    .plus_days((spec.days as f64 * 7.0 / 5.0) as i64);
                spec.regimes.retain(|r| r.end < last);
                assert!(!spec.regimes.is_empty(), "quick scale dropped all regimes");
            }
            specs
        }
    }
}

fn run_comparison_rows(
    report: &mut Report,
    seq: &Sequence,
    model: &Model,
    dates: impl Fn(&Scored) -> (String, String),
) {
    type Algo = (
        &'static str,
        fn(&Sequence, &Model) -> sigstr_core::Result<sigstr_core::MssResult>,
    );
    let algos: Vec<Algo> = vec![
        ("Trivial", baseline::trivial::find_mss),
        ("Our", find_mss),
        ("ARLM", baseline::arlm::find_mss),
        ("AGMM", baseline::agmm::find_mss),
    ];
    for (name, algo) in algos {
        let (result, elapsed) = time(|| algo(seq, model).expect("mss"));
        let (start, end) = dates(&result.best);
        report.push_row(vec![
            name.to_string(),
            cell_f(result.best.chi_square, 2),
            start,
            end,
            fmt_duration(elapsed),
        ]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_five_distinct_patches() {
        let r = table3(Scale::Quick);
        assert_eq!(r.rows.len(), 5);
        // Patches are sorted by descending X².
        let x2s: Vec<f64> = r.rows.iter().map(|row| row[2].parse().unwrap()).collect();
        for pair in x2s.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
        // The strongest patches are the planted paper eras — which of the
        // 1924–33 Yankee era and the 1911–13 Red-Sox era tops the list is
        // noise-dependent, but one of the top two must be the Yankee era.
        let top_years: Vec<i32> = r
            .rows
            .iter()
            .take(2)
            .map(|row| row[0][row[0].len() - 4..].parse().unwrap())
            .collect();
        assert!(
            top_years.iter().any(|year| (1915..=1935).contains(year)),
            "top patches start in {top_years:?}, expected the 1920s Yankee era among them"
        );
    }

    #[test]
    fn table4_agreement_and_agmm_gap() {
        let r = table4(Scale::Quick);
        assert_eq!(r.rows.len(), 4);
        let x2: Vec<f64> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        assert!((x2[0] - x2[1]).abs() < 1e-6, "ours != trivial");
        assert!(x2[3] <= x2[0] + 1e-6, "AGMM beat the optimum");
    }

    #[test]
    fn table5_quick_has_good_and_bad() {
        let r = table5(Scale::Quick);
        assert!(!r.rows.is_empty());
        let labels: Vec<&str> = r.rows.iter().map(|row| row[0].as_str()).collect();
        assert!(labels.contains(&"Good") || labels.contains(&"Bad"));
        // Changes are signed percentages.
        for row in &r.rows {
            assert!(row[5].starts_with('+') || row[5].starts_with('-'));
        }
    }

    #[test]
    fn table6_quick_shape() {
        let r = table6(Scale::Quick);
        assert_eq!(r.rows.len(), 8); // 4 algorithms × 2 securities
        for sec_rows in r.rows.chunks(4) {
            let trivial: f64 = sec_rows[0][2].parse().unwrap();
            let ours: f64 = sec_rows[1][2].parse().unwrap();
            assert!((trivial - ours).abs() < 1e-6);
        }
    }
}
