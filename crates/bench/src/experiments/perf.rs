//! Kernel performance smoke experiment — the machine-readable perf
//! trajectory CI appends to (`BENCH_1.json`, `BENCH_2.json`, …).
//!
//! Times the sequential MSS scan through three engines on the paper's
//! dominant workloads:
//!
//! * `reference` — the pre-rewrite generic engine (row-major count
//!   reconstruction per substring, division-and-square-root-per-character
//!   skip solve),
//! * `specialized` — the incremental alphabet-specialized kernel
//!   (`k = 2` / `k = 4` monomorphized, two interleaved scan lanes), or
//!   the incremental generic kernel for other alphabets,
//! * `parallel` — the work-stealing parallel scan at auto thread count.
//!
//! The reported `speedup` column is reference-time / engine-time on the
//! same input; the CI gate reads the `k2_sequential` speedup row.

use sigstr_core::{
    find_mss, find_mss_parallel, find_mss_reference, CountsLayout, Engine, Model, Sequence,
};
use sigstr_gen::{generate_iid, seeded_rng};

use crate::report::{cell_f, Report};
use crate::{time, Scale};

fn input(k: usize, n: usize) -> (Sequence, Model) {
    let model = Model::uniform(k).expect("model");
    let mut rng = seeded_rng(0xBE7C_00FF ^ (k as u64) << 32 ^ n as u64);
    let seq = generate_iid(n, &model, &mut rng).expect("generation");
    (seq, model)
}

/// Median-of-`reps` wall-clock of one closure, in seconds.
fn median_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let (result, elapsed) = time(&mut f);
            std::hint::black_box(result);
            elapsed.as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

/// The `bench_smoke` experiment: kernel timings and reference-relative
/// speedups on k = 2 and k = 4 MSS workloads.
pub fn bench_smoke(scale: Scale) -> Report {
    let mut report = Report::new(
        "bench_smoke",
        "scan-kernel timings: reference vs specialized vs parallel MSS",
        &["workload", "engine", "ms", "speedup_vs_reference"],
    );
    let n = scale.pick(65_536, 16_384);
    let reps = scale.pick(9, 5);
    for &k in &[2usize, 4] {
        let (seq, model) = input(k, n);
        let reference = median_secs(reps, || find_mss_reference(&seq, &model).expect("mss"));
        let specialized = median_secs(reps, || find_mss(&seq, &model).expect("mss"));
        let parallel = median_secs(reps, || find_mss_parallel(&seq, &model, 0).expect("mss"));
        let workload = format!("k{k}_n{n}");
        for (engine, secs) in [
            ("reference", reference),
            ("specialized", specialized),
            ("parallel", parallel),
        ] {
            report.push_row(vec![
                workload.clone(),
                engine.to_string(),
                cell_f(secs * 1e3, 3),
                cell_f(reference / secs, 2),
            ]);
        }
        // The results must agree while we are here (cheap end-to-end
        // cross-check of the engines under bench conditions).
        let a = find_mss_reference(&seq, &model).expect("mss");
        let b = find_mss(&seq, &model).expect("mss");
        assert_eq!(
            a.best.chi_square.to_bits(),
            b.best.chi_square.to_bits(),
            "bench_smoke: engines disagree on k = {k}"
        );
    }
    report.note(format!(
        "median of {reps} runs per cell, n = {n}; speedup = reference_ms / engine_ms"
    ));
    report.note("acceptance gate: specialized k2 speedup >= 2.0 (single-threaded)");
    report
}

/// The `engine_amortization` experiment (`BENCH_2.json`): per-query cost
/// of a reused [`Engine`] vs the one-shot API at growing query counts.
///
/// The one-shot `find_mss` rebuilds the prefix-count index, reallocates
/// scan scratch and rescans on every call; the engine builds the index
/// once and serves repeated queries from its result cache. The
/// `amortization` column is `oneshot_ms_per_query / engine_ms_per_query`
/// — the CI gate requires ≥ 5 at 100 queries (in practice it approaches
/// the query count itself once the cache absorbs the repeats).
pub fn engine_amortization(scale: Scale) -> Report {
    let mut report = Report::new(
        "engine_amortization",
        "per-query cost: reused Engine vs one-shot find_mss",
        &[
            "queries",
            "oneshot_ms_per_query",
            "engine_ms_per_query",
            "amortization",
        ],
    );
    let n = scale.pick(1_048_576, 32_768);
    let reps = scale.pick(3, 3);
    let (seq, model) = input(2, n);

    // One-shot calls are i.i.d.: measure one call's median and charge it
    // per query (running 100 full one-shot scans at the 1M-symbol scale
    // would only re-measure the same constant).
    let oneshot_per_query = median_secs(reps, || find_mss(&seq, &model).expect("mss"));

    for &queries in &[1usize, 10, 100] {
        let engine_total = median_secs(reps, || {
            let engine = Engine::new(&seq, model.clone()).expect("engine");
            for _ in 0..queries {
                std::hint::black_box(engine.mss().expect("mss"));
            }
            engine
        });
        let engine_per_query = engine_total / queries as f64;
        report.push_row(vec![
            queries.to_string(),
            cell_f(oneshot_per_query * 1e3, 3),
            cell_f(engine_per_query * 1e3, 3),
            cell_f(oneshot_per_query / engine_per_query, 2),
        ]);
    }

    // Exactness while we are here: the engine path must be bit-identical
    // to the one-shot path under bench conditions.
    let engine = Engine::new(&seq, model.clone()).expect("engine");
    let a = engine.mss().expect("mss");
    let b = find_mss(&seq, &model).expect("mss");
    assert_eq!(
        a.best.chi_square.to_bits(),
        b.best.chi_square.to_bits(),
        "engine_amortization: engine and one-shot MSS disagree"
    );

    report.note(format!(
        "median of {reps} runs per cell, n = {n}, k = 2; engine cell = build index + answer Q \
         repeated mss() queries (cache-served after the first)"
    ));
    report.note("acceptance gate: amortization >= 5.0 at 100 queries");
    report
}

/// The `counts_footprint` experiment (`BENCH_3.json`): two-level blocked
/// count index vs the flat table — bytes and end-to-end MSS runtime.
///
/// For each workload the same sequence is indexed twice
/// ([`CountsLayout::Flat`] and [`CountsLayout::Blocked`]) and the same
/// `mss()` query timed through each engine (result cache cleared between
/// reps, so every rep is a full scan). Reported per row:
///
/// * `index_mb` — bytes held by the count tables (the symbol string,
///   shared by both layouts, is excluded),
/// * `footprint_ratio` — flat bytes / this layout's bytes,
/// * `mss_ms` — median end-to-end `mss()` wall clock,
/// * `runtime_vs_flat` — this layout's time / the flat layout's time.
///
/// The CI gate reads the quick-size blocked rows: `footprint_ratio ≥ 3`
/// and `runtime_vs_flat ≤ 1.1`. Sizes below ~1 MB of flat table are
/// deliberately not benched: there the whole index is cache-resident
/// either way and the blocked layout's extra resync arithmetic shows as
/// a constant-factor penalty with no bandwidth to win back (which is
/// exactly why `CountsLayout::Auto` keeps small inputs flat). At full
/// scale the ≥ 16M-symbol row uses the parallel scan (auto threads) so
/// the run stays tractable — the bandwidth relief is, if anything, more
/// visible with every core hammering memory.
pub fn counts_footprint(scale: Scale) -> Report {
    let mut report = Report::new(
        "counts_footprint",
        "two-level blocked count index vs flat: bytes and end-to-end mss runtime",
        &[
            "workload",
            "layout",
            "index_mb",
            "footprint_ratio",
            "mss_ms",
            "runtime_vs_flat",
        ],
    );
    // (n, parallel): quick sizes are sequential; the full tier adds the
    // LLC-spill regime and runs parallel to keep wall clock tractable.
    let sizes: &[(usize, bool)] = scale.pick(
        &[(4_194_304, false), (16_777_216, true)][..],
        &[(262_144, false), (1_048_576, false)][..],
    );
    let k = 4; // DNA-scale alphabet, the paper's motivating workload.
    for &(n, parallel) in sizes {
        let (seq, model) = input(k, n);
        let reps = if n > 500_000 { 1 } else { 3 };
        let mut flat_ms = 0.0;
        let mut flat_bytes = 0usize;
        let mut flat_answer = None;
        for (layout, label) in [
            (CountsLayout::Flat, "flat"),
            (CountsLayout::Blocked, "blocked"),
        ] {
            let engine = Engine::with_layout(&seq, model.clone(), layout).expect("engine builds");
            let secs = median_secs(reps, || {
                engine.clear_cache();
                if parallel {
                    engine.mss_parallel().expect("mss")
                } else {
                    engine.mss().expect("mss")
                }
            });
            let ms = secs * 1e3;
            let bytes = engine.index_bytes();
            if label == "flat" {
                flat_ms = ms;
                flat_bytes = bytes;
            }
            // Exactness across layouts while we are here: the blocked
            // index must reproduce the flat scan bit-for-bit (values,
            // positions, and stats). Sequential sizes only — there the
            // answer is a cache hit from the timed reps; the parallel
            // tier would need an extra full scan per layout, and its
            // tie-breaking is position-unpinned anyway (cross-layout
            // bit-identity is already gated at the quick sizes and in
            // kernel_equivalence).
            if !parallel {
                let answer = engine.mss().expect("mss");
                match &flat_answer {
                    None => flat_answer = Some(answer),
                    Some(flat) => {
                        assert_eq!(
                            *flat, answer,
                            "counts_footprint: layouts disagree at n = {n}"
                        );
                    }
                }
            }
            let workload = format!("k{k}_n{n}{}", if parallel { "_par" } else { "" });
            report.push_row(vec![
                workload,
                label.to_string(),
                cell_f(bytes as f64 / (1024.0 * 1024.0), 2),
                cell_f(flat_bytes as f64 / bytes as f64, 2),
                cell_f(ms, 3),
                cell_f(ms / flat_ms, 3),
            ]);
        }
    }
    report.note(format!(
        "k = {k}; index_mb excludes the shared symbol string; mss timed through a reused \
         Engine with the result cache cleared per rep (full scan every time)"
    ));
    report.note(
        "acceptance gate (quick blocked rows): footprint_ratio >= 3.0 and runtime_vs_flat <= 1.1",
    );
    report
}

/// The `snapshot_load` experiment (`BENCH_4.json`): cold-starting an
/// engine from a persisted index snapshot vs rebuilding it from the raw
/// document.
///
/// Both paths start from a file on disk and end with a warm
/// [`Engine`] — exactly the choice a serving process faces at startup:
///
/// * `rebuild_ms` — read the raw text document, parse/validate the
///   sequence, estimate the empirical model, and build the count index
///   (`Engine::with_layout`): the per-position `O(k·n)` pipeline every
///   process start pays without snapshots,
/// * `load_ms` — [`Engine::load_snapshot_path`]: header validation,
///   checksums, and bulk section reads into the index storage,
/// * `speedup` — `rebuild_ms / load_ms`,
/// * `snapshot_mb` — on-disk snapshot size.
///
/// The CI gate reads the **blocked** rows (the production layout at
/// serving scale — `CountsLayout::Auto` picks it above the cache
/// threshold): load must be ≥ 10× cheaper than rebuild at the 1M-symbol
/// quick size. Flat rows are reported for the trajectory but not gated —
/// a flat table is one big memcpy away from its snapshot, so its win is
/// structurally smaller. Loaded engines are checked bit-identical to the
/// rebuilt ones on the sequential sizes while we are here.
pub fn snapshot_load(scale: Scale) -> Report {
    let mut report = Report::new(
        "snapshot_load",
        "engine cold start: load persisted snapshot vs rebuild from the raw document",
        &[
            "workload",
            "layout",
            "snapshot_mb",
            "rebuild_ms",
            "load_ms",
            "speedup",
        ],
    );
    let sizes: &[usize] = scale.pick(&[4_194_304, 16_777_216][..], &[262_144, 1_048_576][..]);
    // k = 2: the paper's primary workload (§7.5's stock, baseball and
    // RNG applications are all binary strings) and the alphabet a
    // corpus-scale deployment serves most.
    let k = 2;
    let dir = std::env::temp_dir().join(format!("sigstr-snapshot-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    for &n in sizes {
        let (seq, _model) = input(k, n);
        let reps = if n > 2_000_000 { 5 } else { 9 };
        // The raw document a snapshot-less service would start from:
        // symbol bytes wrapped into 80-column lines, exactly what the
        // CLI's document pipeline ingests.
        let text_path = dir.join(format!("k{k}_n{n}.txt"));
        let mut text: Vec<u8> = Vec::with_capacity(n + n / 80 + 1);
        for (i, &s) in seq.symbols().iter().enumerate() {
            text.push(b'a' + s);
            if i % 80 == 79 {
                text.push(b'\n');
            }
        }
        std::fs::write(&text_path, &text).expect("write document");
        for (layout, label) in [
            (CountsLayout::Flat, "flat"),
            (CountsLayout::Blocked, "blocked"),
        ] {
            let rebuild = || {
                // The CLI's cold-start pipeline: read, strip whitespace,
                // map bytes to the dense alphabet, estimate the
                // empirical model, build the count index.
                let raw = std::fs::read(&text_path).expect("read document");
                let cleaned: Vec<u8> = raw
                    .iter()
                    .copied()
                    .filter(|b| !b.is_ascii_whitespace())
                    .collect();
                let (seq, _alphabet) = Sequence::from_text(&cleaned).expect("parse document");
                let model = Model::estimate(&seq).expect("estimate model");
                Engine::with_layout(&seq, model, layout).expect("engine builds")
            };
            let rebuild_secs = median_secs(reps, rebuild);
            let engine = rebuild();
            let path = dir.join(format!("k{k}_n{n}_{label}.snap"));
            engine.write_snapshot_path(&path).expect("snapshot writes");
            let snapshot_bytes = std::fs::metadata(&path).expect("snapshot exists").len();
            let load_secs = median_secs(reps, || {
                Engine::load_snapshot_path(&path).expect("snapshot loads")
            });
            // Exactness while we are here: the loaded engine must answer
            // bit-identically to the rebuilt one (cheap at quick sizes;
            // the full tier relies on the gated quick runs + the
            // round-trip property tests).
            if n <= 2_000_000 {
                let loaded = Engine::load_snapshot_path(&path).expect("snapshot loads");
                assert_eq!(
                    loaded.mss().expect("mss"),
                    engine.mss().expect("mss"),
                    "snapshot_load: loaded engine disagrees at n = {n} ({label})"
                );
            }
            std::fs::remove_file(&path).ok();
            report.push_row(vec![
                format!("k{k}_n{n}"),
                label.to_string(),
                cell_f(snapshot_bytes as f64 / (1024.0 * 1024.0), 2),
                cell_f(rebuild_secs * 1e3, 3),
                cell_f(load_secs * 1e3, 3),
                cell_f(rebuild_secs / load_secs, 2),
            ]);
        }
        std::fs::remove_file(&text_path).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
    report.note(format!(
        "k = {k} (the paper's binary application workloads); rebuild = the CLI cold-start \
         pipeline (read 80-column document + strip whitespace + Sequence::from_text + \
         Model::estimate + Engine::with_layout), load = Engine::load_snapshot_path \
         (validate + checksum + bulk section reads); both cold-start from disk; \
         median of 5-9 runs per cell"
    ));
    report.note("acceptance gate (blocked row, 1M-symbol quick size): speedup >= 10.0");
    report
}

/// The `server_throughput` experiment (`BENCH_5.json`): requests/sec of
/// the HTTP service at 1, 8 and 32 concurrent keep-alive clients.
///
/// One in-process [`sigstr_server::Server`] serves a 2-document corpus;
/// each client thread drives one keep-alive connection as fast as the
/// round trip allows, cycling through `mss` and `top` queries on both
/// documents (cache-served after the first round — the replay-heavy
/// pattern of a production endpoint). The `scaling` column is this
/// row's throughput over the single-client row: a single client is
/// round-trip-latency-bound, so a healthy concurrent server must
/// overlap connections into several times that. The CI gate requires
/// the 32-client row to scale ≥ 4x.
pub fn server_throughput(scale: Scale) -> Report {
    use sigstr_server::client::ClientConn;
    use sigstr_server::{Server, ServerConfig};

    let mut report = Report::new(
        "server_throughput",
        "HTTP service requests/sec at 1/8/32 concurrent keep-alive clients",
        &["clients", "requests", "secs", "rps", "scaling_vs_1"],
    );
    let n = scale.pick(65_536, 16_384);
    let window = scale.pick(2.0f64, 0.5f64);

    // A corpus of two documents, one per layout.
    let dir = std::env::temp_dir().join(format!(
        "sigstr-server-bench-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let mut corpus = sigstr_corpus::Corpus::create(&dir).expect("corpus");
    for (i, layout) in [CountsLayout::Flat, CountsLayout::Blocked]
        .into_iter()
        .enumerate()
    {
        let (seq, model) = input(2, n + i * 512);
        corpus
            .add_document(&format!("doc{i}"), &seq, model, layout)
            .expect("add document");
    }
    drop(corpus);

    let server = Server::bind(
        sigstr_corpus::Corpus::open(&dir).expect("corpus reopens"),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 40, // >= max clients: workers mostly block on reads
            queue_depth: 256,
            ..ServerConfig::default()
        },
    )
    .expect("server binds");
    let addr = server.local_addr();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run().expect("server runs"));

    let bodies: Vec<String> = (0..2)
        .flat_map(|doc| {
            [
                format!("{{\"doc\":\"doc{doc}\",\"query\":{{\"kind\":\"mss\"}}}}"),
                format!("{{\"doc\":\"doc{doc}\",\"query\":{{\"kind\":\"top\",\"t\":3}}}}"),
            ]
        })
        .collect();

    let mut single_rps = 0.0f64;
    for &clients in &[1usize, 8, 32] {
        let barrier = std::sync::Barrier::new(clients + 1);
        let total: u64 = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..clients)
                .map(|c| {
                    let barrier = &barrier;
                    let bodies = &bodies;
                    scope.spawn(move || {
                        let mut conn = ClientConn::connect(addr).expect("client connects");
                        // Warm up the connection and *every* query's
                        // engine/result-cache entry outside the timed
                        // window — the single-client baseline row must
                        // never pay a cold snapshot load mid-window
                        // (the CI gate is a ratio against it).
                        for body in bodies.iter() {
                            let response = conn
                                .request("POST", "/v1/query", Some(body))
                                .expect("warmup");
                            assert_eq!(response.status, 200, "{}", response.body_str());
                        }
                        barrier.wait();
                        let start = std::time::Instant::now();
                        let mut sent = 0u64;
                        while start.elapsed().as_secs_f64() < window {
                            let body = &bodies[(c + sent as usize) % bodies.len()];
                            let response = conn
                                .request("POST", "/v1/query", Some(body))
                                .expect("request");
                            assert_eq!(response.status, 200);
                            sent += 1;
                        }
                        sent
                    })
                })
                .collect();
            barrier.wait();
            workers.into_iter().map(|w| w.join().expect("client")).sum()
        });
        let rps = total as f64 / window;
        if clients == 1 {
            single_rps = rps;
        }
        report.push_row(vec![
            clients.to_string(),
            total.to_string(),
            cell_f(window, 2),
            cell_f(rps, 1),
            cell_f(rps / single_rps, 2),
        ]);
    }

    handle.shutdown();
    server_thread.join().expect("server thread");
    std::fs::remove_dir_all(&dir).ok();

    report.note(format!(
        "in-process server (40 workers, queue depth 256) over a 2-document corpus \
         (n = {n}, k = 2, flat + blocked); each client drives one keep-alive connection \
         with POST /v1/query (mss and top:3 on both documents) for a {window:.1}s window"
    ));
    report.note(
        "acceptance gate: 32-client scaling_vs_1 >= 4.0 (a single client is \
         round-trip-bound, leaving cores idle; the gate assumes a multi-core runner — \
         on a single-core machine the closed loop has no idle time to reclaim and \
         scaling pins near 1.0)",
    );
    report
}

/// The `simd_scan` experiment (`BENCH_7.json`): the vectorized scan
/// kernels and the zero-copy snapshot loader against their portable
/// counterparts.
///
/// Two contrasts, both on the paper's primary binary workload:
///
/// * **dispatch rows** — sequential `mss()` through a blocked-index
///   engine with runtime SIMD dispatch active vs forced-scalar kernels
///   (`sigstr_core::simd::set_force_scalar`, the same switch the
///   `SIGSTR_FORCE_SCALAR` env override flips). The scalar mode is
///   *exactly* the pre-SIMD code path — the `SIMD = false`
///   monomorphization compiles the lookahead memo away — so the
///   `speedup_vs_scalar` column is a true before/after contrast.
/// * **loader rows** — time-to-first-answer from a cold engine:
///   `Engine::load_snapshot_mmap` (map the file, verify sections lazily
///   on first touch) vs `Engine::load_snapshot_path` (bulk reads +
///   eager checksums), each followed by one *small range query*
///   (`mss_in` over the first 256 positions). A full-document scan
///   would bury the loader contrast under seconds of kernel work both
///   loaders pay identically; the range query is the serving pattern
///   the mmap loader exists for — answer a shard-local question before
///   the whole index has been paged in. Page-cache cold starts cannot
///   be forced portably, so both paths read a warm-cache file — the
///   mmap win measured here is the allocation + bulk-copy work it
///   skips, a lower bound on the cold-cache win.
///
/// Answers are asserted bit-identical across all four cells. The CI
/// gate reads `simd_mss` `speedup_vs_scalar` ≥ 1.3 (AVX2 runners) and
/// `mmap_ttfa` `speedup_vs_scalar` ≥ 2.0.
pub fn simd_scan(scale: Scale) -> Report {
    use sigstr_core::simd;

    let mut report = Report::new(
        "simd_scan",
        "SIMD scan kernels and mmap snapshot loads vs portable scalar / bulk-read paths",
        &["workload", "mode", "ms", "speedup_vs_scalar"],
    );
    let n = scale.pick(4_194_304, 1_048_576);
    let reps = scale.pick(9, 7);
    let k = 2;
    let (seq, model) = input(k, n);

    // Restore the dispatch the process came in with (the env override
    // must survive the experiment: CI's force-scalar job runs these
    // binaries too).
    let env_scalar =
        std::env::var_os(simd::FORCE_SCALAR_ENV).is_some_and(|v| !v.is_empty() && v != *"0");

    // Dispatch contrast: same engine, same query, kernels toggled.
    let engine = Engine::with_layout(&seq, model.clone(), CountsLayout::Blocked).expect("engine");
    let mut scalar_ms = 0.0;
    let mut answers = Vec::new();
    for (mode, force) in [
        ("scalar".to_string(), true),
        (simd::level().name().to_string(), false),
    ] {
        simd::set_force_scalar(force);
        let secs = median_secs(reps, || {
            engine.clear_cache();
            engine.mss().expect("mss")
        });
        answers.push(engine.mss().expect("mss"));
        let ms = secs * 1e3;
        if force {
            scalar_ms = ms;
        }
        report.push_row(vec![
            format!("simd_mss_k{k}_n{n}"),
            mode,
            cell_f(ms, 3),
            cell_f(scalar_ms / ms, 2),
        ]);
    }
    assert_eq!(
        answers[0], answers[1],
        "simd_scan: scalar and SIMD kernels disagree at n = {n}"
    );

    // Loader contrast: cold engine + first answer, bulk read vs mmap.
    let dir = std::env::temp_dir().join(format!("sigstr-simd-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench temp dir");
    let path = dir.join(format!("k{k}_n{n}.snap"));
    engine.write_snapshot_path(&path).expect("snapshot writes");
    let ttfa_range = 0..256.min(n);
    let mut read_ms = 0.0;
    let mut loaded_answers = Vec::new();
    for mode in ["read", "mmap"] {
        let secs = median_secs(reps, || {
            let loaded = if mode == "mmap" {
                Engine::load_snapshot_mmap(&path).expect("snapshot maps")
            } else {
                Engine::load_snapshot_path(&path).expect("snapshot loads")
            };
            loaded.mss_in(ttfa_range.clone()).expect("mss_in")
        });
        let loaded = if mode == "mmap" {
            Engine::load_snapshot_mmap(&path).expect("snapshot maps")
        } else {
            Engine::load_snapshot_path(&path).expect("snapshot loads")
        };
        loaded_answers.push(loaded.mss_in(ttfa_range.clone()).expect("mss_in"));
        let ms = secs * 1e3;
        if mode == "read" {
            read_ms = ms;
        }
        report.push_row(vec![
            format!("mmap_ttfa_k{k}_n{n}"),
            mode.to_string(),
            cell_f(ms, 3),
            cell_f(read_ms / ms, 2),
        ]);
    }
    assert_eq!(
        loaded_answers[0], loaded_answers[1],
        "simd_scan: mmap and read loaders disagree at n = {n}"
    );
    assert_eq!(
        engine.mss_in(ttfa_range.clone()).expect("mss_in"),
        loaded_answers[0],
        "simd_scan: loaded engines disagree with the built engine at n = {n}"
    );
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(&dir).ok();
    simd::set_force_scalar(env_scalar);

    report.note(format!(
        "k = {k}, n = {n}, blocked index, sequential mss; dispatch rows toggle the runtime \
         kernel selection on one engine (scalar mode is the exact pre-SIMD code path); \
         loader rows time cold-engine load + a first mss_in answer over the leading \
         256 positions of a warm-page-cache snapshot (the mmap win is the skipped \
         allocation + bulk-copy passes; both loaders pay the integrity checks); \
         median of {reps} runs per cell; active dispatch: {}",
        simd::level().name()
    ));
    report.note(
        "acceptance gates: simd_mss speedup_vs_scalar >= 1.3 (AVX2 runners) and \
         mmap_ttfa speedup_vs_scalar >= 2.0; all four cells answer bit-identically",
    );
    report
}

/// Request-latency percentiles (µs) over one keep-alive connection.
fn latencies_us(addr: &str, target: &str, warmups: usize, requests: usize) -> Vec<u64> {
    use sigstr_server::client::ClientConn;
    let mut conn = ClientConn::connect(addr).expect("bench client connects");
    for _ in 0..warmups {
        let response = conn.request("GET", target, None).expect("warmup");
        assert_eq!(response.status, 200, "{}", response.body_str());
    }
    (0..requests)
        .map(|_| {
            let start = std::time::Instant::now();
            let response = conn.request("GET", target, None).expect("request");
            assert_eq!(response.status, 200, "{}", response.body_str());
            start.elapsed().as_micros() as u64
        })
        .collect()
}

fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    samples.sort_unstable();
    samples[(((samples.len() - 1) as f64) * p).round() as usize]
}

/// The `router_fanout` experiment (`BENCH_6.json`): merged top-t latency
/// through the scatter-gather router over two shards, against one server
/// holding the whole corpus — healthy, and with the path to one shard
/// delayed 50 ms by the fault-injection proxy.
///
/// Two router instances front the same shard pair, each through its own
/// [`FaultProxy`](sigstr_router::fault::FaultProxy) so connection
/// numbering (which decides which connections the proxy delays) stays
/// deterministic per router. The hedged router's fixed trigger is
/// calibrated to the measured healthy p99, so the `delayed+hedged` row
/// shows what hedging buys: the duplicate attempt lands on a fast
/// connection and wins, keeping p99 near `trigger + RTT` instead of the
/// 50 ms delay the no-hedge router eats on every request. The CI gate
/// requires `delayed+hedged` p99 ≤ 2× the healthy routed p99.
pub fn router_fanout(scale: Scale) -> Report {
    use sigstr_router::fault::{FaultMode, FaultProxy};
    use sigstr_router::{HedgePolicy, RouterConfig, RouterServer};
    use sigstr_server::{Server, ServerConfig};
    use std::time::Duration;

    let mut report = Report::new(
        "router_fanout",
        "routed 2-shard merged top-t vs single server, healthy and with one shard delayed 50 ms",
        &["scenario", "requests", "p50_us", "p99_us", "p99_vs_healthy"],
    );
    let n = scale.pick(16_384, 4_096);
    let requests = scale.pick(400, 150);
    let delayed_requests = scale.pick(100, 40); // 50 ms each: keep the row bounded
    const DELAY_MS: u64 = 50;
    const DOCS: usize = 6;

    // Ring-partitioned shard corpora plus the all-documents reference
    // (sorted-name ingest keeps the global document order identical).
    let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
    let dirs: Vec<std::path::PathBuf> = ["s0", "s1", "all"]
        .iter()
        .map(|which| {
            let dir = std::env::temp_dir().join(format!("sigstr-router-bench-{which}-{tag}"));
            std::fs::remove_dir_all(&dir).ok();
            dir
        })
        .collect();
    let ring = sigstr_router::hash::Ring::new(2, RouterConfig::new(vec!["x".into()]).vnodes);
    {
        let mut shards: Vec<_> = dirs[..2]
            .iter()
            .map(|d| sigstr_corpus::Corpus::create(d).expect("corpus"))
            .collect();
        let mut all = sigstr_corpus::Corpus::create(&dirs[2]).expect("corpus");
        for i in 0..DOCS {
            let name = format!("doc{i}");
            let (seq, model) = input(2 + i % 2 * 2, n + i * 256);
            let owner = ring.shard_for(&name);
            shards[owner]
                .add_document(&name, &seq, model.clone(), CountsLayout::Auto)
                .expect("add to shard");
            all.add_document(&name, &seq, model, CountsLayout::Auto)
                .expect("add to reference");
        }
        assert!(
            shards.iter().all(|s| !s.is_empty()),
            "ring left a shard empty — change the document names"
        );
    }

    let boot_server = |dir: &std::path::Path| {
        let server = Server::bind(
            sigstr_corpus::Corpus::open(dir).expect("corpus reopens"),
            ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: 4,
                ..ServerConfig::default()
            },
        )
        .expect("server binds");
        let addr = server.local_addr().to_string();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run().expect("server runs"));
        (addr, handle, thread)
    };
    let servers: Vec<_> = dirs.iter().map(|d| boot_server(d)).collect();
    let shard_b: std::net::SocketAddr = servers[1].0.parse().expect("shard address");

    // One proxy per router: accept-order connection numbering (which
    // selects delayed connections) must not interleave across routers.
    let mut proxy_plain = FaultProxy::start(shard_b).expect("proxy");
    let mut proxy_hedge = FaultProxy::start(shard_b).expect("proxy");
    let boot_router = |proxy: &FaultProxy, hedge: HedgePolicy| {
        let mut config = RouterConfig::new(vec![servers[0].0.clone(), proxy.addr().to_string()]);
        config.service.addr = "127.0.0.1:0".into();
        config.service.threads = 4;
        config.hedge = hedge;
        // Only the bind-time probe round: background probes would dial
        // extra proxy connections and scramble the delay parity.
        config.probe_interval = Duration::from_secs(600);
        let router = RouterServer::bind(config).expect("router binds");
        let addr = router.local_addr().to_string();
        let handle = router.handle();
        let thread = std::thread::spawn(move || router.run().expect("router runs"));
        (addr, handle, thread)
    };

    let target = "/v1/merged/top?t=5";
    let mut single = latencies_us(&servers[2].0, target, 10, requests);

    let plain = boot_router(&proxy_plain, HedgePolicy::Disabled);
    let mut healthy = latencies_us(&plain.0, target, 10, requests);
    let healthy_p99 = percentile_us(&mut healthy, 0.99);

    // Routed answers must match the single server before any latency
    // claim means anything (bit-identity is pinned by the router's
    // integration tests; this guards the bench wiring itself).
    {
        use sigstr_server::client::ClientConn;
        let routed = ClientConn::connect(&plain.0)
            .and_then(|mut c| c.request("GET", target, None))
            .expect("routed");
        let direct = ClientConn::connect(&servers[2].0)
            .and_then(|mut c| c.request("GET", target, None))
            .expect("direct");
        let hits = |raw: &[u8]| {
            sigstr_server::json::Json::decode(std::str::from_utf8(raw).unwrap().trim())
                .unwrap()
                .get("hits")
                .unwrap()
                .encode()
                .unwrap()
        };
        assert_eq!(
            hits(&routed.body),
            hits(&direct.body),
            "routed != single-server answer"
        );
    }

    // Hedge trigger: the measured healthy p99, clamped to sane bounds —
    // late enough to stay quiet when healthy, early enough to beat the
    // injected 50 ms delay by an order of magnitude.
    let trigger_us = healthy_p99.clamp(1_000, 25_000);
    let hedged = boot_router(
        &proxy_hedge,
        HedgePolicy::Fixed(Duration::from_micros(trigger_us)),
    );
    latencies_us(&hedged.0, target, 10, 10); // warm the pool before the fault
    proxy_hedge.set_mode(FaultMode::DelayConns {
        every: 2,
        delay_ms: DELAY_MS,
    });
    let mut delayed_hedged = latencies_us(&hedged.0, target, 0, requests);

    proxy_plain.set_mode(FaultMode::DelayConns {
        every: 1,
        delay_ms: DELAY_MS,
    });
    let mut delayed_plain = latencies_us(&plain.0, target, 0, delayed_requests);

    let hedge_metrics = {
        use sigstr_server::client::ClientConn;
        let response = ClientConn::connect(&hedged.0)
            .and_then(|mut c| c.request("GET", "/metrics", None))
            .expect("metrics");
        let text = response.body_str().to_string();
        let value = |name: &str| {
            text.lines()
                .find_map(|l| {
                    l.strip_prefix(name)
                        .and_then(|r| r.trim().parse::<u64>().ok())
                })
                .unwrap_or(0)
        };
        (
            value("sigstr_router_hedges_total"),
            value("sigstr_router_hedge_wins_total"),
        )
    };

    for (scenario, samples, count) in [
        ("single", &mut single, requests),
        ("routed_healthy", &mut healthy, requests),
        ("routed_delayed_hedged", &mut delayed_hedged, requests),
        (
            "routed_delayed_nohedge",
            &mut delayed_plain,
            delayed_requests,
        ),
    ] {
        let p50 = percentile_us(samples, 0.50);
        let p99 = percentile_us(samples, 0.99);
        report.push_row(vec![
            scenario.to_string(),
            count.to_string(),
            p50.to_string(),
            p99.to_string(),
            cell_f(p99 as f64 / healthy_p99 as f64, 2),
        ]);
    }

    for (_, handle, thread) in [plain, hedged] {
        handle.shutdown();
        thread.join().expect("router thread");
    }
    proxy_plain.stop();
    proxy_hedge.stop();
    for (_, handle, thread) in servers {
        handle.shutdown();
        thread.join().expect("server thread");
    }
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }

    report.note(format!(
        "2 shards ({DOCS} documents, n ≈ {n}), merged GET {target}; delayed rows put \
         {DELAY_MS} ms on the proxied path to shard 1 (every 2nd connection for the hedged \
         router, every connection for the no-hedge router); hedge trigger fixed at the \
         healthy p99 = {trigger_us} µs; hedged router launched {} hedges, {} won",
        hedge_metrics.0, hedge_metrics.1
    ));
    report.note(
        "acceptance gate: routed_delayed_hedged p99_vs_healthy <= 2.0 (the hedge lands on \
         a fast connection and wins, so the injected 50 ms delay never reaches the caller); \
         routed_delayed_nohedge documents the counterfactual: every request eats the delay",
    );
    report
}

/// The `trace_overhead` experiment (`BENCH_10.json`): merged top-t
/// latency through a 2-shard routed fleet with end-to-end request
/// tracing enabled versus disabled (`--no-trace`).
///
/// Both fleets (shards + router each) run simultaneously over the same
/// corpus directories, and the measurement loop alternates between them
/// request by request so machine drift hits both scenarios equally.
/// Tracing on the hot path is one branch when disabled and, when
/// enabled, span bookkeeping on thread-local state plus one short
/// mutex-guarded ring-buffer push at seal — the CI gate pins the traced
/// p50 at ≤ 1.1× the untraced p50.
pub fn trace_overhead(scale: Scale) -> Report {
    use sigstr_router::{HedgePolicy, RouterConfig, RouterServer};
    use sigstr_server::client::ClientConn;
    use sigstr_server::{Server, ServerConfig};
    use std::time::Duration;

    let mut report = Report::new(
        "trace_overhead",
        "routed 2-shard merged top-t latency, request tracing on vs off",
        &[
            "scenario",
            "requests",
            "p50_us",
            "p99_us",
            "p50_vs_untraced",
        ],
    );
    let n = scale.pick(16_384, 4_096);
    let requests = scale.pick(600, 150);
    const DOCS: usize = 4;

    // Ring-partitioned shard corpora, shared by both fleets (opened
    // read-only by each server).
    let tag = format!("{}-{:?}", std::process::id(), std::thread::current().id());
    let dirs: Vec<std::path::PathBuf> = (0..2)
        .map(|i| {
            let dir = std::env::temp_dir().join(format!("sigstr-trace-bench-s{i}-{tag}"));
            std::fs::remove_dir_all(&dir).ok();
            dir
        })
        .collect();
    let ring = sigstr_router::hash::Ring::new(2, RouterConfig::new(vec!["x".into()]).vnodes);
    {
        let mut shards: Vec<_> = dirs
            .iter()
            .map(|d| sigstr_corpus::Corpus::create(d).expect("corpus"))
            .collect();
        for i in 0..DOCS {
            let name = format!("doc{i}");
            let (seq, model) = input(2 + i % 2 * 2, n + i * 256);
            shards[ring.shard_for(&name)]
                .add_document(&name, &seq, model, CountsLayout::Auto)
                .expect("add to shard");
        }
        assert!(
            shards.iter().all(|s| !s.is_empty()),
            "ring left a shard empty — change the document names"
        );
    }

    // One full fleet per scenario: tracing is a process-wide switch, so
    // the shards differ too, not just the router.
    let boot_fleet = |traced: bool| {
        let servers: Vec<_> = dirs
            .iter()
            .map(|dir| {
                let mut config = ServerConfig {
                    addr: "127.0.0.1:0".into(),
                    threads: 4,
                    ..ServerConfig::default()
                };
                config.trace.enabled = traced;
                let server = Server::bind(
                    sigstr_corpus::Corpus::open(dir).expect("corpus reopens"),
                    config,
                )
                .expect("server binds");
                let addr = server.local_addr().to_string();
                let handle = server.handle();
                let thread = std::thread::spawn(move || server.run().expect("server runs"));
                (addr, handle, thread)
            })
            .collect::<Vec<_>>();
        let mut config = RouterConfig::new(servers.iter().map(|(a, _, _)| a.clone()).collect());
        config.service.addr = "127.0.0.1:0".into();
        config.service.threads = 4;
        config.service.trace.enabled = traced;
        config.hedge = HedgePolicy::Disabled;
        config.probe_interval = Duration::from_secs(600);
        let router = RouterServer::bind(config).expect("router binds");
        let addr = router.local_addr().to_string();
        let handle = router.handle();
        let thread = std::thread::spawn(move || router.run().expect("router runs"));
        (addr, handle, thread, servers)
    };
    let traced_fleet = boot_fleet(true);
    let untraced_fleet = boot_fleet(false);

    let target = "/v1/merged/top?t=5";
    let mut traced_conn = ClientConn::connect(&traced_fleet.0).expect("client connects");
    let mut untraced_conn = ClientConn::connect(&untraced_fleet.0).expect("client connects");
    let timed_request = |conn: &mut ClientConn| {
        let start = std::time::Instant::now();
        let response = conn.request("GET", target, None).expect("request");
        assert_eq!(response.status, 200, "{}", response.body_str());
        start.elapsed().as_micros() as u64
    };
    for _ in 0..20 {
        timed_request(&mut traced_conn);
        timed_request(&mut untraced_conn);
    }
    let mut traced = Vec::with_capacity(requests);
    let mut untraced = Vec::with_capacity(requests);
    for _ in 0..requests {
        traced.push(timed_request(&mut traced_conn));
        untraced.push(timed_request(&mut untraced_conn));
    }

    // The traced fleet really traced: its recorder holds the requests.
    {
        let response = ClientConn::connect(&traced_fleet.0)
            .and_then(|mut c| c.request("GET", "/debug/traces?limit=1", None))
            .expect("traces");
        assert!(
            response.body_str().contains("\"spans\""),
            "traced router recorded nothing"
        );
        let response = ClientConn::connect(&untraced_fleet.0)
            .and_then(|mut c| c.request("GET", "/debug/traces?limit=1", None))
            .expect("traces");
        assert!(
            !response.body_str().contains("\"spans\""),
            "untraced router recorded a trace"
        );
    }

    let untraced_p50 = percentile_us(&mut untraced, 0.50);
    for (scenario, samples) in [("traced", &mut traced), ("untraced", &mut untraced)] {
        let p50 = percentile_us(samples, 0.50);
        let p99 = percentile_us(samples, 0.99);
        report.push_row(vec![
            scenario.to_string(),
            requests.to_string(),
            p50.to_string(),
            p99.to_string(),
            cell_f(p50 as f64 / untraced_p50 as f64, 3),
        ]);
    }

    for (_, handle, thread, servers) in [traced_fleet, untraced_fleet] {
        handle.shutdown();
        thread.join().expect("router thread");
        for (_, handle, thread) in servers {
            handle.shutdown();
            thread.join().expect("server thread");
        }
    }
    for dir in &dirs {
        std::fs::remove_dir_all(dir).ok();
    }

    report.note(format!(
        "2 shards ({DOCS} documents, n ≈ {n}), merged GET {target}, no hedging; both fleets \
         live simultaneously and the measurement loop alternates between them request by \
         request, so drift cancels; the traced fleet mints a trace per request at the router, \
         propagates it to every shard, and seals spans into each process's flight recorder"
    ));
    report.note(
        "acceptance gate: traced p50_vs_untraced <= 1.1 (tracing must stay within 10% of \
         the untraced data path at the median)",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke_shape_and_speedup_sanity() {
        // One tiny run: shape checks only (timing noise is not asserted
        // here; the CI gate reads the real run's JSON).
        let r = bench_smoke(Scale::Quick);
        assert_eq!(r.rows.len(), 6);
        assert_eq!(r.columns.len(), 4);
        for row in &r.rows {
            let ms: f64 = row[2].parse().unwrap();
            let speedup: f64 = row[3].parse().unwrap();
            assert!(ms > 0.0);
            assert!(speedup > 0.0);
        }
        // Reference rows are speedup 1.00 by construction.
        assert_eq!(r.rows[0][3], "1.00");
    }

    #[test]
    fn counts_footprint_shape_and_ratio() {
        // Shape-check at a reduced hand-rolled scale: run the real
        // experiment only in Quick (CI) / Full (soak) contexts — here we
        // just assert the report contract on the quick run's first size
        // by building the engines directly.
        let (seq, model) = input(4, 8_192);
        let flat = Engine::with_layout(&seq, model.clone(), CountsLayout::Flat).unwrap();
        let blocked = Engine::with_layout(&seq, model.clone(), CountsLayout::Blocked).unwrap();
        let ratio = flat.index_bytes() as f64 / blocked.index_bytes() as f64;
        assert!(ratio >= 4.0, "footprint ratio {ratio} below 4x at k = 4");
        assert_eq!(flat.mss().unwrap(), blocked.mss().unwrap());
    }

    #[test]
    fn snapshot_load_roundtrip_and_win() {
        // Hand-rolled small-scale version of the experiment contract: a
        // written snapshot loads into a bit-identical engine, and the
        // blocked snapshot is much smaller than the flat one (the real
        // speedup gate reads the CI run's JSON at the quick sizes).
        let dir =
            std::env::temp_dir().join(format!("sigstr-snapshot-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (seq, model) = input(4, 16_384);
        let mut sizes = Vec::new();
        for (layout, label) in [
            (CountsLayout::Flat, "flat"),
            (CountsLayout::Blocked, "blocked"),
        ] {
            let engine = Engine::with_layout(&seq, model.clone(), layout).unwrap();
            let path = dir.join(format!("{label}.snap"));
            engine.write_snapshot_path(&path).unwrap();
            let loaded = Engine::load_snapshot_path(&path).unwrap();
            assert_eq!(loaded.mss().unwrap(), engine.mss().unwrap());
            assert_eq!(loaded.top_t(3).unwrap(), engine.top_t(3).unwrap());
            sizes.push(std::fs::metadata(&path).unwrap().len());
        }
        assert!(
            sizes[1] * 3 < sizes[0],
            "blocked snapshot {} not ≥3x smaller than flat {}",
            sizes[1],
            sizes[0]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn server_throughput_shape_and_liveness() {
        // The real scaling gate reads the CI run's JSON; here we assert
        // the report contract and that every concurrency level actually
        // moved traffic.
        let r = server_throughput(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.columns.len(), 5);
        for row in &r.rows {
            let requests: u64 = row[1].parse().unwrap();
            let rps: f64 = row[3].parse().unwrap();
            let scaling: f64 = row[4].parse().unwrap();
            assert!(requests > 0, "no traffic at {} clients", row[0]);
            assert!(rps > 0.0 && scaling > 0.0);
        }
        assert_eq!(r.rows[0][4], "1.00"); // single client is the baseline
    }

    #[test]
    fn engine_amortization_shape_and_cache_win() {
        let r = engine_amortization(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.columns.len(), 4);
        for row in &r.rows {
            let oneshot: f64 = row[1].parse().unwrap();
            let engine: f64 = row[2].parse().unwrap();
            let ratio: f64 = row[3].parse().unwrap();
            assert!(oneshot > 0.0 && engine > 0.0 && ratio > 0.0);
        }
        // At 100 repeated queries the cache absorbs 99 scans: the
        // amortization must comfortably clear the CI gate even on a noisy
        // machine (the true value approaches ~100).
        let at_100: f64 = r.rows[2][3].parse().unwrap();
        let at_1: f64 = r.rows[0][3].parse().unwrap();
        assert!(at_100 >= 3.0, "amortization at 100 queries: {at_100}");
        assert!(at_100 > at_1, "no amortization gain: {at_1} -> {at_100}");
    }
}
