//! Figures 1–4: synthetic-workload complexity and `X²_max` behaviour.

use sigstr_core::{find_mss, Model};
use sigstr_gen::{dist, generate_iid, seeded_rng, StringKind};
use sigstr_stats::descriptive::fit_line;

use crate::report::{cell_f, cell_u, Report};
use crate::{trivial_iterations, Scale};

/// Figure 1a: iterations vs string length `n`, ours vs trivial, `k = 2`.
///
/// The paper plots `ln(iterations)` against `ln n`; ours rises with slope
/// ≈ 1.5, the trivial scan with slope ≈ 2.
pub fn fig1a(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig1a",
        "iterations vs n (k = 2): ours ~n^1.5, trivial ~n^2",
        &[
            "n",
            "ln n",
            "iters_ours",
            "ln iters_ours",
            "iters_trivial",
            "ln iters_trivial",
        ],
    );
    let exponents: Vec<u32> = scale.pick((9..=17).collect(), (8..=11).collect());
    let model = Model::uniform(2).expect("k = 2 model");
    let mut ours_points = Vec::new();
    let mut trivial_points = Vec::new();
    for (run, &e) in exponents.iter().enumerate() {
        let n = 1usize << e;
        let mut rng = seeded_rng(0x00F1_61A0 + run as u64);
        let seq = generate_iid(n, &model, &mut rng).expect("generation");
        let result = find_mss(&seq, &model).expect("mss");
        let ours = result.stats.examined;
        let trivial = trivial_iterations(n);
        ours_points.push(((n as f64).ln(), (ours as f64).ln()));
        trivial_points.push(((n as f64).ln(), (trivial as f64).ln()));
        report.push_row(vec![
            cell_u(n as u64),
            cell_f((n as f64).ln(), 2),
            cell_u(ours),
            cell_f((ours as f64).ln(), 2),
            cell_u(trivial),
            cell_f((trivial as f64).ln(), 2),
        ]);
    }
    if let Some(fit) = fit_line(&ours_points) {
        report.note(format!(
            "ours: fitted log-log slope = {:.3} (paper: ~1.5), R² = {:.4}",
            fit.slope, fit.r_squared
        ));
    }
    if let Some(fit) = fit_line(&trivial_points) {
        report.note(format!(
            "trivial: fitted log-log slope = {:.3} (exact 2 asymptotically)",
            fit.slope
        ));
    }
    report.note(
        "trivial iteration count is the closed form n(n+1)/2 (its scan examines every substring)",
    );
    report
}

/// Figure 1b: iterations vs `n` for alphabet sizes `k ∈ {2, 3, 5, 10}` —
/// `k` has no significant effect.
pub fn fig1b(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig1b",
        "iterations vs n for k = 2,3,5,10: alphabet size has no significant effect",
        &["n", "k=2", "k=3", "k=5", "k=10"],
    );
    let exponents: Vec<u32> = scale.pick((9..=15).collect(), (8..=10).collect());
    let ks = [2usize, 3, 5, 10];
    let mut per_k_iters: Vec<Vec<f64>> = vec![Vec::new(); ks.len()];
    for &e in &exponents {
        let n = 1usize << e;
        let mut row = vec![cell_u(n as u64)];
        for (ki, &k) in ks.iter().enumerate() {
            let model = Model::uniform(k).expect("model");
            let mut rng = seeded_rng(0x00F1_61B0 + (e as u64) * 10 + ki as u64);
            let seq = generate_iid(n, &model, &mut rng).expect("generation");
            let result = find_mss(&seq, &model).expect("mss");
            per_k_iters[ki].push(result.stats.examined as f64);
            row.push(cell_u(result.stats.examined));
        }
        report.push_row(row);
    }
    // Shape check: max/min iteration ratio across k at the largest n.
    let last: Vec<f64> = per_k_iters
        .iter()
        .map(|v| *v.last().expect("nonempty"))
        .collect();
    let spread = last.iter().cloned().fold(f64::MIN, f64::max)
        / last.iter().cloned().fold(f64::MAX, f64::min);
    report.note(format!(
        "iteration spread across k at the largest n: {spread:.2}x (paper: no significant effect)"
    ));
    report
}

/// Figure 2: `X²_max` grows as ≈ `2·ln n` (slope 2 against `ln n`).
pub fn fig2(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig2",
        "X²_max vs ln n (k = 2): slope ~2 (X²_max ≈ 2 ln n)",
        &["n", "ln n", "mean X²_max", "runs"],
    );
    let exponents: Vec<u32> = scale.pick((9..=16).collect(), (8..=11).collect());
    let runs = scale.pick(15, 2);
    let model = Model::uniform(2).expect("model");
    let mut points = Vec::new();
    for &e in &exponents {
        let n = 1usize << e;
        let mut values = Vec::with_capacity(runs);
        for r in 0..runs {
            let mut rng = seeded_rng(0x00F1_6200 + (e as u64) * 100 + r as u64);
            let seq = generate_iid(n, &model, &mut rng).expect("generation");
            values.push(find_mss(&seq, &model).expect("mss").best.chi_square);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        points.push(((n as f64).ln(), mean));
        report.push_row(vec![
            cell_u(n as u64),
            cell_f((n as f64).ln(), 2),
            cell_f(mean, 2),
            cell_u(runs as u64),
        ]);
    }
    if let Some(fit) = fit_line(&points) {
        report.note(format!(
            "fitted X²_max-vs-ln-n slope = {:.3} (paper: ~2, i.e. X²_max ≈ 2 ln n), R² = {:.4}",
            fit.slope, fit.r_squared
        ));
    }
    report
}

/// Figure 3: `X²_max` and iterations for the heterogeneous multinomials
/// `S1` (`k = 3`) and `S2` (`k = 5`) as `p₀` sweeps 0.05–0.25; `p₀`
/// changes `X²_max` but not the iteration count.
pub fn fig3(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig3",
        "X²_max and iterations vs p0; S1: k=3 P={p0,0.5-p0,0.5}; S2: k=5 P={p0,0.5-p0,0.1,0.2,0.2}",
        &[
            "p0",
            "S1 X²_max",
            "S1 iters(1e4)",
            "S2 X²_max",
            "S2 iters(1e4)",
        ],
    );
    let n = scale.pick(10_000, 2_000); // paper: n = 10^4
    for i in 1..=5u32 {
        let p0 = 0.05 * f64::from(i);
        let s1_model = dist::fig3_s1(p0).expect("S1 model");
        let s2_model = dist::fig3_s2(p0).expect("S2 model");
        let mut rng = seeded_rng(0x00F1_6300 + u64::from(i));
        let s1 = generate_iid(n, &s1_model, &mut rng).expect("gen S1");
        let s2 = generate_iid(n, &s2_model, &mut rng).expect("gen S2");
        let r1 = find_mss(&s1, &s1_model).expect("mss S1");
        let r2 = find_mss(&s2, &s2_model).expect("mss S2");
        report.push_row(vec![
            cell_f(p0, 2),
            cell_f(r1.best.chi_square, 2),
            cell_f(r1.stats.examined as f64 / 1e4, 1),
            cell_f(r2.best.chi_square, 2),
            cell_f(r2.stats.examined as f64 / 1e4, 1),
        ]);
    }
    report
        .note("paper: changing p0 shifts X²_max but leaves the iteration count roughly unchanged");
    report
}

fn fig4_row(kinds: &[StringKind], n: usize, k: usize, seed: u64) -> Vec<u64> {
    kinds
        .iter()
        .enumerate()
        .map(|(i, kind)| {
            let mut rng = seeded_rng(seed + i as u64);
            let seq = kind.generate(n, k, &mut rng).expect("generation");
            // Score against the *uniform* null model, as in the paper's
            // comparison (the strings deviate from the null).
            let model = Model::uniform(k).expect("model");
            find_mss(&seq, &model).expect("mss").stats.examined
        })
        .collect()
}

/// Figure 4a: iterations for Null/Geometric/Zipfian/Markov strings as `n`
/// grows (`k = 5`); the null string is the worst case.
pub fn fig4a(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig4a",
        "iterations (millions) vs n for string families (k = 5); null input is the worst case",
        &["n", "Null", "Geometric", "Zipfian", "Markov"],
    );
    let sizes: Vec<usize> = scale.pick(vec![10_000, 20_000, 50_000], vec![1_000, 2_000, 5_000]);
    let kinds = StringKind::figure4();
    for (i, &n) in sizes.iter().enumerate() {
        let iters = fig4_row(&kinds, n, 5, 0x00F1_64A0 + i as u64 * 10);
        let mut row = vec![cell_u(n as u64)];
        row.extend(iters.iter().map(|&it| cell_f(it as f64 / 1e6, 3)));
        report.push_row(row);
        let null_iters = iters[0];
        if iters.iter().skip(1).any(|&other| other > null_iters) {
            report.note(format!(
                "n = {n}: a non-null family exceeded the null iteration count (sampling noise)"
            ));
        }
    }
    report.note("paper: the null-model string requires the maximum iterations in all cases");
    report
}

/// Figure 4b: iterations for the same families as `k` varies
/// (`n = 20000`).
pub fn fig4b(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig4b",
        "iterations (millions) vs k for string families (n = 20000)",
        &["k", "Null", "Geometric", "Zipfian", "Markov"],
    );
    let n = scale.pick(20_000, 2_000);
    let kinds = StringKind::figure4();
    for (i, &k) in [2usize, 3, 5].iter().enumerate() {
        let iters = fig4_row(&kinds, n, k, 0x00F1_64B0 + i as u64 * 10);
        let mut row = vec![cell_u(k as u64)];
        row.extend(iters.iter().map(|&it| cell_f(it as f64 / 1e6, 3)));
        report.push_row(row);
    }
    report.note("paper: null maximal across k as well");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1a_quick_shape() {
        let r = fig1a(Scale::Quick);
        assert_eq!(r.columns.len(), 6);
        assert_eq!(r.rows.len(), 4);
        // Slope note present and in a sane band.
        let slope_note = r.notes.iter().find(|n| n.starts_with("ours")).unwrap();
        let slope: f64 = slope_note
            .split('=')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            (1.1..=1.9).contains(&slope),
            "quick-scale slope {slope} out of band"
        );
    }

    #[test]
    fn fig1b_quick_k_invariance() {
        let r = fig1b(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        // Spread across k should be modest (well under the n-growth factor).
        let note = r.notes.iter().find(|n| n.contains("spread")).unwrap();
        let spread: f64 = note
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .trim_end_matches(|c: char| !c.is_ascii_digit() && c != '.')
            .trim_end_matches('x')
            .parse()
            .unwrap_or(1.0);
        assert!(spread < 4.0, "k-spread {spread} too large");
    }

    #[test]
    fn fig2_quick_x2max_grows() {
        let r = fig2(Scale::Quick);
        let first: f64 = r.rows.first().unwrap()[2].parse().unwrap();
        let last: f64 = r.rows.last().unwrap()[2].parse().unwrap();
        assert!(last > first, "X²_max did not grow with n");
    }

    #[test]
    fn fig3_quick_runs() {
        let r = fig3(Scale::Quick);
        assert_eq!(r.rows.len(), 5);
    }

    #[test]
    fn fig4_quick_null_usually_max() {
        let r = fig4a(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        let rb = fig4b(Scale::Quick);
        assert_eq!(rb.rows.len(), 3);
    }
}
