//! Figures 5–7: the top-t, threshold and min-length variants.

use sigstr_core::{above_threshold, mss_min_length, top_t, Model};
use sigstr_gen::{generate_iid, seeded_rng};
use sigstr_stats::descriptive::fit_line;

use crate::report::{cell_f, cell_u, Report};
use crate::{time, trivial_iterations, trivial_iterations_minlen, Scale};

/// Figure 5a: top-t wall-clock vs `n` for t ∈ {1 (MSS), 10, 100, 2000} —
/// all scale as `n^1.5`.
pub fn fig5a(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig5a",
        "top-t time (µs) vs n for t = 1 (MSS), 10, 100, 2000: slope ~1.5 for all",
        &["n", "MSS", "Top-10", "Top-100", "Top-2000"],
    );
    let exponents: Vec<u32> = scale.pick((10..=16).collect(), (9..=11).collect());
    let ts = [1usize, 10, 100, 2000];
    let model = Model::uniform(2).expect("model");
    let mut mss_points = Vec::new();
    for &e in &exponents {
        let n = 1usize << e;
        let mut rng = seeded_rng(0x00F1_65A0 + u64::from(e));
        let seq = generate_iid(n, &model, &mut rng).expect("generation");
        let mut row = vec![cell_u(n as u64)];
        for (ti, &t) in ts.iter().enumerate() {
            let (_, elapsed) = time(|| top_t(&seq, &model, t).expect("top-t"));
            let micros = elapsed.as_secs_f64() * 1e6;
            if ti == 0 {
                mss_points.push(((n as f64).ln(), micros.max(1.0).ln()));
            }
            row.push(cell_f(micros, 0));
        }
        report.push_row(row);
    }
    if let Some(fit) = fit_line(&mss_points) {
        report.note(format!(
            "MSS (t = 1): fitted log-log time slope = {:.3} (paper: ~1.5)",
            fit.slope
        ));
    }
    report.note("wall-clock µs on this machine; absolute values differ from the 2012 testbed");
    report
}

/// Figure 5b: top-t wall-clock vs `t` for n ∈ {500, 2000, 10000} — flat
/// until `t` approaches `n`, then the exponent bends toward 2.
pub fn fig5b(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig5b",
        "top-t time (µs) vs t for n = 500, 2000, 10000: cost rises once t ~ n",
        &["t", "n=500", "n=2000", "n=10000"],
    );
    let ns: Vec<usize> = scale.pick(vec![500, 2000, 10_000], vec![200, 500, 1_000]);
    let t_exponents: Vec<u32> = scale.pick((0..=12).collect(), (0..=8).collect());
    let model = Model::uniform(2).expect("model");
    let seqs: Vec<_> = ns
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let mut rng = seeded_rng(0x00F1_65B0 + i as u64);
            generate_iid(n, &model, &mut rng).expect("generation")
        })
        .collect();
    let mut small_n_iters: Vec<(u64, u64)> = Vec::new(); // (t, examined) for smallest n
    for &te in &t_exponents {
        let t = 1usize << te;
        let mut row = vec![cell_u(t as u64)];
        for (i, seq) in seqs.iter().enumerate() {
            let (result, elapsed) = time(|| top_t(seq, &model, t).expect("top-t"));
            row.push(cell_f(elapsed.as_secs_f64() * 1e6, 0));
            if i == 0 {
                small_n_iters.push((t as u64, result.stats.examined));
            }
        }
        report.push_row(row);
    }
    // Shape check: iterations at the smallest n approach the trivial count
    // once t exceeds n.
    let n0 = ns[0];
    if let (Some(first), Some(last)) = (small_n_iters.first(), small_n_iters.last()) {
        report.note(format!(
            "n = {n0}: examined {} at t = 1 vs {} at t = {} (trivial bound {})",
            first.1,
            last.1,
            last.0,
            trivial_iterations(n0)
        ));
    }
    report
}

/// Figure 6: threshold-variant iterations vs `α₀` — near-trivial at
/// `α₀ = 0`, dropping sharply once `α₀` clears `X²_max`, then decaying as
/// `1/√α₀`.
pub fn fig6(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig6",
        "threshold variant: iterations vs alpha0 (k = 2), ours vs trivial",
        &[
            "alpha0",
            "iters_ours",
            "ln iters_ours",
            "iters_trivial",
            "matches",
        ],
    );
    // Paper uses n = 10^5; alpha0 = 0 forces a full quadratic scan, so the
    // full scale uses n = 30000 to keep the zero point feasible (shape is
    // unchanged); quick uses 3000.
    let n = scale.pick(30_000, 3_000);
    let model = Model::uniform(2).expect("model");
    let mut rng = seeded_rng(0x00F1_6600);
    let seq = generate_iid(n, &model, &mut rng).expect("generation");
    let trivial = trivial_iterations(n);
    for alpha_step in 0..=10u32 {
        let alpha = f64::from(alpha_step) * 5.0;
        let result = above_threshold(&seq, &model, alpha).expect("threshold");
        report.push_row(vec![
            cell_f(alpha, 0),
            cell_u(result.stats.examined),
            cell_f((result.stats.examined as f64).max(1.0).ln(), 2),
            cell_u(trivial),
            cell_u(result.items.len() as u64),
        ]);
    }
    report.note(format!(
        "n = {n} (paper: 10^5; reduced so the alpha0 = 0 full scan stays feasible — shape preserved)"
    ));
    report.note("paper: sharp drop until alpha0 ~ X²_max, then gradual ~1/sqrt(alpha0) decay");
    report
}

/// Figure 7: min-length iterations vs `Γ₀` — slow decrease, then rapid
/// approach to 0 as `Γ₀ → n`.
pub fn fig7(scale: Scale) -> Report {
    let mut report = Report::new(
        "fig7",
        "min-length variant: iterations vs Gamma0 (k = 2), ours vs trivial",
        &[
            "Gamma0",
            "ln Gamma0",
            "iters_ours",
            "ln iters_ours",
            "iters_trivial",
        ],
    );
    let n = scale.pick(100_000, 4_000);
    let model = Model::uniform(2).expect("model");
    let mut rng = seeded_rng(0x00F1_6700);
    let seq = generate_iid(n, &model, &mut rng).expect("generation");
    // Paper sweeps ln Γ₀ from ~10 to ~11.6 (Γ₀ = 22k … 110k at n = 10^5):
    // the top decade of Γ₀/n ∈ [0.22, 1). We sweep the same ratios.
    let ratios = [0.22, 0.35, 0.5, 0.65, 0.8, 0.9, 0.96, 0.99];
    for &ratio in &ratios {
        let gamma0 = ((n as f64) * ratio) as usize;
        if gamma0 + 1 > n {
            continue;
        }
        let result = mss_min_length(&seq, &model, gamma0).expect("min-length");
        report.push_row(vec![
            cell_u(gamma0 as u64),
            cell_f((gamma0 as f64).ln(), 2),
            cell_u(result.stats.examined),
            cell_f((result.stats.examined as f64).max(1.0).ln(), 2),
            cell_u(trivial_iterations_minlen(n, gamma0)),
        ]);
    }
    report
        .note("paper: iterations decrease slowly as Gamma0 grows, then rapidly approach 0 near n");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5a_quick_rows() {
        let r = fig5a(Scale::Quick);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.columns.len(), 5);
    }

    #[test]
    fn fig5b_quick_runs_and_notes() {
        let r = fig5b(Scale::Quick);
        assert_eq!(r.rows.len(), 9);
        assert!(r.notes.iter().any(|n| n.contains("examined")));
    }

    #[test]
    fn fig6_quick_monotone_decreasing() {
        let r = fig6(Scale::Quick);
        let iters: Vec<u64> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        // alpha0 = 0 must equal the trivial count.
        let trivial: u64 = r.rows[0][3].parse().unwrap();
        assert_eq!(iters[0], trivial);
        // Iterations must never increase as alpha0 grows.
        for pair in iters.windows(2) {
            assert!(pair[1] <= pair[0], "iterations increased with alpha0");
        }
        // And must drop substantially by alpha0 = 50.
        assert!(*iters.last().unwrap() < trivial / 10);
    }

    #[test]
    fn fig7_quick_decreasing_trend() {
        let r = fig7(Scale::Quick);
        let iters: Vec<u64> = r.rows.iter().map(|row| row[2].parse().unwrap()).collect();
        // The paper's claim is a trend, not a per-instance guarantee:
        // tolerate small adjacent wobble but require the overall decrease.
        for pair in iters.windows(2) {
            assert!(
                (pair[1] as f64) <= pair[0] as f64 * 1.15,
                "iterations jumped with Gamma0: {} -> {}",
                pair[0],
                pair[1]
            );
        }
        assert!(
            *iters.last().unwrap() < iters[0] / 10,
            "iterations failed to collapse near Gamma0 = n: {iters:?}"
        );
    }
}
