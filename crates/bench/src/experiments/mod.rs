//! One function per paper table/figure. See the crate docs for the index.

pub mod applications;
pub mod perf;
pub mod synthetic;
pub mod tables;
pub mod variants;

use crate::report::Report;
use crate::Scale;

/// An experiment runner: takes a scale, returns a report.
pub type Runner = fn(Scale) -> Report;

/// Every experiment, in paper order: `(id, runner)`.
pub fn all() -> Vec<(&'static str, Runner)> {
    vec![
        ("fig1a", synthetic::fig1a as Runner),
        ("fig1b", synthetic::fig1b),
        ("fig2", synthetic::fig2),
        ("fig3", synthetic::fig3),
        ("fig4a", synthetic::fig4a),
        ("fig4b", synthetic::fig4b),
        ("fig5a", variants::fig5a),
        ("fig5b", variants::fig5b),
        ("fig6", variants::fig6),
        ("fig7", variants::fig7),
        ("table1", tables::table1),
        ("table2", tables::table2),
        ("table3", applications::table3),
        ("table4", applications::table4),
        ("table5", applications::table5),
        ("table6", applications::table6),
        ("bench_smoke", perf::bench_smoke),
        ("engine_amortization", perf::engine_amortization),
        ("counts_footprint", perf::counts_footprint),
        ("snapshot_load", perf::snapshot_load),
        ("server_throughput", perf::server_throughput),
        ("router_fanout", perf::router_fanout),
        ("simd_scan", perf::simd_scan),
        ("trace_overhead", perf::trace_overhead),
    ]
}

/// Find an experiment runner by id.
pub fn by_id(id: &str) -> Option<Runner> {
    all()
        .into_iter()
        .find(|(name, _)| *name == id)
        .map(|(_, f)| f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ids: Vec<&str> = all().iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 24);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 24, "duplicate experiment ids");
        assert!(by_id("fig1a").is_some());
        assert!(by_id("table6").is_some());
        assert!(by_id("bench_smoke").is_some());
        assert!(by_id("engine_amortization").is_some());
        assert!(by_id("counts_footprint").is_some());
        assert!(by_id("snapshot_load").is_some());
        assert!(by_id("server_throughput").is_some());
        assert!(by_id("router_fanout").is_some());
        assert!(by_id("simd_scan").is_some());
        assert!(by_id("trace_overhead").is_some());
        assert!(by_id("bogus").is_none());
    }
}
