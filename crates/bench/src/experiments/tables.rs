//! Tables 1–2: algorithm comparison on synthetic strings and the
//! cryptology (RNG-audit) study.

use sigstr_core::{baseline, find_mss, Model};
use sigstr_gen::markov::generate_binary_persistence;
use sigstr_gen::{generate_iid, seeded_rng};

use crate::report::{cell_f, cell_u, Report};
use crate::{fmt_duration, time, Scale};

/// Table 1: average `X²_max` and wall-clock of Trivial / Ours / ARLM /
/// AGMM on null strings of 20 000 and 80 000 characters.
pub fn table1(scale: Scale) -> Report {
    let mut report = Report::new(
        "table1",
        "comparison with other techniques, synthetic null strings (k = 2)",
        &["algo", "n", "avg X²_max", "avg time"],
    );
    let sizes: Vec<usize> = scale.pick(vec![20_000, 80_000], vec![2_000, 8_000]);
    let runs = scale.pick(3, 2);
    let model = Model::uniform(2).expect("model");
    type Algo = (
        &'static str,
        fn(&sigstr_core::Sequence, &Model) -> sigstr_core::Result<sigstr_core::MssResult>,
    );
    let algos: Vec<Algo> = vec![
        ("Trivial", baseline::trivial::find_mss),
        ("Our", find_mss),
        ("ARLM", baseline::arlm::find_mss),
        ("AGMM", baseline::agmm::find_mss),
    ];
    for &n in &sizes {
        // Same inputs for every algorithm.
        let seqs: Vec<_> = (0..runs)
            .map(|r| {
                let mut rng = seeded_rng(0x7AB1_E100 + n as u64 + r as u64 * 1000);
                generate_iid(n, &model, &mut rng).expect("generation")
            })
            .collect();
        for (name, algo) in &algos {
            let mut x2_sum = 0.0;
            let mut time_sum = std::time::Duration::ZERO;
            for seq in &seqs {
                let (result, elapsed) = time(|| algo(seq, &model).expect("mss"));
                x2_sum += result.best.chi_square;
                time_sum += elapsed;
            }
            report.push_row(vec![
                (*name).to_string(),
                cell_u(n as u64),
                cell_f(x2_sum / runs as f64, 2),
                fmt_duration(time_sum / runs as u32),
            ]);
        }
    }
    report.note("paper Table 1: Trivial/Our/ARLM agree on X²_max; AGMM is fastest but lower X²_max; Our is orders faster than Trivial at large n");
    report
}

/// Table 2: `X²_max` of binary persistence strings as `n` and the repeat
/// probability `p` vary — the cryptology RNG audit. `p = 0.5` is a perfect
/// generator (`X²_max ≈ 2 ln n`); bias inflates `X²_max` sharply.
pub fn table2(scale: Scale) -> Report {
    let mut report = Report::new(
        "table2",
        "X²_max vs n and persistence p (RNG audit, k = 2, uniform null)",
        &["n", "p=0.50", "p=0.55", "p=0.60", "p=0.80"],
    );
    let sizes: Vec<usize> = scale.pick(vec![1_000, 5_000, 10_000, 20_000], vec![1_000, 2_000]);
    let ps = [0.50, 0.55, 0.60, 0.80];
    let runs = scale.pick(3, 2);
    let model = Model::uniform(2).expect("model");
    for &n in &sizes {
        let mut row = vec![cell_u(n as u64)];
        for (pi, &p) in ps.iter().enumerate() {
            let mut sum = 0.0;
            for r in 0..runs {
                let mut rng = seeded_rng(0x7AB1_E200 + n as u64 + pi as u64 * 17 + r as u64 * 1009);
                let seq = generate_binary_persistence(n, p, &mut rng).expect("generation");
                sum += find_mss(&seq, &model).expect("mss").best.chi_square;
            }
            row.push(cell_f(sum / runs as f64, 2));
        }
        report.push_row(row);
    }
    report.note("paper Table 2: X²_max minimal at p = 0.5 and increasing in both n and p");
    report.note("p = 0.5 column ≈ 2 ln n benchmark (paper §7.4: deviation from it flags hidden correlation)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_quick_shape_and_ordering() {
        let r = table1(Scale::Quick);
        assert_eq!(r.rows.len(), 8); // 4 algorithms × 2 sizes
                                     // Per size: Trivial and Our report the same X²_max; AGMM at most
                                     // that.
        for size_rows in r.rows.chunks(4) {
            let trivial: f64 = size_rows[0][2].parse().unwrap();
            let ours: f64 = size_rows[1][2].parse().unwrap();
            let arlm: f64 = size_rows[2][2].parse().unwrap();
            let agmm: f64 = size_rows[3][2].parse().unwrap();
            assert!(
                (trivial - ours).abs() < 1e-6,
                "ours {ours} != trivial {trivial}"
            );
            assert!(arlm <= trivial + 1e-6);
            assert!(agmm <= trivial + 1e-6);
        }
    }

    #[test]
    fn table2_quick_bias_inflates_x2() {
        let r = table2(Scale::Quick);
        for row in &r.rows {
            let fair: f64 = row[1].parse().unwrap();
            let heavy: f64 = row[4].parse().unwrap();
            assert!(
                heavy > 2.0 * fair,
                "p = 0.8 should inflate X²_max strongly: {fair} vs {heavy}"
            );
        }
    }
}
