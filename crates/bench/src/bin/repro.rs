//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro <experiment-id>... [--quick] [--out DIR]
//! repro all [--quick]
//! repro list
//! ```
//!
//! Prints each report to stdout and writes `DIR/<id>.tsv` plus the
//! machine-readable `DIR/<id>.json` (default `results/`).

use std::process::ExitCode;

use sigstr_bench::experiments;
use sigstr_bench::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <id>...|all|list [--quick] [--out DIR]");
        return ExitCode::from(2);
    }
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Full;
    let mut out_dir = String::from("results");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => out_dir = dir.clone(),
                    None => {
                        eprintln!("--out needs a directory");
                        return ExitCode::from(2);
                    }
                }
            }
            "list" => {
                for (id, _) in experiments::all() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }
    if ids.iter().any(|id| id == "all") {
        ids = experiments::all()
            .iter()
            .map(|(id, _)| id.to_string())
            .collect();
    }
    if ids.is_empty() {
        eprintln!("no experiments selected");
        return ExitCode::from(2);
    }
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    for id in &ids {
        let Some(runner) = experiments::by_id(id) else {
            eprintln!("unknown experiment `{id}` (try `repro list`)");
            return ExitCode::from(2);
        };
        eprintln!("running {id} ({scale:?})...");
        let started = std::time::Instant::now();
        let report = runner(scale);
        println!("{}", report.render());
        println!("[{id} took {:.2}s]\n", started.elapsed().as_secs_f64());
        let path = format!("{out_dir}/{id}.tsv");
        if let Err(e) = std::fs::write(&path, report.to_tsv()) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        let json_path = format!("{out_dir}/{id}.json");
        if let Err(e) = std::fs::write(&json_path, report.to_json()) {
            eprintln!("cannot write {json_path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
