//! Reproduction harness for every table and figure of the paper's
//! evaluation (§7).
//!
//! Each experiment is a pure function returning a [`report::Report`]
//! (columns + rows + notes), so the `repro` binary, the integration tests
//! and `EXPERIMENTS.md` all share one implementation. Experiments accept a
//! [`Scale`] so CI can smoke-test at `Quick` sizes while the full run uses
//! the paper's parameters (or the closest laptop-feasible setting, with
//! deviations noted in the report itself).
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `fig1a`, `fig1b` | Fig. 1: iteration scaling vs `n` and `k` |
//! | `fig2` | Fig. 2: `X²_max` vs `ln n` (slope ≈ 2) |
//! | `fig3` | Fig. 3: heterogeneous multinomials (`S1`, `S2`) |
//! | `fig4a`, `fig4b` | Fig. 4: non-null string families |
//! | `fig5a`, `fig5b` | Fig. 5: top-t timing |
//! | `fig6` | Fig. 6: threshold variant vs `α₀` |
//! | `fig7` | Fig. 7: min-length variant vs `Γ₀` |
//! | `table1` | Table 1: algorithm comparison, synthetic |
//! | `table2` | Table 2: RNG-audit `X²_max` vs `n`, `p` |
//! | `table3`, `table4` | Tables 3–4: baseball application |
//! | `table5`, `table6` | Tables 5–6: stock application |

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod experiments;
pub mod report;

use std::time::{Duration, Instant};

use sigstr_core::Scored;

/// Experiment size: the paper's parameters or a fast smoke-test setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (minutes of wall-clock in total).
    Full,
    /// Reduced sizes for smoke tests (seconds in total).
    Quick,
}

impl Scale {
    /// Pick `full` or `quick` by scale.
    pub fn pick<T>(self, full: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

/// Wall-clock one closure, returning (result, elapsed).
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed())
}

/// Number of substrings of a string of length `n` — the trivial
/// algorithm's iteration count.
pub fn trivial_iterations(n: usize) -> u64 {
    let n = n as u64;
    n * (n + 1) / 2
}

/// Trivial iteration count under a minimum-length constraint `Γ₀`:
/// substrings of length > `Γ₀`.
pub fn trivial_iterations_minlen(n: usize, gamma0: usize) -> u64 {
    if gamma0 + 1 > n {
        return 0;
    }
    let m = (n - gamma0) as u64;
    m * (m + 1) / 2
}

/// Greedy overlap-deduplication of a descending-`X²` result list: keep a
/// substring only when its *containment* overlap with every kept one —
/// intersection over the shorter length — is at most `max_overlap`. This
/// turns a top-t set (dominated by shifts and sub-ranges of the same
/// patch) into the paper's Table-3/Table-5 style list of distinct periods;
/// containment (rather than Jaccard) also suppresses small patches nested
/// inside an already-kept era.
pub fn dedupe_overlapping(items: &[Scored], max_overlap: f64, keep: usize) -> Vec<Scored> {
    let mut kept: Vec<Scored> = Vec::new();
    for &candidate in items {
        if kept.len() >= keep {
            break;
        }
        let overlaps = kept
            .iter()
            .any(|k| containment(k, &candidate) > max_overlap);
        if !overlaps {
            kept.push(candidate);
        }
    }
    kept
}

fn containment(a: &Scored, b: &Scored) -> f64 {
    let inter = a.end.min(b.end).saturating_sub(a.start.max(b.start));
    let shorter = a.len().min(b.len());
    if shorter == 0 {
        0.0
    } else {
        inter as f64 / shorter as f64
    }
}

/// Format a duration in the paper's style (seconds with two decimals, or
/// milliseconds below a tenth of a second).
pub fn fmt_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 0.1 {
        format!("{secs:.2}s")
    } else {
        format!("{:.2}ms", secs * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_counts() {
        assert_eq!(trivial_iterations(1), 1);
        assert_eq!(trivial_iterations(10), 55);
        assert_eq!(trivial_iterations_minlen(10, 0), 55);
        assert_eq!(trivial_iterations_minlen(10, 9), 1);
        assert_eq!(trivial_iterations_minlen(10, 10), 0);
        // min-len count: substrings of length > 4 in n = 6: lengths 5, 6 →
        // 2 + 1 = 3 = m(m+1)/2 with m = 2.
        assert_eq!(trivial_iterations_minlen(6, 4), 3);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 1), 10);
        assert_eq!(Scale::Quick.pick(10, 1), 1);
    }

    #[test]
    fn dedupe_keeps_distinct_patches() {
        let mk = |start, end, x2| Scored {
            start,
            end,
            chi_square: x2,
        };
        let items = vec![
            mk(100, 200, 50.0),
            mk(101, 201, 49.0), // shift of the first
            mk(100, 199, 48.0), // shift of the first
            mk(500, 600, 40.0), // distinct
            mk(505, 595, 39.0), // shift of the fourth
            mk(900, 910, 30.0), // distinct
        ];
        let kept = dedupe_overlapping(&items, 0.5, 5);
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].start, 100);
        assert_eq!(kept[1].start, 500);
        assert_eq!(kept[2].start, 900);
    }

    #[test]
    fn dedupe_respects_keep_limit() {
        let mk = |start: usize, x2| Scored {
            start,
            end: start + 10,
            chi_square: x2,
        };
        let items: Vec<Scored> = (0..20).map(|i| mk(i * 100, 100.0 - i as f64)).collect();
        let kept = dedupe_overlapping(&items, 0.1, 4);
        assert_eq!(kept.len(), 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_millis(2500)), "2.50s");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
    }
}
