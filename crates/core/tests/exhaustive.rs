//! Exhaustive exactness: the pruned algorithm equals the trivial scan on
//! **every** binary string up to a fixed length, and on every ternary
//! string up to a smaller length — no sampling, total coverage of the
//! small-input space.

use sigstr_core::{baseline, find_mss, maxlen, mss_min_length, top_t, Model, Sequence};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
}

#[test]
fn every_binary_string_up_to_len_12() {
    let model = Model::uniform(2).expect("model");
    let biased = Model::from_probs(vec![0.3, 0.7]).expect("model");
    for len in 1..=12usize {
        for bits in 0u32..(1 << len) {
            let symbols: Vec<u8> = (0..len).map(|i| ((bits >> i) & 1) as u8).collect();
            let seq = Sequence::from_symbols(symbols, 2).expect("sequence");
            for m in [&model, &biased] {
                let fast = find_mss(&seq, m).expect("ours");
                let slow = baseline::trivial::find_mss(&seq, m).expect("trivial");
                assert!(
                    close(fast.best.chi_square, slow.best.chi_square),
                    "len {len} bits {bits:b}: ours {} vs trivial {}",
                    fast.best.chi_square,
                    slow.best.chi_square
                );
            }
        }
    }
}

#[test]
fn every_ternary_string_up_to_len_8() {
    let model = Model::from_probs(vec![0.2, 0.3, 0.5]).expect("model");
    for len in 1..=8usize {
        let total = 3usize.pow(len as u32);
        for code in 0..total {
            let mut c = code;
            let symbols: Vec<u8> = (0..len)
                .map(|_| {
                    let s = (c % 3) as u8;
                    c /= 3;
                    s
                })
                .collect();
            let seq = Sequence::from_symbols(symbols, 3).expect("sequence");
            let fast = find_mss(&seq, &model).expect("ours");
            let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
            assert!(
                close(fast.best.chi_square, slow.best.chi_square),
                "len {len} code {code}"
            );
        }
    }
}

#[test]
fn every_binary_string_variants_len_9() {
    let model = Model::uniform(2).expect("model");
    for bits in 0u32..(1 << 9) {
        let symbols: Vec<u8> = (0..9).map(|i| ((bits >> i) & 1) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).expect("sequence");
        // top-3 multiset
        let ft = top_t(&seq, &model, 3).expect("ours");
        let st = baseline::trivial::top_t(&seq, &model, 3).expect("trivial");
        for (f, s) in ft.items.iter().zip(&st.items) {
            assert!(
                close(f.chi_square, s.chi_square),
                "top-3 mismatch on {bits:b}"
            );
        }
        // min-length 4
        let fm = mss_min_length(&seq, &model, 4).expect("ours");
        let sm = baseline::trivial::mss_min_length(&seq, &model, 4).expect("trivial");
        assert!(
            close(fm.best.chi_square, sm.best.chi_square),
            "minlen mismatch on {bits:b}"
        );
        // max-length 5 vs brute force
        let fw = maxlen::mss_max_length(&seq, &model, 5).expect("ours");
        let mut brute = f64::NEG_INFINITY;
        for start in 0..seq.len() {
            for end in (start + 1)..=(start + 5).min(seq.len()) {
                let counts = seq.count_vector(start, end);
                brute = brute.max(sigstr_core::chi_square_counts(&counts, &model));
            }
        }
        assert!(
            close(fw.best.chi_square, brute),
            "maxlen mismatch on {bits:b}"
        );
    }
}

#[test]
fn arlm_exact_on_every_binary_string_len_10() {
    // The k = 2 exactness claim for the ARLM reconstruction, verified
    // exhaustively rather than by sampling.
    let model = Model::uniform(2).expect("model");
    for bits in 0u32..(1 << 10) {
        let symbols: Vec<u8> = (0..10).map(|i| ((bits >> i) & 1) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).expect("sequence");
        let arlm = baseline::arlm::find_mss(&seq, &model).expect("arlm");
        let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        assert!(
            close(arlm.best.chi_square, slow.best.chi_square),
            "ARLM missed the optimum on {bits:b}"
        );
    }
}
