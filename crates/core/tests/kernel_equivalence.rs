//! Kernel equivalence: the incremental / alphabet-specialized scan
//! kernels must return **byte-identical** results to the exact
//! `baseline::trivial` `O(n²)` scan.
//!
//! All kernels score through the one canonical accumulation
//! (`chi_square_counts_with_len`), so for the same substring every engine
//! reports the same `f64` bit pattern. What each problem variant can
//! guarantee:
//!
//! * **threshold** — the full item *vector* is byte-identical (qualifying
//!   substrings are never skipped, and the collecting API returns them in
//!   the canonical start-descending / end-ascending order).
//! * **MSS / min-length** — the winning `X²` is byte-identical. The
//!   winning *position* may legitimately differ when several substrings
//!   tie at the maximum bit-for-bit: the pruned scan may skip a tied
//!   extension (Theorem 1 admits `bound ≤ budget`), while the trivial scan
//!   visits all of them (see `DESIGN.md`). The returned range must still
//!   score exactly the returned value.
//! * **top-t** — the sorted multiset of `X²` bit patterns is identical
//!   (positions at the boundary tie are likewise unpinned).
//!
//! Runs as a seeded loop over random sequences and models for
//! `k ∈ {2, 3, 4, 8}` — covering both specialized kernels (k = 2, 4) and
//! the generic kernel (k = 3, 8) — plus skewed models and adversarial
//! run-heavy strings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sigstr_core::{
    above_threshold, baseline, chi_square_range, find_mss, mss_max_length, mss_min_length, top_t,
    BlockedCounts, CountSource, CountsLayout, Engine, GrowableCounts, Model, PrefixCounts,
    Sequence,
};

fn random_sequence(rng: &mut StdRng, k: usize, max_len: usize) -> Sequence {
    let n = rng.gen_range(1..=max_len);
    let symbols: Vec<u8> = (0..n).map(|_| rng.gen_range(0..k) as u8).collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

/// A run-heavy string: long homogeneous stretches produce repeated exact
/// `X²` ties — the adversarial case for tie-break equivalence.
fn runny_sequence(rng: &mut StdRng, k: usize, max_len: usize) -> Sequence {
    let n = rng.gen_range(8..=max_len);
    let mut symbols = Vec::with_capacity(n);
    while symbols.len() < n {
        let symbol = rng.gen_range(0..k) as u8;
        let run = rng.gen_range(1..=9usize);
        for _ in 0..run.min(n - symbols.len()) {
            symbols.push(symbol);
        }
    }
    Sequence::from_symbols(symbols, k).unwrap()
}

fn random_model(rng: &mut StdRng, k: usize) -> Model {
    let weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.05..1.0)).collect();
    let total: f64 = weights.iter().sum();
    Model::from_probs(weights.into_iter().map(|w| w / total).collect()).unwrap()
}

fn check_case(seq: &Sequence, model: &Model, rng: &mut StdRng, label: &str) {
    let pc = PrefixCounts::build(seq);
    let k = model.k();

    // Problem 1 — MSS: bit-identical maximum, self-consistent range.
    let fast = find_mss(seq, model).unwrap();
    let slow = baseline::trivial::find_mss(seq, model).unwrap();
    assert_eq!(
        fast.best.chi_square.to_bits(),
        slow.best.chi_square.to_bits(),
        "{label}: MSS value differs: {} vs {}",
        fast.best.chi_square,
        slow.best.chi_square
    );
    assert_eq!(
        chi_square_range(&pc, fast.best.start, fast.best.end, model).to_bits(),
        fast.best.chi_square.to_bits(),
        "{label}: reported MSS range does not score its reported value"
    );
    // Both engines account for every substring.
    let n = seq.len() as u64;
    assert_eq!(
        fast.stats.examined + fast.stats.skipped,
        n * (n + 1) / 2,
        "{label}"
    );

    // Problem 2 — top-t: bit-identical sorted value multiset.
    let t = rng.gen_range(1..=12usize);
    let fast_top = top_t(seq, model, t).unwrap();
    let slow_top = baseline::trivial::top_t(seq, model, t).unwrap();
    let fast_bits: Vec<u64> = fast_top
        .items
        .iter()
        .map(|s| s.chi_square.to_bits())
        .collect();
    let slow_bits: Vec<u64> = slow_top
        .items
        .iter()
        .map(|s| s.chi_square.to_bits())
        .collect();
    assert_eq!(
        fast_bits, slow_bits,
        "{label}: top-{t} value multisets differ"
    );

    // Problem 3 — threshold: byte-identical item vector, positions and
    // order included.
    let alpha = rng.gen_range(0.5..3.0) * (k as f64);
    let fast_thr = above_threshold(seq, model, alpha).unwrap();
    let slow_thr = baseline::trivial::above_threshold(seq, model, alpha).unwrap();
    assert_eq!(
        fast_thr.items.len(),
        slow_thr.items.len(),
        "{label}: threshold set size"
    );
    for (f, s) in fast_thr.items.iter().zip(&slow_thr.items) {
        assert_eq!(
            (f.start, f.end),
            (s.start, s.end),
            "{label}: threshold positions"
        );
        assert_eq!(
            f.chi_square.to_bits(),
            s.chi_square.to_bits(),
            "{label}: threshold value at [{}, {})",
            f.start,
            f.end
        );
    }

    // Problem 4 — min-length: bit-identical constrained maximum.
    let gamma0 = rng.gen_range(0..seq.len());
    let fast_min = mss_min_length(seq, model, gamma0).unwrap();
    let slow_min = baseline::trivial::mss_min_length(seq, model, gamma0).unwrap();
    assert_eq!(
        fast_min.best.chi_square.to_bits(),
        slow_min.best.chi_square.to_bits(),
        "{label}: min-length (gamma0 = {gamma0}) value differs"
    );
    assert!(
        fast_min.best.len() > gamma0,
        "{label}: length constraint violated"
    );

    // Engine-served queries — every variant must be *fully* identical to
    // its one-shot counterpart (same code path, so positions and stats
    // included), twice (the second answer comes from the result cache).
    let engine = Engine::new(seq, model.clone()).unwrap();
    let w = rng.gen_range(1..=seq.len());
    let fast_max = mss_max_length(seq, model, w).unwrap();
    for round in 0..2 {
        let ctx = format!("{label}: engine round {round}");
        assert_eq!(engine.mss().unwrap(), fast, "{ctx}: mss");
        assert_eq!(engine.top_t(t).unwrap(), fast_top, "{ctx}: top-{t}");
        assert_eq!(
            engine.above_threshold(alpha).unwrap(),
            fast_thr,
            "{ctx}: threshold"
        );
        assert_eq!(
            engine.mss_min_length(gamma0).unwrap(),
            fast_min,
            "{ctx}: min-length"
        );
        assert_eq!(
            engine.mss_max_length(w).unwrap(),
            fast_max,
            "{ctx}: max-length (w = {w})"
        );
    }
}

/// Range-restricted engine queries must equal the one-shot answer on the
/// sliced sequence, with positions translated by the range offset.
fn check_range_case(seq: &Sequence, model: &Model, rng: &mut StdRng, label: &str) {
    let n = seq.len();
    let engine = Engine::new(seq, model.clone()).unwrap();
    for _ in 0..4 {
        let l = rng.gen_range(0..n);
        let r = rng.gen_range(l + 1..=n);
        let sliced = Sequence::from_symbols(seq.symbols()[l..r].to_vec(), seq.k()).unwrap();
        let ctx = format!("{label}: range {l}..{r}");

        let ranged = engine.mss_in(l..r).unwrap();
        let sliced_mss = find_mss(&sliced, model).unwrap();
        assert_eq!(
            (ranged.best.start, ranged.best.end),
            (sliced_mss.best.start + l, sliced_mss.best.end + l),
            "{ctx}: mss position"
        );
        assert_eq!(
            ranged.best.chi_square.to_bits(),
            sliced_mss.best.chi_square.to_bits(),
            "{ctx}: mss value"
        );
        assert_eq!(ranged.stats, sliced_mss.stats, "{ctx}: mss stats");

        let t = rng.gen_range(1..=8usize);
        let ranged_top = engine.top_t_in(l..r, t).unwrap();
        let sliced_top = top_t(&sliced, model, t).unwrap();
        assert_eq!(
            ranged_top.items.len(),
            sliced_top.items.len(),
            "{ctx}: top-{t} size"
        );
        for (a, b) in ranged_top.items.iter().zip(&sliced_top.items) {
            assert_eq!(
                (a.start, a.end, a.chi_square.to_bits()),
                (b.start + l, b.end + l, b.chi_square.to_bits()),
                "{ctx}: top-{t} item"
            );
        }

        let alpha = rng.gen_range(0.5..3.0) * (seq.k() as f64);
        let ranged_thr = engine.above_threshold_in(l..r, alpha).unwrap();
        let sliced_thr = above_threshold(&sliced, model, alpha).unwrap();
        assert_eq!(
            ranged_thr.items.len(),
            sliced_thr.items.len(),
            "{ctx}: threshold size"
        );
        for (a, b) in ranged_thr.items.iter().zip(&sliced_thr.items) {
            assert_eq!(
                (a.start, a.end, a.chi_square.to_bits()),
                (b.start + l, b.end + l, b.chi_square.to_bits()),
                "{ctx}: threshold item"
            );
        }

        let gamma0 = rng.gen_range(0..(r - l));
        let ranged_min = engine.mss_min_length_in(l..r, gamma0).unwrap();
        let sliced_min = mss_min_length(&sliced, model, gamma0).unwrap();
        assert_eq!(
            (
                ranged_min.best.start,
                ranged_min.best.end,
                ranged_min.best.chi_square.to_bits()
            ),
            (
                sliced_min.best.start + l,
                sliced_min.best.end + l,
                sliced_min.best.chi_square.to_bits()
            ),
            "{ctx}: min-length (gamma0 = {gamma0})"
        );

        let w = rng.gen_range(1..=(r - l));
        let ranged_max = engine.mss_max_length_in(l..r, w).unwrap();
        let sliced_max = mss_max_length(&sliced, model, w).unwrap();
        assert_eq!(
            (
                ranged_max.best.start,
                ranged_max.best.end,
                ranged_max.best.chi_square.to_bits()
            ),
            (
                sliced_max.best.start + l,
                sliced_max.best.end + l,
                sliced_max.best.chi_square.to_bits()
            ),
            "{ctx}: max-length (w = {w})"
        );
    }
}

#[test]
fn kernels_match_trivial_baseline_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0BAD_F00D);
    for &k in &[2usize, 3, 4, 8] {
        for case in 0..40 {
            let seq = random_sequence(&mut rng, k, 160);
            let model = random_model(&mut rng, k);
            check_case(&seq, &model, &mut rng, &format!("k={k} random case {case}"));
        }
    }
}

#[test]
fn kernels_match_trivial_on_uniform_models() {
    let mut rng = StdRng::seed_from_u64(0xD15E_A5ED);
    for &k in &[2usize, 3, 4, 8] {
        let model = Model::uniform(k).unwrap();
        for case in 0..25 {
            let seq = random_sequence(&mut rng, k, 200);
            check_case(
                &seq,
                &model,
                &mut rng,
                &format!("k={k} uniform case {case}"),
            );
        }
    }
}

#[test]
fn kernels_match_trivial_on_run_heavy_strings() {
    let mut rng = StdRng::seed_from_u64(0x0BAD_CAFE);
    for &k in &[2usize, 3, 4, 8] {
        let model = Model::uniform(k).unwrap();
        for case in 0..25 {
            let seq = runny_sequence(&mut rng, k, 140);
            check_case(&seq, &model, &mut rng, &format!("k={k} runny case {case}"));
        }
    }
}

#[test]
fn engine_range_queries_match_sliced_one_shot() {
    let mut rng = StdRng::seed_from_u64(0x5A5A_C0DE_D00D);
    for &k in &[2usize, 3, 4, 8] {
        for case in 0..12 {
            let seq = random_sequence(&mut rng, k, 160);
            let model = random_model(&mut rng, k);
            check_range_case(&seq, &model, &mut rng, &format!("k={k} random case {case}"));
        }
        let model = Model::uniform(k).unwrap();
        for case in 0..8 {
            let seq = runny_sequence(&mut rng, k, 140);
            check_range_case(&seq, &model, &mut rng, &format!("k={k} runny case {case}"));
        }
    }
}

#[test]
fn reference_engine_matches_fast_engine_values() {
    let mut rng = StdRng::seed_from_u64(0xFEED_FACE);
    for &k in &[2usize, 4, 6] {
        for case in 0..20 {
            let seq = random_sequence(&mut rng, k, 250);
            let model = random_model(&mut rng, k);
            let fast = find_mss(&seq, &model).unwrap();
            let reference = sigstr_core::find_mss_reference(&seq, &model).unwrap();
            assert_eq!(
                fast.best.chi_square.to_bits(),
                reference.best.chi_square.to_bits(),
                "k={k} case {case}: fast vs reference engine disagree"
            );
        }
    }
}

/// The two count-index layouts must agree **bit-for-bit**: identical
/// `u32` count vectors on every probed range (so every downstream score
/// is the same `f64`), across alphabets covering both specialized
/// kernels, the generic kernel, and a letters-sized alphabet, with block
/// spacings landing superblock boundaries everywhere relative to the
/// probed ranges (including the u16 escape tier).
#[test]
fn blocked_counts_bit_identical_to_flat() {
    let mut rng = StdRng::seed_from_u64(0xB10C_C0DE);
    for &k in &[2usize, 3, 4, 8, 26] {
        for case in 0..12 {
            let seq = random_sequence(&mut rng, k, 700);
            let pc = PrefixCounts::build(&seq);
            let block = 1usize << rng.gen_range(0..13); // 1 .. 4096
            let bc = BlockedCounts::with_block(&seq, block).unwrap();
            // Tiny spacings are correctness-only (a superblock at every
            // other position outweighs the byte-packed deltas); at
            // realistic spacings the blocked index must be smaller.
            if block >= 16 {
                assert!(
                    bc.index_bytes() <= pc.index_bytes(),
                    "k={k} block={block}: blocked index larger than flat"
                );
            }
            let n = seq.len();
            let mut flat_buf = vec![0u32; k];
            let mut blocked_buf = vec![0u32; k];
            for _ in 0..200 {
                let start = rng.gen_range(0..=n);
                let end = rng.gen_range(start..=n);
                let c = rng.gen_range(0..k);
                assert_eq!(
                    bc.count(c, start, end),
                    pc.count(c, start, end),
                    "k={k} case {case} block={block}: count({c}, {start}, {end})"
                );
                pc.fill_counts(start, end, &mut flat_buf);
                bc.fill_counts(start, end, &mut blocked_buf);
                assert_eq!(
                    flat_buf, blocked_buf,
                    "k={k} case {case} block={block}: fill({start}, {end})"
                );
                let mid = rng.gen_range(start..=end);
                pc.fill_counts(start, mid, &mut flat_buf);
                bc.fill_counts(start, mid, &mut blocked_buf);
                pc.accumulate_counts(mid, end, &mut flat_buf);
                bc.accumulate_counts(mid, end, &mut blocked_buf);
                assert_eq!(
                    flat_buf, blocked_buf,
                    "k={k} case {case} block={block}: accumulate({start}, {mid}, {end})"
                );
            }
        }
    }
}

/// End-to-end: an engine built on the blocked layout must answer every
/// problem variant *fully* identically (values, positions, and scan
/// stats) to one built on the flat layout — the scan streams are the
/// same, so the pruning decisions and the reported floats are too.
#[test]
fn blocked_engine_matches_flat_engine_exactly() {
    let mut rng = StdRng::seed_from_u64(0x1DEA_0B10);
    for &k in &[2usize, 3, 4, 8, 26] {
        for case in 0..8 {
            let seq = random_sequence(&mut rng, k, 200);
            let model = random_model(&mut rng, k);
            let flat = Engine::with_layout(&seq, model.clone(), CountsLayout::Flat).unwrap();
            let blocked = Engine::with_layout(&seq, model.clone(), CountsLayout::Blocked).unwrap();
            let label = format!("k={k} case {case}");
            let t = rng.gen_range(1..=8usize);
            let alpha = rng.gen_range(0.5..3.0) * (k as f64);
            let gamma0 = rng.gen_range(0..seq.len());
            let w = rng.gen_range(1..=seq.len());
            assert_eq!(flat.mss().unwrap(), blocked.mss().unwrap(), "{label}: mss");
            assert_eq!(
                flat.top_t(t).unwrap(),
                blocked.top_t(t).unwrap(),
                "{label}: top-{t}"
            );
            assert_eq!(
                flat.above_threshold(alpha).unwrap(),
                blocked.above_threshold(alpha).unwrap(),
                "{label}: threshold"
            );
            assert_eq!(
                flat.mss_min_length(gamma0).unwrap(),
                blocked.mss_min_length(gamma0).unwrap(),
                "{label}: min-length"
            );
            assert_eq!(
                flat.mss_max_length(w).unwrap(),
                blocked.mss_max_length(w).unwrap(),
                "{label}: max-length"
            );
            if seq.len() > 2 {
                let l = rng.gen_range(0..seq.len() - 1);
                let r = rng.gen_range(l + 1..=seq.len());
                assert_eq!(
                    flat.mss_in(l..r).unwrap(),
                    blocked.mss_in(l..r).unwrap(),
                    "{label}: mss_in({l}..{r})"
                );
            }
        }
    }
}

/// SIMD and forced-scalar dispatch must agree on the **full** result
/// structs — positions, scan stats, and every `chi_square` bit pattern —
/// across alphabets covering the packed `k = 2` group-examine kernel,
/// both specialized resync kernels, the generic kernel, and a
/// letters-sized alphabet; both count layouts; and range starts pinned
/// to odd offsets so the 12-lane round-robin interleave begins off every
/// natural alignment boundary. Each mode gets its own engine, so no
/// answer is served from the other mode's result cache.
#[test]
fn simd_and_scalar_dispatch_are_bit_identical() {
    // Restore auto-detection even if an assertion below panics, so this
    // test can never leak forced-scalar mode into the rest of the suite.
    struct DispatchGuard;
    impl Drop for DispatchGuard {
        fn drop(&mut self) {
            sigstr_core::simd::set_force_scalar(false);
        }
    }
    let _guard = DispatchGuard;

    let mut rng = StdRng::seed_from_u64(0x51D0_5CA1);
    for &k in &[2usize, 3, 4, 8, 26] {
        for &layout in &[CountsLayout::Flat, CountsLayout::Blocked] {
            for case in 0..6 {
                let seq = random_sequence(&mut rng, k, 400);
                let model = random_model(&mut rng, k);
                let label = format!("k={k} {layout:?} case {case}");
                let n = seq.len();
                // Odd (unaligned) range start whenever the sequence is
                // long enough to have one.
                let l = if n > 2 {
                    rng.gen_range(0..n - 1) | 1
                } else {
                    0
                }
                .min(n - 1);
                let r = rng.gen_range(l + 1..=n);
                let t = rng.gen_range(1..=8usize);
                let alpha = rng.gen_range(0.5..3.0) * (k as f64);
                let gamma0 = rng.gen_range(0..(r - l));
                let w = rng.gen_range(1..=(r - l));

                let run = |force: bool| {
                    sigstr_core::simd::set_force_scalar(force);
                    let engine = Engine::with_layout(&seq, model.clone(), layout).unwrap();
                    (
                        engine.mss().unwrap(),
                        engine.mss_in(l..r).unwrap(),
                        engine.top_t_in(l..r, t).unwrap(),
                        engine.above_threshold_in(l..r, alpha).unwrap(),
                        engine.mss_min_length_in(l..r, gamma0).unwrap(),
                        engine.mss_max_length_in(l..r, w).unwrap(),
                    )
                };
                let scalar = run(true);
                let simd = run(false);

                // Full structs: values, positions, and scan stats.
                assert_eq!(scalar.0, simd.0, "{label}: mss");
                assert_eq!(scalar.1, simd.1, "{label}: mss_in({l}..{r})");
                assert_eq!(scalar.2, simd.2, "{label}: top-{t}");
                assert_eq!(scalar.3, simd.3, "{label}: threshold (alpha = {alpha})");
                assert_eq!(scalar.4, simd.4, "{label}: min-length (gamma0 = {gamma0})");
                assert_eq!(scalar.5, simd.5, "{label}: max-length (w = {w})");
                // And the float *bit patterns*, independently of any
                // `PartialEq` subtleties.
                assert_eq!(
                    scalar.0.best.chi_square.to_bits(),
                    simd.0.best.chi_square.to_bits(),
                    "{label}: mss bits"
                );
                assert_eq!(
                    scalar.1.best.chi_square.to_bits(),
                    simd.1.best.chi_square.to_bits(),
                    "{label}: mss_in bits"
                );
                for (a, b) in scalar.2.items.iter().zip(&simd.2.items) {
                    assert_eq!(
                        a.chi_square.to_bits(),
                        b.chi_square.to_bits(),
                        "{label}: top-{t} item bits"
                    );
                }
                for (a, b) in scalar.3.items.iter().zip(&simd.3.items) {
                    assert_eq!(
                        a.chi_square.to_bits(),
                        b.chi_square.to_bits(),
                        "{label}: threshold item bits"
                    );
                }
            }
        }
    }
}

/// A consumed stream must freeze into equivalent indexes in *both*
/// layouts: `into_prefix_counts` / `into_blocked_counts` /
/// `into_index(layout)` all answer identically to an index built offline
/// from the same symbols.
#[test]
fn growable_freeze_equivalence_for_both_layouts() {
    let mut rng = StdRng::seed_from_u64(0xF2EE_7E5D);
    for &k in &[2usize, 3, 4, 8, 26] {
        for case in 0..6 {
            let seq = random_sequence(&mut rng, k, 300);
            let built = PrefixCounts::build(&seq);
            let mut gc = GrowableCounts::new(k);
            for &s in seq.symbols() {
                gc.push(s);
            }
            let flat = gc.clone().into_prefix_counts();
            let blocked = gc.clone().into_blocked_counts();
            let auto = gc.into_index(CountsLayout::Auto);
            let n = seq.len();
            let mut expect = vec![0u32; k];
            let mut got = vec![0u32; k];
            for _ in 0..120 {
                let start = rng.gen_range(0..=n);
                let end = rng.gen_range(start..=n);
                built.fill_counts(start, end, &mut expect);
                flat.fill_counts(start, end, &mut got);
                assert_eq!(expect, got, "k={k} case {case}: flat freeze {start}..{end}");
                blocked.fill_counts(start, end, &mut got);
                assert_eq!(
                    expect, got,
                    "k={k} case {case}: blocked freeze {start}..{end}"
                );
                auto.fill_counts(start, end, &mut got);
                assert_eq!(expect, got, "k={k} case {case}: auto freeze {start}..{end}");
            }
        }
    }
}
