//! Medium-scale randomized stress tests: equivalence and accounting
//! invariants at sizes where pruning does real work.

use sigstr_core::{above_threshold, baseline, find_mss, top_t, Model, PrefixCounts, Sequence};

/// Deterministic xorshift stream.
struct Xs(u64);

impl Xs {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn seq(&mut self, n: usize, k: usize) -> Sequence {
        let symbols: Vec<u8> = (0..n).map(|_| (self.next() % k as u64) as u8).collect();
        Sequence::from_symbols(symbols, k).expect("valid symbols")
    }
}

#[test]
fn equivalence_at_n_2000() {
    let mut rng = Xs(0xBEEF_0001);
    for k in [2usize, 3] {
        let seq = rng.seq(2_000, k);
        let model = Model::uniform(k).expect("model");
        let fast = find_mss(&seq, &model).expect("ours");
        let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        assert!(
            (fast.best.chi_square - slow.best.chi_square).abs() < 1e-9,
            "k = {k}"
        );
        // Pruning must be substantial at this size.
        assert!(
            fast.stats.examined * 4 < slow.stats.examined,
            "k = {k}: examined {} of {}",
            fast.stats.examined,
            slow.stats.examined
        );
    }
}

#[test]
fn accounting_invariant_examined_plus_skipped() {
    // Every substring is either examined or provably skipped — their sum
    // must be exactly n(n+1)/2 for the unconstrained variants.
    let mut rng = Xs(0xBEEF_0002);
    for n in [100usize, 777, 2_500] {
        let seq = rng.seq(n, 2);
        let model = Model::uniform(2).expect("model");
        let r = find_mss(&seq, &model).expect("ours");
        let total = (n as u64) * (n as u64 + 1) / 2;
        assert_eq!(r.stats.examined + r.stats.skipped, total, "n = {n}");
        let t = top_t(&seq, &model, 10).expect("top-t");
        assert_eq!(t.stats.examined + t.stats.skipped, total, "top-t n = {n}");
        let a = above_threshold(&seq, &model, 5.0).expect("threshold");
        assert_eq!(
            a.stats.examined + a.stats.skipped,
            total,
            "threshold n = {n}"
        );
    }
}

#[test]
fn topt_results_are_true_top_values() {
    // The top-t values must equal the t largest entries of the full X²
    // multiset (computed brute force).
    let mut rng = Xs(0xBEEF_0003);
    let n = 400usize;
    let seq = rng.seq(n, 2);
    let model = Model::uniform(2).expect("model");
    let t = 50usize;
    let fast = top_t(&seq, &model, t).expect("top-t");
    let mut all = Vec::with_capacity(n * (n + 1) / 2);
    let pc = PrefixCounts::build(&seq);
    let mut buf = vec![0u32; 2];
    for start in 0..n {
        for end in (start + 1)..=n {
            pc.fill_counts(start, end, &mut buf);
            all.push(sigstr_core::chi_square_counts(&buf, &model));
        }
    }
    all.sort_by(|a, b| b.total_cmp(a));
    for (i, item) in fast.items.iter().enumerate() {
        assert!(
            (item.chi_square - all[i]).abs() < 1e-9,
            "rank {i}: {} vs {}",
            item.chi_square,
            all[i]
        );
    }
}

#[test]
fn repeated_structure_worst_cases() {
    // Adversarial-ish inputs: periodic, run-length ramps, near-constant.
    let model = Model::uniform(2).expect("model");
    let mut cases: Vec<Vec<u8>> = Vec::new();
    cases.push((0..1_000).map(|i| ((i / 25) % 2) as u8).collect()); // blocks
    cases.push((0..1_000).map(|i| (i % 2) as u8).collect()); // alternating
    let mut ramp = Vec::new();
    for run in 1..45usize {
        ramp.extend(std::iter::repeat_n((run % 2) as u8, run));
    }
    cases.push(ramp); // increasing run lengths
    let mut nearly = vec![0u8; 1_000];
    nearly[499] = 1;
    cases.push(nearly); // single dissent
    for symbols in cases {
        let seq = Sequence::from_symbols(symbols, 2).expect("valid");
        let fast = find_mss(&seq, &model).expect("ours");
        let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        assert!((fast.best.chi_square - slow.best.chi_square).abs() < 1e-9);
    }
}

#[test]
fn extreme_models_do_not_break_pruning() {
    // Highly skewed models stress the quadratic solver's conditioning.
    let mut rng = Xs(0xBEEF_0004);
    let seq = rng.seq(1_500, 2);
    for probs in [vec![0.999, 0.001], vec![0.001, 0.999], vec![0.5, 0.5]] {
        let model = Model::from_probs(probs.clone()).expect("model");
        let fast = find_mss(&seq, &model).expect("ours");
        let slow = baseline::trivial::find_mss(&seq, &model).expect("trivial");
        assert!(
            (fast.best.chi_square - slow.best.chi_square).abs()
                < 1e-9 * (1.0 + slow.best.chi_square),
            "probs {probs:?}: {} vs {}",
            fast.best.chi_square,
            slow.best.chi_square
        );
    }
}
