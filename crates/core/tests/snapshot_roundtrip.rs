//! Snapshot round-trip bit-identity: an engine loaded from a snapshot
//! must be indistinguishable — to the last bit — from the engine that
//! wrote it.
//!
//! The wire format stores exact `u32` counts and the model's exact `f64`
//! bit patterns, and load rebuilds the derived model tables with the same
//! pure computation the original build used, so **every** answer
//! (values, positions, scan statistics) must compare equal with plain
//! `assert_eq!` — not approximately, identically.
//!
//! Runs as a seeded property loop over random sequences and models for
//! `k ∈ {2, 3, 4, 8, 26}` × both count-index layouts, exercising the
//! specialized kernels (k = 2, 4), the generic kernel, the `k − 1`
//! delta-column reconstruction at large k, and the model round-trip for
//! skewed probability vectors. A second suite drives the rejection
//! paths: corrupted magic, header fields, section table, payload bytes,
//! and truncation must all fail loudly — never load wrong data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sigstr_core::{snapshot, CountsLayout, Engine, Error, Model, Sequence};

fn random_sequence(rng: &mut StdRng, k: usize, max_len: usize) -> Sequence {
    let n = rng.gen_range(2..=max_len);
    let symbols: Vec<u8> = (0..n).map(|_| rng.gen_range(0..k) as u8).collect();
    Sequence::from_symbols(symbols, k).unwrap()
}

fn random_model(rng: &mut StdRng, k: usize) -> Model {
    let weights: Vec<f64> = (0..k).map(|_| rng.gen_range(0.05..1.0)).collect();
    let total: f64 = weights.iter().sum();
    Model::from_probs(weights.into_iter().map(|w| w / total).collect()).unwrap()
}

fn snapshot_bytes(engine: &Engine) -> Vec<u8> {
    let mut buf = Vec::new();
    engine.write_snapshot(&mut buf).unwrap();
    buf
}

/// The core property: every query variant answers identically (values,
/// positions, stats — full struct equality) through the loaded engine.
fn assert_roundtrip_identical(original: &Engine, label: &str) {
    let buf = snapshot_bytes(original);
    let loaded = Engine::load_snapshot(&buf[..]).unwrap();
    assert_eq!(loaded.n(), original.n(), "{label}: n");
    assert_eq!(loaded.k(), original.k(), "{label}: k");
    assert_eq!(loaded.layout(), original.layout(), "{label}: layout");
    assert_eq!(
        loaded.index_bytes(),
        original.index_bytes(),
        "{label}: index bytes"
    );
    assert_eq!(
        loaded.model().probs(),
        original.model().probs(),
        "{label}: model probabilities"
    );

    assert_eq!(
        loaded.mss().unwrap(),
        original.mss().unwrap(),
        "{label}: mss"
    );
    let t = 5.min(original.n());
    assert_eq!(
        loaded.top_t(t).unwrap(),
        original.top_t(t).unwrap(),
        "{label}: top_t"
    );
    // A low threshold makes the answer a large vector — the strongest
    // bit-identity check (every item and the scan stats must match).
    for alpha in [0.5, 4.0] {
        assert_eq!(
            loaded.above_threshold(alpha).unwrap(),
            original.above_threshold(alpha).unwrap(),
            "{label}: above_threshold({alpha})"
        );
    }

    // The zero-copy mmap loader serves the same bits: persist to disk,
    // map, and repeat the strongest check (the full threshold vector
    // plus the MSS struct). On targets without the mmap wrapper this
    // exercises the bulk-read fallback instead — same contract.
    let dir = std::env::temp_dir().join(format!(
        "sigstr-roundtrip-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("doc.snap");
    std::fs::write(&path, &buf).unwrap();
    let mapped = Engine::load_snapshot_mmap(&path).unwrap();
    assert_eq!(
        mapped.mss().unwrap(),
        original.mss().unwrap(),
        "{label}: mmap mss"
    );
    assert_eq!(
        mapped.above_threshold(0.5).unwrap(),
        original.above_threshold(0.5).unwrap(),
        "{label}: mmap threshold"
    );
    drop(mapped);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn roundtrip_bit_identity_across_alphabets_and_layouts() {
    let mut rng = StdRng::seed_from_u64(0x5EED_514E);
    for &k in &[2usize, 3, 4, 8, 26] {
        for layout in [CountsLayout::Flat, CountsLayout::Blocked] {
            for case in 0..6 {
                let seq = random_sequence(&mut rng, k, 400);
                let model = if case % 2 == 0 {
                    Model::uniform(k).unwrap()
                } else {
                    random_model(&mut rng, k)
                };
                let engine = Engine::with_layout(&seq, model, layout).unwrap();
                assert_roundtrip_identical(
                    &engine,
                    &format!("k={k} layout={layout:?} case={case} n={}", seq.len()),
                );
            }
        }
    }
}

#[test]
fn roundtrip_survives_a_second_generation() {
    // Snapshot of a loaded engine: the format must be a fixed point.
    let mut rng = StdRng::seed_from_u64(0x0F1E_C0DE);
    let seq = random_sequence(&mut rng, 4, 300);
    let engine =
        Engine::with_layout(&seq, random_model(&mut rng, 4), CountsLayout::Blocked).unwrap();
    let first = snapshot_bytes(&engine);
    let loaded = Engine::load_snapshot(&first[..]).unwrap();
    let second = snapshot_bytes(&loaded);
    assert_eq!(
        first, second,
        "snapshot of a loaded engine is byte-identical"
    );
}

#[test]
fn estimated_model_probabilities_roundtrip_exactly() {
    // Empirical models produce "ugly" f64s; the snapshot must preserve
    // their exact bits (no renormalization drift on load).
    let mut rng = StdRng::seed_from_u64(0xE571_3A7E);
    for &k in &[2usize, 3, 26] {
        let seq = random_sequence(&mut rng, k, 500);
        let model = Model::estimate_smoothed(&seq, 0.5).unwrap();
        let bits: Vec<u64> = model.probs().iter().map(|p| p.to_bits()).collect();
        let engine = Engine::with_layout(&seq, model, CountsLayout::Flat).unwrap();
        let buf = snapshot_bytes(&engine);
        let loaded = Engine::load_snapshot(&buf[..]).unwrap();
        let loaded_bits: Vec<u64> = loaded.model().probs().iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits, loaded_bits, "k={k}");
    }
}

// ---------------------------------------------------------------------------
// Rejection: corrupted snapshots must never load.
// ---------------------------------------------------------------------------

fn demo_snapshot(layout: CountsLayout) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);
    let seq = random_sequence(&mut rng, 3, 300);
    let engine = Engine::with_layout(&seq, Model::uniform(3).unwrap(), layout).unwrap();
    snapshot_bytes(&engine)
}

#[test]
fn rejects_corrupted_magic_and_version() {
    for layout in [CountsLayout::Flat, CountsLayout::Blocked] {
        let good = demo_snapshot(layout);
        for byte in 0..8 {
            let mut bad = good.clone();
            bad[byte] ^= 0x40;
            assert!(
                matches!(
                    Engine::load_snapshot(&bad[..]),
                    Err(Error::Snapshot { ref details }) if details.contains("magic")
                ),
                "flipped magic byte {byte} must be rejected"
            );
        }
        let mut bad = good.clone();
        bad[8] = 2; // future version
        assert!(matches!(
            Engine::load_snapshot(&bad[..]),
            Err(Error::Snapshot { ref details }) if details.contains("version")
        ));
    }
}

#[test]
fn rejects_corrupted_header_fields() {
    let good = demo_snapshot(CountsLayout::Blocked);
    // Every single-bit flip in the header or section table must fail:
    // either a field check or the table checksum catches it.
    for byte in 8..snapshot::SECTION_ALIGN {
        let mut bad = good.clone();
        bad[byte] ^= 1;
        assert!(
            Engine::load_snapshot(&bad[..]).is_err(),
            "header byte {byte} flip must be rejected"
        );
    }
}

#[test]
fn rejects_corrupted_section_table_and_payloads() {
    for layout in [CountsLayout::Flat, CountsLayout::Blocked] {
        let good = demo_snapshot(layout);
        let info = snapshot::read_info(&good[..]).unwrap();
        // Flip one byte inside the section table.
        let mut bad = good.clone();
        bad[snapshot::SECTION_ALIGN + 9] ^= 1;
        assert!(Engine::load_snapshot(&bad[..]).is_err());
        // Flip one byte inside every payload section.
        for section in &info.sections {
            let mut bad = good.clone();
            let mid = (section.offset + section.len / 2) as usize;
            bad[mid] ^= 1;
            assert!(
                matches!(
                    Engine::load_snapshot(&bad[..]),
                    Err(Error::Snapshot { ref details }) if details.contains("checksum")
                ),
                "{layout:?}: payload flip in section {} must be rejected",
                section.id.name()
            );
        }
    }
}

#[test]
fn rejects_truncation_at_every_boundary() {
    let good = demo_snapshot(CountsLayout::Blocked);
    // A sweep of truncation points: nothing between 0 and full-1 loads.
    for cut in (0..good.len()).step_by(97).chain([good.len() - 1]) {
        assert!(
            Engine::load_snapshot(&good[..cut]).is_err(),
            "truncation at {cut} of {} must be rejected",
            good.len()
        );
    }
    assert!(Engine::load_snapshot(&good[..]).is_ok());
}

#[test]
fn info_matches_engine_geometry() {
    let mut rng = StdRng::seed_from_u64(0x14F0);
    let seq = random_sequence(&mut rng, 4, 300);
    let engine =
        Engine::with_layout(&seq, Model::uniform(4).unwrap(), CountsLayout::Blocked).unwrap();
    let buf = snapshot_bytes(&engine);
    let info = snapshot::read_info(&buf[..]).unwrap();
    assert_eq!(info.n, engine.n());
    assert_eq!(info.k, engine.k());
    assert_eq!(info.layout, CountsLayout::Blocked);
    assert_eq!(info.index_bytes(), engine.index_bytes() as u64);
    assert_eq!(info.total_bytes(), buf.len() as u64);
}
