//! Chi-square significant-substring mining.
//!
//! Rust implementation of *Sachan & Bhattacharya, "Mining Statistically
//! Significant Substrings using the Chi-Square Statistic" (PVLDB 5(10),
//! 2012)*: given a string over a finite alphabet and a memoryless Bernoulli
//! null model, find the substring(s) whose empirical character distribution
//! deviates most from the model, measured by Pearson's `X²`.
//!
//! # The four problems (paper §1)
//!
//! | Problem | Engine method | One-shot function | Paper |
//! |---|---|---|---|
//! | 1. Most significant substring | [`Engine::mss`] | [`find_mss`] | Algorithm 1 |
//! | 2. Top-t substrings | [`Engine::top_t`] | [`top_t`] | Algorithm 2 |
//! | 3. All substrings with `X² > α₀` | [`Engine::above_threshold`] | [`above_threshold`] | Algorithm 3 |
//! | 4. MSS among substrings longer than `Γ₀` | [`Engine::mss_min_length`] | [`mss_min_length`] | §6.3 |
//!
//! The **primary entry point is [`Engine`]** ([`engine`] module): built
//! once per `(sequence, model)` pair, it owns the prefix-count index, the
//! precomputed model tables, a scratch arena and a persistent worker
//! pool, and serves every variant — including **range-restricted** forms
//! (`mss_in(l..r)`, the sharding building block) and memoized repeats —
//! without rebuilding state. The free functions are one-shot convenience
//! wrappers over the same internals and return bit-identical results;
//! [`Batch`] drives many queries over many documents on one pool.
//!
//! All four problems run in `O(k·n^{3/2})` w.h.p. via the *chain cover*
//! pruning bound (paper Theorem 1, [`cover`]) and the quadratic skip
//! solver ([`skip`]).
//!
//! # Baselines and extensions
//!
//! * [`baseline::trivial`] — exact `O(n²)` scan.
//! * [`baseline::blocked`] — exact block-pruned scan (\[2\] reconstruction).
//! * [`baseline::arlm`] / [`baseline::agmm`] — the PAKDD-2010 comparators
//!   (\[9\] reconstructions; see `DESIGN.md`).
//! * [`parallel`] — multi-core scan with shared pruning budgets.
//! * [`markov`] — significance under a first-order Markov null model
//!   (paper §8 future work).
//! * [`grid`] — two-dimensional most significant sub-rectangle
//!   (paper §8 future work).
//! * [`maxlen`] — window-constrained mining (dual of Problem 4).
//! * [`streaming`] — exact online MSS over an append-only stream.
//! * [`snapshot`] — versioned binary engine snapshots: persist the count
//!   index + model once, reload with bulk section reads (bit-identical
//!   answers, no per-position recomputation).
//! * [`significance`] — family-wise (multiple-testing) corrections and
//!   Monte-Carlo calibration of the null `X²_max`.
//! * [`simd`] — runtime-dispatched SSE2/AVX2 kernels for the count
//!   resync, skip-root solve and budget pre-filter (bit-identical to the
//!   portable scalar fallbacks, which `SIGSTR_FORCE_SCALAR=1` selects).
//!
//! # Quick start
//!
//! ```
//! use sigstr_core::{find_mss, Model, Sequence};
//!
//! // Encode observations as symbols 0..k.
//! let seq = Sequence::from_symbols(vec![0, 1, 0, 1, 1, 1, 1, 1, 0, 0], 2).unwrap();
//! // Null model: fair coin.
//! let model = Model::uniform(2).unwrap();
//!
//! let result = find_mss(&seq, &model).unwrap();
//! println!(
//!     "MSS = [{}, {}) with X² = {:.3}, p = {:.4}",
//!     result.best.start,
//!     result.best.end,
//!     result.best.chi_square,
//!     result.best.p_value(2),
//! );
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod baseline;
pub mod counts;
pub mod cover;
pub mod engine;
pub mod error;
pub mod grid;
pub mod markov;
pub mod maxlen;
pub mod minlen;
#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
mod mmap;
pub mod model;
pub mod mss;
pub mod parallel;
mod scan;
pub mod score;
pub mod seq;
pub mod significance;
pub mod simd;
pub mod skip;
pub mod snapshot;
pub mod streaming;
pub mod threshold;
pub mod topt;

pub use counts::{
    BlockedCounts, CountSource, CountsIndex, CountsLayout, GrowableCounts, PrefixCounts,
};
pub use engine::{Answer, Batch, Engine, Query, QueryKind};
pub use error::{Error, Result};
pub use maxlen::mss_max_length;
pub use minlen::mss_min_length;
pub use model::Model;
pub use mss::{find_mss, find_mss_reference, MssResult};
pub use parallel::{find_mss_parallel, top_t_parallel, WorkerPool};
pub use scan::ScanStats;
pub use score::{
    chi_square_counts, chi_square_counts_with_len, chi_square_range, weighted_square_sum,
    ScoreState, Scored,
};
pub use seq::Sequence;
pub use snapshot::{SectionId, SectionInfo, SnapshotInfo};
pub use threshold::{above_threshold, for_each_above_threshold, ThresholdResult};
pub use topt::{top_t, TopTResult};
