//! Minimal read-only memory mapping (64-bit unix, no external crates).
//!
//! The zero-copy snapshot loader serves count tables straight out of the
//! page cache: instead of bulk-reading every section into fresh heap
//! buffers, the whole snapshot file is mapped once and the engine borrows
//! typed slices from the mapping. Pages fault in on first touch, so a
//! freshly "loaded" engine answers its first (range-restricted) query
//! before the index is fully paged in.
//!
//! Safety perimeter:
//!
//! * the loader validates the real file length against the section table
//!   **before** mapping — a truncated file is rejected up front, so no
//!   in-bounds access of an established mapping can hit a hole and
//!   `SIGBUS` (the file itself would have to be truncated *after* the
//!   length check; the snapshot store treats written snapshots as
//!   immutable);
//! * the mapping is `PROT_READ` + `MAP_PRIVATE`: nothing can write
//!   through it, and writers replacing a snapshot atomically (rename)
//!   never mutate mapped pages;
//! * typed views are only handed out for offsets the 64-byte section
//!   alignment guarantees are aligned for the element type.

use std::fs::File;
use std::os::unix::io::AsRawFd;

use crate::error::{Error, Result};

// The three calls the wrapper needs, declared directly against the C ABI
// (no libc crate). Gated to 64-bit unix targets where `off_t` is `i64`.
extern "C" {
    fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
    fn munmap(addr: *mut u8, len: usize) -> i32;
    fn madvise(addr: *mut u8, len: usize, advice: i32) -> i32;
}

/// `PROT_READ` — shared by linux and the BSDs (including macOS).
const PROT_READ: i32 = 1;
/// `MAP_PRIVATE` — shared by linux and the BSDs (including macOS).
const MAP_PRIVATE: i32 = 2;
/// `MADV_DONTNEED` — shared by linux and the BSDs (including macOS).
const MADV_DONTNEED: i32 = 4;

/// A whole-file read-only private mapping, unmapped on drop.
///
/// The wrapper owns the mapping for its whole lifetime; borrowers go
/// through [`MmapFile::bytes`] / [`MmapFile::slice`], so the usual borrow
/// rules keep every view inside the mapping's lifetime.
#[derive(Debug)]
pub(crate) struct MmapFile {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is immutable (PROT_READ) for its entire lifetime
// and the kernel object is reference-independent of threads; sharing
// read-only views across threads is sound.
unsafe impl Send for MmapFile {}
unsafe impl Sync for MmapFile {}

impl MmapFile {
    /// Map the first `len` bytes of `file` read-only. The caller has
    /// already verified the file is at least `len` bytes long (the
    /// anti-`SIGBUS` contract) and `len > 0`.
    pub(crate) fn map(file: &File, len: usize) -> Result<Self> {
        debug_assert!(len > 0);
        // SAFETY: read-only private mapping of an open descriptor; the
        // kernel validates the descriptor and keeps the file object alive
        // for the mapping's lifetime independently of `file`.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(Error::Io {
                op: "mmap snapshot",
                details: std::io::Error::last_os_error().to_string(),
            });
        }
        Ok(Self { ptr, len })
    }

    /// The whole mapping as a byte slice.
    pub(crate) fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr` is a live mapping of exactly `len` readable bytes.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// A typed view of `count` elements of `T` starting at byte `offset`.
    /// `offset` must be aligned for `T` (section offsets are 64-byte
    /// aligned by the snapshot format, and the mapping base is
    /// page-aligned) and the view must lie inside the mapping.
    pub(crate) fn slice<T: Copy>(&self, offset: usize, count: usize) -> &[T] {
        assert!(
            offset.is_multiple_of(std::mem::align_of::<T>()),
            "unaligned view"
        );
        assert!(
            count
                .checked_mul(std::mem::size_of::<T>())
                .and_then(|bytes| bytes.checked_add(offset))
                .is_some_and(|end| end <= self.len),
            "view out of bounds"
        );
        // SAFETY: bounds and alignment just checked; the mapping is live
        // and immutable for `&self`'s lifetime; `T: Copy` here is always
        // an integer type, for which every bit pattern is valid.
        unsafe { std::slice::from_raw_parts(self.ptr.add(offset).cast::<T>(), count) }
    }

    /// Drop the resident pages behind the mapping (`MADV_DONTNEED`).
    /// Purely an eviction hint: later accesses transparently fault the
    /// pages back in from the (read-only, unchanged) file.
    pub(crate) fn discard(&self) {
        // SAFETY: advising over the exact live mapping; DONTNEED on a
        // read-only private file mapping only drops clean page-cache
        // references.
        unsafe {
            madvise(self.ptr, self.len, MADV_DONTNEED);
        }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` describe exactly the mapping established in
        // `map`; after this the struct is gone, so no view can outlive it
        // (borrows tie views to `&self`).
        unsafe {
            munmap(self.ptr, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_reads_and_slices() {
        let dir = std::env::temp_dir().join(format!("sigstr-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let mut payload = Vec::new();
        for i in 0..64u32 {
            payload.extend_from_slice(&i.to_le_bytes());
        }
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let file = std::fs::File::open(&path).unwrap();
        let map = MmapFile::map(&file, payload.len()).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        let words: &[u32] = map.slice(64, 8);
        assert_eq!(words, &[16, 17, 18, 19, 20, 21, 22, 23]);
        map.discard();
        // Pages fault back in transparently after a discard.
        assert_eq!(map.bytes()[0], 0);
        drop(map);
        std::fs::remove_dir_all(&dir).ok();
    }
}
