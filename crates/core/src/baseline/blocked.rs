//! Block-pruned exact scan — reconstruction of the "blocking technique"
//! the paper attributes to \[2\] (§2: "some improvements such as blocking
//! technique and heap strategy were proposed, but they showed no
//! asymptotic improvement").
//!
//! For each start position the end positions are processed in blocks of
//! size `⌈√n⌉`. Before descending into a block the Theorem-1 chain-cover
//! bound for the *whole block* is evaluated: when even the cover cannot
//! beat the running maximum the block is skipped wholesale. Exact, and a
//! useful ablation point between the trivial scan (no pruning) and
//! Algorithm 1 (adaptive pruning): the skip length is capped at the fixed
//! block size, so the asymptotic cost stays `Θ(n²)` — reproducing the
//! "constant-factor improvement only" verdict.

use crate::counts::PrefixCounts;
use crate::cover::extension_upper_bound;
use crate::error::Result;
use crate::model::Model;
use crate::mss::MssResult;
use crate::scan::ScanStats;
use crate::score::{chi_square_counts, scored_cmp, Scored};
use crate::seq::Sequence;

/// Exact MSS with fixed-size block pruning.
pub fn find_mss(seq: &Sequence, model: &Model) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    find_mss_counts(&pc, model)
}

/// [`find_mss`] over prebuilt prefix counts.
pub fn find_mss_counts(pc: &PrefixCounts, model: &Model) -> Result<MssResult> {
    let n = pc.n();
    let k = model.k();
    let block = (n as f64).sqrt().ceil() as usize;
    let block = block.max(1);
    let mut counts = vec![0u32; k];
    let mut stats = ScanStats::default();
    let mut best: Option<Scored> = None;
    for start in (0..n).rev() {
        let mut end = start + 1;
        while end <= n {
            // Try to skip the whole next block [end, end + block).
            let budget = best.map_or(0.0, |b| b.chi_square);
            if budget > 0.0 && end > start {
                let remaining = n - end + 1;
                let width = block.min(remaining);
                if width > 1 {
                    pc.fill_counts(start, end - 1, &mut counts);
                    // Cover bound for extending S[start..end-1) by up to
                    // `width` characters: covers all ends in
                    // [end, end + width - 1].
                    let bound = extension_upper_bound(&counts, end - 1 - start, model, width);
                    if bound <= budget {
                        stats.skips += 1;
                        stats.skipped += width as u64;
                        end += width;
                        continue;
                    }
                }
            }
            pc.fill_counts(start, end, &mut counts);
            let x2 = chi_square_counts(&counts, model);
            stats.examined += 1;
            let scored = Scored {
                start,
                end,
                chi_square: x2,
            };
            match &best {
                Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
                _ => best = Some(scored),
            }
            end += 1;
        }
    }
    Ok(MssResult {
        best: best.expect("non-empty sequence"),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn agrees_with_trivial_on_small_strings() {
        let cases: Vec<Vec<u8>> = vec![
            vec![0, 1, 1, 1, 0, 0, 1, 0],
            vec![0; 12],
            vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1],
            vec![1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0],
        ];
        let model = Model::uniform(2).unwrap();
        for symbols in cases {
            let seq = binary(&symbols);
            let trivial = super::super::trivial::find_mss(&seq, &model).unwrap();
            let blocked = find_mss(&seq, &model).unwrap();
            assert!(
                (trivial.best.chi_square - blocked.best.chi_square).abs() < 1e-9,
                "mismatch on {symbols:?}"
            );
        }
    }

    #[test]
    fn prunes_something_on_structured_input() {
        // A long flat string with one hot run: blocks away from the run
        // should be skipped.
        let mut symbols = [0u8, 1].repeat(100);
        symbols.extend(std::iter::repeat_n(1u8, 30));
        symbols.extend([0u8, 1].repeat(100));
        let seq = binary(&symbols);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert!(r.stats.skipped > 0, "expected block pruning to fire");
        let n = seq.len() as u64;
        assert_eq!(r.stats.examined + r.stats.skipped, n * (n + 1) / 2);
    }

    #[test]
    fn examines_no_more_than_trivial() {
        let symbols: Vec<u8> = (0..150).map(|i| ((i ^ (i >> 2)) % 2) as u8).collect();
        let seq = binary(&symbols);
        let model = Model::uniform(2).unwrap();
        let blocked = find_mss(&seq, &model).unwrap();
        let n = seq.len() as u64;
        assert!(blocked.stats.examined <= n * (n + 1) / 2);
    }
}
