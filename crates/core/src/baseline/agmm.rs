//! AGMM — the linear-time heuristic (reconstruction; see module docs of
//! [`crate::baseline`]).
//!
//! For each character `c` consider the deviation walk
//! `D_c(j) = count_c(S[0..j)) − j·p_c`. A substring `[s, e)` *inflates*
//! `c` by `D_c(e) − D_c(s)`; the maximum-inflation and maximum-deflation
//! substrings per character are found in one pass each (maximum
//! drawup/drawdown of the walk). The best of the `2k` candidates by actual
//! `X²` is returned.
//!
//! This is `O(k·n)` and matches the paper's description of AGMM: very
//! fast, usually close to the optimum on well-behaved synthetic strings,
//! but with no approximation guarantee — maximizing a single character's
//! absolute deviation ignores the `1/l` dilution in `X²`, so it can pick a
//! much longer, weaker substring than the true MSS (exactly the failure
//! mode Tables 4 and 6 of the paper report on real data).

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::mss::MssResult;
use crate::scan::ScanStats;
use crate::score::{chi_square_counts, scored_cmp, Scored};
use crate::seq::Sequence;

/// Maximum drawup of a walk: `argmax_{s<e} (w[e] − w[s])`, as `(s, e)`.
/// Ties resolve to the earliest pair. Returns `None` when every move is
/// non-positive (walk non-increasing).
fn max_drawup(walk: &[f64]) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, f64)> = None;
    let mut min_idx = 0usize;
    for (j, &w) in walk.iter().enumerate().skip(1) {
        let gain = w - walk[min_idx];
        if gain > 0.0 {
            let better = match best {
                None => true,
                Some((_, _, g)) => gain > g,
            };
            if better {
                best = Some((min_idx, j, gain));
            }
        }
        if w < walk[min_idx] {
            min_idx = j;
        }
    }
    best.map(|(s, e, _)| (s, e))
}

/// Build the deviation walk of character `c`: `D_c(j) = count − j·p_c`.
fn deviation_walk(pc: &PrefixCounts, c: usize, p: f64) -> Vec<f64> {
    let n = pc.n();
    let mut walk = Vec::with_capacity(n + 1);
    for j in 0..=n {
        walk.push(f64::from(pc.count(c, 0, j)) - j as f64 * p);
    }
    walk
}

/// AGMM heuristic MSS. `stats.examined` counts candidate evaluations
/// (`≤ 2k`); the `O(k·n)` walk construction is the dominant cost.
pub fn find_mss(seq: &Sequence, model: &Model) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    find_mss_counts(&pc, model)
}

/// [`find_mss`] over prebuilt prefix counts.
pub fn find_mss_counts(pc: &PrefixCounts, model: &Model) -> Result<MssResult> {
    let k = model.k();
    let n = pc.n();
    let mut stats = ScanStats::default();
    let mut best: Option<Scored> = None;
    let mut counts = vec![0u32; k];
    let mut consider = |s: usize, e: usize, best: &mut Option<Scored>, stats: &mut ScanStats| {
        if e <= s || e > n {
            return;
        }
        pc.fill_counts(s, e, &mut counts);
        let x2 = chi_square_counts(&counts, model);
        stats.examined += 1;
        let scored = Scored {
            start: s,
            end: e,
            chi_square: x2,
        };
        match best {
            Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
            _ => *best = Some(scored),
        }
    };
    for c in 0..k {
        let walk = deviation_walk(pc, c, model.p(c));
        // Inflation candidate: max drawup of the walk.
        if let Some((s, e)) = max_drawup(&walk) {
            consider(s, e, &mut best, &mut stats);
        }
        // Deflation candidate: max drawup of the negated walk.
        let negated: Vec<f64> = walk.iter().map(|w| -w).collect();
        if let Some((s, e)) = max_drawup(&negated) {
            consider(s, e, &mut best, &mut stats);
        }
    }
    // Degenerate guard: a constant walk for every character can only occur
    // for n = 0, which `Sequence` forbids; still, fall back to the first
    // character substring rather than panicking.
    let best = match best {
        Some(b) => b,
        None => {
            let mut buf = vec![0u32; k];
            pc.fill_counts(0, 1, &mut buf);
            Scored {
                start: 0,
                end: 1,
                chi_square: chi_square_counts(&buf, model),
            }
        }
    };
    Ok(MssResult { best, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn drawup_basic() {
        assert_eq!(max_drawup(&[0.0, 1.0, 2.0, 1.0]), Some((0, 2)));
        assert_eq!(max_drawup(&[3.0, 2.0, 1.0]), None);
        assert_eq!(max_drawup(&[0.0, -1.0, 2.0, 0.0, 5.0]), Some((1, 4)));
        assert_eq!(max_drawup(&[0.0]), None);
    }

    #[test]
    fn exact_when_run_is_the_drawup() {
        // When the anomalous run is the exact maximum drawup of the walk,
        // AGMM finds the true MSS.
        let seq = binary(&[0, 1, 1, 1, 1, 0]);
        let model = Model::uniform(2).unwrap();
        let agmm = find_mss(&seq, &model).unwrap();
        let exact = super::super::trivial::find_mss(&seq, &model).unwrap();
        assert!((agmm.best.chi_square - exact.best.chi_square).abs() < 1e-9);
        assert_eq!((agmm.best.start, agmm.best.end), (1, 5));
    }

    #[test]
    fn suboptimal_when_drawup_dilutes() {
        // The documented AGMM failure mode: drawup maximizes the absolute
        // deviation Δ, not Δ²/l, so it stretches past the hot run and
        // returns a diluted substring (paper Tables 4/6 behaviour).
        let seq = binary(&[0, 1, 0, 1, 1, 1, 1, 1, 1, 0, 1, 0]);
        let model = Model::uniform(2).unwrap();
        let agmm = find_mss(&seq, &model).unwrap();
        let exact = super::super::trivial::find_mss(&seq, &model).unwrap();
        assert!(agmm.best.chi_square < exact.best.chi_square);
        // Still in the right neighbourhood (overlaps the run 3..9)…
        assert!(agmm.best.start < 9 && agmm.best.end > 3);
        // …and not arbitrarily bad on this benign input.
        assert!(agmm.best.chi_square > 0.5 * exact.best.chi_square);
    }

    #[test]
    fn never_beats_exact_and_is_positive() {
        let cases: Vec<Vec<u8>> = vec![
            vec![0, 1, 1, 0, 1, 0, 0, 0, 1, 1, 1, 0, 1],
            vec![1, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 1, 0, 0],
            vec![0, 0, 1, 1, 0, 0, 1, 1, 0, 0],
        ];
        let model = Model::uniform(2).unwrap();
        for symbols in cases {
            let seq = binary(&symbols);
            let exact = super::super::trivial::find_mss(&seq, &model).unwrap();
            let agmm = find_mss(&seq, &model).unwrap();
            assert!(agmm.best.chi_square <= exact.best.chi_square + 1e-9);
            assert!(agmm.best.chi_square > 0.0);
        }
    }

    #[test]
    fn candidate_budget_is_at_most_2k() {
        let seq = Sequence::from_symbols(vec![0, 1, 2, 0, 1, 2, 2, 2, 1, 0], 3).unwrap();
        let model = Model::uniform(3).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert!(r.stats.examined <= 6);
    }

    #[test]
    fn multialphabet_detects_inflated_char() {
        // Character 2 is heavily over-represented in the middle.
        let mut symbols: Vec<u8> = (0..30).map(|i| (i % 3) as u8).collect();
        symbols.splice(15..15, std::iter::repeat_n(2u8, 10));
        let seq = Sequence::from_symbols(symbols, 3).unwrap();
        let model = Model::uniform(3).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        // The found substring must overlap the injected run.
        assert!(r.best.start < 25 && r.best.end > 15);
        assert!(r.best.chi_square > 5.0);
    }
}
