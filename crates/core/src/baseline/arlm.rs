//! ARLM — endpoint restriction to deviation-walk local extrema
//! (reconstruction; see module docs of [`crate::baseline`]).
//!
//! Candidate boundaries are the positions where some character's deviation
//! walk `D_c(j) = count_c(S[0..j)) − j·p_c` has a local extremum (plus both
//! string endpoints). All pairs of candidates are evaluated.
//!
//! For `k = 2` this is provably exact: if `[s, e)` maximizes `X²` with the
//! character-0 surplus positive, then `s` must be a local minimum and `e` a
//! local maximum of `D_0` — otherwise moving the boundary one step in the
//! falling direction strictly increases `X² = Δ²/(l·p·q)` (both
//! single-step cases are checked in the test-suite and in
//! `tests/paper_lemmas.rs`). For `k > 2` exactness is the conjecture the
//! paper reports for ARLM; on random strings the number of extrema is
//! `Θ(n)`, so the cost stays `Θ(n²)` — "constant-factor improvement only".

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::mss::MssResult;
use crate::scan::ScanStats;
use crate::score::{chi_square_counts, scored_cmp, Scored};
use crate::seq::Sequence;

/// Collect the candidate boundary positions: local extrema of any
/// character's deviation walk, plus positions 0 and n. Sorted, deduplicated.
fn candidate_positions(pc: &PrefixCounts, model: &Model) -> Vec<usize> {
    let n = pc.n();
    let k = model.k();
    let mut is_candidate = vec![false; n + 1];
    is_candidate[0] = true;
    is_candidate[n] = true;
    for c in 0..k {
        // Walk increments: +1−p when S[j] = c, −p otherwise. A position j
        // (1 ≤ j ≤ n−1) is a local extremum iff the increment sign changes
        // across it (the walk never has a zero increment since 0 < p < 1).
        #[allow(clippy::needless_range_loop)] // j indexes both the walk and the flag array
        for j in 1..n {
            let up_before = pc.count(c, j - 1, j) == 1;
            let up_after = pc.count(c, j, j + 1) == 1;
            if up_before != up_after {
                is_candidate[j] = true;
            }
        }
    }
    is_candidate
        .iter()
        .enumerate()
        .filter_map(|(j, &c)| c.then_some(j))
        .collect()
}

/// ARLM MSS search. `stats.examined` counts the candidate pairs
/// evaluated.
pub fn find_mss(seq: &Sequence, model: &Model) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    find_mss_counts(&pc, model)
}

/// [`find_mss`] over prebuilt prefix counts.
pub fn find_mss_counts(pc: &PrefixCounts, model: &Model) -> Result<MssResult> {
    let candidates = candidate_positions(pc, model);
    let k = model.k();
    let mut counts = vec![0u32; k];
    let mut stats = ScanStats::default();
    let mut best: Option<Scored> = None;
    for (i, &s) in candidates.iter().enumerate() {
        for &e in &candidates[i + 1..] {
            pc.fill_counts(s, e, &mut counts);
            let x2 = chi_square_counts(&counts, model);
            stats.examined += 1;
            let scored = Scored {
                start: s,
                end: e,
                chi_square: x2,
            };
            match &best {
                Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
                _ => best = Some(scored),
            }
        }
    }
    // n = 1 has no extremum pair other than (0, 1), which is always present
    // (both endpoints are candidates), so `best` is always populated.
    let best = best.expect("string endpoints always form a candidate pair");
    Ok(MssResult { best, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn exact_on_binary_strings() {
        // Provable for k = 2 (see module docs): compare with trivial on a
        // batch of structured and pseudo-random strings.
        let mut cases: Vec<Vec<u8>> = vec![
            vec![0, 1, 1, 1, 0, 0, 1, 0],
            vec![0; 10],
            vec![0, 1, 0, 1, 0, 1, 0, 1],
            vec![1, 1, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0],
        ];
        // Deterministic pseudo-random strings.
        for seed in 0..20u64 {
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            let symbols: Vec<u8> = (0..40)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x & 1) as u8
                })
                .collect();
            cases.push(symbols);
        }
        let model = Model::uniform(2).unwrap();
        for symbols in cases {
            let seq = binary(&symbols);
            let trivial = super::super::trivial::find_mss(&seq, &model).unwrap();
            let arlm = find_mss(&seq, &model).unwrap();
            assert!(
                (trivial.best.chi_square - arlm.best.chi_square).abs() < 1e-9,
                "ARLM missed the MSS on {symbols:?}: {} vs {}",
                arlm.best.chi_square,
                trivial.best.chi_square
            );
        }
    }

    #[test]
    fn exact_on_binary_with_biased_model() {
        let seq = binary(&[1, 1, 0, 1, 1, 1, 0, 0, 0, 1, 1, 0, 1, 1, 1, 1]);
        let model = Model::from_probs(vec![0.3, 0.7]).unwrap();
        let trivial = super::super::trivial::find_mss(&seq, &model).unwrap();
        let arlm = find_mss(&seq, &model).unwrap();
        assert!((trivial.best.chi_square - arlm.best.chi_square).abs() < 1e-9);
    }

    #[test]
    fn never_beats_trivial_on_larger_alphabets() {
        let symbols: Vec<u8> = (0..60).map(|i| ((i * i + i / 5) % 4) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 4).unwrap();
        let model = Model::uniform(4).unwrap();
        let trivial = super::super::trivial::find_mss(&seq, &model).unwrap();
        let arlm = find_mss(&seq, &model).unwrap();
        assert!(arlm.best.chi_square <= trivial.best.chi_square + 1e-9);
        // And examines fewer pairs.
        assert!(arlm.stats.examined <= trivial.stats.examined);
    }

    #[test]
    fn endpoint_property_holds_for_binary_optimum() {
        // The structural lemma behind ARLM: the trivial MSS endpoints are
        // walk extrema (i.e. ARLM candidates).
        let seq = binary(&[0, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1]);
        let model = Model::uniform(2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let trivial = super::super::trivial::find_mss(&seq, &model).unwrap();
        let candidates = candidate_positions(&pc, &model);
        assert!(candidates.contains(&trivial.best.start));
        assert!(candidates.contains(&trivial.best.end));
    }

    #[test]
    fn single_character_string() {
        let seq = binary(&[1]);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert_eq!((r.best.start, r.best.end), (0, 1));
    }

    #[test]
    fn alternating_string_has_few_candidates() {
        // 0101… the walk zig-zags: every interior position is an extremum
        // for one of the characters — candidate count stays Θ(n), pairs
        // Θ(n²)/constant.
        let symbols: Vec<u8> = (0..50).map(|i| (i % 2) as u8).collect();
        let seq = binary(&symbols);
        let model = Model::uniform(2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let candidates = candidate_positions(&pc, &model);
        assert!(candidates.len() <= seq.len() + 1);
        assert!(candidates.len() >= 2);
    }
}
