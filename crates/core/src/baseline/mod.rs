//! Baseline algorithms the paper compares against (§2, §7.3).
//!
//! * [`trivial`] — the exact `O(n²)` scan over all substrings.
//! * [`blocked`] — exact block-pruned scan (reconstruction of the
//!   "blocking technique" of \[2\]; no asymptotic improvement).
//! * [`arlm`] — local-extrema endpoint restriction (reconstruction of
//!   ARLM \[9\]; exact for `k = 2` — we prove the endpoint property in the
//!   tests — conjectured exact for larger alphabets, `O(n²)` worst case).
//! * [`agmm`] — linear-time deviation-walk heuristic (reconstruction of
//!   AGMM \[9\]; fast, good-but-not-optimal, no approximation guarantee).
//!
//! The ARLM/AGMM originals (Dutta & Bhattacharya, PAKDD 2010) are not
//! available offline; these reconstructions match the behaviours this
//! paper reports for them (Table 1/4/6): ARLM finds the MSS in practice at
//! quadratic cost, AGMM is `O(k·n)` but can return substantially lower
//! `X²` values, especially on real data. See `DESIGN.md` §2.

pub mod agmm;
pub mod arlm;
pub mod blocked;
pub mod trivial;
