//! The trivial exact algorithm: evaluate all `O(n²)` substrings.
//!
//! For each start position the scan extends one character at a time,
//! maintaining the count vector incrementally (`O(1)` per step) and
//! scoring through the canonical [`chi_square_counts_with_len`]
//! accumulation — the same primitive every pruned kernel uses, which is
//! what makes the baseline's `X²` values bit-identical to theirs (the
//! equivalence tests rely on this). Total `O(k·n²)` (the paper's
//! baseline in Figs. 1, 6, 7 and Tables 1, 4, 6).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::error::{Error, Result};
use crate::model::Model;
use crate::mss::MssResult;
use crate::scan::ScanStats;
use crate::score::{chi_square_counts_with_len, scored_cmp, Scored};
use crate::seq::Sequence;
use crate::threshold::ThresholdResult;
use crate::topt::{OrdScored, TopTResult};

/// Visit every substring (all starts, ends ascending) with its `X²`.
fn for_each_substring(
    seq: &Sequence,
    model: &Model,
    min_len: usize,
    mut visit: impl FnMut(Scored),
) -> ScanStats {
    let n = seq.len();
    let inv_p = model.inv_probs();
    let mut stats = ScanStats::default();
    let mut counts = vec![0u32; model.k()];
    for start in (0..n).rev() {
        if start + min_len > n {
            continue;
        }
        counts.fill(0);
        for (offset, &symbol) in seq.symbols()[start..].iter().enumerate() {
            counts[symbol as usize] += 1;
            let end = start + offset + 1;
            let l = end - start;
            if l < min_len {
                continue;
            }
            stats.examined += 1;
            visit(Scored {
                start,
                end,
                chi_square: chi_square_counts_with_len(&counts, inv_p, l as f64),
            });
        }
    }
    stats
}

/// Exact MSS by exhaustive scan (paper's "Trivial" baseline).
pub fn find_mss(seq: &Sequence, model: &Model) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let mut best: Option<Scored> = None;
    let stats = for_each_substring(seq, model, 1, |scored| match &best {
        Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
        _ => best = Some(scored),
    });
    Ok(MssResult {
        best: best.expect("non-empty sequence"),
        stats,
    })
}

/// Exact top-t by exhaustive scan.
pub fn top_t(seq: &Sequence, model: &Model, t: usize) -> Result<TopTResult> {
    model.check_alphabet(seq)?;
    if t == 0 {
        return Err(Error::InvalidParameter {
            what: "t",
            details: "the top-t set must have t >= 1".into(),
        });
    }
    let mut heap: BinaryHeap<Reverse<OrdScored>> = BinaryHeap::with_capacity(t + 1);
    let stats = for_each_substring(seq, model, 1, |scored| {
        if heap.len() < t {
            heap.push(Reverse(OrdScored(scored)));
        } else if let Some(Reverse(min)) = heap.peek() {
            if scored_cmp(&scored, &min.0) == std::cmp::Ordering::Greater {
                heap.pop();
                heap.push(Reverse(OrdScored(scored)));
            }
        }
    });
    let mut items: Vec<Scored> = heap.into_iter().map(|r| r.0 .0).collect();
    items.sort_by(|a, b| scored_cmp(b, a));
    Ok(TopTResult { items, stats })
}

/// Exact threshold query by exhaustive scan.
pub fn above_threshold(seq: &Sequence, model: &Model, alpha: f64) -> Result<ThresholdResult> {
    model.check_alphabet(seq)?;
    if !alpha.is_finite() || alpha < 0.0 {
        return Err(Error::InvalidParameter {
            what: "alpha",
            details: format!("threshold must be finite and non-negative, got {alpha}"),
        });
    }
    let mut items = Vec::new();
    let stats = for_each_substring(seq, model, 1, |scored| {
        if scored.chi_square > alpha {
            items.push(scored);
        }
    });
    Ok(ThresholdResult { items, stats })
}

/// Exact min-length MSS by exhaustive scan.
pub fn mss_min_length(seq: &Sequence, model: &Model, gamma0: usize) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let min_len = gamma0 + 1;
    if min_len > seq.len() {
        return Err(Error::InvalidParameter {
            what: "gamma0",
            details: format!(
                "no substring of length > {gamma0} exists in a string of length {}",
                seq.len()
            ),
        });
    }
    let mut best: Option<Scored> = None;
    let stats = for_each_substring(seq, model, min_len, |scored| match &best {
        Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
        _ => best = Some(scored),
    });
    Ok(MssResult {
        best: best.expect("at least one candidate"),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn examines_exactly_n_choose_2_plus_n() {
        let seq = binary(&[0, 1, 0, 1, 1, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        let n = seq.len() as u64;
        assert_eq!(r.stats.examined, n * (n + 1) / 2);
        assert_eq!(r.stats.skipped, 0);
    }

    #[test]
    fn finds_obvious_run() {
        let seq = binary(&[0, 1, 0, 1, 1, 1, 1, 1, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert_eq!((r.best.start, r.best.end), (3, 8));
    }

    #[test]
    fn top_t_contains_mss() {
        let seq = binary(&[0, 1, 1, 0, 1, 1, 1, 0]);
        let model = Model::uniform(2).unwrap();
        let mss = find_mss(&seq, &model).unwrap();
        let top = top_t(&seq, &model, 5).unwrap();
        assert_eq!(top.items[0], mss.best);
        assert!(top_t(&seq, &model, 0).is_err());
    }

    #[test]
    fn threshold_soundness() {
        let seq = binary(&[0, 1, 1, 1, 1, 0, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let r = above_threshold(&seq, &model, 2.5).unwrap();
        assert!(r.items.iter().all(|s| s.chi_square > 2.5));
        assert!(above_threshold(&seq, &model, -1.0).is_err());
    }

    #[test]
    fn min_length_constraint_and_errors() {
        let seq = binary(&[0, 1, 1, 1, 0, 0]);
        let model = Model::uniform(2).unwrap();
        let r = mss_min_length(&seq, &model, 4).unwrap();
        assert!(r.best.len() > 4);
        assert!(mss_min_length(&seq, &model, 6).is_err());
    }
}
