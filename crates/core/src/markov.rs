//! Significance under a first-order Markov null model (paper §8 future
//! work: "the analysis can be further extended to strings generated from
//! Markov models, the most basic of which being the case when there is a
//! correlation between adjacent characters").
//!
//! The null model is a transition matrix `Q` (`q_{ab}` = probability of
//! `b` following `a`). For a substring, the observed transition counts
//! `N_{ab}` are compared against their expectations `E_{ab} = N_{a·}·q_{ab}`
//! (`N_{a·}` is the number of transitions leaving `a`); the statistic
//!
//! ```text
//! X² = Σ_{a,b} (N_{ab} − E_{ab})² / E_{ab}
//! ```
//!
//! is asymptotically `χ²(k(k−1))` under the null (a goodness-of-fit test on
//! each row with `k − 1` free cells). The chain-cover bound of the i.i.d.
//! case does not port directly (appending one character changes a single
//! *transition* whose row depends on the previous character), so this
//! module provides the exact `O(k²·n²)` scan plus an `O(k²·n)` deviation-
//! walk heuristic in the spirit of AGMM.

use crate::error::{Error, Result};
use crate::scan::ScanStats;
use crate::score::{scored_cmp, Scored};
use crate::seq::Sequence;

/// A validated first-order Markov transition model.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionModel {
    k: usize,
    /// Row-major `k × k`: `probs[a * k + b] = q_{ab}`.
    probs: Vec<f64>,
}

impl TransitionModel {
    /// Build from a row-major `k × k` matrix. Every entry must be strictly
    /// inside `(0, 1)` and every row must sum to 1 (within `1e-6`; rows are
    /// renormalized exactly).
    pub fn from_rows(k: usize, probs: Vec<f64>) -> Result<Self> {
        if !(2..=256).contains(&k) {
            return Err(Error::AlphabetTooSmall { k });
        }
        if probs.len() != k * k {
            return Err(Error::InvalidParameter {
                what: "probs",
                details: format!(
                    "expected {} entries for k = {k}, got {}",
                    k * k,
                    probs.len()
                ),
            });
        }
        for (index, &value) in probs.iter().enumerate() {
            if value.is_nan() || value <= 0.0 || value >= 1.0 {
                return Err(Error::InvalidProbability { index, value });
            }
        }
        let mut probs = probs;
        for a in 0..k {
            let row = &mut probs[a * k..(a + 1) * k];
            let sum: f64 = row.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(Error::NotNormalized { sum });
            }
            for q in row {
                *q /= sum;
            }
        }
        Ok(Self { k, probs })
    }

    /// The paper's experimental Markov process (§7.1.2): transition
    /// probability of `a_j` following `a_i` proportional to
    /// `1/2^{(i−j) mod k}`.
    pub fn paper_process(k: usize) -> Result<Self> {
        if !(2..=256).contains(&k) {
            return Err(Error::AlphabetTooSmall { k });
        }
        let mut probs = vec![0.0f64; k * k];
        for i in 0..k {
            let mut row_sum = 0.0;
            for j in 0..k {
                let weight = 0.5f64.powi(((i + k - j) % k) as i32);
                probs[i * k + j] = weight;
                row_sum += weight;
            }
            for j in 0..k {
                probs[i * k + j] /= row_sum;
            }
        }
        Self::from_rows(k, probs)
    }

    /// A binary "persistence" chain: repeat the previous symbol with
    /// probability `p` (paper §7.4, Table 2's RNG-audit model).
    pub fn binary_persistence(p: f64) -> Result<Self> {
        if p.is_nan() || p <= 0.0 || p >= 1.0 {
            return Err(Error::InvalidProbability { index: 0, value: p });
        }
        Self::from_rows(2, vec![p, 1.0 - p, 1.0 - p, p])
    }

    /// Additive-smoothed maximum-likelihood estimate from a sequence.
    pub fn estimate_smoothed(seq: &Sequence, alpha: f64) -> Result<Self> {
        if alpha.is_nan() || alpha <= 0.0 || alpha.is_infinite() {
            return Err(Error::InvalidParameter {
                what: "alpha",
                details: format!("smoothing constant must be positive and finite, got {alpha}"),
            });
        }
        let k = seq.k();
        let mut counts = vec![0u64; k * k];
        for pair in seq.symbols().windows(2) {
            counts[pair[0] as usize * k + pair[1] as usize] += 1;
        }
        let mut probs = vec![0.0f64; k * k];
        for a in 0..k {
            let row_total: u64 = counts[a * k..(a + 1) * k].iter().sum();
            let denom = row_total as f64 + k as f64 * alpha;
            for b in 0..k {
                probs[a * k + b] = (counts[a * k + b] as f64 + alpha) / denom;
            }
        }
        Self::from_rows(k, probs)
    }

    /// Alphabet size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Transition probability `q_{ab}`.
    pub fn q(&self, a: usize, b: usize) -> f64 {
        self.probs[a * self.k + b]
    }

    /// Degrees of freedom of the limiting chi-square: `k(k − 1)`.
    pub fn degrees_of_freedom(&self) -> usize {
        self.k * (self.k - 1)
    }

    /// Check compatibility with a sequence's alphabet.
    pub fn check_alphabet(&self, seq: &Sequence) -> Result<()> {
        if self.k != seq.k() {
            return Err(Error::AlphabetMismatch {
                model_k: self.k,
                seq_k: seq.k(),
            });
        }
        Ok(())
    }
}

/// The Markov `X²` of a transition-count matrix (row-major `k × k`).
pub fn chi_square_transitions(counts: &[u32], model: &TransitionModel) -> f64 {
    let k = model.k;
    debug_assert_eq!(counts.len(), k * k);
    let mut x2 = 0.0;
    for a in 0..k {
        let row = &counts[a * k..(a + 1) * k];
        let row_total: u32 = row.iter().sum();
        if row_total == 0 {
            continue;
        }
        let total = f64::from(row_total);
        for (b, &n) in row.iter().enumerate() {
            let e = total * model.q(a, b);
            let d = f64::from(n) - e;
            x2 += d * d / e;
        }
    }
    x2
}

/// Prefix transition counts: `O(1)` transition-count matrices for any
/// substring.
#[derive(Debug, Clone)]
pub struct PrefixTransitionCounts {
    /// Row-major `(k²) × n` table: entry `[cell][t]` = number of
    /// transitions of kind `cell` among pairs `(u, u+1)` with `u + 1 ≤ t`.
    table: Vec<u32>,
    n: usize,
    k: usize,
}

impl PrefixTransitionCounts {
    /// Build in `O(k²·n)` space and time.
    pub fn build(seq: &Sequence) -> Self {
        let n = seq.len();
        let k = seq.k();
        let cells = k * k;
        let mut table = vec![0u32; cells * n.max(1)];
        for t in 1..n {
            let pair = seq.symbol(t - 1) as usize * k + seq.symbol(t) as usize;
            for cell in 0..cells {
                table[cell * n + t] = table[cell * n + t - 1] + u32::from(cell == pair);
            }
        }
        Self { table, n, k }
    }

    /// Fill `buf` (length `k²`) with the transition counts of
    /// `S[start..end)` (pairs fully inside the range).
    pub fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k * self.k);
        debug_assert!(start <= end && end <= self.n);
        if end < start + 2 {
            buf.fill(0);
            return;
        }
        for (cell, slot) in buf.iter_mut().enumerate() {
            let row = cell * self.n;
            *slot = self.table[row + end - 1] - self.table[row + start];
        }
    }
}

/// Result of a Markov-null MSS search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MarkovResult {
    /// The winning substring (scored by the Markov `X²`).
    pub best: Scored,
    /// Scan instrumentation.
    pub stats: ScanStats,
}

impl MarkovResult {
    /// P-value under the `χ²(k(k−1))` approximation.
    pub fn p_value(&self, model: &TransitionModel) -> f64 {
        sigstr_stats::chi2::sf(self.best.chi_square, model.degrees_of_freedom() as f64)
    }
}

/// Exact MSS under a Markov null by exhaustive scan, incremental in the
/// end position (`O(k²)` per substring ⇒ `O(k²·n²)` total).
///
/// Only substrings with at least one transition (length ≥ 2) are
/// considered.
pub fn find_mss_markov(seq: &Sequence, model: &TransitionModel) -> Result<MarkovResult> {
    model.check_alphabet(seq)?;
    let n = seq.len();
    if n < 2 {
        return Err(Error::InvalidParameter {
            what: "sequence",
            details: "Markov significance needs at least 2 symbols".into(),
        });
    }
    let k = model.k;
    let mut best: Option<Scored> = None;
    let mut stats = ScanStats::default();
    let mut counts = vec![0u32; k * k];
    for start in 0..n - 1 {
        counts.fill(0);
        for end in (start + 2)..=n {
            let pair = seq.symbol(end - 2) as usize * k + seq.symbol(end - 1) as usize;
            counts[pair] += 1;
            let x2 = chi_square_transitions(&counts, model);
            stats.examined += 1;
            let scored = Scored {
                start,
                end,
                chi_square: x2,
            };
            match &best {
                Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
                _ => best = Some(scored),
            }
        }
    }
    Ok(MarkovResult {
        best: best.expect("n >= 2 guarantees a candidate"),
        stats,
    })
}

/// Linear-time heuristic in the spirit of AGMM: per transition cell
/// `(a, b)`, the deviation walk `D_{ab}(t) = N_{ab}(t) − q_{ab}·N_{a·}(t)`
/// over transition prefixes; maximum drawup/drawdown endpoints become
/// candidate substrings, which are then evaluated exactly.
pub fn heuristic_mss_markov(seq: &Sequence, model: &TransitionModel) -> Result<MarkovResult> {
    model.check_alphabet(seq)?;
    let n = seq.len();
    if n < 2 {
        return Err(Error::InvalidParameter {
            what: "sequence",
            details: "Markov significance needs at least 2 symbols".into(),
        });
    }
    let k = model.k;
    let ptc = PrefixTransitionCounts::build(seq);
    let mut stats = ScanStats::default();
    let mut best: Option<Scored> = None;
    let mut counts = vec![0u32; k * k];
    let mut consider = |s: usize, e: usize, best: &mut Option<Scored>, stats: &mut ScanStats| {
        if e < s + 2 || e > n {
            return;
        }
        ptc.fill_counts(s, e, &mut counts);
        let x2 = chi_square_transitions(&counts, model);
        stats.examined += 1;
        let scored = Scored {
            start: s,
            end: e,
            chi_square: x2,
        };
        match best {
            Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
            _ => *best = Some(scored),
        }
    };
    for a in 0..k {
        for b in 0..k {
            // Deviation walk over pair positions t = 0..n−1 (pair t spans
            // symbols t and t+1).
            let q = model.q(a, b);
            let mut walk = Vec::with_capacity(n);
            let mut d = 0.0f64;
            walk.push(0.0);
            for t in 0..n - 1 {
                let from = seq.symbol(t) as usize;
                let to = seq.symbol(t + 1) as usize;
                if from == a {
                    d += f64::from(u32::from(to == b)) - q;
                }
                walk.push(d);
            }
            for flip in [1.0f64, -1.0] {
                let signed: Vec<f64> = walk.iter().map(|w| w * flip).collect();
                if let Some((s, e)) = max_drawup(&signed) {
                    // Pair range [s, e) corresponds to symbols [s, e + 1).
                    consider(s, e + 1, &mut best, &mut stats);
                }
            }
        }
    }
    let best = match best {
        Some(b) => b,
        None => {
            // Fall back to the full string.
            ptc.fill_counts(0, n, &mut counts);
            Scored {
                start: 0,
                end: n,
                chi_square: chi_square_transitions(&counts, model),
            }
        }
    };
    Ok(MarkovResult { best, stats })
}

/// Maximum drawup of a walk: `argmax_{s<e} (w[e] − w[s])` with earliest
/// tie-break; `None` when the walk never rises.
fn max_drawup(walk: &[f64]) -> Option<(usize, usize)> {
    let mut best: Option<(usize, usize, f64)> = None;
    let mut min_idx = 0usize;
    for (j, &w) in walk.iter().enumerate().skip(1) {
        let gain = w - walk[min_idx];
        if gain > 0.0 {
            let better = match best {
                None => true,
                Some((_, _, g)) => gain > g,
            };
            if better {
                best = Some((min_idx, j, gain));
            }
        }
        if w < walk[min_idx] {
            min_idx = j;
        }
    }
    best.map(|(s, e, _)| (s, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_model_validation() {
        assert!(TransitionModel::from_rows(2, vec![0.5, 0.5, 0.5, 0.5]).is_ok());
        assert!(TransitionModel::from_rows(2, vec![0.5, 0.5, 0.5]).is_err());
        assert!(TransitionModel::from_rows(2, vec![1.0, 0.0, 0.5, 0.5]).is_err());
        assert!(TransitionModel::from_rows(2, vec![0.4, 0.4, 0.5, 0.5]).is_err());
        assert!(TransitionModel::from_rows(1, vec![1.0]).is_err());
    }

    #[test]
    fn paper_process_rows_normalized() {
        for k in [2usize, 3, 5] {
            let tm = TransitionModel::paper_process(k).unwrap();
            for a in 0..k {
                let row_sum: f64 = (0..k).map(|b| tm.q(a, b)).sum();
                assert!((row_sum - 1.0).abs() < 1e-12);
            }
            // Self-transition (i = j, weight 1/2⁰ = 1) is the most likely.
            for a in 0..k {
                for b in 0..k {
                    assert!(tm.q(a, a) >= tm.q(a, b) - 1e-12);
                }
            }
        }
    }

    #[test]
    fn binary_persistence_properties() {
        let tm = TransitionModel::binary_persistence(0.8).unwrap();
        assert!((tm.q(0, 0) - 0.8).abs() < 1e-12);
        assert!((tm.q(0, 1) - 0.2).abs() < 1e-12);
        assert!((tm.q(1, 1) - 0.8).abs() < 1e-12);
        assert!(TransitionModel::binary_persistence(0.0).is_err());
        assert!(TransitionModel::binary_persistence(1.0).is_err());
        assert_eq!(tm.degrees_of_freedom(), 2);
    }

    #[test]
    fn estimate_recovers_alternating_pattern() {
        let symbols: Vec<u8> = (0..100).map(|i| (i % 2) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        let tm = TransitionModel::estimate_smoothed(&seq, 0.5).unwrap();
        // All observed transitions are 0→1 and 1→0.
        assert!(tm.q(0, 1) > 0.9);
        assert!(tm.q(1, 0) > 0.9);
        assert!(TransitionModel::estimate_smoothed(&seq, 0.0).is_err());
    }

    #[test]
    fn transition_chi_square_zero_at_expectation() {
        // Pure alternations against a strongly alternating null.
        let tm = TransitionModel::from_rows(2, vec![0.001, 0.999, 0.999, 0.001]).unwrap();
        let counts = [0u32, 50, 50, 0]; // only alternations observed
        let x2 = chi_square_transitions(&counts, &tm);
        assert!(x2 < 0.2, "x2 = {x2}");
        // And a balanced matrix against the fair null.
        let fair = TransitionModel::from_rows(2, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        assert!(chi_square_transitions(&[25, 25, 25, 25], &fair) < 1e-12);
    }

    #[test]
    fn prefix_transition_counts_match_direct() {
        let seq = Sequence::from_symbols(vec![0, 1, 1, 0, 1, 0, 0, 1], 2).unwrap();
        let ptc = PrefixTransitionCounts::build(&seq);
        let mut buf = vec![0u32; 4];
        for start in 0..seq.len() {
            for end in start..=seq.len() {
                ptc.fill_counts(start, end, &mut buf);
                let mut direct = vec![0u32; 4];
                if end >= start + 2 {
                    for t in start..end - 1 {
                        direct[seq.symbol(t) as usize * 2 + seq.symbol(t + 1) as usize] += 1;
                    }
                }
                assert_eq!(buf.as_slice(), direct.as_slice(), "range {start}..{end}");
            }
        }
    }

    #[test]
    fn detects_injected_persistence_burst() {
        // Alternating background (matching a high-alternation null) with an
        // injected run of identical symbols (persistence anomaly).
        let mut symbols: Vec<u8> = (0..40).map(|i| (i % 2) as u8).collect();
        symbols.splice(20..20, std::iter::repeat_n(1u8, 12));
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        let tm = TransitionModel::from_rows(2, vec![0.1, 0.9, 0.9, 0.1]).unwrap();
        let exact = find_mss_markov(&seq, &tm).unwrap();
        // The anomaly region is [20, 32); the MSS must overlap it.
        assert!(exact.best.start < 32 && exact.best.end > 20);
        assert!(exact.p_value(&tm) < 1e-6);
    }

    #[test]
    fn heuristic_never_beats_exact() {
        let symbols: Vec<u8> = (0..60)
            .map(|i| u8::from((i / 7) % 2 == 0) ^ u8::from(i % 3 == 0))
            .collect();
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        let tm = TransitionModel::from_rows(2, vec![0.5, 0.5, 0.5, 0.5]).unwrap();
        let exact = find_mss_markov(&seq, &tm).unwrap();
        let heur = heuristic_mss_markov(&seq, &tm).unwrap();
        assert!(heur.best.chi_square <= exact.best.chi_square + 1e-9);
        assert!(heur.stats.examined < exact.stats.examined);
    }

    #[test]
    fn too_short_sequences_rejected() {
        let seq = Sequence::from_symbols(vec![0], 2).unwrap();
        let tm = TransitionModel::binary_persistence(0.5).unwrap();
        assert!(find_mss_markov(&seq, &tm).is_err());
        assert!(heuristic_mss_markov(&seq, &tm).is_err());
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let seq = Sequence::from_symbols(vec![0, 1, 0, 1], 2).unwrap();
        let tm = TransitionModel::paper_process(3).unwrap();
        assert!(find_mss_markov(&seq, &tm).is_err());
    }
}
