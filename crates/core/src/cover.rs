//! The chain cover bound (paper Definition 1, Lemma 1–2, Theorem 1).
//!
//! For a substring with count vector `{Y_1..Y_k}` and length `l`, the
//! *chain cover* over `x` symbols of character `c` is the hypothetical
//! string obtained by appending `x` copies of `c`. Theorem 1 states that
//! the `X²` of **every** extension by at most `x` arbitrary characters is
//! bounded by the chain cover's `X²` when `c` is chosen to maximize
//! `(2Y_c + x)/p_c`. This bound is what lets the MSS algorithm skip runs of
//! end positions.

use crate::model::Model;
use crate::score::weighted_square_sum;

/// `X²` of the chain cover of a substring (count vector `counts`, length
/// `l`) over `x` symbols of character `c` (paper Eq. 7 / Eq. 19):
///
/// `X²_λ = [ Σ Y_m²/p_m + (2xY_c + x²)/p_c ] / (l + x) − (l + x)`.
pub fn chain_cover_chi_square(counts: &[u32], l: usize, model: &Model, c: usize, x: usize) -> f64 {
    debug_assert_eq!(counts.len(), model.k());
    debug_assert!(c < model.k());
    let lf = l as f64;
    let xf = x as f64;
    let mut weighted_sq = weighted_square_sum(counts, model.inv_probs());
    let yc = f64::from(counts[c]);
    weighted_sq += (2.0 * xf * yc + xf * xf) * model.inv_probs()[c];
    weighted_sq / (lf + xf) - (lf + xf)
}

/// The character maximizing `(2Y_c + x)/p_c` — the cover character of
/// Lemma 1 / Theorem 1 for extension length `x`.
pub fn best_cover_char(counts: &[u32], model: &Model, x: usize) -> usize {
    debug_assert_eq!(counts.len(), model.k());
    let xf = x as f64;
    let mut best = 0usize;
    let mut best_val = f64::NEG_INFINITY;
    for (c, (&y, &inv_p)) in counts.iter().zip(model.inv_probs()).enumerate() {
        let val = (2.0 * f64::from(y) + xf) * inv_p;
        if val > best_val {
            best_val = val;
            best = c;
        }
    }
    best
}

/// Theorem 1 as a single call: an upper bound on the `X²` of *any* string
/// having the given substring as a prefix and at most `x` extra characters.
pub fn extension_upper_bound(counts: &[u32], l: usize, model: &Model, x: usize) -> f64 {
    let c = best_cover_char(counts, model, x);
    chain_cover_chi_square(counts, l, model, c, x)
}

/// The character of Lemma 2: appending the character maximizing `Y_c/p_c`
/// strictly increases `X²`. Useful to grow a candidate anomaly greedily.
pub fn best_append_char(counts: &[u32], model: &Model) -> usize {
    best_cover_char(counts, model, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::chi_square_counts;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    /// Direct evaluation of the cover by materializing the extended counts.
    fn cover_direct(counts: &[u32], model: &Model, c: usize, x: usize) -> f64 {
        let mut extended = counts.to_vec();
        extended[c] += x as u32;
        chi_square_counts(&extended, model)
    }

    #[test]
    fn cover_formula_matches_materialized_counts() {
        let model = Model::from_probs(vec![0.2, 0.3, 0.5]).unwrap();
        let counts = [3u32, 5, 2];
        let l = 10;
        for c in 0..3 {
            for x in 0..20 {
                assert_close(
                    chain_cover_chi_square(&counts, l, &model, c, x),
                    cover_direct(&counts, &model, c, x),
                    1e-11,
                );
            }
        }
    }

    #[test]
    fn cover_at_zero_extension_is_identity() {
        let model = Model::uniform(3).unwrap();
        let counts = [1u32, 4, 2];
        assert_close(
            chain_cover_chi_square(&counts, 7, &model, 1, 0),
            chi_square_counts(&counts, &model),
            1e-12,
        );
    }

    #[test]
    fn lemma2_appending_best_char_increases_chi_square() {
        // Lemma 2: appending argmax Y_c/p_c strictly increases X².
        let model = Model::from_probs(vec![0.1, 0.6, 0.3]).unwrap();
        let mut counts = vec![2u32, 3, 1];
        for _ in 0..50 {
            let before = chi_square_counts(&counts, &model);
            let c = best_append_char(&counts, &model);
            counts[c] += 1;
            let after = chi_square_counts(&counts, &model);
            assert!(after > before, "Lemma 2 violated: {before} -> {after}");
        }
    }

    #[test]
    fn theorem1_bounds_all_enumerable_extensions() {
        // Exhaustively enumerate extensions over a ternary alphabet and
        // check the Theorem-1 bound dominates each one.
        let model = Model::from_probs(vec![0.25, 0.35, 0.4]).unwrap();
        let base = [4u32, 1, 2];
        let l = 7usize;
        let x_max = 4usize;
        let bound = extension_upper_bound(&base, l, &model, x_max);
        // Enumerate every multiset of at most x_max added characters.
        for a in 0..=x_max as u32 {
            for b in 0..=(x_max as u32 - a) {
                for c in 0..=(x_max as u32 - a - b) {
                    let ext = [base[0] + a, base[1] + b, base[2] + c];
                    let x2 = chi_square_counts(&ext, &model);
                    assert!(
                        x2 <= bound + 1e-9,
                        "extension (+{a},+{b},+{c}) has X² = {x2} > bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn best_cover_char_maximizes_cover_value() {
        // For fixed x, the argmax of (2Y+x)/p is the argmax of the cover X².
        let model = Model::from_probs(vec![0.15, 0.35, 0.2, 0.3]).unwrap();
        let counts = [6u32, 2, 0, 4];
        let l = 12usize;
        for x in 1..15usize {
            let best = best_cover_char(&counts, &model, x);
            let best_x2 = chain_cover_chi_square(&counts, l, &model, best, x);
            for c in 0..4 {
                let x2 = chain_cover_chi_square(&counts, l, &model, c, x);
                assert!(
                    x2 <= best_x2 + 1e-9,
                    "char {c} beats best {best} at x = {x}"
                );
            }
        }
    }
}
