//! The skip solver — how many end positions the scan may jump.
//!
//! Paper §4 derives, for the current substring (counts `{Y_1..Y_k}`,
//! length `l`, statistic `X²_l`) and the pruning budget `X²_max`, the
//! quadratic constraint (Eq. 21) on an extension length `x`:
//!
//! ```text
//! (1 − p_t)·x² + (2Y_t − 2l·p_t − p_t·X²_max)·x + (X²_l − X²_max)·l·p_t ≤ 0
//! ```
//!
//! where `t` is the Theorem-1 cover character for extension `x`. The
//! pseudocode picks `t` as `argmax (2Y_t + x)/p_t` with `x` still unknown —
//! circular as written. We resolve it exactly (see `DESIGN.md`): for fixed
//! `x`, the chain-cover `X²` with character `m` is increasing in
//! `(2Y_m + x)/p_m`, so requiring the bound for the argmax character is
//! equivalent to requiring the quadratic for **every** character. The
//! admissible region is the intersection of `k` root intervals
//! `[r1_m, r2_m]`; the maximal integer skip is `⌊min_m r2_m⌋` (provided it
//! is ≥ `max_m r1_m`, which is automatic in MSS mode where the constant
//! term is ≤ 0).
//!
//! Skipping `x` means: every extension of the current substring by
//! `1..=x` characters has `X² ≤ budget` (Theorem 1), so the scan can jump
//! straight to end position `end + x + 1`.
//!
//! A final `O(k)` verification step re-evaluates the quadratics at the
//! integer candidate, guarding against floating-point overshoot of the real
//! root; this keeps the "never misses the MSS" invariant robust instead of
//! probabilistic.

use crate::model::Model;

/// Result returned by [`max_safe_skip`]: the number of end positions that
/// can safely be skipped (0 = no skip, advance by one).
pub type Skip = usize;

/// Evaluate the Eq.-21 quadratic for character `m` at integer `x`.
/// Negative-or-zero means the chain-cover bound with character `m` at
/// extension `x` does not exceed `budget`.
#[inline]
fn quadratic_at(y: f64, p: f64, l: f64, x2_l: f64, budget: f64, x: f64) -> f64 {
    let a = 1.0 - p;
    let b = 2.0 * y - 2.0 * l * p - p * budget;
    let c = (x2_l - budget) * l * p;
    (a * x + b) * x + c
}

/// Largest number of end positions that can be skipped after examining a
/// substring with count vector `counts`, length `l` and statistic `x2_l`,
/// given the current pruning budget (the running `X²_max`, the top-t floor,
/// or the threshold `α₀`).
///
/// Every extension of the substring by `1..=skip` characters is guaranteed
/// (Theorem 1) to have `X² ≤ budget`. Returns 0 when no skip is provably
/// safe. The caller must clamp the result to the remaining string length.
pub fn max_safe_skip(counts: &[u32], l: usize, x2_l: f64, budget: f64, model: &Model) -> Skip {
    debug_assert_eq!(counts.len(), model.k());
    if !budget.is_finite() || budget <= 0.0 {
        return 0;
    }
    let lf = l as f64;
    // Intersection [lo, hi] of the k per-character admissible intervals.
    let mut lo = 0.0f64;
    let mut hi = f64::INFINITY;
    for (&y, &p) in counts.iter().zip(model.probs()) {
        let yf = f64::from(y);
        let a = 1.0 - p;
        let b = 2.0 * yf - 2.0 * lf * p - p * budget;
        let c = (x2_l - budget) * lf * p;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return 0; // this character admits no valid extension length
        }
        let sqrt_disc = disc.sqrt();
        let r2 = (-b + sqrt_disc) / (2.0 * a);
        let r1 = (-b - sqrt_disc) / (2.0 * a);
        hi = hi.min(r2);
        lo = lo.max(r1);
        if hi < 1.0 || lo > hi {
            return 0;
        }
    }
    let mut x = hi.floor();
    if x < 1.0 || x < lo {
        return 0;
    }
    // Floating-point guard: verify the quadratics at the integer candidate;
    // back off by one if the root was overshot by rounding.
    for _ in 0..2 {
        if x < 1.0 || x < lo {
            return 0;
        }
        let ok = counts.iter().zip(model.probs()).all(|(&y, &p)| {
            quadratic_at(f64::from(y), p, lf, x2_l, budget, x) <= 1e-9 * (1.0 + budget.abs() * lf)
        });
        if ok {
            return x as Skip;
        }
        x -= 1.0;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::extension_upper_bound;
    use crate::score::chi_square_counts;

    #[test]
    fn skip_zero_when_budget_not_positive() {
        let model = Model::uniform(2).unwrap();
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, 0.0, &model), 0);
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, -5.0, &model), 0);
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, f64::NAN, &model), 0);
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, f64::INFINITY, &model), 0);
    }

    #[test]
    fn skip_grows_with_budget() {
        // Larger budget ⇒ weaker constraint ⇒ longer skips (paper §5.1).
        let model = Model::uniform(2).unwrap();
        let counts = [5u32, 5];
        let x2 = chi_square_counts(&counts, &model);
        let mut prev = 0;
        for budget_int in 1..60u32 {
            let budget = f64::from(budget_int);
            if budget <= x2 {
                continue;
            }
            let skip = max_safe_skip(&counts, 10, x2, budget, &model);
            assert!(skip >= prev, "skip shrank as budget grew");
            prev = skip;
        }
        assert!(prev > 0);
    }

    #[test]
    fn skipped_extensions_respect_bound() {
        // Core safety property: the Theorem-1 bound at the returned skip
        // does not exceed the budget.
        let model = Model::from_probs(vec![0.2, 0.5, 0.3]).unwrap();
        let cases: &[([u32; 3], f64)] = &[
            ([4, 4, 4], 8.0),
            ([10, 0, 2], 25.0),
            ([1, 1, 1], 3.0),
            ([0, 30, 0], 80.0),
        ];
        for &(counts, budget) in cases {
            let l: u32 = counts.iter().sum();
            let x2 = chi_square_counts(&counts, &model);
            if x2 >= budget {
                continue;
            }
            let skip = max_safe_skip(&counts, l as usize, x2, budget, &model);
            if skip > 0 {
                let bound = extension_upper_bound(&counts, l as usize, &model, skip);
                assert!(
                    bound <= budget + 1e-6,
                    "counts {counts:?}: bound {bound} exceeds budget {budget}"
                );
            }
        }
    }

    #[test]
    fn skip_is_maximal() {
        // One more position would break the bound (maximality of the root).
        let model = Model::uniform(2).unwrap();
        let counts = [6u32, 2];
        let l = 8usize;
        let x2 = chi_square_counts(&counts, &model);
        let budget = x2 + 10.0;
        let skip = max_safe_skip(&counts, l, x2, budget, &model);
        assert!(skip > 0);
        let bound_next = extension_upper_bound(&counts, l, &model, skip + 2);
        assert!(
            bound_next > budget,
            "skip {skip} not maximal: bound at skip+2 = {bound_next} <= budget {budget}"
        );
    }

    #[test]
    fn threshold_mode_current_above_budget() {
        // Threshold variant: the running statistic may exceed the budget
        // (α₀); c > 0 then, and a valid skip may still exist further out
        // (cover dips below α₀ once the extension dilutes the surplus) —
        // or not. Either way the result must satisfy the bound.
        let model = Model::uniform(2).unwrap();
        let counts = [9u32, 1];
        let l = 10usize;
        let x2 = chi_square_counts(&counts, &model);
        let alpha = x2 / 2.0; // below the current statistic
        let skip = max_safe_skip(&counts, l, x2, alpha, &model);
        if skip > 0 {
            let bound = extension_upper_bound(&counts, l, &model, skip);
            assert!(bound <= alpha + 1e-6);
        }
    }

    #[test]
    fn paper_lemma5_magnitude_sanity() {
        // Lemma 5: on null-ish counts with X²_max ≈ ln l, skips are
        // Ω(√(l·ln l)). Check the order of magnitude at l = 10_000.
        let model = Model::uniform(2).unwrap();
        let l = 10_000usize;
        let counts = [(l / 2) as u32, (l / 2) as u32];
        let x2 = chi_square_counts(&counts, &model);
        let budget = (l as f64).ln(); // ≈ 9.2
        let skip = max_safe_skip(&counts, l, x2, budget, &model);
        let expected_scale = 0.5 * (l as f64 * 0.5 * (l as f64).ln()).sqrt();
        assert!(
            skip as f64 >= expected_scale * 0.5,
            "skip {skip} far below Lemma-5 scale {expected_scale}"
        );
    }

    #[test]
    fn balanced_null_counts_give_large_skips() {
        let model = Model::uniform(4).unwrap();
        let counts = [25u32, 25, 25, 25];
        let x2 = chi_square_counts(&counts, &model);
        let skip = max_safe_skip(&counts, 100, x2, 30.0, &model);
        assert!(skip > 10, "expected a healthy skip, got {skip}");
    }
}
