//! The skip solver — how many end positions the scan may jump.
//!
//! Paper §4 derives, for the current substring (counts `{Y_1..Y_k}`,
//! length `l`, statistic `X²_l`) and the pruning budget `X²_max`, the
//! quadratic constraint (Eq. 21) on an extension length `x`:
//!
//! ```text
//! (1 − p_t)·x² + (2Y_t − 2l·p_t − p_t·X²_max)·x + (X²_l − X²_max)·l·p_t ≤ 0
//! ```
//!
//! where `t` is the Theorem-1 cover character for extension `x`. The
//! pseudocode picks `t` as `argmax (2Y_t + x)/p_t` with `x` still unknown —
//! circular as written. We resolve it exactly (see `DESIGN.md`): for fixed
//! `x`, the chain-cover `X²` with character `m` is increasing in
//! `(2Y_m + x)/p_m`, so requiring the bound for the argmax character is
//! equivalent to requiring the quadratic for **every** character. The
//! admissible region is the intersection of `k` root intervals
//! `[r1_m, r2_m]`; the maximal integer skip is `⌊min_m r2_m⌋` (provided it
//! is ≥ `max_m r1_m`, which is automatic in MSS mode where the constant
//! term is ≤ 0).
//!
//! Skipping `x` means: every extension of the current substring by
//! `1..=x` characters has `X² ≤ budget` (Theorem 1), so the scan can jump
//! straight to end position `end + x + 1`.
//!
//! A final `O(k)` verification step re-evaluates the quadratics at the
//! integer candidate, guarding against floating-point overshoot of the real
//! root; this keeps the "never misses the MSS" invariant robust instead of
//! probabilistic.
//!
//! # Solver engineering (post-rewrite)
//!
//! The per-character quadratic coefficients factor into model-constant
//! tables and two per-call scalars:
//!
//! ```text
//! b_m = 2·Y_m − p_m·t          with t = 2l + X²_max        (per call)
//! c_m = p_m·u                  with u = (X²_l − X²_max)·l  (per call)
//! disc_m = b_m² − [4·p_m·(1 − p_m)]·u
//! r2_m = (√disc_m − b_m) · [0.5 / (1 − p_m)]
//! ```
//!
//! The bracketed factors are cached in [`Model`], so the inner loop is
//! division-free: one multiply-add chain plus one square root per
//! character. In the budget-dominant regime (`X²_l ≤ X²_max`, the MSS /
//! top-t steady state) `c_m ≤ 0` guarantees `disc_m ≥ 0` and `r1_m ≤ 0`,
//! collapsing the admissible region to `[0, min_m r2_m]`; small alphabets
//! take every root branchlessly (independent square roots pipeline),
//! while large alphabets solve the heuristic binding character first and
//! screen the rest with two multiply-adds each, taking further roots only
//! when a character actually binds.

use crate::model::Model;

/// Result returned by [`max_safe_skip`]: the number of end positions that
/// can safely be skipped (0 = no skip, advance by one).
pub type Skip = usize;

/// Alphabet size up to which the below-budget solver takes every root
/// branchlessly rather than lazily.
const BRANCHLESS_MAX_K: usize = 8;

/// The model-constant tables the solver reads (borrowed from [`Model`] or
/// from an alphabet-specialized kernel's stack copies).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SkipTables<'a> {
    /// `p_i`.
    pub p: &'a [f64],
    /// `1/p_i` (binding-character heuristic).
    pub inv_p: &'a [f64],
    /// `1 − p_i`.
    pub one_minus: &'a [f64],
    /// `0.5 / (1 − p_i)`.
    pub half_inv_a: &'a [f64],
    /// `4·p_i·(1 − p_i)`.
    pub four_pa: &'a [f64],
}

impl<'a> SkipTables<'a> {
    /// Borrow the tables straight from a model.
    pub fn from_model(model: &'a Model) -> Self {
        Self {
            p: model.probs(),
            inv_p: model.inv_probs(),
            one_minus: model.one_minus_probs(),
            half_inv_a: model.half_inv_one_minus(),
            four_pa: model.four_p_one_minus(),
        }
    }
}

/// Largest number of end positions that can be skipped after examining a
/// substring with count vector `counts`, length `l` and statistic `x2_l`,
/// given the current pruning budget (the running `X²_max`, the top-t floor,
/// or the threshold `α₀`).
///
/// Every extension of the substring by `1..=skip` characters is guaranteed
/// (Theorem 1) to have `X² ≤ budget`. Returns 0 when no skip is provably
/// safe. The caller must clamp the result to the remaining string length.
pub fn max_safe_skip(counts: &[u32], l: usize, x2_l: f64, budget: f64, model: &Model) -> Skip {
    debug_assert_eq!(counts.len(), model.k());
    skip_with_tables(counts, l, x2_l, budget, &SkipTables::from_model(model))
}

/// Table-driven solver used directly by the scan kernels (and by
/// [`max_safe_skip`]).
///
/// Marked `#[inline(always)]` so alphabet-specialized call sites (fixed
/// `[u32; K]` count arrays) monomorphize the loops to constant trip
/// counts.
#[inline(always)]
pub(crate) fn skip_with_tables(
    counts: &[u32],
    l: usize,
    x2_l: f64,
    budget: f64,
    tables: &SkipTables<'_>,
) -> Skip {
    if !budget.is_finite() || budget <= 0.0 {
        return 0;
    }
    let lf = l as f64;
    let u = (x2_l - budget) * lf;
    skip_from_parts(counts, lf, u, budget, tables)
}

/// Division-free entry for the scan kernels: takes the weighted square
/// sum `ws = Σ Y²/p` instead of the finished statistic, so the kernel
/// never has to divide on the hot path — the quadratic's constant-term
/// scalar is `u = (X²_l − budget)·l = ws − (l + budget)·l` directly.
#[inline(always)]
pub(crate) fn skip_from_ws(
    counts: &[u32],
    lf: f64,
    ws: f64,
    budget: f64,
    tables: &SkipTables<'_>,
) -> Skip {
    if !budget.is_finite() || budget <= 0.0 {
        return 0;
    }
    let u = ws - (lf + budget) * lf;
    skip_from_parts(counts, lf, u, budget, tables)
}

/// Alphabet-specialized variant of [`skip_from_ws`] with an optional
/// vector backend: when `SIMD` is set (the `x86_64` dispatch chose a
/// vector level) the below-budget branchless solve takes all `K` upper
/// roots through [`crate::simd::roots_hi_fixed`] — one packed square root
/// instead of `K` scalar ones. Every vector lane op is correctly rounded
/// identically to its scalar counterpart and the root minimum is folded in
/// the same order, so the returned skip is bit-identical either way; the
/// general (`u > 0`) path and the verification stay scalar.
#[inline(always)]
pub(crate) fn skip_from_ws_fixed<const K: usize, const SIMD: bool>(
    counts: &[u32; K],
    lf: f64,
    ws: f64,
    budget: f64,
    tables: &SkipTables<'_>,
) -> Skip {
    if !SIMD {
        return skip_from_ws(counts, lf, ws, budget, tables);
    }
    if !budget.is_finite() || budget <= 0.0 {
        return 0;
    }
    let u = ws - (lf + budget) * lf;
    let tol = 1e-9 * (1.0 + budget.abs() * lf);
    let t = 2.0 * lf + budget;
    if u <= 0.0 {
        let hi = crate::simd::roots_hi_fixed::<K>(
            counts,
            t,
            u,
            tables.p,
            tables.four_pa,
            tables.half_inv_a,
        );
        finish_below_budget(counts, t, u, tables, hi, tol)
    } else {
        skip_general(counts, t, u, tables, tol)
    }
}

#[inline(always)]
fn skip_from_parts(counts: &[u32], lf: f64, u: f64, budget: f64, tables: &SkipTables<'_>) -> Skip {
    let tol = 1e-9 * (1.0 + budget.abs() * lf);
    // Per-call scalars of the factored quadratic (see module docs).
    let t = 2.0 * lf + budget;
    if u <= 0.0 {
        if counts.len() <= BRANCHLESS_MAX_K {
            skip_below_budget_branchless(counts, t, u, tables, tol)
        } else {
            skip_below_budget_lazy(counts, t, u, tables, tol)
        }
    } else {
        skip_general(counts, t, u, tables, tol)
    }
}

/// Upper root `r2_m` of the factored quadratic for one character. The
/// caller guarantees `disc ≥ 0` (true whenever `u ≤ 0`).
#[inline(always)]
fn root_upper(y: f64, t: f64, u: f64, m: usize, tables: &SkipTables<'_>) -> f64 {
    let b = 2.0 * y - tables.p[m] * t;
    let disc = b * b - tables.four_pa[m] * u;
    (disc.sqrt() - b) * tables.half_inv_a[m]
}

/// Below-budget solver for small alphabets: take every character's upper
/// root. The square roots are independent, so they pipeline — for `k = 2`
/// or `4` this straight-line form beats any branchy screen.
#[inline(always)]
#[allow(clippy::needless_range_loop)] // multi-slice lockstep indexing
fn skip_below_budget_branchless(
    counts: &[u32],
    t: f64,
    u: f64,
    tables: &SkipTables<'_>,
    tol: f64,
) -> Skip {
    let mut hi = f64::INFINITY;
    for m in 0..counts.len() {
        let r2 = root_upper(f64::from(counts[m]), t, u, m, tables);
        hi = hi.min(r2);
    }
    finish_below_budget(counts, t, u, tables, hi, tol)
}

/// Shared tail of the below-budget paths: floor the candidate and run the
/// `O(k)` verification.
///
/// The verification is **never** shortcut: the computed `hi` carries the
/// rounding of `u = ws − (l + budget)·l`, whose absolute error scales
/// with `ulp(ws)` and therefore with `l²` — no fixed relative margin on
/// `hi` is sound across the full `u32`-count range. Evaluating the
/// quadratics at the integer candidate (two multiply-adds per character,
/// no roots or divisions) is exactly the sound check, and it keeps the
/// "never misses the MSS" invariant deterministic.
#[inline(always)]
pub(crate) fn finish_below_budget(
    counts: &[u32],
    t: f64,
    u: f64,
    tables: &SkipTables<'_>,
    hi: f64,
    tol: f64,
) -> Skip {
    if hi < 1.0 {
        return 0;
    }
    verify_candidate(counts, t, u, tables, hi.floor(), 0.0, tol)
}

/// Below-budget solver for large alphabets: solve the heuristic binding
/// character (argmax `Y/p`, which dominates the linear coefficient) first,
/// then screen every other character by evaluating its quadratic at the
/// current `hi` — two multiply-adds — taking a root only when the
/// character actually binds. In the common case this is **one** square
/// root per substring instead of `k`.
#[inline(always)]
#[allow(clippy::needless_range_loop)] // multi-slice lockstep indexing
fn skip_below_budget_lazy(
    counts: &[u32],
    t: f64,
    u: f64,
    tables: &SkipTables<'_>,
    tol: f64,
) -> Skip {
    let k = counts.len();
    let mut h = 0usize;
    let mut h_val = f64::NEG_INFINITY;
    for m in 0..k {
        let v = f64::from(counts[m]) * tables.inv_p[m];
        if v > h_val {
            h_val = v;
            h = m;
        }
    }
    let mut hi = root_upper(f64::from(counts[h]), t, u, h, tables);
    if hi < 1.0 {
        return 0;
    }
    for m in 0..k {
        if m == h {
            continue;
        }
        let b = 2.0 * f64::from(counts[m]) - tables.p[m] * t;
        let c = tables.p[m] * u;
        // `q_m(hi) ≤ 0 ⇔ hi ≤ r2_m` (a > 0, c ≤ 0): character m does not
        // bind at the current candidate, no root needed.
        if (tables.one_minus[m] * hi + b) * hi + c > tol {
            hi = root_upper(f64::from(counts[m]), t, u, m, tables);
            if hi < 1.0 {
                return 0;
            }
        }
    }
    finish_below_budget(counts, t, u, tables, hi, tol)
}

/// General path (threshold mode with `X²_l > α₀`): constant terms are
/// positive, the admissible region `[max_m r1_m, min_m r2_m]` may be empty
/// or bounded away from zero, and a negative discriminant means no valid
/// extension at all.
#[allow(clippy::needless_range_loop)] // multi-slice lockstep indexing
fn skip_general(counts: &[u32], t: f64, u: f64, tables: &SkipTables<'_>, tol: f64) -> Skip {
    let mut lo = 0.0f64;
    let mut hi = f64::INFINITY;
    for m in 0..counts.len() {
        let b = 2.0 * f64::from(counts[m]) - tables.p[m] * t;
        let disc = b * b - tables.four_pa[m] * u;
        if disc < 0.0 {
            return 0; // this character admits no valid extension length
        }
        let sqrt_disc = disc.sqrt();
        let r2 = (sqrt_disc - b) * tables.half_inv_a[m];
        let r1 = -(sqrt_disc + b) * tables.half_inv_a[m];
        hi = hi.min(r2);
        lo = lo.max(r1);
        if hi < 1.0 || lo > hi {
            return 0;
        }
    }
    verify_candidate(counts, t, u, tables, hi.floor(), lo, tol)
}

/// Floating-point guard shared by all paths: verify the quadratics at the
/// integer candidate, backing off by one if the root was overshot by
/// rounding.
#[inline(always)]
#[allow(clippy::needless_range_loop)] // multi-slice lockstep indexing
pub(crate) fn verify_candidate(
    counts: &[u32],
    t: f64,
    u: f64,
    tables: &SkipTables<'_>,
    mut x: f64,
    lo: f64,
    tol: f64,
) -> Skip {
    for _ in 0..2 {
        if x < 1.0 || x < lo {
            return 0;
        }
        let mut ok = true;
        for m in 0..counts.len() {
            let b = 2.0 * f64::from(counts[m]) - tables.p[m] * t;
            let c = tables.p[m] * u;
            if (tables.one_minus[m] * x + b) * x + c > tol {
                ok = false;
            }
        }
        if ok {
            return x as Skip;
        }
        x -= 1.0;
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::extension_upper_bound;
    use crate::score::chi_square_counts;

    #[test]
    fn skip_zero_when_budget_not_positive() {
        let model = Model::uniform(2).unwrap();
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, 0.0, &model), 0);
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, -5.0, &model), 0);
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, f64::NAN, &model), 0);
        assert_eq!(max_safe_skip(&[3, 1], 4, 1.0, f64::INFINITY, &model), 0);
    }

    #[test]
    fn skip_grows_with_budget() {
        // Larger budget ⇒ weaker constraint ⇒ longer skips (paper §5.1).
        let model = Model::uniform(2).unwrap();
        let counts = [5u32, 5];
        let x2 = chi_square_counts(&counts, &model);
        let mut prev = 0;
        for budget_int in 1..60u32 {
            let budget = f64::from(budget_int);
            if budget <= x2 {
                continue;
            }
            let skip = max_safe_skip(&counts, 10, x2, budget, &model);
            assert!(skip >= prev, "skip shrank as budget grew");
            prev = skip;
        }
        assert!(prev > 0);
    }

    #[test]
    fn skipped_extensions_respect_bound() {
        // Core safety property: the Theorem-1 bound at the returned skip
        // does not exceed the budget.
        let model = Model::from_probs(vec![0.2, 0.5, 0.3]).unwrap();
        let cases: &[([u32; 3], f64)] = &[
            ([4, 4, 4], 8.0),
            ([10, 0, 2], 25.0),
            ([1, 1, 1], 3.0),
            ([0, 30, 0], 80.0),
        ];
        for &(counts, budget) in cases {
            let l: u32 = counts.iter().sum();
            let x2 = chi_square_counts(&counts, &model);
            if x2 >= budget {
                continue;
            }
            let skip = max_safe_skip(&counts, l as usize, x2, budget, &model);
            if skip > 0 {
                let bound = extension_upper_bound(&counts, l as usize, &model, skip);
                assert!(
                    bound <= budget + 1e-6,
                    "counts {counts:?}: bound {bound} exceeds budget {budget}"
                );
            }
        }
    }

    #[test]
    fn skip_is_maximal() {
        // One more position would break the bound (maximality of the root).
        let model = Model::uniform(2).unwrap();
        let counts = [6u32, 2];
        let l = 8usize;
        let x2 = chi_square_counts(&counts, &model);
        let budget = x2 + 10.0;
        let skip = max_safe_skip(&counts, l, x2, budget, &model);
        assert!(skip > 0);
        let bound_next = extension_upper_bound(&counts, l, &model, skip + 2);
        assert!(
            bound_next > budget,
            "skip {skip} not maximal: bound at skip+2 = {bound_next} <= budget {budget}"
        );
    }

    #[test]
    fn threshold_mode_current_above_budget() {
        // Threshold variant: the running statistic may exceed the budget
        // (α₀); c > 0 then, and a valid skip may still exist further out
        // (cover dips below α₀ once the extension dilutes the surplus) —
        // or not. Either way the result must satisfy the bound.
        let model = Model::uniform(2).unwrap();
        let counts = [9u32, 1];
        let l = 10usize;
        let x2 = chi_square_counts(&counts, &model);
        let alpha = x2 / 2.0; // below the current statistic
        let skip = max_safe_skip(&counts, l, x2, alpha, &model);
        if skip > 0 {
            let bound = extension_upper_bound(&counts, l, &model, skip);
            assert!(bound <= alpha + 1e-6);
        }
    }

    #[test]
    fn paper_lemma5_magnitude_sanity() {
        // Lemma 5: on null-ish counts with X²_max ≈ ln l, skips are
        // Ω(√(l·ln l)). Check the order of magnitude at l = 10_000.
        let model = Model::uniform(2).unwrap();
        let l = 10_000usize;
        let counts = [(l / 2) as u32, (l / 2) as u32];
        let x2 = chi_square_counts(&counts, &model);
        let budget = (l as f64).ln(); // ≈ 9.2
        let skip = max_safe_skip(&counts, l, x2, budget, &model);
        let expected_scale = 0.5 * (l as f64 * 0.5 * (l as f64).ln()).sqrt();
        assert!(
            skip as f64 >= expected_scale * 0.5,
            "skip {skip} far below Lemma-5 scale {expected_scale}"
        );
    }

    #[test]
    fn fixed_simd_solver_matches_scalar_bitwise() {
        use crate::score::weighted_square_sum;
        let model = Model::from_probs(vec![0.3, 0.7]).unwrap();
        let tables = SkipTables::from_model(&model);
        let cases: &[([u32; 2], usize, f64)] = &[
            ([3, 1], 4, 5.0),
            ([50, 50], 100, 12.0),
            ([9, 1], 10, 2.0), // current statistic above budget: u > 0 path
            ([0, 7], 7, 40.0),
            ([1, 1], 2, 1e-3),
        ];
        for &(counts, l, budget) in cases {
            let lf = l as f64;
            let ws = weighted_square_sum(&counts, model.inv_probs());
            let simd = skip_from_ws_fixed::<2, true>(&counts, lf, ws, budget, &tables);
            let scalar = skip_from_ws_fixed::<2, false>(&counts, lf, ws, budget, &tables);
            assert_eq!(simd, scalar, "counts {counts:?} l {l} budget {budget}");
        }
        let model4 = Model::from_probs(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let tables4 = SkipTables::from_model(&model4);
        let counts4 = [10u32, 20, 30, 40];
        let ws4 = weighted_square_sum(&counts4, model4.inv_probs());
        assert_eq!(
            skip_from_ws_fixed::<4, true>(&counts4, 100.0, ws4, 9.0, &tables4),
            skip_from_ws_fixed::<4, false>(&counts4, 100.0, ws4, 9.0, &tables4),
        );
    }

    #[test]
    fn balanced_null_counts_give_large_skips() {
        let model = Model::uniform(4).unwrap();
        let counts = [25u32, 25, 25, 25];
        let x2 = chi_square_counts(&counts, &model);
        let skip = max_safe_skip(&counts, 100, x2, 30.0, &model);
        assert!(skip > 10, "expected a healthy skip, got {skip}");
    }
}
