//! Problem 3 — all substrings with `X²` above a threshold
//! (paper Algorithm 3).
//!
//! The pruning budget is the constant `α₀`; the scan skips every run of
//! end positions whose Theorem-1 cover bound stays at or below `α₀`. The
//! paper shows the iteration count drops as `O(k·n·√(n/α₀))` once `α₀`
//! clears the typical substring statistic (§6.2, Fig. 6).

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::scan::ScanStats;
use crate::score::Scored;
use crate::seq::Sequence;

/// Result of a threshold query.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ThresholdResult {
    /// Every substring with `X² > α₀`, in canonical order: starts
    /// right-to-left, ends ascending within a start.
    pub items: Vec<Scored>,
    /// Scan instrumentation.
    pub stats: ScanStats,
}

/// Find all substrings with `X²` strictly greater than `alpha`
/// (paper Algorithm 3).
///
/// The output can be `Θ(n²)` when `alpha` is small — prefer
/// [`for_each_above_threshold`] to stream matches without materializing
/// them, or pick `alpha` from a significance level via
/// [`sigstr_stats::pearson::threshold_for_significance`].
///
/// # Errors
///
/// Fails when `alpha` is negative or not finite, or on alphabet mismatch.
///
/// # Examples
///
/// ```
/// use sigstr_core::{above_threshold, Model, Sequence};
///
/// let seq = Sequence::from_symbols(vec![0, 1, 1, 1, 1, 1, 0, 0, 1, 0], 2).unwrap();
/// let model = Model::uniform(2).unwrap();
/// let result = above_threshold(&seq, &model, 4.5).unwrap();
/// assert!(result.items.iter().all(|s| s.chi_square > 4.5));
/// assert!(!result.items.is_empty()); // the run of five ones scores 5.0
/// ```
pub fn above_threshold(seq: &Sequence, model: &Model, alpha: f64) -> Result<ThresholdResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    above_threshold_counts(&pc, model, alpha)
}

/// [`above_threshold`] over prebuilt prefix counts — a thin wrapper over
/// the engine scan; prefer [`crate::Engine`] when issuing many queries.
pub fn above_threshold_counts(
    pc: &PrefixCounts,
    model: &Model,
    alpha: f64,
) -> Result<ThresholdResult> {
    crate::engine::threshold_collect_scan(pc, model, 0..pc.n(), alpha, &mut Vec::new())
}

/// Streaming variant: invoke `visit` for every qualifying substring
/// without building a vector. Visit order is unspecified (the scan kernel
/// interleaves start positions); collect and sort — or use
/// [`above_threshold`] — when a canonical order matters.
pub fn for_each_above_threshold(
    seq: &Sequence,
    model: &Model,
    alpha: f64,
    visit: impl FnMut(Scored),
) -> Result<ScanStats> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    for_each_above_threshold_counts(&pc, model, alpha, visit)
}

/// Streaming variant over prebuilt prefix counts.
pub fn for_each_above_threshold_counts(
    pc: &PrefixCounts,
    model: &Model,
    alpha: f64,
    visit: impl FnMut(Scored),
) -> Result<ScanStats> {
    crate::engine::threshold_scan(pc, model, 0..pc.n(), alpha, visit, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn zero_threshold_returns_everything_positive() {
        let seq = binary(&[0, 1, 1, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let r = above_threshold(&seq, &model, 0.0).unwrap();
        // Every substring with X² > 0 qualifies; only perfectly balanced
        // substrings score exactly 0.
        for item in &r.items {
            assert!(item.chi_square > 0.0);
        }
        // A length-1 substring always has X² = 1 under the fair model.
        assert!(r.items.iter().any(|s| s.len() == 1));
    }

    #[test]
    fn huge_threshold_returns_nothing_but_scans_fast() {
        let seq = binary(&[0, 1, 0, 1, 0, 1, 1, 0, 1, 0, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let r = above_threshold(&seq, &model, 1e6).unwrap();
        assert!(r.items.is_empty());
        // With an enormous budget almost everything is skipped.
        let n = seq.len() as u64;
        assert!(r.stats.examined < n * (n + 1) / 2);
    }

    #[test]
    fn results_all_exceed_alpha_and_are_complete() {
        let seq = binary(&[0, 1, 1, 1, 1, 1, 0, 0, 1, 0]);
        let model = Model::uniform(2).unwrap();
        let alpha = 3.0;
        let r = above_threshold(&seq, &model, alpha).unwrap();
        // (a) soundness
        for item in &r.items {
            assert!(item.chi_square > alpha);
        }
        // (b) completeness vs brute force
        let mut expected = 0usize;
        for start in 0..seq.len() {
            for end in (start + 1)..=seq.len() {
                let counts = seq.count_vector(start, end);
                if crate::score::chi_square_counts(&counts, &model) > alpha {
                    expected += 1;
                }
            }
        }
        assert_eq!(r.items.len(), expected);
    }

    #[test]
    fn streaming_matches_collecting() {
        let seq = binary(&[1, 1, 0, 1, 1, 1, 0, 0]);
        let model = Model::uniform(2).unwrap();
        let collected = above_threshold(&seq, &model, 2.0).unwrap();
        let mut streamed = Vec::new();
        let stats = for_each_above_threshold(&seq, &model, 2.0, |s| streamed.push(s)).unwrap();
        // The streaming visit order is unspecified; compare canonically.
        streamed.sort_by(|a, b| b.start.cmp(&a.start).then_with(|| a.end.cmp(&b.end)));
        assert_eq!(collected.items, streamed);
        assert_eq!(collected.stats, stats);
    }

    #[test]
    fn invalid_alpha_rejected() {
        let seq = binary(&[0, 1]);
        let model = Model::uniform(2).unwrap();
        assert!(above_threshold(&seq, &model, -1.0).is_err());
        assert!(above_threshold(&seq, &model, f64::NAN).is_err());
        assert!(above_threshold(&seq, &model, f64::INFINITY).is_err());
    }

    #[test]
    fn threshold_from_significance_level() {
        // End-to-end with the stats crate: find substrings significant at
        // the 10⁻³ level. The χ²(1) critical value is ≈ 10.83, so a run of
        // twelve ones (X² = 12) clears it.
        let mut symbols = vec![0u8];
        symbols.extend(std::iter::repeat_n(1u8, 12));
        symbols.extend([0, 0, 1, 0]);
        let seq = binary(&symbols);
        let model = Model::uniform(2).unwrap();
        let alpha0 = sigstr_stats::pearson::threshold_for_significance(1e-3, 2);
        assert!((alpha0 - 10.827566170662733).abs() < 1e-6);
        let r = above_threshold(&seq, &model, alpha0).unwrap();
        for item in &r.items {
            assert!(item.p_value(2) < 1e-3);
        }
        assert!(!r.items.is_empty()); // the twelve-ones run is significant
    }
}
