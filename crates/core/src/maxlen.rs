//! Window-constrained mining: the MSS among substrings of length **at
//! most** `w`.
//!
//! The dual of Problem 4, and the bridge to the windowed-episode
//! literature the paper contrasts itself with (§2, refs [3, 15]): when the
//! triggering event is known to be short-lived, capping the window both
//! focuses the search and bounds the per-start scan at `w` positions.
//! The chain-cover skip still applies — jumps are simply clamped to the
//! window end.

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::mss::MssResult;
use crate::seq::Sequence;

/// Find the most significant substring of length at most `w`.
///
/// # Errors
///
/// Fails when `w = 0` or on alphabet mismatch.
///
/// # Examples
///
/// ```
/// use sigstr_core::{maxlen::mss_max_length, Model, Sequence};
///
/// let seq = Sequence::from_symbols(vec![0, 1, 1, 1, 1, 1, 1, 0, 1, 0], 2).unwrap();
/// let model = Model::uniform(2).unwrap();
/// let r = mss_max_length(&seq, &model, 4).unwrap();
/// assert!(r.best.len() <= 4);
/// ```
pub fn mss_max_length(seq: &Sequence, model: &Model, w: usize) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    mss_max_length_counts(&pc, model, w)
}

/// [`mss_max_length`] over prebuilt prefix counts — a thin wrapper over
/// the engine scan; prefer [`crate::Engine`] when issuing many queries.
pub fn mss_max_length_counts(pc: &PrefixCounts, model: &Model, w: usize) -> Result<MssResult> {
    crate::engine::max_length_scan(pc, model, 0..pc.n(), w, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::chi_square_counts;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    fn brute_force(seq: &Sequence, model: &Model, w: usize) -> f64 {
        let mut best = f64::NEG_INFINITY;
        for start in 0..seq.len() {
            for end in (start + 1)..=(start + w).min(seq.len()) {
                let counts = seq.count_vector(start, end);
                best = best.max(chi_square_counts(&counts, model));
            }
        }
        best
    }

    #[test]
    fn respects_window() {
        let seq = binary(&[0, 1, 1, 1, 1, 1, 1, 1, 0, 0, 1, 0]);
        let model = Model::uniform(2).unwrap();
        for w in 1..=seq.len() {
            let r = mss_max_length(&seq, &model, w).unwrap();
            assert!(r.best.len() <= w, "w = {w}: len {}", r.best.len());
        }
    }

    #[test]
    fn matches_brute_force() {
        let seq = binary(&[1, 0, 0, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1, 0, 1]);
        let model = Model::from_probs(vec![0.4, 0.6]).unwrap();
        for w in [1usize, 3, 7, 16, 100] {
            let r = mss_max_length(&seq, &model, w).unwrap();
            let expect = brute_force(&seq, &model, w);
            assert!(
                (r.best.chi_square - expect).abs() < 1e-9,
                "w = {w}: {} vs {}",
                r.best.chi_square,
                expect
            );
        }
    }

    #[test]
    fn unbounded_window_equals_plain_mss() {
        let seq = binary(&[0, 1, 1, 0, 1, 1, 1, 0, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let plain = crate::mss::find_mss(&seq, &model).unwrap();
        let windowed = mss_max_length(&seq, &model, seq.len()).unwrap();
        assert_eq!(plain.best, windowed.best);
    }

    #[test]
    fn window_one_picks_rarest_character() {
        // With w = 1 the candidates are single characters; the rarer
        // character under the model scores higher.
        let seq = binary(&[0, 1, 0, 1, 1]);
        let model = Model::from_probs(vec![0.2, 0.8]).unwrap();
        let r = mss_max_length(&seq, &model, 1).unwrap();
        assert_eq!(r.best.len(), 1);
        // X² of a single '0' is (1/0.2) − 1 = 4 > single '1' = 0.25.
        assert!((r.best.chi_square - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_window_rejected() {
        let seq = binary(&[0, 1]);
        let model = Model::uniform(2).unwrap();
        assert!(mss_max_length(&seq, &model, 0).is_err());
    }

    #[test]
    fn window_caps_scan_cost() {
        let symbols: Vec<u8> = (0..2000).map(|i| ((i * 31 + 7) % 2) as u8).collect();
        let seq = binary(&symbols);
        let model = Model::uniform(2).unwrap();
        let windowed = mss_max_length(&seq, &model, 10).unwrap();
        // At most w positions per start.
        assert!(windowed.stats.examined <= (seq.len() * 10) as u64);
    }
}
