//! Problem 1 — the Most Significant Substring (paper Algorithm 1).
//!
//! Finds the substring with the highest `X²` value among all `O(n²)`
//! substrings while examining only `O(√n)` end positions per start with
//! high probability, for an overall `O(k·n^{3/2})` running time on
//! null-model input (paper §5) — and never more than that on any other
//! input (paper §5.1).

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::scan::ScanStats;
use crate::score::Scored;
use crate::seq::Sequence;

/// Result of an MSS search: the winning substring and scan
/// instrumentation.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MssResult {
    /// The most significant substring.
    pub best: Scored,
    /// Scan instrumentation (the paper's iteration counts).
    pub stats: ScanStats,
}

/// Find the most significant substring of `seq` under `model`
/// (paper Algorithm 1).
///
/// # Errors
///
/// Fails when the model and sequence alphabets disagree.
///
/// # Examples
///
/// ```
/// use sigstr_core::{find_mss, Model, Sequence};
///
/// // A fair-coin string with an embedded run of ones.
/// let symbols = vec![0, 1, 0, 1, 1, 1, 1, 1, 1, 0, 1, 0];
/// let seq = Sequence::from_symbols(symbols, 2).unwrap();
/// let model = Model::uniform(2).unwrap();
/// let result = find_mss(&seq, &model).unwrap();
/// // The run of ones (positions 3..9) is the most significant substring.
/// assert_eq!((result.best.start, result.best.end), (3, 9));
/// ```
pub fn find_mss(seq: &Sequence, model: &Model) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    find_mss_counts(&pc, model)
}

/// [`find_mss`] over prebuilt prefix counts (reuse the table across
/// repeated mining calls on the same sequence) — a thin wrapper over the
/// engine scan; prefer [`crate::Engine`] when issuing many queries, which
/// also recycles scratch buffers and memoizes repeated answers.
pub fn find_mss_counts(pc: &PrefixCounts, model: &Model) -> Result<MssResult> {
    Ok(crate::engine::mss_scan(
        pc,
        model,
        0..pc.n(),
        &mut Vec::new(),
    ))
}

/// [`find_mss`] forced through the unspecialized reference engine
/// (per-substring count reconstruction, full square-root skip solve).
///
/// Exists so benches and regression tests can measure the incremental /
/// alphabet-specialized kernels against a stable pre-rewrite baseline —
/// use [`find_mss`] for real workloads.
pub fn find_mss_reference(seq: &Sequence, model: &Model) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let rc = crate::scan::ReferenceCounts::build(seq);
    let mut policy = crate::scan::MaxPolicy::default();
    let n = seq.len();
    let stats = crate::scan::scan_policy_reference(&rc, model, 1, (0..n).rev(), &mut policy);
    let best = policy
        .best
        .expect("non-empty sequence always yields a best substring");
    Ok(MssResult { best, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn single_char_string_types() {
        // All-zeros binary string: the MSS is the whole string.
        let seq = binary(&[0, 0, 0, 0, 0, 0]);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert_eq!((r.best.start, r.best.end), (0, 6));
        assert!((r.best.chi_square - 6.0).abs() < 1e-9); // X² = l for pure runs over fair coin
    }

    #[test]
    fn embedded_run_is_found() {
        let seq = binary(&[0, 1, 0, 1, 1, 1, 1, 1, 1, 0, 1, 0]);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert_eq!((r.best.start, r.best.end), (3, 9));
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let seq = binary(&[0, 1, 0]);
        let model = Model::uniform(3).unwrap();
        assert!(matches!(
            find_mss(&seq, &model),
            Err(Error::AlphabetMismatch { .. })
        ));
    }

    #[test]
    fn length_one_string() {
        let seq = binary(&[1]);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert_eq!((r.best.start, r.best.end), (0, 1));
        assert!((r.best.chi_square - 1.0).abs() < 1e-9);
        assert_eq!(r.stats.examined, 1);
    }

    #[test]
    fn stats_account_for_all_substrings() {
        let seq = binary(&[0, 1, 1, 0, 1, 0, 0, 1, 1, 1]);
        let model = Model::uniform(2).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        let n = seq.len() as u64;
        assert_eq!(r.stats.examined + r.stats.skipped, n * (n + 1) / 2);
    }

    #[test]
    fn skewed_model_shifts_the_winner() {
        // Under a model where ones are expected 90% of the time, a run of
        // zeros is the anomaly.
        let seq = binary(&[1, 1, 0, 0, 0, 1, 1, 1, 1, 1]);
        let model = Model::from_probs(vec![0.1, 0.9]).unwrap();
        let r = find_mss(&seq, &model).unwrap();
        assert_eq!((r.best.start, r.best.end), (2, 5));
    }

    #[test]
    fn prebuilt_counts_agree_with_direct_call() {
        let seq = binary(&[0, 1, 1, 1, 0, 0, 1, 0]);
        let model = Model::uniform(2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let a = find_mss(&seq, &model).unwrap();
        let b = find_mss_counts(&pc, &model).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats, b.stats);
    }
}
