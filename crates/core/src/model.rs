//! The memoryless Bernoulli (multinomial i.i.d.) null model.
//!
//! The paper's `P = {p_1, …, p_k}`: each character of the string is drawn
//! independently from this fixed distribution. All probabilities must be
//! strictly inside `(0, 1)` — a zero probability makes the `X²` statistic
//! infinite for any substring containing that character, and a probability
//! of one degenerates the alphabet.

use crate::error::{Error, Result};
use crate::seq::Sequence;

/// Tolerance for the probability-sum check; inputs within this tolerance
/// are renormalized exactly.
const SUM_TOLERANCE: f64 = 1e-6;

/// Largest supported alphabet (symbols are stored as `u8`).
pub const MAX_ALPHABET: usize = 256;

/// A validated multinomial null model over `k ≥ 2` characters.
///
/// Beyond the probabilities themselves, the model caches the derived
/// per-character tables the hot kernels need — `1/p_i` for scoring and
/// `1 − p_i` for the skip solver's quadratic coefficients — contiguously,
/// so the inner loops never recompute them per substring.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    probs: Vec<f64>,
    /// Cached reciprocals `1/p_i` — the scoring hot loop multiplies instead
    /// of dividing.
    inv_probs: Vec<f64>,
    /// Cached `1 − p_i` — the leading coefficient of the skip solver's
    /// Eq.-21 quadratic.
    one_minus_probs: Vec<f64>,
    /// Cached `0.5 / (1 − p_i)` — turns the solver's root division into a
    /// multiply.
    half_inv_one_minus: Vec<f64>,
    /// Cached `4·p_i·(1 − p_i)` — the discriminant's `4ac` factor up to
    /// the per-call scalar `(X²_l − budget)·l`.
    four_p_one_minus: Vec<f64>,
}

impl Model {
    /// Build a model from probabilities.
    ///
    /// Requirements: `2 ≤ k ≤ 256` entries, every `p_i` strictly in
    /// `(0, 1)`, and `Σ p_i = 1` within `1e-6` (after which the vector is
    /// renormalized to sum to exactly 1).
    pub fn from_probs(probs: Vec<f64>) -> Result<Self> {
        let sum = Self::validate_probs(&probs)?;
        let probs: Vec<f64> = probs.into_iter().map(|p| p / sum).collect();
        Ok(Self::from_validated(probs))
    }

    /// Rebuild a model from probabilities stored in a snapshot **without
    /// renormalizing** — the stored vector is already the normalized one,
    /// and dividing by a sum that is merely ≈ 1 would perturb the bit
    /// patterns (breaking load/rebuild bit-identity). Validation still
    /// runs in full; only the `p / sum` rewrite is skipped. The derived
    /// tables are pure functions of the probabilities, so recomputing
    /// them reproduces the original tables bit-for-bit.
    pub(crate) fn from_stored_probs(probs: Vec<f64>) -> Result<Self> {
        Self::validate_probs(&probs)?;
        Ok(Self::from_validated(probs))
    }

    /// The shared validation of both construction paths: alphabet-size
    /// bounds, every `p` strictly inside `(0, 1)`, and `Σ p = 1` within
    /// [`SUM_TOLERANCE`]. Returns the sum for the normalizing path.
    fn validate_probs(probs: &[f64]) -> Result<f64> {
        if probs.len() < 2 {
            return Err(Error::AlphabetTooSmall { k: probs.len() });
        }
        if probs.len() > MAX_ALPHABET {
            return Err(Error::AlphabetTooLarge { k: probs.len() });
        }
        for (index, &value) in probs.iter().enumerate() {
            if value.is_nan() || value <= 0.0 || value >= 1.0 {
                return Err(Error::InvalidProbability { index, value });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > SUM_TOLERANCE {
            return Err(Error::NotNormalized { sum });
        }
        Ok(sum)
    }

    /// Derive the cached kernel tables from an already-validated,
    /// already-normalized probability vector.
    fn from_validated(probs: Vec<f64>) -> Self {
        let inv_probs = probs.iter().map(|&p| 1.0 / p).collect();
        let one_minus_probs: Vec<f64> = probs.iter().map(|&p| 1.0 - p).collect();
        let half_inv_one_minus = one_minus_probs.iter().map(|&a| 0.5 / a).collect();
        let four_p_one_minus = probs
            .iter()
            .zip(&one_minus_probs)
            .map(|(&p, &a)| 4.0 * p * a)
            .collect();
        Self {
            probs,
            inv_probs,
            one_minus_probs,
            half_inv_one_minus,
            four_p_one_minus,
        }
    }

    /// The uniform model over `k` characters (`p_i = 1/k`) — the paper's
    /// default null model for synthetic experiments.
    pub fn uniform(k: usize) -> Result<Self> {
        if k < 2 {
            return Err(Error::AlphabetTooSmall { k });
        }
        if k > MAX_ALPHABET {
            return Err(Error::AlphabetTooLarge { k });
        }
        Self::from_probs(vec![1.0 / k as f64; k])
    }

    /// Maximum-likelihood estimate from a sequence: `p̂_i = Y_i / n`
    /// (the paper's §7.5 usage — e.g. the ratio of up-days for stock
    /// strings).
    ///
    /// Fails with [`Error::ZeroCount`] when a character never occurs; use
    /// [`Model::estimate_smoothed`] in that case.
    pub fn estimate(seq: &Sequence) -> Result<Self> {
        let counts = seq.count_vector(0, seq.len());
        if let Some(symbol) = counts.iter().position(|&c| c == 0) {
            return Err(Error::ZeroCount {
                symbol: symbol as u8,
            });
        }
        let n = seq.len() as f64;
        Self::from_probs(counts.iter().map(|&c| c as f64 / n).collect())
    }

    /// Additive (Laplace) smoothed estimate: `p̂_i = (Y_i + α) / (n + kα)`
    /// with `α > 0`, defined even when some characters never occur.
    pub fn estimate_smoothed(seq: &Sequence, alpha: f64) -> Result<Self> {
        if alpha.is_nan() || alpha <= 0.0 || alpha.is_infinite() {
            return Err(Error::InvalidParameter {
                what: "alpha",
                details: format!("smoothing constant must be positive and finite, got {alpha}"),
            });
        }
        let counts = seq.count_vector(0, seq.len());
        let denom = seq.len() as f64 + seq.k() as f64 * alpha;
        Self::from_probs(counts.iter().map(|&c| (c as f64 + alpha) / denom).collect())
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.probs.len()
    }

    /// The probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The cached reciprocal probabilities `1/p_i`.
    pub fn inv_probs(&self) -> &[f64] {
        &self.inv_probs
    }

    /// The cached complements `1 − p_i` (skip-solver quadratic
    /// coefficients).
    pub fn one_minus_probs(&self) -> &[f64] {
        &self.one_minus_probs
    }

    /// Cached `0.5 / (1 − p_i)` (skip-solver root scaling).
    pub fn half_inv_one_minus(&self) -> &[f64] {
        &self.half_inv_one_minus
    }

    /// Cached `4·p_i·(1 − p_i)` (skip-solver discriminant factor).
    pub fn four_p_one_minus(&self) -> &[f64] {
        &self.four_p_one_minus
    }

    /// Probability of character `c` (panics when out of range).
    pub fn p(&self, c: usize) -> f64 {
        self.probs[c]
    }

    /// Degrees of freedom of the limiting chi-square distribution,
    /// `k − 1` (paper Theorem 3).
    pub fn degrees_of_freedom(&self) -> usize {
        self.probs.len() - 1
    }

    /// Check compatibility with a sequence's alphabet.
    pub fn check_alphabet(&self, seq: &Sequence) -> Result<()> {
        if self.k() != seq.k() {
            return Err(Error::AlphabetMismatch {
                model_k: self.k(),
                seq_k: seq.k(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model() {
        let m = Model::uniform(4).unwrap();
        assert_eq!(m.k(), 4);
        assert_eq!(m.degrees_of_freedom(), 3);
        for c in 0..4 {
            assert!((m.p(c) - 0.25).abs() < 1e-15);
            assert!((m.inv_probs()[c] - 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn from_probs_renormalizes_small_drift() {
        let m = Model::from_probs(vec![0.5 + 1e-8, 0.5]).unwrap();
        let total: f64 = m.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(matches!(
            Model::from_probs(vec![0.0, 1.0]),
            Err(Error::InvalidProbability { index: 0, .. })
        ));
        assert!(matches!(
            Model::from_probs(vec![0.5, -0.5, 1.0]),
            Err(Error::InvalidProbability { index: 1, .. })
        ));
        assert!(matches!(
            Model::from_probs(vec![0.5, f64::NAN]),
            Err(Error::InvalidProbability { index: 1, .. })
        ));
        assert!(matches!(
            Model::from_probs(vec![0.3, 0.3]),
            Err(Error::NotNormalized { .. })
        ));
        assert!(matches!(
            Model::from_probs(vec![0.9]),
            Err(Error::AlphabetTooSmall { k: 1 })
        ));
        assert!(Model::uniform(1).is_err());
        assert!(matches!(
            Model::uniform(300),
            Err(Error::AlphabetTooLarge { k: 300 })
        ));
        assert!(matches!(
            Model::from_probs(vec![1.0 / 300.0; 300]),
            Err(Error::AlphabetTooLarge { k: 300 })
        ));
    }

    #[test]
    fn derived_tables_are_consistent() {
        let m = Model::from_probs(vec![0.2, 0.3, 0.5]).unwrap();
        for c in 0..3 {
            assert!((m.inv_probs()[c] - 1.0 / m.p(c)).abs() < 1e-15);
            assert!((m.one_minus_probs()[c] - (1.0 - m.p(c))).abs() < 1e-15);
        }
    }

    #[test]
    fn estimate_matches_empirical_frequencies() {
        let seq = Sequence::from_symbols(vec![0, 0, 1, 2, 1, 0], 3).unwrap();
        let m = Model::estimate(&seq).unwrap();
        assert!((m.p(0) - 0.5).abs() < 1e-12);
        assert!((m.p(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.p(2) - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn estimate_rejects_zero_count() {
        let seq = Sequence::from_symbols(vec![0, 0, 0], 2).unwrap();
        assert_eq!(Model::estimate(&seq), Err(Error::ZeroCount { symbol: 1 }));
    }

    #[test]
    fn smoothed_estimate_handles_zero_count() {
        let seq = Sequence::from_symbols(vec![0, 0, 0], 2).unwrap();
        let m = Model::estimate_smoothed(&seq, 1.0).unwrap();
        // (3+1)/(3+2) and (0+1)/(3+2)
        assert!((m.p(0) - 0.8).abs() < 1e-12);
        assert!((m.p(1) - 0.2).abs() < 1e-12);
        assert!(Model::estimate_smoothed(&seq, 0.0).is_err());
        assert!(Model::estimate_smoothed(&seq, f64::NAN).is_err());
    }

    #[test]
    fn alphabet_check() {
        let seq = Sequence::from_symbols(vec![0, 1], 2).unwrap();
        assert!(Model::uniform(2).unwrap().check_alphabet(&seq).is_ok());
        assert_eq!(
            Model::uniform(3).unwrap().check_alphabet(&seq),
            Err(Error::AlphabetMismatch {
                model_k: 3,
                seq_k: 2
            })
        );
    }
}
