//! Runtime-dispatched SIMD kernels for the scan hot paths.
//!
//! Two element-wise loops dominate the pruned scan (see `DESIGN.md` §12):
//! the post-skip prefix-count resync (`counts.rs`) and the per-candidate
//! skip-root solve plus budget pre-filter (`skip.rs` / `scan.rs`). Both
//! vectorize without changing a single reported bit:
//!
//! * **Integer resync** — the flat-table diff (`buf[c] += to[c] − from[c]`)
//!   and the blocked-table widening sweep (`u8`/`u16` delta rows widened to
//!   `u32` lanes) are exact wrapping integer arithmetic, so any lane order
//!   gives the same result.
//! * **Skip roots** — the `K` upper roots of one candidate need one
//!   `sqrtpd` instead of `K` scalar square roots. IEEE-754 requires
//!   correctly-rounded vector `sqrt`/`mul`/`add`/`sub`, so each lane is
//!   bit-identical to the scalar computation, and the root minimum is
//!   folded in the exact scalar order.
//! * **Survivor-mask pre-filter** — [`lookahead4`] evaluates the
//!   deferred-division chi-square bound and the skip lower bound for four
//!   candidate ends at once (one candidate per `f64` lane). Candidates
//!   that provably fail the bound *and* admit no skip are pre-confirmed;
//!   the scalar `lane_step` path consumes them with a one-symbol count
//!   bump and scores the first survivor exactly. The pre-confirmation is
//!   only consumed while the pruning budget is bit-unchanged, so the
//!   candidate stream (scores, skips, stats) is provably identical to the
//!   unbatched scalar scan.
//!
//! # Dispatch
//!
//! The level is detected once ([`is_x86_feature_detected!`]) and cached:
//! `Sse2` is the `x86_64` baseline, `Avx2` upgrades the 8-wide integer
//! kernels, and every other architecture (or the
//! [`SIGSTR_FORCE_SCALAR`](FORCE_SCALAR_ENV) override /
//! [`set_force_scalar`]) runs the portable scalar fallbacks. Because every
//! kernel is bit-exact, the dispatch never changes an answer — only the
//! instruction count.

use std::sync::atomic::{AtomicU8, Ordering};

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Environment variable that forces the portable scalar fallbacks when set
/// to anything other than `0` or the empty string (checked once, at first
/// dispatch; [`set_force_scalar`] re-reads it).
pub const FORCE_SCALAR_ENV: &str = "SIGSTR_FORCE_SCALAR";

/// The vector instruction tier the kernels run at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdLevel {
    /// Portable scalar fallbacks (non-`x86_64` targets, or forced).
    Scalar,
    /// 16-byte integer/`f64` kernels (the `x86_64` baseline).
    Sse2,
    /// 32-byte integer kernels (runtime-detected).
    Avx2,
}

impl SimdLevel {
    /// Canonical lower-case name (for logs, `/metrics` and `index info`).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }
}

/// Cached dispatch level: 0 = undetected, else `SimdLevel as u8 + 1`.
static LEVEL: AtomicU8 = AtomicU8::new(0);
/// Programmatic override: 0 = follow the environment, 1 = forced scalar,
/// 2 = forced auto-detect (ignore the environment).
static FORCE: AtomicU8 = AtomicU8::new(0);

fn detect() -> SimdLevel {
    let forced_scalar = match FORCE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => match std::env::var(FORCE_SCALAR_ENV) {
            Ok(v) => !v.is_empty() && v != "0",
            Err(_) => false,
        },
    };
    if forced_scalar {
        return SimdLevel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            SimdLevel::Avx2
        } else {
            SimdLevel::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    SimdLevel::Scalar
}

/// The active dispatch level (detected once, then a relaxed atomic load).
#[inline]
pub fn level() -> SimdLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => {
            let detected = detect();
            LEVEL.store(detected as u8 + 1, Ordering::Relaxed);
            detected
        }
        1 => SimdLevel::Scalar,
        2 => SimdLevel::Sse2,
        _ => SimdLevel::Avx2,
    }
}

/// Whether the vectorized kernels are active (anything above scalar).
#[inline]
pub fn active() -> bool {
    level() != SimdLevel::Scalar
}

/// Force (or un-force) the portable scalar fallbacks programmatically —
/// the test/bench hook behind the `--no-simd` CLI flag and the
/// SIMD-vs-scalar equivalence suites. Overrides the environment variable
/// and invalidates the cached detection.
///
/// Concurrent scans observe the switch at their next dispatch; because
/// every kernel is bit-exact, a scan that raced the switch still returns
/// the same answer.
pub fn set_force_scalar(force: bool) {
    FORCE.store(if force { 1 } else { 2 }, Ordering::Relaxed);
    LEVEL.store(0, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Integer resync kernels (exact: wrapping u32 arithmetic, order-free).
// ---------------------------------------------------------------------------

/// `buf[c] += to[c] − from[c]` over three equal-length rows — the flat
/// prefix-table resync. Exact in any lane order.
#[inline]
pub(crate) fn accumulate_diff_u32(buf: &mut [u32], to: &[u32], from: &[u32]) {
    debug_assert!(buf.len() == to.len() && buf.len() == from.len());
    #[cfg(target_arch = "x86_64")]
    if level() != SimdLevel::Scalar {
        // SAFETY: lengths checked above; loads/stores are unaligned-safe.
        unsafe { accumulate_diff_u32_sse2(buf, to, from) };
        return;
    }
    for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
        *slot = slot.wrapping_add(hi.wrapping_sub(lo));
    }
}

/// `buf[c] = to[c] − from[c]` — the flat prefix-table fill.
#[inline]
pub(crate) fn fill_diff_u32(buf: &mut [u32], to: &[u32], from: &[u32]) {
    debug_assert!(buf.len() == to.len() && buf.len() == from.len());
    #[cfg(target_arch = "x86_64")]
    if level() != SimdLevel::Scalar {
        // SAFETY: lengths checked above; loads/stores are unaligned-safe.
        unsafe { fill_diff_u32_sse2(buf, to, from) };
        return;
    }
    for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
        *slot = hi.wrapping_sub(lo);
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn accumulate_diff_u32_sse2(buf: &mut [u32], to: &[u32], from: &[u32]) {
    let len = buf.len();
    let mut i = 0;
    while i + 4 <= len {
        let hi = _mm_loadu_si128(to.as_ptr().add(i).cast());
        let lo = _mm_loadu_si128(from.as_ptr().add(i).cast());
        let b = _mm_loadu_si128(buf.as_ptr().add(i).cast());
        let r = _mm_add_epi32(b, _mm_sub_epi32(hi, lo));
        _mm_storeu_si128(buf.as_mut_ptr().add(i).cast(), r);
        i += 4;
    }
    while i < len {
        buf[i] = buf[i].wrapping_add(to.get_unchecked(i).wrapping_sub(*from.get_unchecked(i)));
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn fill_diff_u32_sse2(buf: &mut [u32], to: &[u32], from: &[u32]) {
    let len = buf.len();
    let mut i = 0;
    while i + 4 <= len {
        let hi = _mm_loadu_si128(to.as_ptr().add(i).cast());
        let lo = _mm_loadu_si128(from.as_ptr().add(i).cast());
        _mm_storeu_si128(buf.as_mut_ptr().add(i).cast(), _mm_sub_epi32(hi, lo));
        i += 4;
    }
    while i < len {
        buf[i] = to.get_unchecked(i).wrapping_sub(*from.get_unchecked(i));
        i += 1;
    }
}

/// The blocked-table stored-column resync:
/// `buf[c] += (sup_e[c] + row_e[c]) − (sup_s[c] + row_s[c])` over the
/// `stored_k` packed delta columns, widening the `u8`/`u16` rows to `u32`
/// lanes. Returns the two row sums the caller needs to derive the last
/// (unstored) column. Exact wrapping arithmetic in any order.
#[inline]
pub(crate) fn blocked_stored_diff<T: Copy + Into<u32> + WidenRow>(
    buf: &mut [u32],
    sup_s: &[u32],
    sup_e: &[u32],
    row_s: &[T],
    row_e: &[T],
) -> (u32, u32) {
    let stored_k = buf.len().min(row_s.len());
    #[cfg(target_arch = "x86_64")]
    if level() == SimdLevel::Avx2 && stored_k >= 8 {
        // SAFETY: AVX2 presence just checked; slice lengths checked by the
        // caller (`accumulate_impl` slices exact rows).
        return unsafe { T::stored_diff_avx2(buf, sup_s, sup_e, row_s, row_e) };
    }
    let mut sum_s = 0u32;
    let mut sum_e = 0u32;
    for c in 0..stored_k {
        let ds: u32 = row_s[c].into();
        let de: u32 = row_e[c].into();
        sum_s = sum_s.wrapping_add(ds);
        sum_e = sum_e.wrapping_add(de);
        buf[c] = buf[c]
            .wrapping_add((sup_e[c].wrapping_add(de)).wrapping_sub(sup_s[c].wrapping_add(ds)));
    }
    (sum_s, sum_e)
}

/// Width-specific AVX2 widening for [`blocked_stored_diff`].
pub(crate) trait WidenRow: Sized {
    /// The AVX2 widening sweep — `unsafe` because it requires AVX2.
    ///
    /// # Safety
    /// AVX2 must be available and all slices must hold at least
    /// `buf.len()` elements.
    unsafe fn stored_diff_avx2(
        buf: &mut [u32],
        sup_s: &[u32],
        sup_e: &[u32],
        row_s: &[Self],
        row_e: &[Self],
    ) -> (u32, u32);
}

impl WidenRow for u8 {
    #[cfg(target_arch = "x86_64")]
    unsafe fn stored_diff_avx2(
        buf: &mut [u32],
        sup_s: &[u32],
        sup_e: &[u32],
        row_s: &[u8],
        row_e: &[u8],
    ) -> (u32, u32) {
        stored_diff_avx2_impl(buf, sup_s, sup_e, row_s, row_e, |p| {
            _mm256_cvtepu8_epi32(_mm_loadl_epi64(p.cast()))
        })
    }

    #[cfg(not(target_arch = "x86_64"))]
    unsafe fn stored_diff_avx2(
        _: &mut [u32],
        _: &[u32],
        _: &[u32],
        _: &[u8],
        _: &[u8],
    ) -> (u32, u32) {
        unreachable!("AVX2 path is only dispatched on x86_64")
    }
}

impl WidenRow for u16 {
    #[cfg(target_arch = "x86_64")]
    unsafe fn stored_diff_avx2(
        buf: &mut [u32],
        sup_s: &[u32],
        sup_e: &[u32],
        row_s: &[u16],
        row_e: &[u16],
    ) -> (u32, u32) {
        stored_diff_avx2_impl(buf, sup_s, sup_e, row_s, row_e, |p| {
            _mm256_cvtepu16_epi32(_mm_loadu_si128(p.cast()))
        })
    }

    #[cfg(not(target_arch = "x86_64"))]
    unsafe fn stored_diff_avx2(
        _: &mut [u32],
        _: &[u32],
        _: &[u32],
        _: &[u16],
        _: &[u16],
    ) -> (u32, u32) {
        unreachable!("AVX2 path is only dispatched on x86_64")
    }
}

/// Shared AVX2 body: 8 columns per iteration, widened by `load8` (which
/// may read up to 16 bytes past the given pointer — safe here because the
/// loop only runs with at least 8 elements remaining and the vectors'
/// upper garbage is discarded by the cvtepu widening of the low lanes).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn stored_diff_avx2_impl<T>(
    buf: &mut [u32],
    sup_s: &[u32],
    sup_e: &[u32],
    row_s: &[T],
    row_e: &[T],
    load8: impl Fn(*const T) -> __m256i,
) -> (u32, u32)
where
    T: Copy + Into<u32>,
{
    let stored_k = buf.len();
    let mut sum_s_v = _mm256_setzero_si256();
    let mut sum_e_v = _mm256_setzero_si256();
    let mut i = 0;
    while i + 8 <= stored_k {
        let ds = load8(row_s.as_ptr().add(i));
        let de = load8(row_e.as_ptr().add(i));
        sum_s_v = _mm256_add_epi32(sum_s_v, ds);
        sum_e_v = _mm256_add_epi32(sum_e_v, de);
        let ss = _mm256_loadu_si256(sup_s.as_ptr().add(i).cast());
        let se = _mm256_loadu_si256(sup_e.as_ptr().add(i).cast());
        let b = _mm256_loadu_si256(buf.as_ptr().add(i).cast());
        let diff = _mm256_sub_epi32(_mm256_add_epi32(se, de), _mm256_add_epi32(ss, ds));
        _mm256_storeu_si256(buf.as_mut_ptr().add(i).cast(), _mm256_add_epi32(b, diff));
        i += 8;
    }
    let mut sums = [0u32; 8];
    let mut sume = [0u32; 8];
    _mm256_storeu_si256(sums.as_mut_ptr().cast(), sum_s_v);
    _mm256_storeu_si256(sume.as_mut_ptr().cast(), sum_e_v);
    let mut sum_s = sums.iter().fold(0u32, |a, &x| a.wrapping_add(x));
    let mut sum_e = sume.iter().fold(0u32, |a, &x| a.wrapping_add(x));
    while i < stored_k {
        let ds: u32 = row_s[i].into();
        let de: u32 = row_e[i].into();
        sum_s = sum_s.wrapping_add(ds);
        sum_e = sum_e.wrapping_add(de);
        buf[i] = buf[i]
            .wrapping_add((sup_e[i].wrapping_add(de)).wrapping_sub(sup_s[i].wrapping_add(ds)));
        i += 1;
    }
    (sum_s, sum_e)
}

// ---------------------------------------------------------------------------
// f64 kernels (exact: IEEE-754 vector sqrt/mul/add/sub are correctly
// rounded per lane, so each lane is bit-identical to the scalar op).
// ---------------------------------------------------------------------------

/// Square roots of two lanes — one `sqrtpd` on `x86_64`.
#[inline(always)]
pub(crate) fn sqrt2(x: [f64; 2]) -> [f64; 2] {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is part of the x86_64 baseline.
    unsafe {
        let v = _mm_sqrt_pd(_mm_loadu_pd(x.as_ptr()));
        let mut out = [0.0f64; 2];
        _mm_storeu_pd(out.as_mut_ptr(), v);
        out
    }
    #[cfg(not(target_arch = "x86_64"))]
    [x[0].sqrt(), x[1].sqrt()]
}

/// Square roots of four lanes — two `sqrtpd` on `x86_64`.
#[inline(always)]
pub(crate) fn sqrt4(x: [f64; 4]) -> [f64; 4] {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: SSE2 is part of the x86_64 baseline.
    unsafe {
        let lo = _mm_sqrt_pd(_mm_loadu_pd(x.as_ptr()));
        let hi = _mm_sqrt_pd(_mm_loadu_pd(x.as_ptr().add(2)));
        let mut out = [0.0f64; 4];
        _mm_storeu_pd(out.as_mut_ptr(), lo);
        _mm_storeu_pd(out.as_mut_ptr().add(2), hi);
        out
    }
    #[cfg(not(target_arch = "x86_64"))]
    [x[0].sqrt(), x[1].sqrt(), x[2].sqrt(), x[3].sqrt()]
}

/// The minimum upper root `min_m r2_m` of one candidate's `K` skip
/// quadratics, vectorized across the characters:
/// `r2_m = (√(b_m² − four_pa_m·u) − b_m)·half_inv_a_m` with
/// `b_m = 2·Y_m − p_m·t`. The caller guarantees `u ≤ 0` (so every
/// discriminant is non-negative) and slices of length ≥ `K`.
///
/// Bit-identical to the scalar `skip_below_budget_branchless` fold: every
/// lane op is correctly rounded, and the final minimum is folded in the
/// same index-ascending order over values that are never `NaN` and never
/// `−0.0`.
#[inline(always)]
pub(crate) fn roots_hi_fixed<const K: usize>(
    counts: &[u32; K],
    t: f64,
    u: f64,
    p: &[f64],
    four_pa: &[f64],
    half_inv_a: &[f64],
) -> f64 {
    debug_assert!(p.len() >= K && four_pa.len() >= K && half_inv_a.len() >= K);
    let mut y = [0.0f64; K];
    for m in 0..K {
        y[m] = f64::from(counts[m]);
    }
    let mut disc = [0.0f64; K];
    let mut b = [0.0f64; K];
    for m in 0..K {
        b[m] = 2.0 * y[m] - p[m] * t;
        disc[m] = b[m] * b[m] - four_pa[m] * u;
    }
    let sq: [f64; K] = match K {
        2 => {
            let s = sqrt2([disc[0], disc[1]]);
            let mut out = [0.0f64; K];
            out[0] = s[0];
            out[1] = s[1];
            out
        }
        4 => {
            let s = sqrt4([disc[0], disc[1], disc[2], disc[3]]);
            let mut out = [0.0f64; K];
            out[..4].copy_from_slice(&s);
            out
        }
        _ => {
            let mut out = [0.0f64; K];
            for m in 0..K {
                out[m] = disc[m].sqrt();
            }
            out
        }
    };
    let mut hi = f64::INFINITY;
    for m in 0..K {
        hi = hi.min((sq[m] - b[m]) * half_inv_a[m]);
    }
    hi
}

// ---------------------------------------------------------------------------
// Group examine: all interleaved scan lanes solved in one packed pass.
// ---------------------------------------------------------------------------

/// Number of interleaved scan lanes driven by the specialized kernels and
/// by the packed group examine. The scalar and SIMD instantiations share
/// this width, so the candidate stream — and therefore every answer and
/// every statistic — is identical under both dispatch modes.
///
/// Twelve lanes keep enough independent solve chains in flight to cover the
/// `sqrt → floor → resync` latency of each one; for `K = 2` the group
/// examine packs all twelve into six 4-wide `f64` vectors (two lanes per
/// vector).
pub(crate) const GROUP_LANES: usize = 12;

/// Whether the fully-packed `K = 2` group examine ([`group_examine2`]) is
/// available at the current dispatch level.
#[inline]
pub(crate) fn group2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        level() == SimdLevel::Avx2
    }
    #[cfg(not(target_arch = "x86_64"))]
    false
}

/// Fully-packed examine step for **all [`GROUP_LANES`] interleaved `K = 2`
/// scan lanes**: weighted square sums, budget pre-filter, skip-root solve
/// and first verification pass, in four 4-wide `f64` vectors (two scan
/// lanes per vector, `[a₀, a₁, b₀, b₁]`, character per slot).
///
/// Returns `None` when any lane passes the pre-filter — that lane must
/// observe, which can move the budget between steps, so the caller replays
/// the whole round sequentially (recomputing the same sums). Otherwise no
/// lane observes, the budget is pinned for the round, and the returned
/// skips are bit-identical to [`GROUP_LANES`] sequential scalar steps:
///
/// * counts convert exactly (`vcvtdq2pd`; the caller guarantees they fit
///   in an `i32`), and the packed square-sum (`haddpd`) folds the two
///   `y²/p` terms of each lane in one addition — IEEE addition is
///   commutative, so the bits match the scalar left-to-right fold;
/// * pre-filter, `u`, `t` and `tol` use the scalar op sequence per lane
///   (`budget.abs()` is the identity here — the caller guarantees a
///   positive finite budget);
/// * the solve chain per lane — `b = 2Y − p·t`, discriminant, square
///   root, upper root, root minimum (positive, never `NaN`, so the packed
///   min matches the scalar fold), `⌊hi⌋` and the first verification pass
///   `((1−p)·x + b)·x + p·u ≤ tol` — is correctly rounded per slot,
///   identical to the scalar solver; the rare verification backoff is
///   replayed by the scalar [`crate::skip::verify_candidate`].
///
/// Only called when [`group2_available`] (AVX2); the caller guarantees
/// `budget > 0`, finite, counts `< 2³¹`, and two-element table slices.
#[cfg(target_arch = "x86_64")]
pub(crate) fn group_examine2(
    counts: &[[u32; 2]; GROUP_LANES],
    lfs: &[f64; GROUP_LANES],
    budget: f64,
    tables: &crate::skip::SkipTables<'_>,
) -> Option<[usize; GROUP_LANES]> {
    debug_assert!(group2_available());
    debug_assert!(budget.is_finite() && budget > 0.0);
    // SAFETY: AVX2 presence guaranteed by the `group2_available` contract.
    unsafe { group_examine2_avx2(counts, lfs, budget, tables) }
}

/// Non-`x86_64` stub — never called ([`group2_available`] is `false`).
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn group_examine2(
    _counts: &[[u32; 2]; GROUP_LANES],
    _lfs: &[f64; GROUP_LANES],
    _budget: f64,
    _tables: &crate::skip::SkipTables<'_>,
) -> Option<[usize; GROUP_LANES]> {
    unreachable!("group_examine2 is only dispatched when group2_available()")
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn group_examine2_avx2(
    counts: &[[u32; 2]; GROUP_LANES],
    lfs: &[f64; GROUP_LANES],
    budget: f64,
    tables: &crate::skip::SkipTables<'_>,
) -> Option<[usize; GROUP_LANES]> {
    const PAIRS: usize = GROUP_LANES / 2;
    let inv_p = _mm256_broadcast_pd(&_mm_loadu_pd(tables.inv_p.as_ptr()));
    let bud = _mm256_set1_pd(budget);
    let margin = _mm256_set1_pd(1.0 - 1e-12);
    let mut y = [_mm256_setzero_pd(); PAIRS];
    let mut lf = [_mm256_setzero_pd(); PAIRS];
    let mut ws = [_mm256_setzero_pd(); PAIRS];
    let mut prod = [_mm256_setzero_pd(); PAIRS];
    let mut pre_mask = 0i32;
    for j in 0..PAIRS {
        // Two lanes' `[u32; 2]` counts are 16 contiguous bytes: one load,
        // one exact i32 → f64 convert (counts < 2³¹ per the contract).
        let raw = _mm_loadu_si128(counts.as_ptr().add(2 * j).cast());
        y[j] = _mm256_cvtepi32_pd(raw);
        // [lf_a, lf_a, lf_b, lf_b] from the two lanes' lengths.
        let lf2 = _mm256_castpd128_pd256(_mm_loadu_pd(lfs.as_ptr().add(2 * j)));
        lf[j] = _mm256_permute4x64_pd::<0b0101_0000>(lf2);
        // ws per lane: the two (y·y)·p⁻¹ terms of each 128-bit half folded
        // by one horizontal add (bit-equal to the scalar fold by
        // commutativity); pre-filter ws ≥ (budget + lf)·lf·(1 − 1e-12).
        let sq = _mm256_mul_pd(_mm256_mul_pd(y[j], y[j]), inv_p);
        ws[j] = _mm256_hadd_pd(sq, sq);
        prod[j] = _mm256_mul_pd(_mm256_add_pd(bud, lf[j]), lf[j]);
        let pre = _mm256_mul_pd(prod[j], margin);
        pre_mask |= _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GE_OQ>(ws[j], pre));
    }
    if pre_mask != 0 {
        return None;
    }
    // No lane observes: u = ws − (lf + budget)·lf < 0, t = 2lf + budget,
    // tol = 1e-9·(1 + |budget|·lf), all pinned to the shared budget.
    let p = _mm256_broadcast_pd(&_mm_loadu_pd(tables.p.as_ptr()));
    let four_pa = _mm256_broadcast_pd(&_mm_loadu_pd(tables.four_pa.as_ptr()));
    let half_inv_a = _mm256_broadcast_pd(&_mm_loadu_pd(tables.half_inv_a.as_ptr()));
    let one_minus = _mm256_broadcast_pd(&_mm_loadu_pd(tables.one_minus.as_ptr()));
    let two = _mm256_set1_pd(2.0);
    let one = _mm256_set1_pd(1.0);
    let tol_scale = _mm256_set1_pd(1e-9);
    let mut out = [0usize; GROUP_LANES];
    for j in 0..PAIRS {
        let u = _mm256_sub_pd(ws[j], prod[j]);
        let t = _mm256_add_pd(_mm256_mul_pd(two, lf[j]), bud);
        let tol = _mm256_mul_pd(tol_scale, _mm256_add_pd(one, _mm256_mul_pd(bud, lf[j])));
        // b = 2Y − p·t, disc = b² − 4p(1−p)·u ≥ 0 (u < 0),
        // r2 = (√disc − b)/(2(1−p)), per-lane root minimum.
        let b = _mm256_sub_pd(_mm256_mul_pd(two, y[j]), _mm256_mul_pd(p, t));
        let disc = _mm256_sub_pd(_mm256_mul_pd(b, b), _mm256_mul_pd(four_pa, u));
        let r = _mm256_mul_pd(_mm256_sub_pd(_mm256_sqrt_pd(disc), b), half_inv_a);
        let hi = _mm256_min_pd(r, _mm256_permute_pd::<0b0101>(r));
        let lt_one = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_LT_OQ>(hi, one));
        // First verification candidate x = ⌊hi⌋ (≥ 1 whenever hi ≥ 1):
        // q = ((1−p)·x + b)·x + p·u must stay ≤ tol for both characters.
        let x = _mm256_round_pd::<{ _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC }>(hi);
        let c = _mm256_mul_pd(p, u);
        let q = _mm256_add_pd(
            _mm256_mul_pd(_mm256_add_pd(_mm256_mul_pd(one_minus, x), b), x),
            c,
        );
        let over = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(q, tol));
        let x_lo = _mm_cvtsd_f64(_mm256_castpd256_pd128(x));
        let t_lo = _mm_cvtsd_f64(_mm256_castpd256_pd128(t));
        let u_lo = _mm_cvtsd_f64(_mm256_castpd256_pd128(u));
        let tol_lo = _mm_cvtsd_f64(_mm256_castpd256_pd128(tol));
        out[2 * j] = group_lane_finish(
            lt_one,
            over,
            0b0011,
            x_lo,
            &counts[2 * j],
            t_lo,
            u_lo,
            tol_lo,
            tables,
        );
        let x_hi = _mm_cvtsd_f64(_mm256_extractf128_pd::<1>(x));
        let t_hi = _mm_cvtsd_f64(_mm256_extractf128_pd::<1>(t));
        let u_hi = _mm_cvtsd_f64(_mm256_extractf128_pd::<1>(u));
        let tol_hi = _mm_cvtsd_f64(_mm256_extractf128_pd::<1>(tol));
        out[2 * j + 1] = group_lane_finish(
            lt_one,
            over,
            0b1100,
            x_hi,
            &counts[2 * j + 1],
            t_hi,
            u_hi,
            tol_hi,
            tables,
        );
    }
    Some(out)
}

/// Commit one lane of the packed verdict: no root ≥ 1 ⇒ no skip; packed
/// verification clean ⇒ the floored root is the skip; otherwise replay the
/// scalar verification (identical first candidate, then the backoff).
#[cfg(target_arch = "x86_64")]
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn group_lane_finish(
    lt_one: i32,
    over: i32,
    lane_mask: i32,
    x: f64,
    counts: &[u32],
    t: f64,
    u: f64,
    tol: f64,
    tables: &crate::skip::SkipTables<'_>,
) -> usize {
    if lt_one & lane_mask != 0 {
        return 0;
    }
    if over & lane_mask == 0 {
        return x as usize;
    }
    crate::skip::verify_candidate(counts, t, u, tables, x, 0.0, tol)
}

// ---------------------------------------------------------------------------
// Survivor-mask lookahead: four candidate ends per evaluation.
// ---------------------------------------------------------------------------

/// Evaluate the budget pre-filter and the skip bound for the **next four
/// candidate ends** of one scan lane, one candidate per `f64` lane.
///
/// Candidate `j ∈ 0..4` is the substring `[start, end₀ + j)` where `base`
/// is the count vector of `[start, end₀)`, `l0 = end₀ − start`, and
/// `next = [S[end₀], S[end₀+1], S[end₀+2]]` supplies the incremental
/// histogram. Returns the number of *leading* candidates that provably
///
/// 1. fail the deferred-division budget pre-filter
///    (`ws < (budget + l)·l·(1 − 1e-12)` — computed with the exact scalar
///    op sequence, so the verdict matches `lane_step` bit-for-bit), and
/// 2. admit no skip (`min_m r2_m < 1.0`, which short-circuits the scalar
///    solver to 0 before any verification).
///
/// Such candidates are exactly the ones the scalar path would examine
/// without observing and advance past with a single-symbol count bump —
/// the caller replays that bump per candidate and re-scores the first
/// survivor exactly. The caller guarantees `budget > 0` and finite (the
/// bound-fail ⟹ `u < 0` argument needs it).
#[allow(clippy::needless_range_loop)] // multi-array lockstep indexing
#[allow(clippy::too_many_arguments)] // the solver's cached model tables, passed apart
pub(crate) fn lookahead4<const K: usize>(
    base: &[u32; K],
    next: &[u8; 3],
    l0: usize,
    budget: f64,
    p: &[f64],
    inv_p: &[f64],
    four_pa: &[f64],
    half_inv_a: &[f64],
) -> u32 {
    debug_assert!(budget.is_finite() && budget > 0.0);
    // Per-candidate count lanes: y[m][j] = count of character m in
    // candidate j (base plus the incremental histogram of `next[..j]`).
    let mut y = [[0.0f64; 4]; K];
    let mut running = *base;
    for j in 0..4 {
        for m in 0..K {
            y[m][j] = f64::from(running[m]);
        }
        if j < 3 {
            running[next[j] as usize] += 1;
        }
    }
    let lf = [l0 as f64, (l0 + 1) as f64, (l0 + 2) as f64, (l0 + 3) as f64];
    // ws_j = Σ_m y²·inv_p in the canonical index-ascending order.
    let mut ws = [0.0f64; 4];
    for m in 0..K {
        for j in 0..4 {
            ws[j] += y[m][j] * y[m][j] * inv_p[m];
        }
    }
    // Budget pre-filter and the solver's per-call scalars, with the exact
    // scalar op sequence per lane.
    let mut survives = [false; 4];
    let mut u = [0.0f64; 4];
    let mut t = [0.0f64; 4];
    for j in 0..4 {
        survives[j] = ws[j] >= (budget + lf[j]) * lf[j] * (1.0 - 1e-12);
        u[j] = ws[j] - (lf[j] + budget) * lf[j];
        t[j] = 2.0 * lf[j] + budget;
    }
    // hi_j = min_m r2_m, folded per lane in index-ascending order. Lanes
    // that pass the pre-filter may have u > 0 and a negative discriminant
    // (NaN root); those lanes are excluded by `survives` regardless.
    let mut hi = [f64::INFINITY; 4];
    for m in 0..K {
        let mut disc = [0.0f64; 4];
        let mut b = [0.0f64; 4];
        for j in 0..4 {
            b[j] = 2.0 * y[m][j] - p[m] * t[j];
            disc[j] = b[j] * b[j] - four_pa[m] * u[j];
        }
        let sq = sqrt4(disc);
        for j in 0..4 {
            hi[j] = hi[j].min((sq[j] - b[j]) * half_inv_a[m]);
        }
    }
    let mut confirmed = 0u32;
    for j in 0..4 {
        // `!(hi < 1.0)` deliberately: a NaN root (negative discriminant)
        // must stop the confirmation run exactly like `hi >= 1.0` does.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if survives[j] || !(hi[j] < 1.0) {
            break;
        }
        confirmed += 1;
    }
    confirmed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_reports_a_level_and_forces_scalar() {
        let env_forced = std::env::var(FORCE_SCALAR_ENV).is_ok_and(|v| !v.is_empty() && v != "0");
        let initial = level();
        #[cfg(target_arch = "x86_64")]
        if !env_forced {
            assert_ne!(
                initial,
                SimdLevel::Scalar,
                "x86_64 baseline should be at least SSE2 unless forced"
            );
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(initial, SimdLevel::Scalar);
        if env_forced {
            assert_eq!(initial, SimdLevel::Scalar);
        }
        set_force_scalar(true);
        assert_eq!(level(), SimdLevel::Scalar);
        assert!(!active());
        // Restore env-following dispatch (not forced-auto) so a
        // force-scalar CI run keeps exercising the scalar paths in tests
        // that happen to run after this one.
        FORCE.store(0, Ordering::Relaxed);
        LEVEL.store(0, Ordering::Relaxed);
        assert_eq!(level(), initial);
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Sse2.name(), "sse2");
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
    }

    #[test]
    fn integer_diffs_match_scalar_for_all_lengths() {
        for len in 0..33usize {
            let to: Vec<u32> = (0..len as u32).map(|i| 1000 + 7 * i).collect();
            let from: Vec<u32> = (0..len as u32).map(|i| 3 * i).collect();
            let mut expect: Vec<u32> = (0..len as u32).map(|i| 10 + i).collect();
            let mut got = expect.clone();
            for ((slot, &hi), &lo) in expect.iter_mut().zip(&to).zip(&from) {
                *slot += hi - lo;
            }
            accumulate_diff_u32(&mut got, &to, &from);
            assert_eq!(expect, got, "accumulate len {len}");
            let mut got_fill = vec![0u32; len];
            fill_diff_u32(&mut got_fill, &to, &from);
            let expect_fill: Vec<u32> = to.iter().zip(&from).map(|(&h, &l)| h - l).collect();
            assert_eq!(expect_fill, got_fill, "fill len {len}");
        }
    }

    #[test]
    fn blocked_stored_diff_matches_scalar_reference() {
        fn reference(
            buf: &mut [u32],
            sup_s: &[u32],
            sup_e: &[u32],
            row_s: &[u8],
            row_e: &[u8],
        ) -> (u32, u32) {
            let mut sum_s = 0u32;
            let mut sum_e = 0u32;
            for c in 0..buf.len() {
                let ds = u32::from(row_s[c]);
                let de = u32::from(row_e[c]);
                sum_s += ds;
                sum_e += de;
                buf[c] += (sup_e[c] + de) - (sup_s[c] + ds);
            }
            (sum_s, sum_e)
        }
        for stored_k in [1usize, 4, 7, 8, 9, 16, 25] {
            let sup_s: Vec<u32> = (0..stored_k as u32).map(|i| 100 * i).collect();
            let sup_e: Vec<u32> = (0..stored_k as u32).map(|i| 100 * i + 40 + i).collect();
            let row_s: Vec<u8> = (0..stored_k as u8).map(|i| i * 3).collect();
            let row_e: Vec<u8> = (0..stored_k as u8).map(|i| i * 3 + 5).collect();
            let mut expect = vec![7u32; stored_k];
            let mut got = expect.clone();
            let se = reference(&mut expect, &sup_s, &sup_e, &row_s, &row_e);
            let sg = blocked_stored_diff(&mut got, &sup_s, &sup_e, &row_s, &row_e);
            assert_eq!(expect, got, "stored_k {stored_k}");
            assert_eq!(se, sg, "stored_k {stored_k} sums");
            // u16 tier.
            let row_s16: Vec<u16> = row_s.iter().map(|&d| u16::from(d) + 300).collect();
            let row_e16: Vec<u16> = row_e.iter().map(|&d| u16::from(d) + 300).collect();
            let mut got16 = vec![7u32; stored_k];
            let sg16 = blocked_stored_diff(&mut got16, &sup_s, &sup_e, &row_s16, &row_e16);
            assert_eq!(expect, got16, "u16 stored_k {stored_k}");
            // The +300 bias cancels in the diffs but shifts both sums.
            let bias = 300 * stored_k as u32;
            assert_eq!(
                (se.0 + bias, se.1 + bias),
                sg16,
                "u16 stored_k {stored_k} sums"
            );
        }
    }

    #[test]
    fn vector_sqrt_is_bit_identical_to_scalar() {
        let xs = [
            0.0,
            1.0,
            2.0,
            1e300,
            1e-300,
            0.3333333333333333,
            7.25,
            1234.5678,
        ];
        for w in xs.windows(4) {
            let v4 = sqrt4([w[0], w[1], w[2], w[3]]);
            for (i, &x) in w.iter().enumerate() {
                assert_eq!(v4[i].to_bits(), x.sqrt().to_bits(), "sqrt4 lane {i} of {x}");
            }
            let v2 = sqrt2([w[0], w[1]]);
            assert_eq!(v2[0].to_bits(), w[0].sqrt().to_bits());
            assert_eq!(v2[1].to_bits(), w[1].sqrt().to_bits());
        }
    }
}
