//! Parallel mining — a persistent worker pool with work-stealing over
//! fine-grained start blocks.
//!
//! The pruned scan is embarrassingly parallel over start positions; the
//! only shared state is the pruning budget. Workers publish their local
//! best (or top-t floor) through a monotone atomic `f64`; reading a stale
//! (lower) budget is always *safe* — it only weakens pruning, never
//! correctness — so plain relaxed atomics suffice.
//!
//! # The pool
//!
//! Workers live in a [`WorkerPool`]: `N` threads parked on a condvar,
//! woken per scan and handed a borrowed job closure through an
//! epoch-counted broadcast. An [`crate::Engine`] spawns one pool lazily
//! and reuses it for every parallel query it serves; the one-shot
//! [`find_mss_parallel`] / [`top_t_parallel`] build a transient pool per
//! call (exactly the thread-spawn cost the old scoped implementation
//! paid), so reuse is what the engine buys you.
//!
//! # Scheduling
//!
//! Static contiguous chunking (one range per worker) is badly
//! load-imbalanced: low start positions own the longest end-scans, so the
//! worker holding the prefix chunk finishes last while the rest idle.
//! Instead, start positions are divided into fine-grained *blocks* dealt
//! right-to-left from a shared atomic cursor: each worker grabs the next
//! block when it finishes its current one, so imbalance is bounded by a
//! single block regardless of how skewed the per-start costs are.
//!
//! # Warm-up
//!
//! Before fan-out, a cheap sequential pass scans the highest start
//! positions (the shortest suffix scans) and publishes the resulting
//! budget. Workers therefore prune from their very first substring
//! instead of each rediscovering a budget from zero — without it, every
//! worker's first block runs essentially unpruned.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::counts::{CountSource, PrefixCounts};
use crate::error::{Error, Result};
use crate::model::Model;
use crate::mss::MssResult;
use crate::scan::{scan_policy, MaxPolicy, Policy, ScanStats};
use crate::score::{scored_cmp, Scored};
use crate::seq::Sequence;
use crate::topt::{TopTPolicy, TopTResult};

/// A monotone-max shared f64 (bit-packed in an `AtomicU64`).
///
/// Only non-negative values are published, for which the IEEE-754 bit
/// pattern ordering matches numeric ordering, so `fetch_max` works.
struct SharedMax(AtomicU64);

impl SharedMax {
    fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn publish(&self, value: f64) {
        if value > 0.0 && value.is_finite() {
            self.0.fetch_max(value.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A `MaxPolicy` that reads a shared budget floor and publishes
/// improvements.
struct SharedMaxPolicy<'a> {
    local: MaxPolicy,
    shared: &'a SharedMax,
}

impl Policy for SharedMaxPolicy<'_> {
    fn observe(&mut self, scored: Scored) {
        let before = self.local.budget();
        self.local.observe(scored);
        let after = self.local.budget();
        if after > before {
            self.shared.publish(after);
        }
    }

    fn budget(&self) -> f64 {
        self.local.budget().max(self.shared.get())
    }
}

/// Validate and normalize a worker-count request (`0` = all cores).
pub(crate) fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A borrowed job, lifetime-erased for the pool's shared state.
///
/// The `'static` is a fiction confined to this module: [`WorkerPool::
/// broadcast`] does not return until every worker has finished with the
/// reference, so the underlying borrow outlives every dereference.
#[derive(Clone, Copy)]
struct Job(&'static (dyn Fn(usize) + Sync));

struct PoolState {
    /// Bumped once per broadcast; workers run each epoch exactly once.
    epoch: u64,
    /// The current epoch's job (cleared when the epoch completes).
    job: Option<Job>,
    /// Workers still running the current epoch's job.
    remaining: usize,
    /// Whether any worker panicked during the current epoch's job.
    panicked: bool,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers wait here for a new epoch (or shutdown).
    start: Condvar,
    /// The broadcaster waits here for `remaining` to reach zero.
    done: Condvar,
}

/// A fixed-size pool of persistent scan workers.
///
/// Built once (per [`crate::Engine`], per [`crate::Batch`], or per
/// one-shot parallel call) and reused for every subsequent parallel
/// query: broadcasting a job wakes the parked workers instead of
/// spawning threads. Dropping the pool shuts the workers down and joins
/// them.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Serializes broadcasts (concurrent parallel queries on one engine
    /// take turns on the pool).
    gate: Mutex<()>,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

/// Lock, recovering from poison: every pool invariant is re-established
/// at the start of each broadcast (and a propagated job panic poisons the
/// locks while the state is already consistent), so poison never means
/// corruption here.
fn lock_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl WorkerPool {
    /// Spawn `threads` persistent workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                panicked: false,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
        });
        let handles = (0..threads)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, slot))
            })
            .collect();
        Self {
            shared,
            handles,
            gate: Mutex::new(()),
        }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Run `job(slot)` on every worker and wait for all of them to
    /// finish. `slot` is the worker index in `0..threads()`.
    ///
    /// # Panics
    ///
    /// Re-raises when any worker's job panics (matching the join-and-
    /// propagate semantics of the scoped-thread implementation this pool
    /// replaced — a panicking scan must crash the query, not hang it).
    pub(crate) fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        let _gate = lock_recover(&self.gate);
        // SAFETY: lifetime erasure only — see `Job`. We block below until
        // every worker has finished running the closure, so the borrow is
        // live for every dereference.
        let job: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(job) };
        let mut state = lock_recover(&self.shared.state);
        debug_assert_eq!(state.remaining, 0);
        state.job = Some(Job(job));
        state.epoch += 1;
        state.remaining = self.handles.len();
        state.panicked = false;
        self.shared.start.notify_all();
        while state.remaining > 0 {
            state = self
                .shared
                .done
                .wait(state)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        state.job = None;
        assert!(!state.panicked, "worker panicked during pool broadcast");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = lock_recover(&self.shared.state);
            state.shutdown = true;
            self.shared.start.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, slot: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    break state.job.expect("job set for the live epoch");
                }
                state = shared
                    .start
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Catch job panics so `remaining` always reaches zero: a panicking
        // scan must surface in broadcast() as a panic, never leave the
        // broadcaster (and every future pool user) waiting forever.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (job.0)(slot)));
        let mut state = lock_recover(&shared.state);
        if outcome.is_err() {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Block scheduling.
// ---------------------------------------------------------------------------

/// Number of trailing start positions the sequential warm-up pass covers.
fn warmup_len(n: usize) -> usize {
    // Enough suffix for the budget to approach its 2·ln n asymptote, small
    // enough to stay negligible next to the parallel region.
    (n / 32).clamp(64, 4096).min(n)
}

/// Block size for the work-stealing deal over `remaining` start positions.
fn block_len(remaining: usize, threads: usize) -> usize {
    // Aim for ~16 blocks per worker so steal imbalance stays small, but
    // keep blocks big enough that the cursor is not contended.
    (remaining / (threads * 16).max(1)).clamp(32, 8192)
}

/// The shared deal: block `index` (0-based) covers starts
/// `[hi − block, hi)` counted down from `remaining`, so the cheap (high,
/// short-scan) blocks go out first — matching the sequential right-to-left
/// warm-up order on average.
fn block_range(index: usize, remaining: usize, block: usize) -> std::ops::Range<usize> {
    let hi = remaining - (index * block).min(remaining);
    let lo = hi.saturating_sub(block);
    lo..hi
}

/// Run `worker` on every pool thread, each pulling block indices from a
/// shared cursor, and collect the per-worker results (in completion
/// order — callers merge commutatively).
fn steal_blocks<T: Send>(
    pool: &WorkerPool,
    num_blocks: usize,
    worker: impl Fn(&mut dyn FnMut() -> Option<usize>) -> T + Sync,
) -> Vec<T> {
    let cursor = AtomicUsize::new(0);
    let results: Mutex<Vec<T>> = Mutex::new(Vec::with_capacity(pool.threads()));
    pool.broadcast(&|_slot| {
        let mut next = || {
            let index = cursor.fetch_add(1, Ordering::Relaxed);
            (index < num_blocks).then_some(index)
        };
        let result = worker(&mut next);
        results.lock().expect("steal results poisoned").push(result);
    });
    results.into_inner().expect("steal results poisoned")
}

// ---------------------------------------------------------------------------
// Parallel MSS.
// ---------------------------------------------------------------------------

/// Parallel MSS (Problem 1). `threads = 0` uses all available cores.
///
/// Returns a substring with **bit-identical** `X²` to
/// [`crate::find_mss`]'s result — budget sharing affects only the amount
/// of pruning, never the maximal value. When several substrings tie at
/// the maximum bit-for-bit, the reported *position* may differ from the
/// sequential scan's (either scan may prune a tied extension; see
/// `DESIGN.md` §3), with ties at the merge resolving by earliest start.
///
/// Spawns a transient [`WorkerPool`] per call — build an
/// [`crate::Engine`] to reuse one pool across calls.
pub fn find_mss_parallel(seq: &Sequence, model: &Model, threads: usize) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    find_mss_parallel_counts(&pc, model, threads)
}

/// [`find_mss_parallel`] over prebuilt prefix counts.
pub fn find_mss_parallel_counts(
    pc: &PrefixCounts,
    model: &Model,
    threads: usize,
) -> Result<MssResult> {
    let threads = resolve_threads(threads);
    if threads == 1 || pc.n() < 2 {
        return crate::mss::find_mss_counts(pc, model);
    }
    let pool = WorkerPool::new(threads);
    Ok(mss_parallel_scan(pc, model, &pool))
}

/// The pool-borrowing parallel MSS scan (the engine's entry point).
/// Generic over the count layout: workers monomorphize per index type and
/// share it read-only.
pub(crate) fn mss_parallel_scan<C: CountSource + Sync>(
    pc: &C,
    model: &Model,
    pool: &WorkerPool,
) -> MssResult {
    let n = pc.n();
    let shared = SharedMax::new();

    // Sequential warm-up: seed the shared budget on the cheap suffix.
    let warm = warmup_len(n);
    let mut warm_policy = MaxPolicy::default();
    let mut stats = scan_policy(
        pc,
        model,
        1,
        usize::MAX,
        n,
        (n - warm..n).rev(),
        &mut warm_policy,
        &mut Vec::new(),
    );
    if let Some(b) = warm_policy.best {
        shared.publish(b.chi_square);
    }

    let remaining = n - warm;
    let mut best = warm_policy.best;
    if remaining > 0 {
        let block = block_len(remaining, pool.threads());
        let num_blocks = remaining.div_ceil(block);
        let results = steal_blocks(pool, num_blocks, |next| {
            let mut policy = SharedMaxPolicy {
                local: MaxPolicy::default(),
                shared: &shared,
            };
            let mut stats = ScanStats::default();
            let mut scratch = Vec::new();
            while let Some(index) = next() {
                let range = block_range(index, remaining, block);
                stats.merge(&scan_policy(
                    pc,
                    model,
                    1,
                    usize::MAX,
                    n,
                    range.rev(),
                    &mut policy,
                    &mut scratch,
                ));
            }
            (policy.local.best, stats)
        });
        for (candidate, worker_stats) in results {
            stats.merge(&worker_stats);
            if let Some(c) = candidate {
                match &best {
                    Some(b) if scored_cmp(&c, b) != std::cmp::Ordering::Greater => {}
                    _ => best = Some(c),
                }
            }
        }
    }
    MssResult {
        best: best.expect("non-empty sequence"),
        stats,
    }
}

// ---------------------------------------------------------------------------
// Parallel top-t.
// ---------------------------------------------------------------------------

/// A `TopTPolicy` that shares the t-th-best floor across workers.
struct SharedTopTPolicy<'a> {
    local: TopTPolicy,
    shared: &'a SharedMax,
}

impl Policy for SharedTopTPolicy<'_> {
    fn observe(&mut self, scored: Scored) {
        self.local.observe(scored);
        self.local.floor = self.shared.get();
        // Publish our own t-th best: a lower bound on the global t-th best.
        let own = self.local.budget();
        if own > self.local.floor {
            self.shared.publish(own);
        }
    }

    fn budget(&self) -> f64 {
        self.local.budget()
    }
}

/// Parallel top-t (Problem 2). `threads = 0` uses all available cores.
///
/// The returned set matches [`crate::top_t`] up to the choice among
/// `X²`-tied substrings at the boundary.
///
/// Spawns a transient [`WorkerPool`] per call — build an
/// [`crate::Engine`] to reuse one pool across calls.
pub fn top_t_parallel(
    seq: &Sequence,
    model: &Model,
    t: usize,
    threads: usize,
) -> Result<TopTResult> {
    model.check_alphabet(seq)?;
    if t == 0 {
        return Err(Error::InvalidParameter {
            what: "t",
            details: "the top-t set must have t >= 1".into(),
        });
    }
    let pc = PrefixCounts::build(seq);
    let threads = resolve_threads(threads);
    if threads == 1 || pc.n() < 2 {
        return crate::topt::top_t_counts(&pc, model, t);
    }
    let pool = WorkerPool::new(threads);
    Ok(top_t_parallel_scan(&pc, model, t, &pool))
}

/// The pool-borrowing parallel top-t scan (the engine's entry point).
pub(crate) fn top_t_parallel_scan<C: CountSource + Sync>(
    pc: &C,
    model: &Model,
    t: usize,
    pool: &WorkerPool,
) -> TopTResult {
    let n = pc.n();
    let shared = SharedMax::new();

    // Sequential warm-up: seed the shared floor with the suffix's t-th
    // best.
    let warm = warmup_len(n);
    let mut warm_policy = TopTPolicy::new(t);
    let mut stats = scan_policy(
        pc,
        model,
        1,
        usize::MAX,
        n,
        (n - warm..n).rev(),
        &mut warm_policy,
        &mut Vec::new(),
    );
    shared.publish(warm_policy.budget());
    let mut all: Vec<Scored> = warm_policy.into_sorted();

    let remaining = n - warm;
    if remaining > 0 {
        let block = block_len(remaining, pool.threads());
        let num_blocks = remaining.div_ceil(block);
        let results = steal_blocks(pool, num_blocks, |next| {
            let mut policy = SharedTopTPolicy {
                local: TopTPolicy::new(t),
                shared: &shared,
            };
            let mut stats = ScanStats::default();
            let mut scratch = Vec::new();
            while let Some(index) = next() {
                let range = block_range(index, remaining, block);
                stats.merge(&scan_policy(
                    pc,
                    model,
                    1,
                    usize::MAX,
                    n,
                    range.rev(),
                    &mut policy,
                    &mut scratch,
                ));
            }
            (policy.local.into_sorted(), stats)
        });
        for (items, worker_stats) in results {
            stats.merge(&worker_stats);
            all.extend(items);
        }
    }
    all.sort_by(|a, b| scored_cmp(b, a));
    all.truncate(t);
    TopTResult { items: all, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Sequence {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(12345);
        let symbols: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect();
        Sequence::from_symbols(symbols, 2).unwrap()
    }

    #[test]
    fn blocks_cover_everything_exactly_once() {
        for remaining in [1usize, 5, 31, 32, 33, 1000] {
            for threads in [2usize, 3, 8] {
                let block = block_len(remaining, threads);
                let num_blocks = remaining.div_ceil(block);
                let mut covered = vec![false; remaining];
                for index in 0..num_blocks {
                    for i in block_range(index, remaining, block) {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(
                    covered.into_iter().all(|c| c),
                    "remaining={remaining} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn steal_blocks_hands_out_each_index_once() {
        let pool = WorkerPool::new(4);
        let seen = Mutex::new(Vec::new());
        steal_blocks(&pool, 100, |next| {
            while let Some(index) = next() {
                seen.lock().unwrap().push(index);
            }
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pool_survives_many_broadcasts() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.threads(), 3);
        for round in 0..50u64 {
            let hits = AtomicU64::new(0);
            pool.broadcast(&|_slot| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hits.load(Ordering::Relaxed), 3, "round {round}");
        }
    }

    #[test]
    fn pool_propagates_job_panics_without_deadlock() {
        let pool = WorkerPool::new(2);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(&|slot| {
                if slot == 0 {
                    panic!("boom");
                }
            });
        }));
        assert!(boom.is_err(), "broadcast must re-raise worker panics");
        // The pool (and its workers) remain usable afterwards.
        let hits = AtomicU64::new(0);
        pool.broadcast(&|_slot| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn pool_clamps_zero_threads() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = AtomicU64::new(0);
        pool.broadcast(&|slot| {
            assert_eq!(slot, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn parallel_mss_matches_sequential() {
        let model = Model::uniform(2).unwrap();
        for seed in 0..5u64 {
            let seq = pseudo_random(500, seed);
            let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
            for threads in [2usize, 4] {
                let par = find_mss_parallel(&seq, &model, threads).unwrap();
                assert_eq!(par.best, seq_result.best, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_topt_matches_sequential_values() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(300, 42);
        let t = 20;
        let sequential = crate::topt::top_t(&seq, &model, t).unwrap();
        let parallel = top_t_parallel(&seq, &model, t, 4).unwrap();
        assert_eq!(sequential.items.len(), parallel.items.len());
        for (s, p) in sequential.items.iter().zip(&parallel.items) {
            assert!(
                (s.chi_square - p.chi_square).abs() < 1e-9,
                "value mismatch: {} vs {}",
                s.chi_square,
                p.chi_square
            );
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(100, 7);
        let a = find_mss_parallel(&seq, &model, 1).unwrap();
        let b = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn zero_threads_means_auto() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(200, 9);
        let auto = find_mss_parallel(&seq, &model, 0).unwrap();
        let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(auto.best, seq_result.best);
    }

    #[test]
    fn more_threads_than_blocks_is_fine() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(80, 11);
        let par = find_mss_parallel(&seq, &model, 16).unwrap();
        let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(par.best, seq_result.best);
    }

    #[test]
    fn shared_max_monotone() {
        let shared = SharedMax::new();
        assert_eq!(shared.get(), 0.0);
        shared.publish(3.0);
        shared.publish(1.0);
        assert_eq!(shared.get(), 3.0);
        shared.publish(f64::NAN); // ignored
        shared.publish(-1.0); // ignored
        assert_eq!(shared.get(), 3.0);
    }

    #[test]
    fn topt_zero_rejected() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(50, 3);
        assert!(top_t_parallel(&seq, &model, 0, 2).is_err());
    }
}
