//! Parallel mining — chunked start positions over scoped threads.
//!
//! The pruned scan is embarrassingly parallel over start positions; the
//! only shared state is the pruning budget. Workers publish their local
//! best (or top-t floor) through a monotone atomic `f64`; reading a stale
//! (lower) budget is always *safe* — it only weakens pruning, never
//! correctness — so plain relaxed atomics suffice.
//!
//! Start positions are dealt in contiguous chunks from the right (the
//! highest starts have the shortest scans, matching the sequential
//! warm-up order on average).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::counts::PrefixCounts;
use crate::error::{Error, Result};
use crate::model::Model;
use crate::mss::MssResult;
use crate::scan::{scan_policy, MaxPolicy, Policy, ScanStats};
use crate::score::{scored_cmp, Scored};
use crate::seq::Sequence;
use crate::topt::{TopTPolicy, TopTResult};

/// A monotone-max shared f64 (bit-packed in an `AtomicU64`).
///
/// Only non-negative values are published, for which the IEEE-754 bit
/// pattern ordering matches numeric ordering, so `fetch_max` works.
struct SharedMax(AtomicU64);

impl SharedMax {
    fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn publish(&self, value: f64) {
        if value > 0.0 && value.is_finite() {
            self.0.fetch_max(value.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A `MaxPolicy` that reads a shared budget floor and publishes
/// improvements.
struct SharedMaxPolicy<'a> {
    local: MaxPolicy,
    shared: &'a SharedMax,
}

impl Policy for SharedMaxPolicy<'_> {
    fn observe(&mut self, scored: Scored) {
        let before = self.local.budget();
        self.local.observe(scored);
        let after = self.local.budget();
        if after > before {
            self.shared.publish(after);
        }
    }

    fn budget(&self) -> f64 {
        self.local.budget().max(self.shared.get())
    }
}

/// Validate and normalize a worker-count request.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Split `0..n` into at most `parts` contiguous chunks.
fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.min(n).max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut ranges = Vec::with_capacity(parts);
    let mut cursor = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        ranges.push(cursor..cursor + len);
        cursor += len;
    }
    ranges
}

/// Parallel MSS (Problem 1). `threads = 0` uses all available cores.
///
/// Returns exactly the same substring as [`crate::find_mss`] (budget
/// sharing affects only the amount of pruning, never the result; ties
/// resolve deterministically by earliest start).
pub fn find_mss_parallel(seq: &Sequence, model: &Model, threads: usize) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    find_mss_parallel_counts(&pc, model, threads)
}

/// [`find_mss_parallel`] over prebuilt prefix counts.
pub fn find_mss_parallel_counts(
    pc: &PrefixCounts,
    model: &Model,
    threads: usize,
) -> Result<MssResult> {
    let n = pc.n();
    let threads = resolve_threads(threads);
    if threads == 1 || n < 2 {
        return crate::mss::find_mss_counts(pc, model);
    }
    let shared = SharedMax::new();
    let ranges = chunk_ranges(n, threads);
    let results: Vec<(Option<Scored>, ScanStats)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let shared = &shared;
                scope.spawn(move |_| {
                    let mut policy =
                        SharedMaxPolicy { local: MaxPolicy::default(), shared };
                    let stats = scan_policy(pc, model, 1, range.rev(), &mut policy);
                    (policy.local.best, stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope panicked");

    let mut stats = ScanStats::default();
    let mut best: Option<Scored> = None;
    for (candidate, worker_stats) in results {
        stats.merge(&worker_stats);
        if let Some(c) = candidate {
            match &best {
                Some(b) if scored_cmp(&c, b) != std::cmp::Ordering::Greater => {}
                _ => best = Some(c),
            }
        }
    }
    Ok(MssResult { best: best.expect("non-empty sequence"), stats })
}

/// A `TopTPolicy` that shares the t-th-best floor across workers.
struct SharedTopTPolicy<'a> {
    local: TopTPolicy,
    shared: &'a SharedMax,
}

impl Policy for SharedTopTPolicy<'_> {
    fn observe(&mut self, scored: Scored) {
        self.local.observe(scored);
        self.local.floor = self.shared.get();
        // Publish our own t-th best: a lower bound on the global t-th best.
        let own = self.local.budget();
        if own > self.local.floor {
            self.shared.publish(own);
        }
    }

    fn budget(&self) -> f64 {
        self.local.budget()
    }
}

/// Parallel top-t (Problem 2). `threads = 0` uses all available cores.
///
/// The returned set matches [`crate::top_t`] up to the choice among
/// `X²`-tied substrings at the boundary.
pub fn top_t_parallel(
    seq: &Sequence,
    model: &Model,
    t: usize,
    threads: usize,
) -> Result<TopTResult> {
    model.check_alphabet(seq)?;
    if t == 0 {
        return Err(Error::InvalidParameter {
            what: "t",
            details: "the top-t set must have t >= 1".into(),
        });
    }
    let pc = PrefixCounts::build(seq);
    let n = pc.n();
    let threads = resolve_threads(threads);
    if threads == 1 || n < 2 {
        return crate::topt::top_t_counts(&pc, model, t);
    }
    let shared = SharedMax::new();
    let ranges = chunk_ranges(n, threads);
    let pc_ref = &pc;
    let results: Vec<(Vec<Scored>, ScanStats)> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let shared = &shared;
                scope.spawn(move |_| {
                    let mut policy =
                        SharedTopTPolicy { local: TopTPolicy::new(t), shared };
                    let stats = scan_policy(pc_ref, model, 1, range.rev(), &mut policy);
                    (policy.local.into_sorted(), stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
    .expect("scope panicked");

    let mut stats = ScanStats::default();
    let mut all: Vec<Scored> = Vec::new();
    for (items, worker_stats) in results {
        stats.merge(&worker_stats);
        all.extend(items);
    }
    all.sort_by(|a, b| scored_cmp(b, a));
    all.truncate(t);
    Ok(TopTResult { items: all, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Sequence {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(12345);
        let symbols: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect();
        Sequence::from_symbols(symbols, 2).unwrap()
    }

    #[test]
    fn chunking_covers_everything() {
        for n in [1usize, 2, 7, 100] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = chunk_ranges(n, parts);
                let mut covered = vec![false; n];
                for r in &ranges {
                    for i in r.clone() {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(covered.into_iter().all(|c| c), "n={n} parts={parts}");
            }
        }
    }

    #[test]
    fn parallel_mss_matches_sequential() {
        let model = Model::uniform(2).unwrap();
        for seed in 0..5u64 {
            let seq = pseudo_random(500, seed);
            let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
            for threads in [2usize, 4] {
                let par = find_mss_parallel(&seq, &model, threads).unwrap();
                assert_eq!(par.best, seq_result.best, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_topt_matches_sequential_values() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(300, 42);
        let t = 20;
        let sequential = crate::topt::top_t(&seq, &model, t).unwrap();
        let parallel = top_t_parallel(&seq, &model, t, 4).unwrap();
        assert_eq!(sequential.items.len(), parallel.items.len());
        for (s, p) in sequential.items.iter().zip(&parallel.items) {
            assert!(
                (s.chi_square - p.chi_square).abs() < 1e-9,
                "value mismatch: {} vs {}",
                s.chi_square,
                p.chi_square
            );
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(100, 7);
        let a = find_mss_parallel(&seq, &model, 1).unwrap();
        let b = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn zero_threads_means_auto() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(200, 9);
        let auto = find_mss_parallel(&seq, &model, 0).unwrap();
        let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(auto.best, seq_result.best);
    }

    #[test]
    fn shared_max_monotone() {
        let shared = SharedMax::new();
        assert_eq!(shared.get(), 0.0);
        shared.publish(3.0);
        shared.publish(1.0);
        assert_eq!(shared.get(), 3.0);
        shared.publish(f64::NAN); // ignored
        shared.publish(-1.0); // ignored
        assert_eq!(shared.get(), 3.0);
    }

    #[test]
    fn topt_zero_rejected() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(50, 3);
        assert!(top_t_parallel(&seq, &model, 0, 2).is_err());
    }
}
