//! Parallel mining — work-stealing over fine-grained start blocks.
//!
//! The pruned scan is embarrassingly parallel over start positions; the
//! only shared state is the pruning budget. Workers publish their local
//! best (or top-t floor) through a monotone atomic `f64`; reading a stale
//! (lower) budget is always *safe* — it only weakens pruning, never
//! correctness — so plain relaxed atomics suffice.
//!
//! # Scheduling
//!
//! Static contiguous chunking (one range per worker) is badly
//! load-imbalanced: low start positions own the longest end-scans, so the
//! worker holding the prefix chunk finishes last while the rest idle.
//! Instead, start positions are divided into fine-grained *blocks* dealt
//! right-to-left from a shared atomic cursor: each worker grabs the next
//! block when it finishes its current one, so imbalance is bounded by a
//! single block regardless of how skewed the per-start costs are.
//!
//! # Warm-up
//!
//! Before fan-out, a cheap sequential pass scans the highest start
//! positions (the shortest suffix scans) and publishes the resulting
//! budget. Workers therefore prune from their very first substring
//! instead of each rediscovering a budget from zero — without it, every
//! worker's first block runs essentially unpruned.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::counts::PrefixCounts;
use crate::error::{Error, Result};
use crate::model::Model;
use crate::mss::MssResult;
use crate::scan::{scan_policy, MaxPolicy, Policy, ScanStats};
use crate::score::{scored_cmp, Scored};
use crate::seq::Sequence;
use crate::topt::{TopTPolicy, TopTResult};

/// A monotone-max shared f64 (bit-packed in an `AtomicU64`).
///
/// Only non-negative values are published, for which the IEEE-754 bit
/// pattern ordering matches numeric ordering, so `fetch_max` works.
struct SharedMax(AtomicU64);

impl SharedMax {
    fn new() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }

    fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn publish(&self, value: f64) {
        if value > 0.0 && value.is_finite() {
            self.0.fetch_max(value.to_bits(), Ordering::Relaxed);
        }
    }
}

/// A `MaxPolicy` that reads a shared budget floor and publishes
/// improvements.
struct SharedMaxPolicy<'a> {
    local: MaxPolicy,
    shared: &'a SharedMax,
}

impl Policy for SharedMaxPolicy<'_> {
    fn observe(&mut self, scored: Scored) {
        let before = self.local.budget();
        self.local.observe(scored);
        let after = self.local.budget();
        if after > before {
            self.shared.publish(after);
        }
    }

    fn budget(&self) -> f64 {
        self.local.budget().max(self.shared.get())
    }
}

/// Validate and normalize a worker-count request.
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        threads
    }
}

/// Number of trailing start positions the sequential warm-up pass covers.
fn warmup_len(n: usize) -> usize {
    // Enough suffix for the budget to approach its 2·ln n asymptote, small
    // enough to stay negligible next to the parallel region.
    (n / 32).clamp(64, 4096).min(n)
}

/// Block size for the work-stealing deal over `remaining` start positions.
fn block_len(remaining: usize, threads: usize) -> usize {
    // Aim for ~16 blocks per worker so steal imbalance stays small, but
    // keep blocks big enough that the cursor is not contended.
    (remaining / (threads * 16).max(1)).clamp(32, 8192)
}

/// The shared deal: block `index` (0-based) covers starts
/// `[hi − block, hi)` counted down from `remaining`, so the cheap (high,
/// short-scan) blocks go out first — matching the sequential right-to-left
/// warm-up order on average.
fn block_range(index: usize, remaining: usize, block: usize) -> std::ops::Range<usize> {
    let hi = remaining - (index * block).min(remaining);
    let lo = hi.saturating_sub(block);
    lo..hi
}

/// Run `worker` on `threads` scoped threads pulling block indices from a
/// shared cursor, and collect each worker's result.
fn steal_blocks<T: Send>(
    threads: usize,
    num_blocks: usize,
    worker: impl Fn(&mut dyn FnMut() -> Option<usize>) -> T + Sync,
) -> Vec<T> {
    // Surplus workers would only pop an empty cursor and exit.
    let threads = threads.min(num_blocks).max(1);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                let worker = &worker;
                scope.spawn(move || {
                    let mut next = || {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        (index < num_blocks).then_some(index)
                    };
                    worker(&mut next)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
}

/// Parallel MSS (Problem 1). `threads = 0` uses all available cores.
///
/// Returns a substring with **bit-identical** `X²` to
/// [`crate::find_mss`]'s result — budget sharing affects only the amount
/// of pruning, never the maximal value. When several substrings tie at
/// the maximum bit-for-bit, the reported *position* may differ from the
/// sequential scan's (either scan may prune a tied extension; see
/// `DESIGN.md` §3), with ties at the merge resolving by earliest start.
pub fn find_mss_parallel(seq: &Sequence, model: &Model, threads: usize) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    find_mss_parallel_counts(&pc, model, threads)
}

/// [`find_mss_parallel`] over prebuilt prefix counts.
pub fn find_mss_parallel_counts(
    pc: &PrefixCounts,
    model: &Model,
    threads: usize,
) -> Result<MssResult> {
    let n = pc.n();
    let threads = resolve_threads(threads);
    if threads == 1 || n < 2 {
        return crate::mss::find_mss_counts(pc, model);
    }
    let shared = SharedMax::new();

    // Sequential warm-up: seed the shared budget on the cheap suffix.
    let warm = warmup_len(n);
    let mut warm_policy = MaxPolicy::default();
    let mut stats = scan_policy(
        pc,
        model,
        1,
        usize::MAX,
        (n - warm..n).rev(),
        &mut warm_policy,
    );
    if let Some(b) = warm_policy.best {
        shared.publish(b.chi_square);
    }

    let remaining = n - warm;
    let mut best = warm_policy.best;
    if remaining > 0 {
        let block = block_len(remaining, threads);
        let num_blocks = remaining.div_ceil(block);
        let results = steal_blocks(threads, num_blocks, |next| {
            let mut policy = SharedMaxPolicy {
                local: MaxPolicy::default(),
                shared: &shared,
            };
            let mut stats = ScanStats::default();
            while let Some(index) = next() {
                let range = block_range(index, remaining, block);
                stats.merge(&scan_policy(
                    pc,
                    model,
                    1,
                    usize::MAX,
                    range.rev(),
                    &mut policy,
                ));
            }
            (policy.local.best, stats)
        });
        for (candidate, worker_stats) in results {
            stats.merge(&worker_stats);
            if let Some(c) = candidate {
                match &best {
                    Some(b) if scored_cmp(&c, b) != std::cmp::Ordering::Greater => {}
                    _ => best = Some(c),
                }
            }
        }
    }
    Ok(MssResult {
        best: best.expect("non-empty sequence"),
        stats,
    })
}

/// A `TopTPolicy` that shares the t-th-best floor across workers.
struct SharedTopTPolicy<'a> {
    local: TopTPolicy,
    shared: &'a SharedMax,
}

impl Policy for SharedTopTPolicy<'_> {
    fn observe(&mut self, scored: Scored) {
        self.local.observe(scored);
        self.local.floor = self.shared.get();
        // Publish our own t-th best: a lower bound on the global t-th best.
        let own = self.local.budget();
        if own > self.local.floor {
            self.shared.publish(own);
        }
    }

    fn budget(&self) -> f64 {
        self.local.budget()
    }
}

/// Parallel top-t (Problem 2). `threads = 0` uses all available cores.
///
/// The returned set matches [`crate::top_t`] up to the choice among
/// `X²`-tied substrings at the boundary.
pub fn top_t_parallel(
    seq: &Sequence,
    model: &Model,
    t: usize,
    threads: usize,
) -> Result<TopTResult> {
    model.check_alphabet(seq)?;
    if t == 0 {
        return Err(Error::InvalidParameter {
            what: "t",
            details: "the top-t set must have t >= 1".into(),
        });
    }
    let pc = PrefixCounts::build(seq);
    let n = pc.n();
    let threads = resolve_threads(threads);
    if threads == 1 || n < 2 {
        return crate::topt::top_t_counts(&pc, model, t);
    }
    let shared = SharedMax::new();

    // Sequential warm-up: seed the shared floor with the suffix's t-th
    // best.
    let warm = warmup_len(n);
    let mut warm_policy = TopTPolicy::new(t);
    let mut stats = scan_policy(
        &pc,
        model,
        1,
        usize::MAX,
        (n - warm..n).rev(),
        &mut warm_policy,
    );
    shared.publish(warm_policy.budget());
    let mut all: Vec<Scored> = warm_policy.into_sorted();

    let remaining = n - warm;
    if remaining > 0 {
        let block = block_len(remaining, threads);
        let num_blocks = remaining.div_ceil(block);
        let pc_ref = &pc;
        let results = steal_blocks(threads, num_blocks, |next| {
            let mut policy = SharedTopTPolicy {
                local: TopTPolicy::new(t),
                shared: &shared,
            };
            let mut stats = ScanStats::default();
            while let Some(index) = next() {
                let range = block_range(index, remaining, block);
                stats.merge(&scan_policy(
                    pc_ref,
                    model,
                    1,
                    usize::MAX,
                    range.rev(),
                    &mut policy,
                ));
            }
            (policy.local.into_sorted(), stats)
        });
        for (items, worker_stats) in results {
            stats.merge(&worker_stats);
            all.extend(items);
        }
    }
    all.sort_by(|a, b| scored_cmp(b, a));
    all.truncate(t);
    Ok(TopTResult { items: all, stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(n: usize, seed: u64) -> Sequence {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(12345);
        let symbols: Vec<u8> = (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 1) as u8
            })
            .collect();
        Sequence::from_symbols(symbols, 2).unwrap()
    }

    #[test]
    fn blocks_cover_everything_exactly_once() {
        for remaining in [1usize, 5, 31, 32, 33, 1000] {
            for threads in [2usize, 3, 8] {
                let block = block_len(remaining, threads);
                let num_blocks = remaining.div_ceil(block);
                let mut covered = vec![false; remaining];
                for index in 0..num_blocks {
                    for i in block_range(index, remaining, block) {
                        assert!(!covered[i], "overlap at {i}");
                        covered[i] = true;
                    }
                }
                assert!(
                    covered.into_iter().all(|c| c),
                    "remaining={remaining} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn steal_blocks_hands_out_each_index_once() {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        steal_blocks(4, 100, |next| {
            while let Some(index) = next() {
                seen.lock().unwrap().push(index);
            }
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_mss_matches_sequential() {
        let model = Model::uniform(2).unwrap();
        for seed in 0..5u64 {
            let seq = pseudo_random(500, seed);
            let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
            for threads in [2usize, 4] {
                let par = find_mss_parallel(&seq, &model, threads).unwrap();
                assert_eq!(par.best, seq_result.best, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_topt_matches_sequential_values() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(300, 42);
        let t = 20;
        let sequential = crate::topt::top_t(&seq, &model, t).unwrap();
        let parallel = top_t_parallel(&seq, &model, t, 4).unwrap();
        assert_eq!(sequential.items.len(), parallel.items.len());
        for (s, p) in sequential.items.iter().zip(&parallel.items) {
            assert!(
                (s.chi_square - p.chi_square).abs() < 1e-9,
                "value mismatch: {} vs {}",
                s.chi_square,
                p.chi_square
            );
        }
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(100, 7);
        let a = find_mss_parallel(&seq, &model, 1).unwrap();
        let b = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn zero_threads_means_auto() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(200, 9);
        let auto = find_mss_parallel(&seq, &model, 0).unwrap();
        let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(auto.best, seq_result.best);
    }

    #[test]
    fn more_threads_than_blocks_is_fine() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(80, 11);
        let par = find_mss_parallel(&seq, &model, 16).unwrap();
        let seq_result = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(par.best, seq_result.best);
    }

    #[test]
    fn shared_max_monotone() {
        let shared = SharedMax::new();
        assert_eq!(shared.get(), 0.0);
        shared.publish(3.0);
        shared.publish(1.0);
        assert_eq!(shared.get(), 3.0);
        shared.publish(f64::NAN); // ignored
        shared.publish(-1.0); // ignored
        assert_eq!(shared.get(), 3.0);
    }

    #[test]
    fn topt_zero_rejected() {
        let model = Model::uniform(2).unwrap();
        let seq = pseudo_random(50, 3);
        assert!(top_t_parallel(&seq, &model, 0, 2).is_err());
    }
}
