//! The reusable query engine — index once, query many.
//!
//! Every problem variant of the paper shares all of its heavy state: the
//! `O(k·n)` prefix-count table, the model's precomputed skip-solver
//! tables, and the scan's scratch buffers. The one-shot functions
//! ([`crate::find_mss`] and friends) rebuild that state on every call,
//! which a service answering many queries over the same corpus cannot
//! afford. [`Engine`] is the index-once/query-many split: built once from
//! a `(Sequence, Model)` pair, it owns the count index, the model
//! tables, a reusable scratch arena and a lazily-spawned persistent
//! [`WorkerPool`], then serves every query variant — plus
//! **range-restricted** forms (`mss_in(l..r)` etc., the building block
//! for sharded serving) — without re-deriving any of it.
//!
//! # Count-index layouts
//!
//! The index is a [`CountsIndex`] in one of two layouts: the flat
//! [`PrefixCounts`] table (`4k` bytes per position) or the two-level
//! [`crate::BlockedCounts`] table (`~k` bytes per position, bit-identical
//! answers). [`Engine::new`] picks via [`CountsLayout::Auto`] — flat
//! while the table fits cache-scale footprints, blocked above
//! [`crate::counts::AUTO_BLOCKED_THRESHOLD_BYTES`] — and
//! [`Engine::with_layout`] / [`Engine::with_options`] force a layout.
//! Every query dispatches on the layout **once per scan call** and runs a
//! kernel monomorphized for the concrete index, so the choice never costs
//! a branch in the hot loop.
//!
//! # Amortization layers
//!
//! | Layer | One-shot cost | Engine cost |
//! |---|---|---|
//! | Prefix counts | `O(k·n)` per call | built once |
//! | Model tables | per `Model` (cached there) | owned once |
//! | Scan scratch | one allocation per call | arena, recycled |
//! | Worker threads | spawned per parallel call | persistent pool |
//! | Repeated queries | full scan every time | result cache hit |
//!
//! The result cache memoizes completed answers keyed by `(variant,
//! range, parameters)`: a production service replaying the same query —
//! the dominant pattern behind a traffic-heavy endpoint — pays the scan
//! once and `O(1)` afterwards. Memoization is byte-bounded: oversized
//! threshold sets are never cached ([`CACHE_ITEM_LIMIT`]), and admission
//! stops at [`CACHE_ENTRY_LIMIT`] answers or [`CACHE_TOTAL_ITEM_LIMIT`]
//! total items, whichever comes first.
//!
//! # Exactness
//!
//! Engine-served results are **bit-identical** to the one-shot API: both
//! run the same kernels over the same table, and a range-restricted query
//! visits exactly the substring stream the one-shot scan visits on the
//! sliced sequence (the kernels are position-translation-invariant — see
//! `DESIGN.md` §7). The one-shot functions are thin wrappers over the
//! same internals in this module.
//!
//! # Examples
//!
//! ```
//! use sigstr_core::{Engine, Model, Sequence};
//!
//! let seq = Sequence::from_symbols(vec![0, 1, 0, 1, 1, 1, 1, 1, 0, 0], 2).unwrap();
//! let engine = Engine::new(&seq, Model::uniform(2).unwrap()).unwrap();
//!
//! // Many queries, one index.
//! let best = engine.mss().unwrap().best;
//! let top = engine.top_t(3).unwrap();
//! let long = engine.mss_min_length(4).unwrap();
//! // Range-restricted: the MSS of S[0..5) alone (a shard's slice).
//! let shard = engine.mss_in(0..5).unwrap();
//! assert!(shard.best.start < 5 && shard.best.end <= 5);
//! assert_eq!(top.items[0], best);
//! assert!(long.best.len() > 4);
//! ```

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::counts::{index_delegate, CountSource, CountsIndex, CountsLayout, PrefixCounts};
use crate::error::{Error, Result};
use crate::model::Model;
use crate::mss::MssResult;
use crate::parallel::{resolve_threads, WorkerPool};
use crate::scan::{scan_policy, MaxPolicy, Policy, ScanStats};
use crate::score::Scored;
use crate::seq::Sequence;
use crate::threshold::ThresholdResult;
use crate::topt::{TopTPolicy, TopTResult};

/// Results with more than this many items (large threshold sets) are
/// served but not cached — a small `α₀` makes the answer `Θ(n²)` and the
/// cache would silently double the engine's memory footprint.
pub const CACHE_ITEM_LIMIT: usize = 65_536;

/// Maximum number of memoized answers per engine. The cache stops
/// admitting new entries beyond this point (no eviction — the working set
/// of a serving shard is small and stable).
pub const CACHE_ENTRY_LIMIT: usize = 1_024;

/// Maximum total [`Scored`] items across *all* memoized answers per
/// engine (~10 MB). The per-answer and per-entry limits alone would
/// compose to gigabytes of admissible threshold sets; this is the actual
/// byte-scale bound.
pub const CACHE_TOTAL_ITEM_LIMIT: usize = 262_144;

// ---------------------------------------------------------------------------
// Range-restricted scan internals (shared by Engine and the one-shot API).
// ---------------------------------------------------------------------------

/// Problem 1 over `S[range)`: the caller guarantees a validated non-empty
/// range.
pub(crate) fn mss_scan<C: CountSource>(
    pc: &C,
    model: &Model,
    range: Range<usize>,
    scratch: &mut Vec<u32>,
) -> MssResult {
    let (l, r) = (range.start, range.end);
    debug_assert!(l < r && r <= pc.n());
    let mut policy = MaxPolicy::default();
    let stats = scan_policy(
        pc,
        model,
        1,
        usize::MAX,
        r,
        (l..r).rev(),
        &mut policy,
        scratch,
    );
    let best = policy
        .best
        .expect("non-empty range always yields a best substring");
    MssResult { best, stats }
}

/// Problem 2 over `S[range)`.
pub(crate) fn top_t_scan<C: CountSource>(
    pc: &C,
    model: &Model,
    range: Range<usize>,
    t: usize,
    scratch: &mut Vec<u32>,
) -> Result<TopTResult> {
    if t == 0 {
        return Err(Error::InvalidParameter {
            what: "t",
            details: "the top-t set must have t >= 1".into(),
        });
    }
    let (l, r) = (range.start, range.end);
    debug_assert!(l < r && r <= pc.n());
    let mut policy = TopTPolicy::new(t);
    let stats = scan_policy(
        pc,
        model,
        1,
        usize::MAX,
        r,
        (l..r).rev(),
        &mut policy,
        scratch,
    );
    Ok(TopTResult {
        items: policy.into_sorted(),
        stats,
    })
}

/// Constant-budget collector for Problem 3.
struct CollectPolicy<'f> {
    alpha: f64,
    sink: &'f mut dyn FnMut(Scored),
}

impl Policy for CollectPolicy<'_> {
    fn observe(&mut self, scored: Scored) {
        if scored.chi_square > self.alpha {
            (self.sink)(scored);
        }
    }

    fn budget(&self) -> f64 {
        self.alpha
    }
}

/// Problem 3 over `S[range)`, streaming each qualifying substring into
/// `visit` (order unspecified — the kernel interleaves start lanes).
pub(crate) fn threshold_scan<C: CountSource>(
    pc: &C,
    model: &Model,
    range: Range<usize>,
    alpha: f64,
    mut visit: impl FnMut(Scored),
    scratch: &mut Vec<u32>,
) -> Result<ScanStats> {
    if !alpha.is_finite() || alpha < 0.0 {
        return Err(Error::InvalidParameter {
            what: "alpha",
            details: format!("threshold must be finite and non-negative, got {alpha}"),
        });
    }
    let (l, r) = (range.start, range.end);
    debug_assert!(l < r && r <= pc.n());
    let mut sink = |s: Scored| visit(s);
    let mut policy = CollectPolicy {
        alpha,
        sink: &mut sink,
    };
    Ok(scan_policy(
        pc,
        model,
        1,
        usize::MAX,
        r,
        (l..r).rev(),
        &mut policy,
        scratch,
    ))
}

/// Problem 3 over `S[range)`, collected into the canonical order
/// (starts right-to-left, ends ascending within a start).
pub(crate) fn threshold_collect_scan<C: CountSource>(
    pc: &C,
    model: &Model,
    range: Range<usize>,
    alpha: f64,
    scratch: &mut Vec<u32>,
) -> Result<ThresholdResult> {
    let mut items = Vec::new();
    let stats = threshold_scan(pc, model, range, alpha, |s| items.push(s), scratch)?;
    items.sort_by(|a, b| b.start.cmp(&a.start).then_with(|| a.end.cmp(&b.end)));
    Ok(ThresholdResult { items, stats })
}

/// Problem 4 over `S[range)`: MSS among substrings strictly longer than
/// `gamma0`.
pub(crate) fn min_length_scan<C: CountSource>(
    pc: &C,
    model: &Model,
    range: Range<usize>,
    gamma0: usize,
    scratch: &mut Vec<u32>,
) -> Result<MssResult> {
    let (l, r) = (range.start, range.end);
    debug_assert!(l < r && r <= pc.n());
    let n = r - l;
    let min_len = gamma0 + 1;
    if min_len > n {
        return Err(Error::InvalidParameter {
            what: "gamma0",
            details: format!("no substring of length > {gamma0} exists in a string of length {n}"),
        });
    }
    let mut policy = MaxPolicy::default();
    let stats = scan_policy(
        pc,
        model,
        min_len,
        usize::MAX,
        r,
        (l..=(r - min_len)).rev(),
        &mut policy,
        scratch,
    );
    let best = policy
        .best
        .expect("at least one candidate substring exists");
    Ok(MssResult { best, stats })
}

/// Window-constrained MSS over `S[range)`: substrings of length at most
/// `w`.
pub(crate) fn max_length_scan<C: CountSource>(
    pc: &C,
    model: &Model,
    range: Range<usize>,
    w: usize,
    scratch: &mut Vec<u32>,
) -> Result<MssResult> {
    if w == 0 {
        return Err(Error::InvalidParameter {
            what: "w",
            details: "the window must have positive length".into(),
        });
    }
    let (l, r) = (range.start, range.end);
    debug_assert!(l < r && r <= pc.n());
    let mut policy = MaxPolicy::default();
    let stats = scan_policy(pc, model, 1, w, r, (l..r).rev(), &mut policy, scratch);
    Ok(MssResult {
        best: policy.best.expect("non-empty range"),
        stats,
    })
}

// ---------------------------------------------------------------------------
// Scratch arena.
// ---------------------------------------------------------------------------

/// A small pool of recycled count buffers: sequential queries reuse one
/// buffer without allocating, and concurrent batch workers each borrow
/// their own.
///
/// Retention is bounded by `workers + 1` buffers: that is the maximum
/// concurrency the engine itself creates (its pool's workers plus the
/// calling thread), so anything beyond it is a transient spike from
/// outside callers — those buffers are dropped on release instead of
/// accumulating for the engine's lifetime under Batch load.
#[derive(Debug)]
struct ScratchArena {
    buffers: Mutex<Vec<Vec<u32>>>,
    /// Maximum buffers retained (`workers + 1`).
    retain: usize,
}

impl ScratchArena {
    fn new(retain: usize) -> Self {
        Self {
            buffers: Mutex::new(Vec::new()),
            retain,
        }
    }

    fn acquire(&self) -> Vec<u32> {
        self.buffers
            .lock()
            .expect("arena poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn release(&self, buf: Vec<u32>) {
        let mut buffers = self.buffers.lock().expect("arena poisoned");
        if buffers.len() < self.retain {
            buffers.push(buf);
        }
    }
}

// ---------------------------------------------------------------------------
// Query / Answer types (the batch driver's vocabulary).
// ---------------------------------------------------------------------------

/// Which problem variant a [`Query`] asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum QueryKind {
    /// Problem 1: the most significant substring.
    Mss,
    /// Problem 2: the top-t substrings.
    TopT(usize),
    /// Problem 3: all substrings with `X² > α₀`.
    AboveThreshold(f64),
    /// Problem 4: MSS among substrings longer than `Γ₀`.
    MssMinLength(usize),
    /// Window-constrained MSS: substrings of length at most `W`.
    MssMaxLength(usize),
}

/// A self-contained query: a problem variant plus an optional range
/// restriction `[l, r)` (absolute positions; `None` = the whole
/// sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Query {
    /// The problem variant.
    pub kind: QueryKind,
    /// Optional range restriction `(l, r)`, half-open.
    pub range: Option<(usize, usize)>,
}

impl Query {
    /// Problem 1 over the whole sequence.
    pub fn mss() -> Self {
        Self {
            kind: QueryKind::Mss,
            range: None,
        }
    }

    /// Problem 2 over the whole sequence.
    pub fn top_t(t: usize) -> Self {
        Self {
            kind: QueryKind::TopT(t),
            range: None,
        }
    }

    /// Problem 3 over the whole sequence.
    pub fn above_threshold(alpha: f64) -> Self {
        Self {
            kind: QueryKind::AboveThreshold(alpha),
            range: None,
        }
    }

    /// Problem 4 over the whole sequence.
    pub fn mss_min_length(gamma0: usize) -> Self {
        Self {
            kind: QueryKind::MssMinLength(gamma0),
            range: None,
        }
    }

    /// Window-constrained MSS over the whole sequence.
    pub fn mss_max_length(w: usize) -> Self {
        Self {
            kind: QueryKind::MssMaxLength(w),
            range: None,
        }
    }

    /// Restrict this query to the half-open range `l..r`.
    pub fn in_range(mut self, l: usize, r: usize) -> Self {
        self.range = Some((l, r));
        self
    }
}

/// The answer to a [`Query`]: whichever result shape the variant
/// produces.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Answer {
    /// A single best substring (`Mss`, `MssMinLength`, `MssMaxLength`).
    Best(MssResult),
    /// A ranked list (`TopT`).
    Top(TopTResult),
    /// A threshold set (`AboveThreshold`).
    Threshold(ThresholdResult),
}

impl Answer {
    /// The single winning substring, when the answer has one.
    pub fn best(&self) -> Option<&Scored> {
        match self {
            Answer::Best(r) => Some(&r.best),
            Answer::Top(r) => r.items.first(),
            Answer::Threshold(_) => None,
        }
    }

    /// All substrings the answer carries, in its native order.
    pub fn items(&self) -> &[Scored] {
        match self {
            Answer::Best(r) => std::slice::from_ref(&r.best),
            Answer::Top(r) => &r.items,
            Answer::Threshold(r) => &r.items,
        }
    }

    /// The scan instrumentation of whichever scan produced the answer.
    pub fn stats(&self) -> ScanStats {
        match self {
            Answer::Best(r) => r.stats,
            Answer::Top(r) => r.stats,
            Answer::Threshold(r) => r.stats,
        }
    }
}

/// The memoized answers plus the running total of items they hold (the
/// byte-scale admission bound).
#[derive(Debug, Default)]
struct ResultCache {
    map: HashMap<CacheKey, Answer>,
    items: usize,
}

/// Memoization key: the variant, the (explicit) range, and the
/// parameters. `f64` thresholds key by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum CacheKey {
    Mss { l: usize, r: usize },
    TopT { l: usize, r: usize, t: usize },
    Threshold { l: usize, r: usize, alpha: u64 },
    MinLen { l: usize, r: usize, gamma0: usize },
    MaxLen { l: usize, r: usize, w: usize },
}

// ---------------------------------------------------------------------------
// Mapped-snapshot state (the zero-copy loader's deferred validation).
// ---------------------------------------------------------------------------

/// One mapped section awaiting its first-touch checksum verification.
#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
#[derive(Debug)]
pub(crate) struct LazySection {
    /// Section name (for error messages).
    pub(crate) name: &'static str,
    /// Byte offset inside the mapping.
    pub(crate) offset: usize,
    /// Payload length in bytes.
    pub(crate) len: usize,
    /// Expected [`crate::snapshot::checksum64`] of the payload bytes.
    pub(crate) checksum: u64,
}

/// What a mmap-loaded engine carries on top of its index: the mapping
/// itself (keeping it alive alongside the `Store` views), and the
/// deferred-validation state. The zero-copy loader validates structure
/// eagerly but defers the payload checksums and the symbol-range scan to
/// the engine's **first query** — load stays `O(header)`, and queries
/// can start before the index is fully paged in (the verification pass
/// itself is what faults the sections in, sequentially, at page-cache
/// speed).
#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
#[derive(Debug)]
pub(crate) struct MappedState {
    map: std::sync::Arc<crate::mmap::MmapFile>,
    sections: Vec<LazySection>,
    /// Set once the deferred pass has succeeded; cleared by
    /// [`Engine::discard_resident`].
    verified: std::sync::atomic::AtomicBool,
    /// Serializes the deferred pass so concurrent first queries don't
    /// duplicate the work (double-checked around this lock).
    verify_lock: Mutex<()>,
    /// How many deferred passes have run (re-armed by discard).
    verifications: AtomicU64,
}

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
impl MappedState {
    pub(crate) fn new(
        map: std::sync::Arc<crate::mmap::MmapFile>,
        sections: Vec<LazySection>,
    ) -> Self {
        Self {
            map,
            sections,
            verified: std::sync::atomic::AtomicBool::new(false),
            verify_lock: Mutex::new(()),
            verifications: AtomicU64::new(0),
        }
    }
}

// ---------------------------------------------------------------------------
// The engine.
// ---------------------------------------------------------------------------

/// A reusable query engine over one `(Sequence, Model)` pair.
///
/// See the [module docs](self) for the amortization story. All query
/// methods take `&self`; the engine is `Sync`, so one instance can serve
/// concurrent callers (each query still runs on the calling thread unless
/// it is one of the `_parallel` variants, which borrow the engine's
/// persistent worker pool).
#[derive(Debug)]
pub struct Engine {
    index: CountsIndex,
    model: Model,
    /// Resolved worker count for the lazily-built pool.
    threads: usize,
    pool: OnceLock<WorkerPool>,
    scratch: ScratchArena,
    cache: Mutex<ResultCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Present iff the index borrows its sections from a snapshot
    /// mapping (the zero-copy loader).
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    mapped: Option<MappedState>,
}

impl Engine {
    /// Build an engine from a sequence and model (auto-sized worker pool,
    /// spawned only when a `_parallel` query first needs it; count-index
    /// layout picked by [`CountsLayout::Auto`] — flat while small, the
    /// two-level blocked table once the flat footprint would fall out of
    /// cache).
    ///
    /// # Errors
    ///
    /// Fails when the model and sequence alphabets disagree.
    pub fn new(seq: &Sequence, model: Model) -> Result<Self> {
        Self::with_options(seq, model, 0, CountsLayout::Auto)
    }

    /// [`Engine::new`] with an explicit worker count for the parallel
    /// queries (`0` = all available cores). The pool is sized once per
    /// engine.
    pub fn with_threads(seq: &Sequence, model: Model, threads: usize) -> Result<Self> {
        Self::with_options(seq, model, threads, CountsLayout::Auto)
    }

    /// [`Engine::new`] with an explicit count-index layout.
    pub fn with_layout(seq: &Sequence, model: Model, layout: CountsLayout) -> Result<Self> {
        Self::with_options(seq, model, 0, layout)
    }

    /// Fully explicit build: worker count (`0` = all cores) and
    /// count-index layout ([`CountsLayout::Auto`] resolves by footprint).
    ///
    /// # Errors
    ///
    /// Fails when the model and sequence alphabets disagree.
    pub fn with_options(
        seq: &Sequence,
        model: Model,
        threads: usize,
        layout: CountsLayout,
    ) -> Result<Self> {
        model.check_alphabet(seq)?;
        Ok(Self::from_parts(
            CountsIndex::build(seq, layout),
            model,
            threads,
        ))
    }

    /// Build an engine from prebuilt flat prefix counts.
    ///
    /// # Errors
    ///
    /// Fails when the table and model alphabets disagree.
    pub fn from_counts(pc: PrefixCounts, model: Model) -> Result<Self> {
        Self::from_index(CountsIndex::Flat(pc), model)
    }

    /// Build an engine from a prebuilt count index in either layout
    /// (e.g. a frozen [`crate::GrowableCounts`]).
    ///
    /// # Errors
    ///
    /// Fails when the index and model alphabets disagree.
    pub fn from_index(index: CountsIndex, model: Model) -> Result<Self> {
        if index.k() != model.k() {
            return Err(Error::AlphabetMismatch {
                model_k: model.k(),
                seq_k: index.k(),
            });
        }
        Ok(Self::from_parts(index, model, 0))
    }

    fn from_parts(index: CountsIndex, model: Model, threads: usize) -> Self {
        let threads = resolve_threads(threads);
        Self {
            index,
            model,
            threads,
            pool: OnceLock::new(),
            // The engine never has more than `workers + 1` scans in
            // flight on its own behalf; retaining more would only grow
            // unboundedly under concurrent Batch callers.
            scratch: ScratchArena::new(threads + 1),
            cache: Mutex::new(ResultCache::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            mapped: None,
        }
    }

    /// Attach the zero-copy loader's mapped state (called once, right
    /// after construction, by `snapshot::load_snapshot_mmap`).
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    pub(crate) fn attach_mapped(&mut self, state: MappedState) {
        self.mapped = Some(state);
    }

    /// Run the deferred validation of a mapped snapshot, once: checksum
    /// every mapped section against the section table and scan the
    /// symbol string for out-of-alphabet bytes — exactly the checks the
    /// bulk-read loader performs eagerly, so a mapped engine that starts
    /// answering is held to the same integrity bar. Double-checked
    /// around a lock; after success every later call is one relaxed
    /// atomic load. Owned engines return immediately.
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    fn ensure_verified(&self) -> Result<()> {
        let Some(state) = &self.mapped else {
            return Ok(());
        };
        if state.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        let _guard = state.verify_lock.lock().expect("verify lock poisoned");
        if state.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        let bytes = state.map.bytes();
        for section in &state.sections {
            let payload = &bytes[section.offset..section.offset + section.len];
            if crate::snapshot::checksum64(payload) != section.checksum {
                return Err(Error::Snapshot {
                    details: format!(
                        "section {} checksum mismatch (corrupted or truncated payload)",
                        section.name
                    ),
                });
            }
        }
        let symbols = self.index.symbols();
        let max_symbol = symbols.iter().fold(0u8, |m, &s| m.max(s));
        if (max_symbol as usize) >= self.k() {
            let bad = symbols
                .iter()
                .position(|&s| (s as usize) >= self.k())
                .expect("max symbol out of range implies an offending position");
            return Err(Error::Snapshot {
                details: format!(
                    "symbol {} at position {bad} outside alphabet 0..{}",
                    symbols[bad],
                    self.k()
                ),
            });
        }
        state.verifications.fetch_add(1, Ordering::Relaxed);
        state.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// No-op twin for targets without the mmap loader.
    #[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
    #[inline(always)]
    fn ensure_verified(&self) -> Result<()> {
        Ok(())
    }

    /// Whether this engine borrows its index from a snapshot mapping
    /// (built by [`Engine::load_snapshot_mmap`]).
    pub fn is_mmap(&self) -> bool {
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        {
            self.mapped.is_some()
        }
        #[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
        {
            false
        }
    }

    /// Index bytes assumed resident in memory: the full
    /// [`Engine::index_bytes`] for owned engines, and for mapped engines
    /// `0` until the first query's verification pass has faulted every
    /// section in (and again after [`Engine::discard_resident`]).
    pub fn resident_bytes(&self) -> usize {
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        if let Some(state) = &self.mapped {
            if !state.verified.load(Ordering::Acquire) {
                return 0;
            }
        }
        self.index_bytes()
    }

    /// How many deferred verification passes this engine has run (always
    /// `0` for owned engines; a mapped engine runs one per first query
    /// after a load or a [`Engine::discard_resident`]).
    pub fn lazy_verifications(&self) -> u64 {
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        {
            self.mapped
                .as_ref()
                .map_or(0, |s| s.verifications.load(Ordering::Relaxed))
        }
        #[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
        {
            0
        }
    }

    /// Release the resident pages behind a mapped engine
    /// (`MADV_DONTNEED`) and re-arm its lazy verification; the next query
    /// transparently faults the (unchanged, read-only) file back in and
    /// re-verifies it. No-op for owned engines — their index lives on the
    /// heap and cannot be dropped without dropping the engine.
    pub fn discard_resident(&self) {
        #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
        if let Some(state) = &self.mapped {
            state.map.discard();
            state.verified.store(false, Ordering::Release);
        }
    }

    /// Sequence length `n`.
    pub fn n(&self) -> usize {
        self.index.n()
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.index.k()
    }

    /// The owned count index (either layout).
    pub fn counts(&self) -> &CountsIndex {
        &self.index
    }

    /// The count-index layout this engine was built with (`Flat` or
    /// `Blocked` — `Auto` is resolved at build time).
    pub fn layout(&self) -> CountsLayout {
        self.index.layout()
    }

    /// Bytes held by the count index (tables only).
    pub fn index_bytes(&self) -> usize {
        self.index.index_bytes()
    }

    /// The owned null model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Number of memoized answers currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache poisoned").map.len()
    }

    /// Drop all memoized answers.
    pub fn clear_cache(&self) {
        let mut cache = self.cache.lock().expect("cache poisoned");
        cache.map.clear();
        cache.items = 0;
    }

    /// `(hits, misses)` counters of the result cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The persistent worker pool (spawned on first use).
    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::new(self.threads))
    }

    /// Validate a half-open query range against the sequence.
    fn check_range(&self, range: &Range<usize>) -> Result<(usize, usize)> {
        let (l, r) = (range.start, range.end);
        if l >= r || r > self.n() {
            return Err(Error::InvalidParameter {
                what: "range",
                details: format!(
                    "query range {l}..{r} must be non-empty and within 0..{}",
                    self.n()
                ),
            });
        }
        Ok((l, r))
    }

    /// Cache lookup, counting hits and misses.
    fn cache_get(&self, key: &CacheKey) -> Option<Answer> {
        let found = self
            .cache
            .lock()
            .expect("cache poisoned")
            .map
            .get(key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Admit an answer to the cache (subject to the size limits: per
    /// answer, per entry count, and total items across all answers).
    fn cache_put(&self, key: CacheKey, answer: &Answer) {
        let size = answer.items().len();
        if size > CACHE_ITEM_LIMIT {
            return;
        }
        let mut cache = self.cache.lock().expect("cache poisoned");
        if cache.map.len() >= CACHE_ENTRY_LIMIT || cache.items + size > CACHE_TOTAL_ITEM_LIMIT {
            return;
        }
        if let std::collections::hash_map::Entry::Vacant(slot) = cache.map.entry(key) {
            slot.insert(answer.clone());
            cache.items += size;
        }
    }

    /// Run `f` with a recycled scratch buffer.
    fn with_scratch<T>(&self, f: impl FnOnce(&mut Vec<u32>) -> T) -> T {
        let mut scratch = self.scratch.acquire();
        let out = f(&mut scratch);
        self.scratch.release(scratch);
        out
    }

    // -- Problem 1 ---------------------------------------------------------

    /// The most significant substring (paper Algorithm 1). Bit-identical
    /// to [`crate::find_mss`].
    pub fn mss(&self) -> Result<MssResult> {
        self.mss_in(0..self.n())
    }

    /// [`Engine::mss`] restricted to `S[range)` — equals the one-shot
    /// answer on the sliced sequence, with positions reported in absolute
    /// coordinates.
    pub fn mss_in(&self, range: Range<usize>) -> Result<MssResult> {
        self.ensure_verified()?;
        let (l, r) = self.check_range(&range)?;
        let key = CacheKey::Mss { l, r };
        if let Some(Answer::Best(res)) = self.cache_get(&key) {
            return Ok(res);
        }
        let res = index_delegate!(&self.index, pc => self.with_scratch(|s| mss_scan(pc, &self.model, l..r, s)));
        self.cache_put(key, &Answer::Best(res));
        Ok(res)
    }

    // -- Problem 2 ---------------------------------------------------------

    /// The top-t most significant substrings (paper Algorithm 2).
    /// Bit-identical to [`crate::top_t`].
    pub fn top_t(&self, t: usize) -> Result<TopTResult> {
        self.top_t_in(0..self.n(), t)
    }

    /// [`Engine::top_t`] restricted to `S[range)`.
    pub fn top_t_in(&self, range: Range<usize>, t: usize) -> Result<TopTResult> {
        self.ensure_verified()?;
        let (l, r) = self.check_range(&range)?;
        let key = CacheKey::TopT { l, r, t };
        if let Some(Answer::Top(res)) = self.cache_get(&key) {
            return Ok(res);
        }
        let res = index_delegate!(&self.index, pc => self.with_scratch(|s| top_t_scan(pc, &self.model, l..r, t, s)))?;
        self.cache_put(key, &Answer::Top(res.clone()));
        Ok(res)
    }

    // -- Problem 3 ---------------------------------------------------------

    /// All substrings with `X² > alpha` (paper Algorithm 3), in canonical
    /// order. Bit-identical to [`crate::above_threshold`].
    pub fn above_threshold(&self, alpha: f64) -> Result<ThresholdResult> {
        self.above_threshold_in(0..self.n(), alpha)
    }

    /// [`Engine::above_threshold`] restricted to `S[range)`.
    pub fn above_threshold_in(&self, range: Range<usize>, alpha: f64) -> Result<ThresholdResult> {
        self.ensure_verified()?;
        let (l, r) = self.check_range(&range)?;
        let key = CacheKey::Threshold {
            l,
            r,
            alpha: alpha.to_bits(),
        };
        if let Some(Answer::Threshold(res)) = self.cache_get(&key) {
            return Ok(res);
        }
        let res = index_delegate!(&self.index, pc => self
            .with_scratch(|s| threshold_collect_scan(pc, &self.model, l..r, alpha, s)))?;
        self.cache_put(key, &Answer::Threshold(res.clone()));
        Ok(res)
    }

    /// Streaming Problem 3: invoke `visit` per qualifying substring
    /// without materializing (or caching) the set. Visit order is
    /// unspecified.
    pub fn for_each_above_threshold(
        &self,
        alpha: f64,
        visit: impl FnMut(Scored),
    ) -> Result<ScanStats> {
        self.ensure_verified()?;
        let n = self.n();
        index_delegate!(&self.index, pc => {
            self.with_scratch(|s| threshold_scan(pc, &self.model, 0..n, alpha, visit, s))
        })
    }

    // -- Problem 4 and the window dual -------------------------------------

    /// MSS among substrings strictly longer than `gamma0` (paper §6.3).
    /// Bit-identical to [`crate::mss_min_length`].
    pub fn mss_min_length(&self, gamma0: usize) -> Result<MssResult> {
        self.mss_min_length_in(0..self.n(), gamma0)
    }

    /// [`Engine::mss_min_length`] restricted to `S[range)`.
    pub fn mss_min_length_in(&self, range: Range<usize>, gamma0: usize) -> Result<MssResult> {
        self.ensure_verified()?;
        let (l, r) = self.check_range(&range)?;
        let key = CacheKey::MinLen { l, r, gamma0 };
        if let Some(Answer::Best(res)) = self.cache_get(&key) {
            return Ok(res);
        }
        let res = index_delegate!(&self.index, pc => self
            .with_scratch(|s| min_length_scan(pc, &self.model, l..r, gamma0, s)))?;
        self.cache_put(key, &Answer::Best(res));
        Ok(res)
    }

    /// MSS among substrings of length at most `w`. Bit-identical to
    /// [`crate::mss_max_length`].
    pub fn mss_max_length(&self, w: usize) -> Result<MssResult> {
        self.mss_max_length_in(0..self.n(), w)
    }

    /// [`Engine::mss_max_length`] restricted to `S[range)`.
    pub fn mss_max_length_in(&self, range: Range<usize>, w: usize) -> Result<MssResult> {
        self.ensure_verified()?;
        let (l, r) = self.check_range(&range)?;
        let key = CacheKey::MaxLen { l, r, w };
        if let Some(Answer::Best(res)) = self.cache_get(&key) {
            return Ok(res);
        }
        let res = index_delegate!(&self.index, pc => self.with_scratch(|s| max_length_scan(pc, &self.model, l..r, w, s)))?;
        self.cache_put(key, &Answer::Best(res));
        Ok(res)
    }

    // -- Parallel variants -------------------------------------------------

    /// Parallel MSS on the engine's persistent worker pool. Same `X²`
    /// bits as [`Engine::mss`] (the winning *position* may differ among
    /// exact ties — see [`crate::find_mss_parallel`]). Not memoized.
    pub fn mss_parallel(&self) -> Result<MssResult> {
        if self.threads == 1 || self.n() < 2 {
            return self.mss();
        }
        self.ensure_verified()?;
        Ok(
            index_delegate!(&self.index, pc => crate::parallel::mss_parallel_scan(
                pc,
                &self.model,
                self.pool(),
            )),
        )
    }

    /// Parallel top-t on the engine's persistent worker pool. Not
    /// memoized.
    pub fn top_t_parallel(&self, t: usize) -> Result<TopTResult> {
        if t == 0 {
            return Err(Error::InvalidParameter {
                what: "t",
                details: "the top-t set must have t >= 1".into(),
            });
        }
        if self.threads == 1 || self.n() < 2 {
            return self.top_t(t);
        }
        self.ensure_verified()?;
        Ok(
            index_delegate!(&self.index, pc => crate::parallel::top_t_parallel_scan(
                pc,
                &self.model,
                t,
                self.pool(),
            )),
        )
    }

    // -- Snapshots ---------------------------------------------------------

    /// Serialize this engine's heavy state (symbols, count index in its
    /// built layout, model probabilities) into `writer` in the versioned
    /// binary snapshot format — see [`crate::snapshot`] for the wire
    /// layout. A later [`Engine::load_snapshot`] reconstructs an engine
    /// answering bit-identically without recomputing the index.
    pub fn write_snapshot<W: std::io::Write>(&self, writer: W) -> Result<()> {
        // A mapped engine must pass its deferred validation before its
        // sections are re-serialized — the writer recomputes checksums,
        // which would otherwise launder a corrupted payload into a
        // "valid" snapshot.
        self.ensure_verified()?;
        crate::snapshot::write_snapshot(self, writer)
    }

    /// [`Engine::write_snapshot`] to a filesystem path.
    pub fn write_snapshot_path<P: AsRef<std::path::Path>>(&self, path: P) -> Result<()> {
        crate::snapshot::write_snapshot_path(self, path)
    }

    /// Deserialize an engine from a snapshot: validation plus bulk
    /// section reads into the index storage — loading a large index is
    /// dramatically cheaper than rebuilding it from the sequence.
    pub fn load_snapshot<R: std::io::Read>(reader: R) -> Result<Engine> {
        crate::snapshot::load_snapshot(reader)
    }

    /// [`Engine::load_snapshot`] from a filesystem path.
    pub fn load_snapshot_path<P: AsRef<std::path::Path>>(path: P) -> Result<Engine> {
        crate::snapshot::load_snapshot_path(path)
    }

    /// Zero-copy deserialize: map the snapshot file and borrow the large
    /// sections (symbols + count tables) straight from the mapping.
    /// Load time is `O(header)` regardless of index size; payload
    /// checksums and symbol validation run once on the **first query**
    /// (which is also what faults the index in), so time-to-first-answer
    /// on a cold cache beats the bulk-read loader's
    /// read-convert-checksum pipeline. The file length is validated
    /// against the section table before mapping, so a truncated snapshot
    /// is rejected up front rather than faulting mid-query. Falls back
    /// to [`Engine::load_snapshot_path`] on targets without the mmap
    /// wrapper (non-unix, 32-bit, big-endian).
    pub fn load_snapshot_mmap<P: AsRef<std::path::Path>>(path: P) -> Result<Engine> {
        crate::snapshot::load_snapshot_mmap(path)
    }

    // -- Uniform dispatch --------------------------------------------------

    /// Answer a self-describing [`Query`] (the batch driver's entry
    /// point).
    pub fn answer(&self, query: &Query) -> Result<Answer> {
        let range = match query.range {
            Some((l, r)) => l..r,
            None => 0..self.n(),
        };
        match query.kind {
            QueryKind::Mss => self.mss_in(range).map(Answer::Best),
            QueryKind::TopT(t) => self.top_t_in(range, t).map(Answer::Top),
            QueryKind::AboveThreshold(alpha) => {
                self.above_threshold_in(range, alpha).map(Answer::Threshold)
            }
            QueryKind::MssMinLength(gamma0) => {
                self.mss_min_length_in(range, gamma0).map(Answer::Best)
            }
            QueryKind::MssMaxLength(w) => self.mss_max_length_in(range, w).map(Answer::Best),
        }
    }
}

// ---------------------------------------------------------------------------
// The batch driver.
// ---------------------------------------------------------------------------

/// A batch driver: many queries over many documents on one persistent
/// worker pool.
///
/// Where the engine's `_parallel` methods split a *single* scan across
/// workers, `Batch` parallelizes across *queries*: each worker pulls the
/// next `(document, query)` job and answers it sequentially against that
/// document's engine (hitting the engine's result cache for repeats).
/// One pool serves the whole batch — no thread is spawned per call.
///
/// # Examples
///
/// ```
/// use sigstr_core::{Batch, Engine, Model, Query, Sequence};
///
/// let model = Model::uniform(2).unwrap();
/// let docs = [vec![0, 1, 1, 1, 1, 0], vec![1, 0, 0, 0, 0, 1]];
/// let engines: Vec<Engine> = docs
///     .iter()
///     .map(|d| Engine::new(&Sequence::from_symbols(d.clone(), 2).unwrap(), model.clone()).unwrap())
///     .collect();
/// let batch = Batch::new(2);
/// let jobs = vec![(0, Query::mss()), (1, Query::mss()), (0, Query::top_t(3))];
/// let answers = batch.run(&engines, &jobs);
/// assert_eq!(answers.len(), 3);
/// assert!(answers.iter().all(|a| a.is_ok()));
/// ```
#[derive(Debug)]
pub struct Batch {
    pool: WorkerPool,
}

impl Batch {
    /// Create a batch driver with `threads` persistent workers (`0` = all
    /// available cores).
    pub fn new(threads: usize) -> Self {
        Self {
            pool: WorkerPool::new(resolve_threads(threads)),
        }
    }

    /// Number of persistent workers.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Answer every `(document, query)` job, where `document` indexes
    /// into `engines`. Answers come back in job order; a job naming a
    /// missing document yields an error in its slot.
    pub fn run(&self, engines: &[Engine], jobs: &[(usize, Query)]) -> Vec<Result<Answer>> {
        self.run_on(engines, jobs)
    }

    /// [`Batch::run`] generalized over the engine container: accepts any
    /// slice of `Borrow<Engine>` (plain engines, `Arc<Engine>` handles
    /// from a corpus cache, references) so callers that share engines
    /// across threads don't have to clone index state to batch over it.
    pub fn run_on<E>(&self, engines: &[E], jobs: &[(usize, Query)]) -> Vec<Result<Answer>>
    where
        E: std::borrow::Borrow<Engine> + Sync,
    {
        if jobs.is_empty() {
            return Vec::new();
        }
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, Result<Answer>)>> =
            Mutex::new(Vec::with_capacity(jobs.len()));
        self.pool.broadcast(&|_slot| {
            let mut local = Vec::new();
            loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= jobs.len() {
                    break;
                }
                let (doc, query) = &jobs[index];
                let result = match engines.get(*doc) {
                    Some(engine) => engine.borrow().answer(query),
                    None => Err(Error::InvalidParameter {
                        what: "document",
                        details: format!(
                            "job {index} names document {doc} but only {} engines were given",
                            engines.len()
                        ),
                    }),
                };
                local.push((index, result));
            }
            if !local.is_empty() {
                collected
                    .lock()
                    .expect("batch results poisoned")
                    .extend(local);
            }
        });
        let mut slots: Vec<Option<Result<Answer>>> = (0..jobs.len()).map(|_| None).collect();
        for (index, result) in collected.into_inner().expect("batch results poisoned") {
            slots[index] = Some(result);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every job is answered exactly once"))
            .collect()
    }

    /// Answer many queries against one document.
    pub fn run_queries(&self, engine: &Engine, queries: &[Query]) -> Vec<Result<Answer>> {
        let jobs: Vec<(usize, Query)> = queries.iter().map(|&q| (0, q)).collect();
        self.run(std::slice::from_ref(engine), &jobs)
    }
}

// Compile-time thread-safety contract: the corpus cache hands
// `Arc<Engine>` across threads and the server shares engines between
// workers, so a future accidental `!Send`/`!Sync` field (a `Cell`, an
// `Rc`, a raw pointer) must fail right here at build time — not as a
// distant trait-bound error in a spawn call.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Engine>();
    require_send_sync::<std::sync::Arc<Engine>>();
    require_send_sync::<Batch>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(symbols: &[u8], k: usize) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), k).unwrap()
    }

    fn demo_engine() -> Engine {
        let s = seq(&[0, 1, 0, 1, 1, 1, 1, 1, 0, 0, 1, 0], 2);
        Engine::new(&s, Model::uniform(2).unwrap()).unwrap()
    }

    #[test]
    fn engine_matches_one_shot_api() {
        let s = seq(&[0, 1, 0, 1, 1, 1, 1, 1, 0, 0, 1, 0], 2);
        let model = Model::uniform(2).unwrap();
        let engine = Engine::new(&s, model.clone()).unwrap();
        assert_eq!(engine.mss().unwrap(), crate::find_mss(&s, &model).unwrap());
        assert_eq!(
            engine.top_t(4).unwrap(),
            crate::top_t(&s, &model, 4).unwrap()
        );
        assert_eq!(
            engine.above_threshold(2.0).unwrap(),
            crate::above_threshold(&s, &model, 2.0).unwrap()
        );
        assert_eq!(
            engine.mss_min_length(3).unwrap(),
            crate::mss_min_length(&s, &model, 3).unwrap()
        );
        assert_eq!(
            engine.mss_max_length(4).unwrap(),
            crate::mss_max_length(&s, &model, 4).unwrap()
        );
    }

    #[test]
    fn range_restriction_equals_sliced_one_shot() {
        let symbols = [0u8, 1, 0, 1, 1, 1, 1, 1, 0, 0, 1, 0, 0, 0, 1];
        let s = seq(&symbols, 2);
        let model = Model::uniform(2).unwrap();
        let engine = Engine::new(&s, model.clone()).unwrap();
        for (l, r) in [(0usize, 5usize), (3, 12), (5, 15), (7, 9)] {
            let sliced = seq(&symbols[l..r], 2);
            let one_shot = crate::find_mss(&sliced, &model).unwrap();
            let ranged = engine.mss_in(l..r).unwrap();
            assert_eq!(ranged.best.start, one_shot.best.start + l);
            assert_eq!(ranged.best.end, one_shot.best.end + l);
            assert_eq!(
                ranged.best.chi_square.to_bits(),
                one_shot.best.chi_square.to_bits()
            );
            assert_eq!(ranged.stats, one_shot.stats);
        }
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)]
    fn invalid_ranges_rejected() {
        let engine = demo_engine();
        assert!(engine.mss_in(3..3).is_err());
        assert!(engine.mss_in(5..3).is_err());
        assert!(engine.mss_in(0..engine.n() + 1).is_err());
        assert!(engine.top_t_in(2..2, 3).is_err());
    }

    #[test]
    fn cache_serves_repeats() {
        let engine = demo_engine();
        let first = engine.mss().unwrap();
        let (h0, m0) = engine.cache_stats();
        assert_eq!((h0, m0), (0, 1));
        let second = engine.mss().unwrap();
        assert_eq!(first, second);
        let (h1, m1) = engine.cache_stats();
        assert_eq!((h1, m1), (1, 1));
        assert_eq!(engine.cache_len(), 1);
        engine.clear_cache();
        assert_eq!(engine.cache_len(), 0);
    }

    #[test]
    fn distinct_parameters_are_distinct_cache_entries() {
        let engine = demo_engine();
        engine.top_t(2).unwrap();
        engine.top_t(3).unwrap();
        engine.mss_in(0..4).unwrap();
        engine.mss_in(0..5).unwrap();
        assert_eq!(engine.cache_len(), 4);
    }

    #[test]
    fn from_counts_checks_alphabet() {
        let s = seq(&[0, 1, 2, 0], 3);
        let pc = PrefixCounts::build(&s);
        assert!(Engine::from_counts(pc.clone(), Model::uniform(2).unwrap()).is_err());
        let engine = Engine::from_counts(pc, Model::uniform(3).unwrap()).unwrap();
        assert_eq!(engine.k(), 3);
        assert_eq!(engine.n(), 4);
    }

    #[test]
    fn parallel_queries_match_sequential_values() {
        let symbols: Vec<u8> = (0..400u32).map(|i| ((i * 7 + i / 5) % 2) as u8).collect();
        let s = seq(&symbols, 2);
        let engine = Engine::with_threads(&s, Model::uniform(2).unwrap(), 4).unwrap();
        let sequential = engine.mss().unwrap();
        let parallel = engine.mss_parallel().unwrap();
        assert_eq!(
            sequential.best.chi_square.to_bits(),
            parallel.best.chi_square.to_bits()
        );
        let seq_top = engine.top_t(8).unwrap();
        let par_top = engine.top_t_parallel(8).unwrap();
        for (a, b) in seq_top.items.iter().zip(&par_top.items) {
            assert_eq!(a.chi_square.to_bits(), b.chi_square.to_bits());
        }
        // Pool is built once and reused.
        let again = engine.mss_parallel().unwrap();
        assert_eq!(
            again.best.chi_square.to_bits(),
            sequential.best.chi_square.to_bits()
        );
    }

    #[test]
    fn answer_dispatches_every_kind() {
        let engine = demo_engine();
        let n = engine.n();
        for query in [
            Query::mss(),
            Query::top_t(3),
            Query::above_threshold(1.5),
            Query::mss_min_length(2),
            Query::mss_max_length(5),
            Query::mss().in_range(1, n - 1),
        ] {
            let answer = engine.answer(&query).unwrap();
            assert!(!answer.items().is_empty(), "{query:?}");
            assert!(answer.stats().examined > 0, "{query:?}");
        }
        assert!(engine.answer(&Query::top_t(0)).is_err());
        assert!(engine.answer(&Query::mss().in_range(4, 2)).is_err());
    }

    #[test]
    fn batch_runs_many_documents_and_queries() {
        let model = Model::uniform(2).unwrap();
        let docs = [
            seq(&[0, 1, 1, 1, 1, 0, 0, 1], 2),
            seq(&[1, 0, 0, 0, 0, 1, 1, 0], 2),
            seq(&[0, 1, 0, 1, 0, 1, 0, 1], 2),
        ];
        let engines: Vec<Engine> = docs
            .iter()
            .map(|d| Engine::new(d, model.clone()).unwrap())
            .collect();
        let batch = Batch::new(3);
        let mut jobs = Vec::new();
        for doc in 0..docs.len() {
            jobs.push((doc, Query::mss()));
            jobs.push((doc, Query::top_t(2)));
            jobs.push((doc, Query::mss_max_length(3)));
        }
        jobs.push((99, Query::mss())); // bad document index
        let answers = batch.run(&engines, &jobs);
        assert_eq!(answers.len(), jobs.len());
        for (i, answer) in answers.iter().enumerate().take(jobs.len() - 1) {
            let answer = answer.as_ref().unwrap();
            let (doc, query) = &jobs[i];
            assert_eq!(engines[*doc].answer(query).unwrap(), *answer);
        }
        assert!(answers.last().unwrap().is_err());
    }

    #[test]
    fn batch_run_queries_single_document() {
        let engine = demo_engine();
        let batch = Batch::new(2);
        let queries = [Query::mss(), Query::top_t(2), Query::above_threshold(1.0)];
        let answers = batch.run_queries(&engine, &queries);
        assert_eq!(answers.len(), 3);
        assert_eq!(
            answers[0].as_ref().unwrap().best().unwrap().chi_square,
            engine.mss().unwrap().best.chi_square
        );
    }

    #[test]
    fn blocked_layout_answers_bit_identical() {
        let symbols: Vec<u8> = (0..600u32).map(|i| ((i * 7 + i / 5) % 3) as u8).collect();
        let s = seq(&symbols, 3);
        let model = Model::from_probs(vec![0.5, 0.3, 0.2]).unwrap();
        let flat = Engine::with_layout(&s, model.clone(), CountsLayout::Flat).unwrap();
        let blocked = Engine::with_layout(&s, model.clone(), CountsLayout::Blocked).unwrap();
        assert_eq!(flat.layout(), CountsLayout::Flat);
        assert_eq!(blocked.layout(), CountsLayout::Blocked);
        assert!(blocked.index_bytes() < flat.index_bytes());
        // Whole-sequence and range-restricted answers are fully identical
        // (values, positions, and scan stats).
        assert_eq!(flat.mss().unwrap(), blocked.mss().unwrap());
        assert_eq!(flat.top_t(5).unwrap(), blocked.top_t(5).unwrap());
        assert_eq!(
            flat.above_threshold(4.0).unwrap(),
            blocked.above_threshold(4.0).unwrap()
        );
        assert_eq!(
            flat.mss_min_length(7).unwrap(),
            blocked.mss_min_length(7).unwrap()
        );
        assert_eq!(
            flat.mss_max_length(9).unwrap(),
            blocked.mss_max_length(9).unwrap()
        );
        assert_eq!(
            flat.mss_in(41..300).unwrap(),
            blocked.mss_in(41..300).unwrap()
        );
    }

    #[test]
    fn blocked_layout_parallel_matches_sequential_values() {
        let symbols: Vec<u8> = (0..500u32).map(|i| ((i * 11 + i / 3) % 2) as u8).collect();
        let s = seq(&symbols, 2);
        let engine =
            Engine::with_options(&s, Model::uniform(2).unwrap(), 4, CountsLayout::Blocked).unwrap();
        let sequential = engine.mss().unwrap();
        let parallel = engine.mss_parallel().unwrap();
        assert_eq!(
            sequential.best.chi_square.to_bits(),
            parallel.best.chi_square.to_bits()
        );
        let seq_top = engine.top_t(6).unwrap();
        let par_top = engine.top_t_parallel(6).unwrap();
        for (a, b) in seq_top.items.iter().zip(&par_top.items) {
            assert_eq!(a.chi_square.to_bits(), b.chi_square.to_bits());
        }
    }

    #[test]
    fn from_index_checks_alphabet() {
        let s = seq(&[0, 1, 2, 0, 1, 2], 3);
        let index = CountsIndex::build(&s, CountsLayout::Blocked);
        assert!(Engine::from_index(index.clone(), Model::uniform(2).unwrap()).is_err());
        let engine = Engine::from_index(index, Model::uniform(3).unwrap()).unwrap();
        assert_eq!(engine.layout(), CountsLayout::Blocked);
        assert_eq!(
            engine.mss().unwrap(),
            crate::find_mss(&s, &Model::uniform(3).unwrap()).unwrap()
        );
    }

    #[test]
    fn streaming_threshold_is_uncached() {
        let engine = demo_engine();
        let mut count = 0usize;
        engine
            .for_each_above_threshold(1.0, |_| count += 1)
            .unwrap();
        assert!(count > 0);
        assert_eq!(engine.cache_len(), 0);
        assert!(engine.for_each_above_threshold(-1.0, |_| ()).is_err());
    }
}
