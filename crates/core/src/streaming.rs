//! Online mining: maintain the exact MSS of a growing stream.
//!
//! When a symbol is appended, the only *new* substrings are those ending
//! at the new position, so it suffices to scan start positions leftward
//! from the new end. The chain-cover bound applies unchanged: the proof of
//! the paper's Lemma 1 depends only on the multiset of added characters,
//! not on which side they are appended (`X²` is order-invariant), so
//! *prepending* up to `x` characters is dominated by the same cover and
//! the quadratic skip solver prunes runs of start positions exactly as the
//! offline scan prunes end positions.
//!
//! On null-model input the per-append cost is `O(k·√n)` examined
//! substrings w.h.p. — the same per-position budget as Algorithm 1 — so a
//! stream of `n` symbols costs `O(k·n^{3/2})` total, matching the offline
//! bound while answering "what is the MSS so far?" after every symbol.

use crate::counts::{CountSource, CountsLayout, GrowableCounts};
use crate::error::{Error, Result};
use crate::model::Model;
use crate::scan::ScanStats;
use crate::score::{chi_square_counts, scored_cmp, Scored};
use crate::skip::max_safe_skip;

/// An append-only miner that always knows the most significant substring
/// of the stream consumed so far.
///
/// # Examples
///
/// ```
/// use sigstr_core::{streaming::StreamingMiner, Model};
///
/// let model = Model::uniform(2).unwrap();
/// let mut miner = StreamingMiner::new(model);
/// for &s in &[0, 1, 0, 1, 1, 1, 1, 1, 0] {
///     miner.push(s).unwrap();
/// }
/// let best = miner.best().unwrap();
/// assert_eq!((best.start, best.end), (3, 8)); // the run of five ones
/// ```
#[derive(Debug, Clone)]
pub struct StreamingMiner {
    model: Model,
    /// Growable column-major prefix counts — the same layout as the
    /// offline engine's table, so a resync touches one cache line instead
    /// of `k` distant rows.
    counts: GrowableCounts,
    best: Option<Scored>,
    stats: ScanStats,
    /// Recycled count buffer for the per-push leftward scan.
    scratch: Vec<u32>,
}

impl StreamingMiner {
    /// Create an empty miner for the given null model.
    pub fn new(model: Model) -> Self {
        let k = model.k();
        Self {
            model,
            counts: GrowableCounts::new(k),
            best: None,
            stats: ScanStats::default(),
            scratch: vec![0u32; k],
        }
    }

    /// Number of symbols consumed.
    pub fn len(&self) -> usize {
        self.counts.n()
    }

    /// Whether no symbol has been consumed yet.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The MSS of the stream so far (`None` before the first symbol).
    pub fn best(&self) -> Option<Scored> {
        self.best
    }

    /// Accumulated scan instrumentation.
    pub fn stats(&self) -> ScanStats {
        self.stats
    }

    /// Append one symbol and update the MSS.
    ///
    /// # Errors
    ///
    /// Fails when `symbol` is outside the model's alphabet.
    pub fn push(&mut self, symbol: u8) -> Result<()> {
        let k = self.model.k();
        if symbol as usize >= k {
            return Err(Error::SymbolOutOfRange {
                symbol,
                k,
                position: self.counts.n(),
            });
        }
        self.counts.push(symbol);
        // Scan starts leftward from the new end; prune with the
        // chain-cover bound (prepending ≤ x characters is dominated by the
        // cover — Lemma 1 is side-agnostic). The count vector advances
        // incrementally, mirroring the offline kernel: a single-step move
        // reads one symbol, a post-skip resync is one column-pair diff.
        let end = self.counts.n();
        let counts = &mut self.scratch;
        counts.fill(0);
        let mut i = end - 1;
        counts[self.counts.symbols()[i] as usize] += 1;
        loop {
            let l = end - i;
            let x2 = chi_square_counts(counts, &self.model);
            self.stats.examined += 1;
            let scored = Scored {
                start: i,
                end,
                chi_square: x2,
            };
            match &self.best {
                Some(b) if scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
                _ => self.best = Some(scored),
            }
            let budget = self.best.map_or(0.0, |b| b.chi_square);
            let skip = max_safe_skip(counts, l, x2, budget, &self.model).min(i);
            if skip > 0 {
                self.stats.skips += 1;
                self.stats.skipped += skip as u64;
            }
            if i < skip + 1 {
                break;
            }
            let next = i - skip - 1;
            if skip == 0 {
                counts[self.counts.symbols()[next] as usize] += 1;
            } else {
                self.counts.accumulate_counts(next, i, counts);
            }
            i = next;
        }
        Ok(())
    }

    /// Freeze the consumed stream into an offline [`crate::Engine`], so
    /// historical queries — top-t, thresholds, range restrictions — can
    /// run without re-indexing. The count-index layout is picked by
    /// [`CountsLayout::Auto`]: small streams hand over the already-built
    /// column-major table (a pair of moves), large ones compact into the
    /// two-level blocked table and drop the 4× larger growable one.
    pub fn into_engine(self) -> Result<crate::engine::Engine> {
        self.into_engine_with_layout(CountsLayout::Auto)
    }

    /// [`StreamingMiner::into_engine`] with an explicit count-index
    /// layout.
    pub fn into_engine_with_layout(self, layout: CountsLayout) -> Result<crate::engine::Engine> {
        crate::engine::Engine::from_index(self.counts.into_index(layout), self.model)
    }

    /// Append a batch of symbols.
    pub fn extend(&mut self, symbols: &[u8]) -> Result<()> {
        for &s in symbols {
            self.push(s)?;
        }
        Ok(())
    }
}

/// Re-score only the appended tail of a stream against a sliding window.
///
/// Considers every substring `[i, end)` with `from < end ≤ n` and
/// `end - i ≤ window` — exactly the windows a live-document watch has not
/// seen before an append of `n - from` symbols — scored with the same
/// [`chi_square_counts`] kernel as the offline engine (bit-identical
/// `f64`s). Returns the substrings whose score strictly exceeds
/// `threshold`, best-first under [`scored_cmp`], capped at `top_t`.
///
/// Each end position scans leftward with the chain-cover skip solver at a
/// fixed budget of `threshold`, so on null-model input the incremental
/// cost per appended symbol is `O(k·min(window, √n))` examined substrings
/// w.h.p. — an append never re-reads the frozen prefix beyond one window.
pub fn score_tail_windows<C: CountSource>(
    counts: &C,
    model: &Model,
    from: usize,
    window: usize,
    threshold: f64,
    top_t: usize,
) -> Vec<Scored> {
    let n = counts.n();
    let k = model.k();
    debug_assert_eq!(k, counts.k());
    if from >= n || window == 0 || top_t == 0 {
        return Vec::new();
    }
    let mut out: Vec<Scored> = Vec::new();
    let mut buf = vec![0u32; k];
    for end in (from + 1)..=n {
        let lo = end.saturating_sub(window);
        buf.fill(0);
        let mut i = end - 1;
        buf[counts.symbols()[i] as usize] += 1;
        loop {
            let l = end - i;
            let x2 = chi_square_counts(&buf, model);
            if x2 > threshold {
                out.push(Scored {
                    start: i,
                    end,
                    chi_square: x2,
                });
            }
            // Skips below the fixed `threshold` budget can never alert;
            // cap at the window's left edge.
            let skip = max_safe_skip(&buf, l, x2, threshold, model).min(i - lo);
            if i < lo + skip + 1 {
                break;
            }
            let next = i - skip - 1;
            if skip == 0 {
                buf[counts.symbols()[next] as usize] += 1;
            } else {
                counts.accumulate_counts(next, i, &mut buf);
            }
            i = next;
        }
    }
    out.sort_by(|a, b| scored_cmp(b, a));
    out.truncate(top_t);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Sequence;

    fn offline_best(symbols: &[u8], model: &Model) -> Scored {
        let seq = Sequence::from_symbols(symbols.to_vec(), model.k()).unwrap();
        crate::mss::find_mss(&seq, model).unwrap().best
    }

    #[test]
    fn matches_offline_after_every_push() {
        let model = Model::uniform(2).unwrap();
        let symbols = [0u8, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0, 1, 1, 0];
        let mut miner = StreamingMiner::new(model.clone());
        for t in 0..symbols.len() {
            miner.push(symbols[t]).unwrap();
            let offline = offline_best(&symbols[..=t], &model);
            let online = miner.best().unwrap();
            assert!(
                (online.chi_square - offline.chi_square).abs() < 1e-9,
                "after {} symbols: online {} vs offline {}",
                t + 1,
                online.chi_square,
                offline.chi_square
            );
        }
    }

    #[test]
    fn matches_offline_on_pseudorandom_ternary() {
        let model = Model::from_probs(vec![0.2, 0.3, 0.5]).unwrap();
        let mut x = 0x9E37_79B9u64;
        let symbols: Vec<u8> = (0..300)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 3) as u8
            })
            .collect();
        let mut miner = StreamingMiner::new(model.clone());
        miner.extend(&symbols).unwrap();
        let offline = offline_best(&symbols, &model);
        let online = miner.best().unwrap();
        assert!((online.chi_square - offline.chi_square).abs() < 1e-9);
    }

    #[test]
    fn pruning_keeps_amortized_cost_low() {
        // On a null-ish stream, examined substrings per push must be far
        // below the linear worst case.
        let model = Model::uniform(2).unwrap();
        let mut x = 12345u64;
        let n = 4_000usize;
        let mut miner = StreamingMiner::new(model);
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            miner.push((x & 1) as u8).unwrap();
        }
        let total = miner.stats().examined;
        let quadratic = (n as u64) * (n as u64 + 1) / 2;
        assert!(
            total < quadratic / 20,
            "examined {total}, too close to the quadratic bound {quadratic}"
        );
    }

    #[test]
    fn frozen_engine_reuses_streamed_index() {
        let model = Model::uniform(2).unwrap();
        let symbols = [0u8, 1, 1, 0, 1, 1, 1, 1, 0, 0, 1, 0];
        let mut miner = StreamingMiner::new(model.clone());
        miner.extend(&symbols).unwrap();
        let streamed_best = miner.best().unwrap();
        let engine = miner.into_engine().unwrap();
        assert_eq!(engine.n(), symbols.len());
        // The frozen engine answers offline queries over the consumed
        // stream, bit-identical to the one-shot API.
        let seq = Sequence::from_symbols(symbols.to_vec(), 2).unwrap();
        let offline = crate::mss::find_mss(&seq, &model).unwrap();
        assert_eq!(engine.mss().unwrap(), offline);
        assert_eq!(
            engine.mss().unwrap().best.chi_square.to_bits(),
            streamed_best.chi_square.to_bits()
        );
        assert_eq!(
            engine.top_t(3).unwrap(),
            crate::topt::top_t(&seq, &model, 3).unwrap()
        );
    }

    #[test]
    fn rejects_out_of_alphabet_symbols() {
        let model = Model::uniform(2).unwrap();
        let mut miner = StreamingMiner::new(model);
        miner.push(1).unwrap();
        assert!(matches!(
            miner.push(2),
            Err(Error::SymbolOutOfRange {
                symbol: 2,
                k: 2,
                position: 1
            })
        ));
    }

    fn brute_tail_windows(
        symbols: &[u8],
        model: &Model,
        from: usize,
        window: usize,
        threshold: f64,
        top_t: usize,
    ) -> Vec<Scored> {
        let mut out = Vec::new();
        for end in (from + 1)..=symbols.len() {
            for start in end.saturating_sub(window)..end {
                let mut counts = vec![0u32; model.k()];
                for &s in &symbols[start..end] {
                    counts[s as usize] += 1;
                }
                let x2 = chi_square_counts(&counts, model);
                if x2 > threshold {
                    out.push(Scored {
                        start,
                        end,
                        chi_square: x2,
                    });
                }
            }
        }
        out.sort_by(|a, b| scored_cmp(b, a));
        out.truncate(top_t);
        out
    }

    #[test]
    fn tail_windows_match_brute_force() {
        let model = Model::from_probs(vec![0.25, 0.35, 0.4]).unwrap();
        let mut x = 0xABCD_EF01u64;
        let symbols: Vec<u8> = (0..240)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 3) as u8
            })
            .collect();
        let mut gc = GrowableCounts::new(3);
        for &s in &symbols {
            gc.push(s);
        }
        for &(from, window, threshold, top_t) in &[
            (200usize, 16usize, 2.0f64, 8usize),
            (230, 64, 0.5, 100),
            (239, 8, 1.0, 4),
            (0, 12, 6.0, 1000),
        ] {
            let fast = score_tail_windows(&gc, &model, from, window, threshold, top_t);
            let brute = brute_tail_windows(&symbols, &model, from, window, threshold, top_t);
            assert_eq!(fast.len(), brute.len(), "from={from} window={window}");
            for (f, b) in fast.iter().zip(&brute) {
                assert_eq!((f.start, f.end), (b.start, b.end));
                assert_eq!(f.chi_square.to_bits(), b.chi_square.to_bits());
            }
        }
    }

    #[test]
    fn tail_windows_degenerate_inputs() {
        let model = Model::uniform(2).unwrap();
        let mut gc = GrowableCounts::new(2);
        for s in [0u8, 1, 1, 1] {
            gc.push(s);
        }
        assert!(score_tail_windows(&gc, &model, 4, 8, 0.0, 10).is_empty());
        assert!(score_tail_windows(&gc, &model, 9, 8, 0.0, 10).is_empty());
        assert!(score_tail_windows(&gc, &model, 0, 0, 0.0, 10).is_empty());
        assert!(score_tail_windows(&gc, &model, 0, 8, 0.0, 0).is_empty());
        // A window of 1 only ever sees single symbols.
        let singles = score_tail_windows(&gc, &model, 0, 1, 0.0, 100);
        assert!(singles.iter().all(|s| s.end - s.start == 1));
    }

    #[test]
    fn empty_and_basic_accessors() {
        let model = Model::uniform(3).unwrap();
        let mut miner = StreamingMiner::new(model);
        assert!(miner.is_empty());
        assert!(miner.best().is_none());
        miner.push(2).unwrap();
        assert_eq!(miner.len(), 1);
        assert!(!miner.is_empty());
        let best = miner.best().unwrap();
        assert_eq!((best.start, best.end), (0, 1));
    }
}
