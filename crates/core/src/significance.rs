//! Significance assessment for mined substrings.
//!
//! A mined `X²` can be converted to probabilities at two levels:
//!
//! 1. **Per-substring p-value** — `Pr[χ²(k−1) > X²]` (paper Theorem 3),
//!    valid for one *pre-specified* substring.
//! 2. **Family-wise p-value for the MSS** — the scan implicitly tests all
//!    `n(n+1)/2` substrings, so the maximum is biased upward; a raw
//!    per-substring p-value wildly overstates significance (the paper's
//!    `X²_max ≈ 2 ln n` growth on pure noise, Fig. 2, is exactly this
//!    selection effect). This module provides a Šidák-style correction
//!    using the paper's own device (§5, proof of Lemma 4): a string of
//!    length `n` contains at least `n/c` *independent* substrings, and
//!    empirically the effective number of independent tests is `Θ(n)`.
//!    It also provides a Monte-Carlo calibration of the exact null
//!    distribution of `X²_max` for when a defensible p-value matters.

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::mss::find_mss_counts;
use crate::score::Scored;

/// Šidák-corrected family-wise p-value for an observed maximum statistic:
/// `1 − (1 − p)^m ≈ m·p` where `p` is the per-substring `χ²(k−1)` p-value
/// and `m` the effective number of independent tests.
///
/// Computed in log-space so tiny `p` with huge `m` stays accurate.
pub fn sidak_corrected(p_single: f64, m_effective: f64) -> f64 {
    if !(0.0..=1.0).contains(&p_single) || m_effective.is_nan() || m_effective < 1.0 {
        return f64::NAN;
    }
    // 1 − (1−p)^m = 1 − exp(m·ln(1−p)) = −expm1(m·ln1p(−p))
    (-(m_effective * (-p_single).ln_1p()).exp_m1()).clamp(0.0, 1.0)
}

/// The effective number of independent tests for a string of length `n`.
///
/// The paper's Lemma 4 argument partitions the string into disjoint
/// substrings to obtain `Θ(n)` independent `χ²(k−1)` variables; using
/// `m = n` makes `X²_max ≈ 2 ln n` sit at the distribution's bulk
/// (`1 − (1 − e^{−ln n})^n ≈ 1 − (1 − 1/n)^n ≈ 0.63`), matching the
/// empirical Fig.-2 benchmark.
pub fn effective_tests(n: usize) -> f64 {
    n as f64
}

/// Family-wise assessment of a mined MSS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assessment {
    /// Raw per-substring p-value (valid for a pre-specified range only).
    pub p_single: f64,
    /// Šidák family-wise p-value over the effective test count.
    pub p_family: f64,
    /// The effective test count used.
    pub m_effective: f64,
}

/// Assess a mined substring of a string of length `n` over alphabet `k`.
pub fn assess(best: &Scored, n: usize, k: usize) -> Assessment {
    let p_single = best.p_value(k);
    let m = effective_tests(n);
    Assessment {
        p_single,
        p_family: sidak_corrected(p_single, m),
        m_effective: m,
    }
}

/// Monte-Carlo calibration of the null distribution of `X²_max`.
///
/// Draws `runs` strings of length `n` from `model` using the supplied
/// symbol sampler (kept generic so the core crate stays RNG-free — pass a
/// closure backed by any RNG), mines each, and returns the sorted
/// `X²_max` sample. The empirical p-value of an observed maximum is then
/// [`empirical_p_value`].
pub fn calibrate_null_x2max(
    n: usize,
    model: &Model,
    runs: usize,
    mut sample_symbol: impl FnMut(&Model) -> u8,
) -> Result<Vec<f64>> {
    let mut maxima = Vec::with_capacity(runs);
    for _ in 0..runs {
        let symbols: Vec<u8> = (0..n).map(|_| sample_symbol(model)).collect();
        let seq = crate::seq::Sequence::from_symbols(symbols, model.k())?;
        let pc = PrefixCounts::build(&seq);
        maxima.push(find_mss_counts(&pc, model)?.best.chi_square);
    }
    maxima.sort_by(f64::total_cmp);
    Ok(maxima)
}

/// Empirical p-value of `observed` against a sorted null sample: the
/// add-one estimator `(#{null ≥ observed} + 1) / (runs + 1)` (never
/// exactly zero, as recommended for permutation tests).
pub fn empirical_p_value(null_sorted: &[f64], observed: f64) -> f64 {
    let idx = null_sorted.partition_point(|&v| v < observed);
    let above = null_sorted.len() - idx;
    (above as f64 + 1.0) / (null_sorted.len() as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidak_limits() {
        // m = 1 is the identity.
        assert!((sidak_corrected(0.03, 1.0) - 0.03).abs() < 1e-12);
        // Small p, large m ≈ m·p.
        let p = 1e-9;
        let m = 1e4;
        assert!((sidak_corrected(p, m) / (m * p) - 1.0).abs() < 1e-4);
        // Saturates at 1.
        assert_eq!(sidak_corrected(0.5, 1e9), 1.0);
        // Domain errors.
        assert!(sidak_corrected(-0.1, 10.0).is_nan());
        assert!(sidak_corrected(0.5, 0.5).is_nan());
    }

    #[test]
    fn family_correction_changes_the_verdict_on_noise() {
        // A null string's MSS looks "significant" per-substring but not
        // family-wise — the whole point of the correction.
        let n = 5_000usize;
        // X²_max ≈ 2 ln n on noise.
        let x2 = 2.0 * (n as f64).ln();
        let best = Scored {
            start: 0,
            end: 10,
            chi_square: x2,
        };
        let a = assess(&best, n, 2);
        assert!(a.p_single < 1e-3, "raw p should look impressive");
        // Family-wise, the same statistic fails the conventional 5% bar.
        assert!(a.p_family > 0.05, "family-wise p must not ({})", a.p_family);
    }

    #[test]
    fn family_correction_keeps_real_signals() {
        // A genuinely huge statistic stays significant after correction.
        let best = Scored {
            start: 0,
            end: 100,
            chi_square: 120.0,
        };
        let a = assess(&best, 100_000, 2);
        assert!(a.p_family < 1e-15);
    }

    #[test]
    fn empirical_p_value_counts() {
        let null = [1.0, 2.0, 3.0, 4.0, 5.0];
        // observed above everything: (0+1)/6
        assert!((empirical_p_value(&null, 10.0) - 1.0 / 6.0).abs() < 1e-12);
        // observed below everything: (5+1)/6 = 1
        assert!((empirical_p_value(&null, 0.5) - 1.0).abs() < 1e-12);
        // ties count as ≥
        assert!((empirical_p_value(&null, 3.0) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_reproduces_2_ln_n() {
        // A cheap deterministic LCG sampler keeps this test self-contained.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut sampler = |model: &Model| -> u8 {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let mut acc = 0.0;
            for (c, &p) in model.probs().iter().enumerate() {
                acc += p;
                if u < acc {
                    return c as u8;
                }
            }
            (model.k() - 1) as u8
        };
        let n = 2_000usize;
        let model = Model::uniform(2).unwrap();
        let null = calibrate_null_x2max(n, &model, 20, &mut sampler).unwrap();
        assert_eq!(null.len(), 20);
        assert!(null.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
        let median = null[null.len() / 2];
        let benchmark = 2.0 * (n as f64).ln(); // ≈ 15.2
        assert!(
            (median / benchmark - 1.0).abs() < 0.4,
            "median X²_max {median} far from 2 ln n = {benchmark}"
        );
    }
}
