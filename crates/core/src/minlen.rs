//! Problem 4 — the MSS among substrings longer than `Γ₀` (paper §6.3).
//!
//! Identical to Algorithm 1 except the inner scan starts at length
//! `Γ₀ + 1` and start positions stop at `n − Γ₀ − 1`. Skips grow with the
//! current length, so seeding the scan at longer lengths *reduces* work
//! (paper Fig. 7).

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::mss::MssResult;
use crate::seq::Sequence;

/// Find the most significant substring among substrings of length
/// **strictly greater than** `gamma0` (paper Problem 4).
///
/// # Errors
///
/// Fails when `gamma0 + 1 > n` (no candidate substring exists) or on
/// alphabet mismatch.
///
/// # Examples
///
/// ```
/// use sigstr_core::{mss_min_length, Model, Sequence};
///
/// let seq = Sequence::from_symbols(vec![0, 1, 1, 1, 0, 0, 1, 0, 1, 0], 2).unwrap();
/// let model = Model::uniform(2).unwrap();
/// // Ignore short runs: only substrings longer than 5 qualify.
/// let r = mss_min_length(&seq, &model, 5).unwrap();
/// assert!(r.best.len() > 5);
/// ```
pub fn mss_min_length(seq: &Sequence, model: &Model, gamma0: usize) -> Result<MssResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    mss_min_length_counts(&pc, model, gamma0)
}

/// [`mss_min_length`] over prebuilt prefix counts — a thin wrapper over
/// the engine scan; prefer [`crate::Engine`] when issuing many queries.
pub fn mss_min_length_counts(pc: &PrefixCounts, model: &Model, gamma0: usize) -> Result<MssResult> {
    crate::engine::min_length_scan(pc, model, 0..pc.n(), gamma0, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::chi_square_counts;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn gamma_zero_equals_plain_mss() {
        let seq = binary(&[0, 1, 1, 1, 0, 0, 1, 0, 1, 1]);
        let model = Model::uniform(2).unwrap();
        let plain = crate::mss::find_mss(&seq, &model).unwrap();
        let constrained = mss_min_length(&seq, &model, 0).unwrap();
        assert_eq!(plain.best, constrained.best);
    }

    #[test]
    fn respects_length_constraint() {
        let seq = binary(&[0, 1, 1, 1, 0, 0, 1, 0, 1, 0, 0, 1]);
        let model = Model::uniform(2).unwrap();
        for gamma0 in 0..seq.len() {
            let r = mss_min_length(&seq, &model, gamma0).unwrap();
            assert!(r.best.len() > gamma0, "gamma0 = {gamma0}");
        }
    }

    #[test]
    fn matches_brute_force() {
        let seq = binary(&[1, 0, 0, 1, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1]);
        let model = Model::uniform(2).unwrap();
        for gamma0 in [0usize, 3, 7, 12] {
            let r = mss_min_length(&seq, &model, gamma0).unwrap();
            // Brute force over qualifying substrings.
            let mut best = f64::NEG_INFINITY;
            for start in 0..seq.len() {
                for end in (start + gamma0 + 1)..=seq.len() {
                    let counts = seq.count_vector(start, end);
                    best = best.max(chi_square_counts(&counts, &model));
                }
            }
            assert!(
                (r.best.chi_square - best).abs() < 1e-9,
                "gamma0 = {gamma0}: {0} vs brute {best}",
                r.best.chi_square
            );
        }
    }

    #[test]
    fn gamma_too_large_rejected() {
        let seq = binary(&[0, 1, 0]);
        let model = Model::uniform(2).unwrap();
        assert!(mss_min_length(&seq, &model, 3).is_err());
        // gamma0 = n − 1 leaves exactly one candidate: the whole string.
        let r = mss_min_length(&seq, &model, 2).unwrap();
        assert_eq!((r.best.start, r.best.end), (0, 3));
        assert_eq!(r.stats.examined, 1);
    }

    #[test]
    fn fewer_iterations_with_larger_gamma() {
        // Paper Fig. 7: iterations decrease as Γ₀ grows.
        let symbols: Vec<u8> = (0..200).map(|i| ((i * 7 + i / 3) % 2) as u8).collect();
        let seq = binary(&symbols);
        let model = Model::uniform(2).unwrap();
        let small = mss_min_length(&seq, &model, 0).unwrap();
        let large = mss_min_length(&seq, &model, 150).unwrap();
        assert!(large.stats.examined < small.stats.examined);
    }
}
