//! Problem 2 — the top-t most significant substrings (paper Algorithm 2).
//!
//! Same pruned scan as the MSS algorithm, but the budget is the *t-th*
//! largest `X²` seen so far, maintained in a size-`t` min-heap. The paper
//! shows the `O((k + log t)·n^{3/2})` bound holds for `t < ω(n)`
//! (Lemma 8).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::counts::PrefixCounts;
use crate::error::Result;
use crate::model::Model;
use crate::scan::{Policy, ScanStats};
use crate::score::{scored_cmp, Scored};
use crate::seq::Sequence;

/// Result of a top-t search.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TopTResult {
    /// The top substrings, sorted by descending `X²` (ties broken by
    /// earlier start). Contains fewer than `t` items only when the string
    /// has fewer than `t` substrings.
    pub items: Vec<Scored>,
    /// Scan instrumentation.
    pub stats: ScanStats,
}

/// Heap adapter: orders [`Scored`] via [`scored_cmp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct OrdScored(pub Scored);

impl Eq for OrdScored {}

impl PartialOrd for OrdScored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdScored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        scored_cmp(&self.0, &other.0)
    }
}

/// Min-heap of the best `t` substrings seen so far; the root is the
/// current t-th best, i.e. the pruning budget once the heap is full.
#[derive(Debug)]
pub(crate) struct TopTPolicy {
    t: usize,
    heap: BinaryHeap<Reverse<OrdScored>>,
    /// External floor (used by the parallel scan to share budgets across
    /// workers); never decreases.
    pub floor: f64,
}

impl TopTPolicy {
    pub(crate) fn new(t: usize) -> Self {
        Self {
            t,
            heap: BinaryHeap::with_capacity(t + 1),
            floor: 0.0,
        }
    }

    pub(crate) fn into_sorted(self) -> Vec<Scored> {
        let mut items: Vec<Scored> = self.heap.into_iter().map(|r| r.0 .0).collect();
        items.sort_by(|a, b| scored_cmp(b, a));
        items
    }
}

impl Policy for TopTPolicy {
    fn observe(&mut self, scored: Scored) {
        if self.heap.len() < self.t {
            self.heap.push(Reverse(OrdScored(scored)));
        } else if let Some(Reverse(min)) = self.heap.peek() {
            if scored_cmp(&scored, &min.0) == std::cmp::Ordering::Greater {
                self.heap.pop();
                self.heap.push(Reverse(OrdScored(scored)));
            }
        }
    }

    fn budget(&self) -> f64 {
        if self.heap.len() < self.t {
            self.floor
        } else {
            let own = self.heap.peek().map_or(0.0, |Reverse(m)| m.0.chi_square);
            own.max(self.floor)
        }
    }
}

/// Find the `t` substrings with the largest `X²` values (paper
/// Algorithm 2).
///
/// # Errors
///
/// Fails when `t = 0` or the alphabets disagree.
///
/// # Examples
///
/// ```
/// use sigstr_core::{top_t, Model, Sequence};
///
/// let seq = Sequence::from_symbols(vec![0, 1, 1, 1, 0, 0, 0, 0, 1, 0], 2).unwrap();
/// let model = Model::uniform(2).unwrap();
/// let result = top_t(&seq, &model, 3).unwrap();
/// assert_eq!(result.items.len(), 3);
/// // Descending order.
/// assert!(result.items[0].chi_square >= result.items[1].chi_square);
/// assert!(result.items[1].chi_square >= result.items[2].chi_square);
/// ```
pub fn top_t(seq: &Sequence, model: &Model, t: usize) -> Result<TopTResult> {
    model.check_alphabet(seq)?;
    let pc = PrefixCounts::build(seq);
    top_t_counts(&pc, model, t)
}

/// [`top_t`] over prebuilt prefix counts — a thin wrapper over the
/// engine scan; prefer [`crate::Engine`] when issuing many queries.
pub fn top_t_counts(pc: &PrefixCounts, model: &Model, t: usize) -> Result<TopTResult> {
    crate::engine::top_t_scan(pc, model, 0..pc.n(), t, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;

    fn binary(symbols: &[u8]) -> Sequence {
        Sequence::from_symbols(symbols.to_vec(), 2).unwrap()
    }

    #[test]
    fn t_equals_one_matches_mss() {
        let seq = binary(&[0, 1, 1, 1, 1, 0, 0, 1, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let mss = crate::mss::find_mss(&seq, &model).unwrap();
        let top = top_t(&seq, &model, 1).unwrap();
        assert_eq!(top.items.len(), 1);
        assert_eq!(top.items[0], mss.best);
    }

    #[test]
    fn returns_sorted_descending() {
        let seq = binary(&[0, 0, 1, 1, 1, 0, 1, 0, 0, 0, 1, 1]);
        let model = Model::uniform(2).unwrap();
        let top = top_t(&seq, &model, 8).unwrap();
        assert_eq!(top.items.len(), 8);
        for pair in top.items.windows(2) {
            assert!(pair[0].chi_square >= pair[1].chi_square - 1e-12);
        }
    }

    #[test]
    fn t_zero_rejected() {
        let seq = binary(&[0, 1]);
        let model = Model::uniform(2).unwrap();
        assert!(matches!(
            top_t(&seq, &model, 0),
            Err(Error::InvalidParameter { what: "t", .. })
        ));
    }

    #[test]
    fn t_larger_than_substring_count_returns_all() {
        let seq = binary(&[0, 1, 0]);
        let model = Model::uniform(2).unwrap();
        let top = top_t(&seq, &model, 100).unwrap();
        assert_eq!(top.items.len(), 6); // 3·4/2 substrings
    }

    #[test]
    fn items_are_distinct_ranges() {
        let seq = binary(&[0, 1, 1, 0, 1, 1, 1, 0, 0, 1]);
        let model = Model::uniform(2).unwrap();
        let top = top_t(&seq, &model, 10).unwrap();
        let mut ranges: Vec<(usize, usize)> = top.items.iter().map(|s| (s.start, s.end)).collect();
        ranges.sort_unstable();
        ranges.dedup();
        assert_eq!(ranges.len(), top.items.len());
    }

    #[test]
    fn policy_budget_behaviour() {
        let mut p = TopTPolicy::new(2);
        assert_eq!(p.budget(), 0.0);
        p.observe(Scored {
            start: 0,
            end: 1,
            chi_square: 4.0,
        });
        assert_eq!(p.budget(), 0.0); // heap not full yet
        p.observe(Scored {
            start: 1,
            end: 2,
            chi_square: 2.0,
        });
        assert_eq!(p.budget(), 2.0); // t-th best
        p.observe(Scored {
            start: 2,
            end: 3,
            chi_square: 3.0,
        });
        assert_eq!(p.budget(), 3.0); // 2.0 evicted
        p.floor = 3.5;
        assert_eq!(p.budget(), 3.5); // external floor dominates
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let seq = binary(&[0, 1]);
        let model = Model::uniform(4).unwrap();
        assert!(top_t(&seq, &model, 2).is_err());
    }
}
