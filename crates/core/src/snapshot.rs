//! Persistent engine snapshots — build the index once, load it forever.
//!
//! At serving scale the dominant startup cost is rebuilding state the
//! paper assumes into existence: the `O(k·n)` count index and the model
//! tables. This module defines a versioned little-endian binary format
//! that captures a built [`Engine`]'s heavy state so a later process can
//! **load** it with bulk section reads — no per-position recomputation —
//! via [`Engine::write_snapshot`] / [`Engine::load_snapshot`].
//!
//! # Wire format (version 1)
//!
//! Everything is little-endian. The file is a fixed 64-byte header, a
//! section table, then the payload sections, each padded so its absolute
//! offset is 64-byte aligned (mmap-friendly, and bulk reads start on a
//! cache-line boundary):
//!
//! ```text
//! header (64 bytes):
//!   0..8    magic            b"SGSTRIDX"
//!   8..12   version          u32 (currently 1)
//!   12..16  k                u32 alphabet size
//!   16..24  n                u64 sequence length
//!   24..25  layout           u8: 0 = flat, 1 = blocked
//!   25..26  delta width      u8: 0 = none (flat), 1 = u8 tier, 2 = u16 tier
//!   26..28  reserved         u16 (zero)
//!   28..32  block            u32 superblock spacing (0 for flat)
//!   32..36  section count    u32
//!   36..44  table checksum   u64 over the raw section-table bytes
//!   44..64  reserved         (zero)
//! section table (32 bytes per section):
//!   0..4    section id       u32 (see [`SectionId`])
//!   4..8    reserved         u32 (zero)
//!   8..16   offset           u64 absolute file offset (64-byte aligned)
//!   16..24  length           u64 payload bytes (before padding)
//!   24..32  checksum         u64 over the payload bytes
//! payload sections, in table order, zero-padded to 64-byte alignment
//! ```
//!
//! Sections present: `Symbols` and `Model` always; `FlatTable` for the
//! flat layout; `Supers` + `Deltas` for the blocked layout. The model
//! section stores the normalized probability vector's exact `f64` bit
//! patterns; load rebuilds the derived kernel tables from those bits (a
//! pure function), so a loaded engine answers **bit-identically** to the
//! engine that wrote the snapshot.
//!
//! # Integrity
//!
//! Every payload carries a 64-bit checksum (a multiply-fold over
//! 32-byte stripes — two `u128` multiplies per stripe, so verification
//! runs at memory bandwidth, far cheaper than the scans it protects),
//! and the header carries one over the section table. Load validates
//! magic, version, header-field consistency (layout/tier/block
//! agreement, section shapes against `n`/`k`, zero reserved bytes),
//! checksums, that every symbol is inside the declared alphabet, and
//! that the file isn't truncated anywhere — then performs only bulk
//! reads. Loading never recomputes a count.

use std::io::{Read, Write};
use std::path::Path;

use crate::counts::{CountSource, CountsIndex, CountsLayout, DeltaTier};
use crate::engine::Engine;
use crate::error::{Error, Result};
use crate::model::Model;

/// The 8-byte file magic.
pub const MAGIC: [u8; 8] = *b"SGSTRIDX";

/// The current (and only) snapshot format version.
pub const VERSION: u32 = 1;

/// Section payloads are padded so each starts at a multiple of this.
pub const SECTION_ALIGN: usize = 64;

const HEADER_BYTES: usize = 64;
const SECTION_ENTRY_BYTES: usize = 32;

/// Section identifiers of format version 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum SectionId {
    /// The symbol string: `n` bytes.
    Symbols = 1,
    /// The model probabilities: `k` little-endian `f64`s.
    Model = 2,
    /// The flat count table: `(n + 1)·k` little-endian `u32`s.
    FlatTable = 3,
    /// Blocked superblock absolutes: `(n/B + 1)·k` little-endian `u32`s.
    Supers = 4,
    /// Blocked per-position deltas: `(n + 1)·(k − 1)` entries of the
    /// header's delta width.
    Deltas = 5,
}

impl SectionId {
    fn from_u32(raw: u32) -> Option<Self> {
        match raw {
            1 => Some(SectionId::Symbols),
            2 => Some(SectionId::Model),
            3 => Some(SectionId::FlatTable),
            4 => Some(SectionId::Supers),
            5 => Some(SectionId::Deltas),
            _ => None,
        }
    }

    /// Human-readable section name (for `index info`).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Symbols => "symbols",
            SectionId::Model => "model",
            SectionId::FlatTable => "flat-table",
            SectionId::Supers => "supers",
            SectionId::Deltas => "deltas",
        }
    }
}

/// One section-table entry, as parsed from a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionInfo {
    /// Which section.
    pub id: SectionId,
    /// Absolute file offset of the payload (64-byte aligned).
    pub offset: u64,
    /// Payload length in bytes (before padding).
    pub len: u64,
    /// Payload checksum.
    pub checksum: u64,
}

/// Parsed snapshot header + section table — everything `index info`
/// prints, readable without touching the payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotInfo {
    /// Format version.
    pub version: u32,
    /// Alphabet size.
    pub k: usize,
    /// Sequence length.
    pub n: usize,
    /// Count-index layout stored in the snapshot.
    pub layout: CountsLayout,
    /// Superblock spacing (0 for the flat layout).
    pub block: usize,
    /// The section table, in file order.
    pub sections: Vec<SectionInfo>,
}

impl SnapshotInfo {
    /// Total file size implied by the section table (last payload end,
    /// padded to alignment).
    pub fn total_bytes(&self) -> u64 {
        self.sections
            .iter()
            .map(|s| align_up64(s.offset.saturating_add(s.len)))
            .max()
            .unwrap_or(HEADER_BYTES as u64)
    }

    /// Bytes held by the count-index payload sections (excluding symbols
    /// and model) — the on-disk analogue of [`Engine::index_bytes`].
    pub fn index_bytes(&self) -> u64 {
        self.sections
            .iter()
            .filter(|s| {
                matches!(
                    s.id,
                    SectionId::FlatTable | SectionId::Supers | SectionId::Deltas
                )
            })
            .map(|s| s.len)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Checksum.
// ---------------------------------------------------------------------------

const PRIME_A: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_B: u64 = 0xC2B2_AE3D_27D4_EB4F;
// Stripe secrets (splitmix64 outputs) xored into the input words before
// folding, so runs of equal words still perturb the accumulators.
const K0: u64 = 0xE220_A839_7B1D_CDAF;
const K1: u64 = 0x6E78_9E6A_A1B9_65F4;
const K2: u64 = 0x06C4_5D18_8009_454F;
const K3: u64 = 0xF88B_B8A8_724C_81EC;

/// `64×64 → 128` multiply folded to 64 bits — one `mulx` on x86-64; any
/// input bit flip avalanches through the whole product.
#[inline(always)]
fn fold(a: u64, b: u64) -> u64 {
    let m = u128::from(a).wrapping_mul(u128::from(b));
    (m as u64) ^ ((m >> 64) as u64)
}

/// One 32-byte stripe: two independent multiply folds (the chains
/// pipeline) combined into rotating accumulators (the rotation makes the
/// combination stripe-order-sensitive).
#[inline(always)]
fn stripe(acc: &mut (u64, u64), w0: u64, w1: u64, w2: u64, w3: u64) {
    acc.0 = acc.0.rotate_left(13) ^ fold(w0 ^ K0, w1 ^ K1);
    acc.1 = acc.1.rotate_left(13) ^ fold(w2 ^ K2, w3 ^ K3);
}

/// The shared final fold of both checksum forms. Mixing the total length
/// in makes truncation change the value even when the dropped tail is
/// all zeros.
fn finish(acc: (u64, u64), len: u64) -> u64 {
    let mut h = fold(acc.0 ^ len, acc.1 ^ PRIME_B);
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_A);
    h ^ (h >> 29)
}

/// 64-bit content checksum: multiply-fold accumulation over 32-byte
/// stripes (two `u128` multiplies per stripe — verification runs at
/// memory-bandwidth speed, far cheaper than the scans the snapshot
/// serves), with the total length folded in so truncations change the
/// value even when the dropped tail is zeros. Not cryptographic —
/// storage-corruption detection only.
pub fn checksum64(bytes: &[u8]) -> u64 {
    #[inline(always)]
    fn word(chunk: &[u8], i: usize) -> u64 {
        u64::from_le_bytes(chunk[i * 8..i * 8 + 8].try_into().expect("8-byte word"))
    }
    let mut acc = (PRIME_A, PRIME_B);
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        stripe(
            &mut acc,
            word(chunk, 0),
            word(chunk, 1),
            word(chunk, 2),
            word(chunk, 3),
        );
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        // Zero-pad the tail to one final stripe; the length in the
        // final fold disambiguates it from genuine trailing zeros.
        let mut pad = [0u8; 32];
        pad[..rem.len()].copy_from_slice(rem);
        stripe(
            &mut acc,
            word(&pad, 0),
            word(&pad, 1),
            word(&pad, 2),
            word(&pad, 3),
        );
    }
    finish(acc, bytes.len() as u64)
}

/// [`checksum64`] computed directly over a `u16` slice, **identical** to
/// hashing the values' little-endian byte serialization — lets the
/// writer checksum the blocked index's `u16` delta tier in place.
pub fn checksum64_u16s(values: &[u16]) -> u64 {
    #[inline(always)]
    fn word(c: &[u16]) -> u64 {
        u64::from(c[0])
            | (u64::from(c[1]) << 16)
            | (u64::from(c[2]) << 32)
            | (u64::from(c[3]) << 48)
    }
    let mut acc = (PRIME_A, PRIME_B);
    // 16 values = one 32-byte stripe of the byte form.
    let mut chunks = values.chunks_exact(16);
    for c in &mut chunks {
        stripe(
            &mut acc,
            word(&c[0..4]),
            word(&c[4..8]),
            word(&c[8..12]),
            word(&c[12..16]),
        );
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut pad = [0u16; 16];
        pad[..rem.len()].copy_from_slice(rem);
        stripe(
            &mut acc,
            word(&pad[0..4]),
            word(&pad[4..8]),
            word(&pad[8..12]),
            word(&pad[12..16]),
        );
    }
    finish(acc, 2 * values.len() as u64)
}

/// [`checksum64`] computed directly over a `u32` slice, **identical** to
/// hashing the values' little-endian byte serialization — the loader
/// verifies a just-converted (cache-warm) table instead of re-reading the
/// raw payload from memory.
pub fn checksum64_u32s(values: &[u32]) -> u64 {
    #[inline(always)]
    fn word(lo: u32, hi: u32) -> u64 {
        u64::from(lo) | (u64::from(hi) << 32)
    }
    let mut acc = (PRIME_A, PRIME_B);
    // 8 values = one 32-byte stripe of the byte form.
    let mut chunks = values.chunks_exact(8);
    for c in &mut chunks {
        stripe(
            &mut acc,
            word(c[0], c[1]),
            word(c[2], c[3]),
            word(c[4], c[5]),
            word(c[6], c[7]),
        );
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut pad = [0u32; 8];
        pad[..rem.len()].copy_from_slice(rem);
        stripe(
            &mut acc,
            word(pad[0], pad[1]),
            word(pad[2], pad[3]),
            word(pad[4], pad[5]),
            word(pad[6], pad[7]),
        );
    }
    finish(acc, 4 * values.len() as u64)
}

// ---------------------------------------------------------------------------
// Little-endian scalar plumbing.
// ---------------------------------------------------------------------------

fn align_up(x: usize) -> usize {
    x.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

fn align_up64(x: u64) -> u64 {
    // Saturating: alignment math over untrusted header offsets must not
    // overflow (a crafted near-u64::MAX offset fails validation cleanly).
    x.div_ceil(SECTION_ALIGN as u64)
        .saturating_mul(SECTION_ALIGN as u64)
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> Error {
    move |e| Error::Io {
        op,
        details: e.to_string(),
    }
}

fn format_err(details: impl Into<String>) -> Error {
    Error::Snapshot {
        details: details.into(),
    }
}

/// Reference byte serializers — the writer streams tables without them;
/// the tests use them to pin the word-form checksums to the byte form.
#[cfg(test)]
fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
fn u16s_to_bytes(values: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    let count = bytes.len() / 4;
    let mut out: Vec<u32> = Vec::with_capacity(count);
    // SAFETY: `out` owns capacity for `count` values (`4·count` bytes);
    // source and destination are disjoint; every bit pattern is a valid
    // `u32`. This is the bulk-load hot path — a raw copy runs at memcpy
    // speed where the per-chunk `from_le_bytes` loop measures ~5× slower.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr().cast::<u8>(), count * 4);
        out.set_len(count);
    }
    if cfg!(target_endian = "big") {
        // The copy wrote little-endian storage; fix up on big-endian
        // targets (compiled out entirely on little-endian ones).
        for v in &mut out {
            *v = u32::from_le(*v);
        }
    }
    out
}

fn bytes_to_u16s(bytes: &[u8]) -> Vec<u16> {
    bytes
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().expect("2-byte chunk")))
        .collect()
}

fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8-byte chunk"))))
        .collect()
}

// ---------------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------------

/// A section queued for writing: id plus a *borrowed* view of its
/// payload — the count tables are checksummed and streamed in place, so
/// serializing a multi-GB engine never materializes a second copy of
/// its index.
enum PendingSection<'a> {
    /// Payload bytes already in wire form (symbols, `u8` deltas).
    Bytes(SectionId, &'a [u8]),
    /// A small owned payload (the model probabilities).
    Owned(SectionId, Vec<u8>),
    /// A `u32` table serialized little-endian on the fly.
    U32s(SectionId, &'a [u32]),
    /// A `u16` table serialized little-endian on the fly.
    U16s(SectionId, &'a [u16]),
}

/// Values serialized per chunk when streaming a table (64 KiB of bytes).
const WRITE_CHUNK_VALUES: usize = 16_384;

impl PendingSection<'_> {
    fn id(&self) -> SectionId {
        match self {
            PendingSection::Bytes(id, _)
            | PendingSection::Owned(id, _)
            | PendingSection::U32s(id, _)
            | PendingSection::U16s(id, _) => *id,
        }
    }

    fn len(&self) -> usize {
        match self {
            PendingSection::Bytes(_, v) => v.len(),
            PendingSection::Owned(_, v) => v.len(),
            PendingSection::U32s(_, v) => v.len() * 4,
            PendingSection::U16s(_, v) => v.len() * 2,
        }
    }

    /// The payload checksum, computed in place (no serialization).
    fn checksum(&self) -> u64 {
        match self {
            PendingSection::Bytes(_, v) => checksum64(v),
            PendingSection::Owned(_, v) => checksum64(v),
            PendingSection::U32s(_, v) => checksum64_u32s(v),
            PendingSection::U16s(_, v) => checksum64_u16s(v),
        }
    }

    /// Stream the payload into `writer`, converting tables chunk by
    /// chunk through a small reusable buffer.
    fn write_to<W: Write>(&self, writer: &mut W) -> std::io::Result<()> {
        match self {
            PendingSection::Bytes(_, v) => writer.write_all(v),
            PendingSection::Owned(_, v) => writer.write_all(v),
            PendingSection::U32s(_, v) => {
                let mut buf = Vec::with_capacity(WRITE_CHUNK_VALUES * 4);
                for chunk in v.chunks(WRITE_CHUNK_VALUES) {
                    buf.clear();
                    for value in chunk {
                        buf.extend_from_slice(&value.to_le_bytes());
                    }
                    writer.write_all(&buf)?;
                }
                Ok(())
            }
            PendingSection::U16s(_, v) => {
                let mut buf = Vec::with_capacity(WRITE_CHUNK_VALUES * 2);
                for chunk in v.chunks(WRITE_CHUNK_VALUES) {
                    buf.clear();
                    for value in chunk {
                        buf.extend_from_slice(&value.to_le_bytes());
                    }
                    writer.write_all(&buf)?;
                }
                Ok(())
            }
        }
    }
}

/// Serialize `engine` into `writer` in snapshot format version 1.
/// Payloads stream from the engine's own storage — peak memory stays
/// `O(1)` beyond the engine itself regardless of index size.
///
/// # Errors
///
/// Fails only on I/O ([`Error::Io`]); any built engine is serializable.
pub fn write_snapshot<W: Write>(engine: &Engine, mut writer: W) -> Result<()> {
    let k = engine.k();
    let n = engine.n();
    let index = engine.counts();
    let (layout_byte, delta_width, block): (u8, u8, u32) = match index {
        CountsIndex::Flat(_) => (0, 0, 0),
        CountsIndex::Blocked(bc) => {
            let width = match bc.deltas() {
                DeltaTier::U8(_) => 1,
                DeltaTier::U16(_) => 2,
            };
            (1, width, bc.block() as u32)
        }
    };

    let mut sections = vec![
        PendingSection::Bytes(SectionId::Symbols, index.symbols()),
        PendingSection::Owned(SectionId::Model, f64s_to_bytes(engine.model().probs())),
    ];
    match index {
        CountsIndex::Flat(pc) => {
            sections.push(PendingSection::U32s(SectionId::FlatTable, pc.table()))
        }
        CountsIndex::Blocked(bc) => {
            sections.push(PendingSection::U32s(SectionId::Supers, bc.supers()));
            sections.push(match bc.deltas() {
                DeltaTier::U8(v) => PendingSection::Bytes(SectionId::Deltas, v),
                DeltaTier::U16(v) => PendingSection::U16s(SectionId::Deltas, v),
            });
        }
    }

    // Lay out the section table: payloads start after the header + table,
    // each aligned to SECTION_ALIGN.
    let table_bytes = sections.len() * SECTION_ENTRY_BYTES;
    let mut offset = align_up(HEADER_BYTES + table_bytes);
    let mut table = Vec::with_capacity(table_bytes);
    let mut offsets = Vec::with_capacity(sections.len());
    for section in &sections {
        table.extend_from_slice(&(section.id() as u32).to_le_bytes());
        table.extend_from_slice(&0u32.to_le_bytes());
        table.extend_from_slice(&(offset as u64).to_le_bytes());
        table.extend_from_slice(&(section.len() as u64).to_le_bytes());
        table.extend_from_slice(&section.checksum().to_le_bytes());
        offsets.push(offset);
        offset = align_up(offset + section.len());
    }

    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(&MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&(k as u32).to_le_bytes());
    header.extend_from_slice(&(n as u64).to_le_bytes());
    header.push(layout_byte);
    header.push(delta_width);
    header.extend_from_slice(&0u16.to_le_bytes());
    header.extend_from_slice(&block.to_le_bytes());
    header.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    header.extend_from_slice(&checksum64(&table).to_le_bytes());
    header.resize(HEADER_BYTES, 0);

    let err = io_err("write snapshot");
    writer.write_all(&header).map_err(err)?;
    writer.write_all(&table).map_err(io_err("write snapshot"))?;
    let mut written = HEADER_BYTES + table.len();
    let padding = [0u8; SECTION_ALIGN];
    for (section, start) in sections.iter().zip(&offsets) {
        writer
            .write_all(&padding[..start - written])
            .map_err(io_err("write snapshot"))?;
        section
            .write_to(&mut writer)
            .map_err(io_err("write snapshot"))?;
        written = start + section.len();
    }
    // Trailing pad so the file length is aligned too (a later reader can
    // treat total_bytes() as the exact file size).
    writer
        .write_all(&padding[..align_up(written) - written])
        .map_err(io_err("write snapshot"))?;
    writer.flush().map_err(io_err("write snapshot"))?;
    Ok(())
}

/// [`write_snapshot`] to a filesystem path (buffered, created/truncated).
pub fn write_snapshot_path<P: AsRef<Path>>(engine: &Engine, path: P) -> Result<()> {
    let file = std::fs::File::create(path).map_err(io_err("create snapshot file"))?;
    write_snapshot(engine, std::io::BufWriter::new(file))
}

// ---------------------------------------------------------------------------
// Reading.
// ---------------------------------------------------------------------------

/// Parse and validate the header + section table from `reader`, leaving
/// the stream positioned at the end of the section table.
fn read_info_inner<R: Read>(reader: &mut R) -> Result<SnapshotInfo> {
    let mut header = [0u8; HEADER_BYTES];
    reader
        .read_exact(&mut header)
        .map_err(io_err("read snapshot header"))?;
    if header[0..8] != MAGIC {
        return Err(format_err(
            "bad magic (not a sigstr index snapshot, or the header is corrupted)",
        ));
    }
    let get_u32 =
        |off: usize| u32::from_le_bytes(header[off..off + 4].try_into().expect("header slice"));
    let get_u64 =
        |off: usize| u64::from_le_bytes(header[off..off + 8].try_into().expect("header slice"));
    let version = get_u32(8);
    if version != VERSION {
        return Err(format_err(format!(
            "unsupported snapshot version {version} (this build reads version {VERSION})"
        )));
    }
    let k = get_u32(12) as usize;
    let n = get_u64(16) as usize;
    let layout_byte = header[24];
    let delta_width = header[25];
    let block = get_u32(28) as usize;
    let section_count = get_u32(32) as usize;
    let table_checksum = get_u64(36);

    if !(2..=crate::model::MAX_ALPHABET).contains(&k) {
        return Err(format_err(format!("alphabet size {k} outside 2..=256")));
    }
    if n == 0 {
        return Err(format_err("sequence length is zero"));
    }
    let layout = match layout_byte {
        0 => CountsLayout::Flat,
        1 => CountsLayout::Blocked,
        other => return Err(format_err(format!("unknown layout byte {other}"))),
    };
    // Reserved regions must be zero in version 1 — rejecting nonzero
    // bytes both catches header corruption the field checks can't see
    // and keeps them free for future versions.
    if header[26..28].iter().chain(&header[44..]).any(|&b| b != 0) {
        return Err(format_err("nonzero reserved header bytes"));
    }
    match layout {
        CountsLayout::Flat => {
            if delta_width != 0 || block != 0 {
                return Err(format_err(
                    "flat layout must have zero block spacing and delta width",
                ));
            }
        }
        _ => {
            if block == 0 || !block.is_power_of_two() || block > crate::counts::MAX_BLOCK {
                return Err(format_err(format!(
                    "blocked layout with invalid superblock spacing {block}"
                )));
            }
            let expected_width = if block <= 256 { 1 } else { 2 };
            if delta_width != expected_width {
                return Err(format_err(format!(
                    "delta width {delta_width} inconsistent with block spacing {block}"
                )));
            }
        }
    }
    let expected_sections = match layout {
        CountsLayout::Flat => 3,
        _ => 4,
    };
    if section_count != expected_sections {
        return Err(format_err(format!(
            "{section_count} sections, expected {expected_sections} for this layout"
        )));
    }

    let mut table = vec![0u8; section_count * SECTION_ENTRY_BYTES];
    reader
        .read_exact(&mut table)
        .map_err(io_err("read snapshot section table"))?;
    if checksum64(&table) != table_checksum {
        return Err(format_err("section table checksum mismatch"));
    }
    let mut sections = Vec::with_capacity(section_count);
    let mut cursor = align_up(HEADER_BYTES + table.len()) as u64;
    for entry in table.chunks_exact(SECTION_ENTRY_BYTES) {
        let raw_id = u32::from_le_bytes(entry[0..4].try_into().expect("entry slice"));
        let id = SectionId::from_u32(raw_id)
            .ok_or_else(|| format_err(format!("unknown section id {raw_id}")))?;
        let offset = u64::from_le_bytes(entry[8..16].try_into().expect("entry slice"));
        let len = u64::from_le_bytes(entry[16..24].try_into().expect("entry slice"));
        let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("entry slice"));
        if offset % SECTION_ALIGN as u64 != 0 {
            return Err(format_err(format!(
                "section {} offset {offset} is not {SECTION_ALIGN}-byte aligned",
                id.name()
            )));
        }
        if offset != cursor {
            return Err(format_err(format!(
                "section {} offset {offset} does not follow the previous section (expected {cursor})",
                id.name()
            )));
        }
        cursor = align_up64(offset.saturating_add(len));
        sections.push(SectionInfo {
            id,
            offset,
            len,
            checksum,
        });
    }

    // Validate the section set and shapes against the header geometry.
    let expect_len = |id: SectionId, expected: u64| -> Result<()> {
        let section = sections
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| format_err(format!("missing section {}", id.name())))?;
        if section.len != expected {
            return Err(format_err(format!(
                "section {} holds {} bytes, expected {expected}",
                id.name(),
                section.len
            )));
        }
        Ok(())
    };
    // Saturating products: `n` comes from the untrusted header, and a
    // crafted 2^60-scale value must produce a clean shape mismatch, not
    // a multiply overflow.
    expect_len(SectionId::Symbols, n as u64)?;
    expect_len(SectionId::Model, 8 * k as u64)?;
    match layout {
        CountsLayout::Flat => {
            expect_len(
                SectionId::FlatTable,
                4u64.saturating_mul((n as u64).saturating_add(1))
                    .saturating_mul(k as u64),
            )?;
        }
        _ => {
            expect_len(
                SectionId::Supers,
                4u64.saturating_mul((n / block) as u64 + 1)
                    .saturating_mul(k as u64),
            )?;
            expect_len(
                SectionId::Deltas,
                u64::from(delta_width)
                    .saturating_mul((n as u64).saturating_add(1))
                    .saturating_mul(k as u64 - 1),
            )?;
        }
    }

    Ok(SnapshotInfo {
        version,
        k,
        n,
        layout,
        block,
        sections,
    })
}

/// Read and validate a snapshot's header and section table only — `O(1)`
/// work regardless of index size (what `sigstr index info` prints).
pub fn read_info<R: Read>(mut reader: R) -> Result<SnapshotInfo> {
    read_info_inner(&mut reader)
}

/// [`read_info`] from a filesystem path.
pub fn read_info_path<P: AsRef<Path>>(path: P) -> Result<SnapshotInfo> {
    let file = std::fs::File::open(path).map_err(io_err("open snapshot file"))?;
    read_info(std::io::BufReader::new(file))
}

/// Upper bound on a single allocation made on behalf of an untrusted
/// length field before any matching data has been seen. Payloads larger
/// than this grow chunk by chunk, so a crafted tiny file claiming a
/// multi-exabyte section fails with a truncation error instead of an
/// allocation abort.
const READ_CHUNK_BYTES: u64 = 64 << 20;

/// Read one section payload into a fresh exactly-sized buffer:
/// `take` + `read_to_end` fills reserved spare capacity directly from
/// the reader (for a `File`, one bulk kernel copy) without the extra
/// zeroing pass a `vec![0; len]` + `read_exact` would pay. Reads are
/// chunked at [`READ_CHUNK_BYTES`] so memory grows only as data
/// actually arrives.
fn read_section<R: Read>(reader: &mut R, section: &SectionInfo) -> Result<Vec<u8>> {
    let mut payload = Vec::new();
    let mut remaining = section.len;
    while remaining > 0 {
        let step = remaining.min(READ_CHUNK_BYTES);
        payload.reserve(step as usize);
        let got = reader
            .by_ref()
            .take(step)
            .read_to_end(&mut payload)
            .map_err(io_err("read snapshot section"))?;
        if got as u64 != step {
            return Err(format_err(format!(
                "section {} truncated: {} of {} bytes present",
                section.id.name(),
                section.len - remaining + got as u64,
                section.len
            )));
        }
        remaining -= step;
    }
    Ok(payload)
}

/// Deserialize an [`Engine`] from `reader`: validation plus bulk section
/// reads straight into the index's storage — no per-position
/// recomputation. Payloads are consumed in file order (no `Seek`
/// bound); pass an unbuffered `File` — every read is already a bulk
/// read, and a `BufReader`'s chunked copies only slow it down. Each
/// section is converted into its in-memory form first and checksummed
/// **after** conversion (bit-identical to hashing the raw payload — see
/// [`checksum64_u32s`]), so verification re-reads cache-warm data
/// instead of making a second cold pass.
///
/// # Errors
///
/// [`Error::Io`] on read failure, [`Error::Snapshot`] on any format or
/// checksum violation.
pub fn load_snapshot<R: Read>(mut reader: R) -> Result<Engine> {
    let info = read_info_inner(&mut reader)?;

    // The stream sits right after the (unaligned) section table; skip
    // alignment padding between payloads as we go.
    let mut position = (HEADER_BYTES + info.sections.len() * SECTION_ENTRY_BYTES) as u64;
    let mut symbols: Option<Vec<u8>> = None;
    let mut probs: Option<Vec<f64>> = None;
    let mut flat_table: Option<Vec<u32>> = None;
    let mut supers: Option<Vec<u32>> = None;
    let mut deltas: Option<DeltaTier> = None;
    let mut pad_buf = [0u8; SECTION_ALIGN];
    for section in &info.sections {
        let gap = (section.offset - position) as usize;
        if gap > 0 {
            reader
                .read_exact(&mut pad_buf[..gap])
                .map_err(io_err("read snapshot padding"))?;
        }
        position = section.offset.saturating_add(section.len);
        let computed = match section.id {
            SectionId::Symbols => {
                let v = read_section(&mut reader, section)?;
                let sum = checksum64(&v);
                symbols = Some(v);
                sum
            }
            SectionId::Model => {
                let payload = read_section(&mut reader, section)?;
                probs = Some(bytes_to_f64s(&payload));
                checksum64(&payload)
            }
            SectionId::FlatTable => {
                let v = bytes_to_u32s(&read_section(&mut reader, section)?);
                let sum = checksum64_u32s(&v);
                flat_table = Some(v);
                sum
            }
            SectionId::Supers => {
                let v = bytes_to_u32s(&read_section(&mut reader, section)?);
                let sum = checksum64_u32s(&v);
                supers = Some(v);
                sum
            }
            SectionId::Deltas => {
                let payload = read_section(&mut reader, section)?;
                match info.block {
                    b if b <= 256 => {
                        let sum = checksum64(&payload);
                        deltas = Some(DeltaTier::U8(payload.into()));
                        sum
                    }
                    _ => {
                        // The u16 escape tier (block > 256) is off the
                        // default path; the simple raw-payload pass is
                        // fine here.
                        let sum = checksum64(&payload);
                        deltas = Some(DeltaTier::U16(bytes_to_u16s(&payload).into()));
                        sum
                    }
                }
            }
        };
        if computed != section.checksum {
            return Err(format_err(format!(
                "section {} checksum mismatch (corrupted or truncated payload)",
                section.id.name()
            )));
        }
    }
    // Consume the trailing padding that rounds the file to alignment —
    // a snapshot truncated anywhere, even inside the final pad, fails to
    // load rather than passing on a technicality.
    let trailing = (align_up64(position) - position) as usize;
    if trailing > 0 {
        reader
            .read_exact(&mut pad_buf[..trailing])
            .map_err(io_err("read snapshot padding"))?;
    }
    assemble_engine(&info, symbols, probs, flat_table, supers, deltas)
}

/// Final assembly shared by the streaming and parallel loaders: symbol
/// validation, model reconstruction, and index construction from the
/// already-verified sections.
fn assemble_engine(
    info: &SnapshotInfo,
    symbols: Option<Vec<u8>>,
    probs: Option<Vec<f64>>,
    flat_table: Option<Vec<u32>>,
    supers: Option<Vec<u32>>,
    deltas: Option<DeltaTier>,
) -> Result<Engine> {
    let symbols = symbols.ok_or_else(|| format_err("missing symbols section"))?;
    // Vectorizable max-scan first; locate the offending position only on
    // the failure path.
    let max_symbol = symbols.iter().fold(0u8, |m, &s| m.max(s));
    if (max_symbol as usize) >= info.k {
        let bad = symbols
            .iter()
            .position(|&s| (s as usize) >= info.k)
            .expect("max symbol out of range implies an offending position");
        return Err(format_err(format!(
            "symbol {} at position {bad} outside alphabet 0..{}",
            symbols[bad], info.k
        )));
    }
    let probs = probs.ok_or_else(|| format_err("missing model section"))?;
    let model = Model::from_stored_probs(probs).map_err(|e| match e {
        Error::Snapshot { .. } | Error::Io { .. } => e,
        other => format_err(format!("stored model is invalid: {other}")),
    })?;

    let index = match info.layout {
        CountsLayout::Flat => {
            let table = flat_table.ok_or_else(|| format_err("missing flat-table section"))?;
            CountsIndex::Flat(crate::counts::PrefixCounts::from_sections(
                table.into(),
                symbols.into(),
                info.k,
            )?)
        }
        _ => {
            let supers = supers.ok_or_else(|| format_err("missing supers section"))?;
            let deltas = deltas.ok_or_else(|| format_err("missing deltas section"))?;
            CountsIndex::Blocked(crate::counts::BlockedCounts::from_sections(
                supers.into(),
                deltas,
                symbols.into(),
                info.k,
                info.block,
            )?)
        }
    };
    Engine::from_index(index, model)
}

/// [`load_snapshot`] from an in-memory snapshot buffer.
pub fn load_snapshot_bytes(bytes: &[u8]) -> Result<Engine> {
    load_snapshot(bytes)
}

/// Validate the real file length against what the section table implies.
/// Runs **before** any payload is consumed (and, in the mmap loader,
/// before the file is mapped at all — an established mapping must never
/// be able to cross EOF and `SIGBUS`).
fn check_file_length(file: &std::fs::File, info: &SnapshotInfo) -> Result<()> {
    let expected = info.total_bytes();
    let actual = file.metadata().map_err(io_err("stat snapshot file"))?.len();
    if actual != expected {
        return Err(format_err(format!(
            "file is {actual} bytes but the section table implies {expected} \
             (truncated tail or trailing garbage)"
        )));
    }
    Ok(())
}

/// [`load_snapshot`] from a filesystem path. The real file length is
/// validated against the section table before any payload is read; the
/// file is then passed **unbuffered**: each section is one bulk kernel
/// copy from the page cache straight into its final exactly-sized buffer
/// (no intermediate whole-file allocation, no `BufReader` chunk-hopping),
/// and each checksum pass runs over the cache-warm result.
pub fn load_snapshot_path<P: AsRef<Path>>(path: P) -> Result<Engine> {
    use std::io::Seek;
    let mut file = std::fs::File::open(path).map_err(io_err("open snapshot file"))?;
    let info = read_info(&file)?;
    check_file_length(&file, &info)?;
    file.rewind().map_err(io_err("seek snapshot file"))?;
    load_snapshot(file)
}

/// Zero-copy loader: map the snapshot and borrow the large sections
/// (symbols + count tables) straight from the mapping instead of copying
/// them onto the heap. Load time is `O(header)` — pages fault in on
/// first touch, so the engine answers its first query before the index
/// is fully resident. Payload checksums and symbol validation are
/// deferred to the engine's first query (see `Engine::load_snapshot_mmap`);
/// the header, section table, geometry, file length, and the (tiny,
/// eagerly copied) model section are still validated here.
///
/// On targets without the mmap wrapper (non-unix, 32-bit, or big-endian
/// — the mapping would need a byte-swapping pass anyway) this falls back
/// to the bulk-read [`load_snapshot_path`].
pub fn load_snapshot_mmap<P: AsRef<Path>>(path: P) -> Result<Engine> {
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    {
        load_snapshot_mmap_impl(path.as_ref())
    }
    #[cfg(not(all(unix, target_pointer_width = "64", target_endian = "little")))]
    {
        load_snapshot_path(path)
    }
}

#[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
fn load_snapshot_mmap_impl(path: &Path) -> Result<Engine> {
    use crate::counts::Store;
    use crate::engine::{LazySection, MappedState};
    use crate::mmap::MmapFile;
    use std::sync::Arc;

    let file = std::fs::File::open(path).map_err(io_err("open snapshot file"))?;
    let info = read_info(&file)?;
    // Length check BEFORE mapping: every in-bounds access of the mapping
    // below is then backed by real file bytes (no SIGBUS surface).
    check_file_length(&file, &info)?;
    let map = Arc::new(MmapFile::map(&file, info.total_bytes() as usize)?);
    drop(file);

    let section = |id: SectionId| -> Result<SectionInfo> {
        info.sections
            .iter()
            .find(|s| s.id == id)
            .copied()
            .ok_or_else(|| format_err(format!("missing section {}", id.name())))
    };
    let lazy = |s: &SectionInfo| LazySection {
        name: s.id.name(),
        offset: s.offset as usize,
        len: s.len as usize,
        checksum: s.checksum,
    };

    // The model is tiny (`8k` bytes) and its derived kernel tables are
    // needed to construct the engine at all — copy and verify it eagerly.
    let model_s = section(SectionId::Model)?;
    let model_bytes =
        &map.bytes()[model_s.offset as usize..(model_s.offset + model_s.len) as usize];
    if checksum64(model_bytes) != model_s.checksum {
        return Err(format_err(
            "section model checksum mismatch (corrupted or truncated payload)",
        ));
    }
    let model = Model::from_stored_probs(bytes_to_f64s(model_bytes)).map_err(|e| match e {
        Error::Snapshot { .. } | Error::Io { .. } => e,
        other => format_err(format!("stored model is invalid: {other}")),
    })?;

    // Everything else is borrowed from the mapping. Shape validation
    // (section lengths against n/k) already ran in `read_info`; content
    // checksums and symbol validation are deferred to first query.
    let symbols_s = section(SectionId::Symbols)?;
    let symbols: Store<u8> = Store::mapped(
        map.clone(),
        symbols_s.offset as usize,
        symbols_s.len as usize,
    );
    let mut lazies = vec![lazy(&symbols_s)];
    let index = match info.layout {
        CountsLayout::Flat => {
            let s = section(SectionId::FlatTable)?;
            lazies.push(lazy(&s));
            let table: Store<u32> =
                Store::mapped(map.clone(), s.offset as usize, s.len as usize / 4);
            CountsIndex::Flat(crate::counts::PrefixCounts::from_sections(
                table, symbols, info.k,
            )?)
        }
        _ => {
            let sup = section(SectionId::Supers)?;
            let del = section(SectionId::Deltas)?;
            lazies.push(lazy(&sup));
            lazies.push(lazy(&del));
            let supers: Store<u32> =
                Store::mapped(map.clone(), sup.offset as usize, sup.len as usize / 4);
            let deltas = if info.block <= 256 {
                DeltaTier::U8(Store::mapped(
                    map.clone(),
                    del.offset as usize,
                    del.len as usize,
                ))
            } else {
                DeltaTier::U16(Store::mapped(
                    map.clone(),
                    del.offset as usize,
                    del.len as usize / 2,
                ))
            };
            CountsIndex::Blocked(crate::counts::BlockedCounts::from_sections(
                supers, deltas, symbols, info.k, info.block,
            )?)
        }
    };
    let mut engine = Engine::from_index(index, model)?;
    engine.attach_mapped(MappedState::new(map, lazies));
    Ok(engine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Sequence;

    fn engine(n: usize, k: usize, layout: CountsLayout) -> Engine {
        let symbols: Vec<u8> = (0..n).map(|i| ((i * 7 + i / 3) % k) as u8).collect();
        let seq = Sequence::from_symbols(symbols, k).unwrap();
        Engine::with_layout(&seq, Model::uniform(k).unwrap(), layout).unwrap()
    }

    fn snapshot_bytes(e: &Engine) -> Vec<u8> {
        let mut buf = Vec::new();
        write_snapshot(e, &mut buf).unwrap();
        buf
    }

    #[test]
    fn checksum_is_deterministic_and_sensitive() {
        let data = vec![7u8; 1000];
        let base = checksum64(&data);
        assert_eq!(base, checksum64(&data));
        let mut flipped = data.clone();
        flipped[999] ^= 1;
        assert_ne!(base, checksum64(&flipped));
        // Truncation changes the value even when the tail is all zeros.
        let zeros = vec![0u8; 64];
        assert_ne!(checksum64(&zeros), checksum64(&zeros[..63]));
        assert_ne!(checksum64(&[]), checksum64(&[0]));
    }

    #[test]
    fn u32_checksum_matches_byte_checksum() {
        // The word-form checksum must equal the byte-form over the LE
        // serialization for every tail shape (len mod 8 ∈ 0..8).
        for len in 0..40usize {
            let values: Vec<u32> = (0..len as u32)
                .map(|i| i.wrapping_mul(0x9E37_79B1))
                .collect();
            let bytes = u32s_to_bytes(&values);
            assert_eq!(checksum64_u32s(&values), checksum64(&bytes), "length {len}");
        }
    }

    #[test]
    fn u16_checksum_matches_byte_checksum() {
        for len in 0..40usize {
            let values: Vec<u16> = (0..len as u16).map(|i| i.wrapping_mul(0x9E37)).collect();
            let bytes = u16s_to_bytes(&values);
            assert_eq!(checksum64_u16s(&values), checksum64(&bytes), "length {len}");
        }
    }

    #[test]
    fn roundtrip_u16_delta_tier() {
        // Block spacings above 256 use the u16 escape tier — its write
        // path (in-place checksum + chunked serialization) must
        // round-trip bit-identically too.
        let symbols: Vec<u8> = (0..3000).map(|i| ((i * 7 + i / 5) % 3) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 3).unwrap();
        let index = crate::counts::BlockedCounts::with_block(&seq, 1024).unwrap();
        let original =
            Engine::from_index(CountsIndex::Blocked(index), Model::uniform(3).unwrap()).unwrap();
        let buf = snapshot_bytes(&original);
        let info = read_info(&buf[..]).unwrap();
        assert_eq!(info.block, 1024);
        let loaded = load_snapshot(&buf[..]).unwrap();
        assert_eq!(loaded.mss().unwrap(), original.mss().unwrap());
        assert_eq!(loaded.top_t(4).unwrap(), original.top_t(4).unwrap());
    }

    #[test]
    fn roundtrip_both_layouts() {
        for layout in [CountsLayout::Flat, CountsLayout::Blocked] {
            let original = engine(300, 3, layout);
            let buf = snapshot_bytes(&original);
            assert_eq!(buf.len() % SECTION_ALIGN, 0, "file length aligned");
            let loaded = load_snapshot(&buf[..]).unwrap();
            assert_eq!(loaded.n(), original.n());
            assert_eq!(loaded.k(), original.k());
            assert_eq!(loaded.layout(), layout);
            assert_eq!(loaded.index_bytes(), original.index_bytes());
            assert_eq!(loaded.mss().unwrap(), original.mss().unwrap());
            assert_eq!(loaded.top_t(4).unwrap(), original.top_t(4).unwrap());
            assert_eq!(
                loaded.above_threshold(2.0).unwrap(),
                original.above_threshold(2.0).unwrap()
            );
        }
    }

    #[test]
    fn info_reports_geometry_without_payloads() {
        let e = engine(500, 4, CountsLayout::Blocked);
        let buf = snapshot_bytes(&e);
        let info = read_info(&buf[..]).unwrap();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.n, 500);
        assert_eq!(info.k, 4);
        assert_eq!(info.layout, CountsLayout::Blocked);
        assert_eq!(info.block, crate::counts::DEFAULT_BLOCK);
        assert_eq!(info.sections.len(), 4);
        assert_eq!(info.total_bytes(), buf.len() as u64);
        assert_eq!(info.index_bytes(), e.index_bytes() as u64);
        // Info parses from just the header + table bytes.
        let head = &buf[..HEADER_BYTES + 4 * SECTION_ENTRY_BYTES];
        assert_eq!(read_info(head).unwrap(), info);
    }

    #[test]
    fn rejects_corruption() {
        let e = engine(200, 2, CountsLayout::Flat);
        let good = snapshot_bytes(&e);

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            load_snapshot(&bad[..]),
            Err(Error::Snapshot { details }) if details.contains("magic")
        ));

        // Unsupported version.
        let mut bad = good.clone();
        bad[8] = 99;
        assert!(matches!(
            load_snapshot(&bad[..]),
            Err(Error::Snapshot { details }) if details.contains("version")
        ));

        // Corrupted header field (layout byte) — caught by field checks.
        let mut bad = good.clone();
        bad[24] = 7;
        assert!(load_snapshot(&bad[..]).is_err());

        // Corrupted section table — caught by the table checksum.
        let mut bad = good.clone();
        bad[HEADER_BYTES + 8] ^= 1;
        assert!(matches!(
            load_snapshot(&bad[..]),
            Err(Error::Snapshot { details }) if details.contains("section table")
        ));

        // Corrupted payload byte — caught by the section checksum.
        let mut bad = good.clone();
        let last = bad.len() - SECTION_ALIGN;
        bad[last] ^= 1;
        assert!(matches!(
            load_snapshot(&bad[..]),
            Err(Error::Snapshot { details }) if details.contains("checksum")
        ));

        // Truncation mid-payload — typed error naming the short section.
        assert!(matches!(
            load_snapshot(&good[..good.len() / 2]),
            Err(Error::Snapshot { details }) if details.contains("truncated")
        ));
        // Truncation mid-header — an I/O error (unexpected EOF).
        assert!(matches!(load_snapshot(&good[..10]), Err(Error::Io { .. })));

        // The pristine bytes still load.
        assert!(load_snapshot(&good[..]).is_ok());
    }

    #[test]
    fn rejects_out_of_alphabet_symbols() {
        // Corrupt a symbol *and* fix up its section checksum: the symbol
        // validation itself must catch it.
        let e = engine(100, 2, CountsLayout::Flat);
        let mut buf = snapshot_bytes(&e);
        let info = read_info(&buf[..]).unwrap();
        let symbols = info.sections[0];
        assert_eq!(symbols.id, SectionId::Symbols);
        let start = symbols.offset as usize;
        buf[start] = 200; // k = 2, symbol 200 is invalid
        let fixed = checksum64(&buf[start..start + symbols.len as usize]);
        let entry = HEADER_BYTES + 24;
        buf[entry..entry + 8].copy_from_slice(&fixed.to_le_bytes());
        // Re-fix the table checksum over the edited table.
        let table_start = HEADER_BYTES;
        let table_end = table_start + info.sections.len() * SECTION_ENTRY_BYTES;
        let table_sum = checksum64(&buf[table_start..table_end]);
        buf[36..44].copy_from_slice(&table_sum.to_le_bytes());
        assert!(matches!(
            load_snapshot(&buf[..]),
            Err(Error::Snapshot { details }) if details.contains("alphabet")
        ));
    }

    /// Whether this target gets the real zero-copy loader (elsewhere
    /// `load_snapshot_mmap` falls back to the bulk reader).
    const MMAP_SUPPORTED: bool = cfg!(all(
        unix,
        target_pointer_width = "64",
        target_endian = "little"
    ));

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sigstr-snap-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mmap_roundtrip_both_layouts() {
        let dir = temp_dir("mmap");
        for (i, layout) in [CountsLayout::Flat, CountsLayout::Blocked]
            .iter()
            .enumerate()
        {
            let original = engine(300, 3, *layout);
            let path = dir.join(format!("doc{i}.snap"));
            write_snapshot_path(&original, &path).unwrap();
            let mapped = load_snapshot_mmap(&path).unwrap();
            assert_eq!(mapped.layout(), *layout);
            assert_eq!(mapped.index_bytes(), original.index_bytes());
            if MMAP_SUPPORTED {
                assert!(mapped.is_mmap());
                // Nothing verified (or assumed resident) until a query.
                assert_eq!(mapped.lazy_verifications(), 0);
                assert_eq!(mapped.resident_bytes(), 0);
            }
            assert_eq!(mapped.mss().unwrap(), original.mss().unwrap());
            assert_eq!(mapped.top_t(4).unwrap(), original.top_t(4).unwrap());
            assert_eq!(
                mapped.above_threshold(2.0).unwrap(),
                original.above_threshold(2.0).unwrap()
            );
            if MMAP_SUPPORTED {
                // One deferred pass, run by the first query only.
                assert_eq!(mapped.lazy_verifications(), 1);
                assert_eq!(mapped.resident_bytes(), mapped.index_bytes());
                // Discard drops the resident accounting and re-arms the
                // pass; answers stay identical afterwards.
                mapped.discard_resident();
                assert_eq!(mapped.resident_bytes(), 0);
                mapped.clear_cache();
                assert_eq!(mapped.mss().unwrap(), original.mss().unwrap());
                assert_eq!(mapped.lazy_verifications(), 2);
            } else {
                assert!(!mapped.is_mmap());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_truncated_tail_by_file_length() {
        // The file-length check compares the real size against what the
        // section table implies BEFORE any payload is read or mapped —
        // a truncated tail (even inside the final alignment padding,
        // where no checksum would notice) and trailing garbage are both
        // rejected up front by both path loaders.
        let dir = temp_dir("trunc");
        let e = engine(300, 3, CountsLayout::Blocked);
        let good_path = dir.join("good.snap");
        write_snapshot_path(&e, &good_path).unwrap();
        let good = std::fs::read(&good_path).unwrap();

        let cut_tail = dir.join("cut.snap");
        std::fs::write(&cut_tail, &good[..good.len() - 1]).unwrap();
        let cut_payload = dir.join("cut-payload.snap");
        std::fs::write(&cut_payload, &good[..good.len() - SECTION_ALIGN - 7]).unwrap();
        let trailing = dir.join("trailing.snap");
        let mut padded = good.clone();
        padded.extend_from_slice(&[0u8; 64]);
        std::fs::write(&trailing, &padded).unwrap();

        for bad in [&cut_tail, &cut_payload, &trailing] {
            assert!(matches!(
                load_snapshot_path(bad),
                Err(Error::Snapshot { ref details }) if details.contains("section table implies")
            ));
            assert!(matches!(
                load_snapshot_mmap(bad),
                Err(Error::Snapshot { ref details }) if details.contains("section table implies")
            ));
        }
        // The pristine file still loads through both.
        assert!(load_snapshot_path(&good_path).is_ok());
        assert!(load_snapshot_mmap(&good_path).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_defers_payload_corruption_to_first_query() {
        // Flip one payload byte without touching the file length: the
        // zero-copy load (O(header) work) still succeeds, and the FIRST
        // QUERY fails the deferred checksum pass — corruption surfaces
        // as a typed error, never a wrong answer.
        let dir = temp_dir("lazy");
        let e = engine(200, 2, CountsLayout::Flat);
        let path = dir.join("doc.snap");
        write_snapshot_path(&e, &path).unwrap();
        let mut bad = std::fs::read(&path).unwrap();
        let last = bad.len() - SECTION_ALIGN;
        bad[last] ^= 1;
        std::fs::write(&path, &bad).unwrap();
        let loaded = load_snapshot_mmap(&path);
        if MMAP_SUPPORTED {
            let mapped = loaded.unwrap();
            assert!(matches!(
                mapped.mss(),
                Err(Error::Snapshot { ref details }) if details.contains("checksum")
            ));
            // Still unverified — a retry re-runs the pass and fails again.
            assert_eq!(mapped.lazy_verifications(), 0);
            assert!(mapped.top_t(2).is_err());
        } else {
            // The fallback bulk loader verifies eagerly instead.
            assert!(loaded.is_err());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mmap_defers_symbol_validation_to_first_query() {
        // Same deal for an out-of-alphabet symbol whose section checksum
        // was fixed up to match: the bulk loader rejects it at load; the
        // zero-copy loader rejects it at the first query.
        let e = engine(100, 2, CountsLayout::Flat);
        let mut buf = snapshot_bytes(&e);
        let info = read_info(&buf[..]).unwrap();
        let symbols = info.sections[0];
        assert_eq!(symbols.id, SectionId::Symbols);
        let start = symbols.offset as usize;
        buf[start] = 200;
        let fixed = checksum64(&buf[start..start + symbols.len as usize]);
        let entry = HEADER_BYTES + 24;
        buf[entry..entry + 8].copy_from_slice(&fixed.to_le_bytes());
        let table_start = HEADER_BYTES;
        let table_end = table_start + info.sections.len() * SECTION_ENTRY_BYTES;
        let table_sum = checksum64(&buf[table_start..table_end]);
        buf[36..44].copy_from_slice(&table_sum.to_le_bytes());

        let dir = temp_dir("badsym");
        let path = dir.join("doc.snap");
        std::fs::write(&path, &buf).unwrap();
        let loaded = load_snapshot_mmap(&path);
        if MMAP_SUPPORTED {
            let mapped = loaded.unwrap();
            assert!(matches!(
                mapped.mss(),
                Err(Error::Snapshot { ref details }) if details.contains("alphabet")
            ));
        } else {
            assert!(loaded.is_err());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sigstr-snap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("doc.snap");
        let e = engine(256, 4, CountsLayout::Blocked);
        write_snapshot_path(&e, &path).unwrap();
        let loaded = load_snapshot_path(&path).unwrap();
        assert_eq!(loaded.mss().unwrap(), e.mss().unwrap());
        let info = read_info_path(&path).unwrap();
        assert_eq!(info.n, 256);
        assert!(matches!(
            load_snapshot_path(dir.join("missing.snap")),
            Err(Error::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
