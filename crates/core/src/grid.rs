//! Two-dimensional extension: the most significant sub-rectangle
//! (paper §8 future work: "the single dimensional problem … can be
//! extended to two-dimensional grid networks as well as general graphs").
//!
//! Cells of an `R × C` grid carry symbols from the same multinomial null
//! model; the statistic of a sub-rectangle is the i.i.d. `X²` of its cell
//! counts. The key observation enabling pruning: the proof of the paper's
//! Lemma 1 never uses that the appended characters are contiguous in one
//! dimension — it holds for **any multiset** of `l₁` added characters. So
//! extending a rectangle of height `h` by `x` columns adds a multiset of
//! `h·x` cells and is dominated by the chain cover over `h·x` symbols of
//! the maximizing character. The 1-D skip solver therefore yields a
//! *column* skip of `⌊char_skip / h⌋` for each row band, giving the same
//! flavour of pruning in 2-D.

use crate::error::{Error, Result};
use crate::model::Model;
use crate::scan::ScanStats;
use crate::score::chi_square_counts;
use crate::skip::max_safe_skip;

/// A rectangular grid of symbols over the alphabet `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    rows: usize,
    cols: usize,
    k: usize,
    /// Row-major cells.
    cells: Vec<u8>,
}

impl Grid {
    /// Create a grid from row-major cells.
    pub fn from_cells(rows: usize, cols: usize, cells: Vec<u8>, k: usize) -> Result<Self> {
        if !(2..=256).contains(&k) {
            return Err(Error::AlphabetTooSmall { k });
        }
        if rows == 0 || cols == 0 || cells.len() != rows * cols {
            return Err(Error::InvalidParameter {
                what: "cells",
                details: format!(
                    "expected {rows}×{cols} = {} cells, got {}",
                    rows * cols,
                    cells.len()
                ),
            });
        }
        for (position, &symbol) in cells.iter().enumerate() {
            if symbol as usize >= k {
                return Err(Error::SymbolOutOfRange {
                    symbol,
                    k,
                    position,
                });
            }
        }
        Ok(Self {
            rows,
            cols,
            k,
            cells,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Alphabet size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The symbol at `(row, col)`.
    pub fn cell(&self, row: usize, col: usize) -> u8 {
        self.cells[row * self.cols + col]
    }
}

/// Per-character integral images: `O(1)` rectangle count vectors.
#[derive(Debug, Clone)]
pub struct GridCounts {
    /// `k` integral images, each `(rows+1) × (cols+1)`, row-major.
    images: Vec<u32>,
    rows: usize,
    cols: usize,
    k: usize,
}

impl GridCounts {
    /// Build in `O(k·R·C)`.
    pub fn build(grid: &Grid) -> Self {
        let (rows, cols, k) = (grid.rows, grid.cols, grid.k);
        let stride = cols + 1;
        let plane = (rows + 1) * stride;
        let mut images = vec![0u32; k * plane];
        for c in 0..k {
            let img = &mut images[c * plane..(c + 1) * plane];
            for r in 0..rows {
                for col in 0..cols {
                    let here = u32::from(grid.cell(r, col) as usize == c);
                    img[(r + 1) * stride + col + 1] =
                        here + img[r * stride + col + 1] + img[(r + 1) * stride + col]
                            - img[r * stride + col];
                }
            }
        }
        Self {
            images,
            rows,
            cols,
            k,
        }
    }

    /// Count of character `c` in the rectangle `[r1, r2) × [c1, c2)`.
    #[inline]
    pub fn count(&self, c: usize, r1: usize, r2: usize, c1: usize, c2: usize) -> u32 {
        debug_assert!(c < self.k && r1 <= r2 && r2 <= self.rows && c1 <= c2 && c2 <= self.cols);
        let stride = self.cols + 1;
        let plane = (self.rows + 1) * stride;
        let img = &self.images[c * plane..(c + 1) * plane];
        img[r2 * stride + c2] + img[r1 * stride + c1]
            - img[r1 * stride + c2]
            - img[r2 * stride + c1]
    }

    /// Fill `buf` (length `k`) with the rectangle's count vector.
    pub fn fill_counts(&self, r1: usize, r2: usize, c1: usize, c2: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        for (c, slot) in buf.iter_mut().enumerate() {
            *slot = self.count(c, r1, r2, c1, c2);
        }
    }
}

/// A scored sub-rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored2D {
    /// Row range `[row_start, row_end)`.
    pub row_start: usize,
    /// Exclusive row end.
    pub row_end: usize,
    /// Column range `[col_start, col_end)`.
    pub col_start: usize,
    /// Exclusive column end.
    pub col_end: usize,
    /// The rectangle's `X²`.
    pub chi_square: f64,
}

impl Scored2D {
    /// Number of cells in the rectangle.
    pub fn area(&self) -> usize {
        (self.row_end - self.row_start) * (self.col_end - self.col_start)
    }
}

/// Result of a 2-D MSS search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mss2DResult {
    /// The most significant sub-rectangle.
    pub best: Scored2D,
    /// Instrumentation (`examined` counts rectangles evaluated).
    pub stats: ScanStats,
}

fn better(a: &Scored2D, b: &Scored2D) -> bool {
    // Strictly larger X² wins; ties keep the incumbent (deterministic
    // because both scans enumerate in the same order).
    a.chi_square > b.chi_square
}

/// Exact 2-D MSS with chain-cover column pruning.
///
/// For every row band the column scan uses the 1-D skip solver with the
/// band height as the per-column character granularity. `O(k·R²·C²)`
/// worst case, with the same kind of large constant-factor pruning as the
/// 1-D algorithm on null-like grids.
pub fn find_mss_2d(grid: &Grid, model: &Model) -> Result<Mss2DResult> {
    if model.k() != grid.k {
        return Err(Error::AlphabetMismatch {
            model_k: model.k(),
            seq_k: grid.k,
        });
    }
    let gc = GridCounts::build(grid);
    let (rows, cols, k) = (grid.rows, grid.cols, grid.k);
    let mut counts = vec![0u32; k];
    let mut stats = ScanStats::default();
    let mut best: Option<Scored2D> = None;
    for r1 in (0..rows).rev() {
        for r2 in (r1 + 1)..=rows {
            let h = r2 - r1;
            for c1 in (0..cols).rev() {
                let mut c2 = c1 + 1;
                while c2 <= cols {
                    gc.fill_counts(r1, r2, c1, c2, &mut counts);
                    let area = h * (c2 - c1);
                    let x2 = chi_square_counts(&counts, model);
                    stats.examined += 1;
                    let scored = Scored2D {
                        row_start: r1,
                        row_end: r2,
                        col_start: c1,
                        col_end: c2,
                        chi_square: x2,
                    };
                    match &best {
                        Some(b) if !better(&scored, b) => {}
                        _ => best = Some(scored),
                    }
                    let budget = best.map_or(0.0, |b| b.chi_square);
                    let char_skip = max_safe_skip(&counts, area, x2, budget, model);
                    let col_skip = (char_skip / h).min(cols - c2);
                    if col_skip > 0 {
                        stats.skips += 1;
                        stats.skipped += col_skip as u64;
                    }
                    c2 += col_skip + 1;
                }
            }
        }
    }
    Ok(Mss2DResult {
        best: best.expect("non-empty grid"),
        stats,
    })
}

/// Exact 2-D MSS by exhaustive enumeration (test oracle / baseline).
pub fn trivial_mss_2d(grid: &Grid, model: &Model) -> Result<Mss2DResult> {
    if model.k() != grid.k {
        return Err(Error::AlphabetMismatch {
            model_k: model.k(),
            seq_k: grid.k,
        });
    }
    let gc = GridCounts::build(grid);
    let (rows, cols, k) = (grid.rows, grid.cols, grid.k);
    let mut counts = vec![0u32; k];
    let mut stats = ScanStats::default();
    let mut best: Option<Scored2D> = None;
    for r1 in (0..rows).rev() {
        for r2 in (r1 + 1)..=rows {
            for c1 in (0..cols).rev() {
                for c2 in (c1 + 1)..=cols {
                    gc.fill_counts(r1, r2, c1, c2, &mut counts);
                    let x2 = chi_square_counts(&counts, model);
                    stats.examined += 1;
                    let scored = Scored2D {
                        row_start: r1,
                        row_end: r2,
                        col_start: c1,
                        col_end: c2,
                        chi_square: x2,
                    };
                    match &best {
                        Some(b) if !better(&scored, b) => {}
                        _ => best = Some(scored),
                    }
                }
            }
        }
    }
    Ok(Mss2DResult {
        best: best.expect("non-empty grid"),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn checkered(rows: usize, cols: usize) -> Grid {
        let cells: Vec<u8> = (0..rows * cols)
            .map(|i| (((i / cols) + (i % cols)) % 2) as u8)
            .collect();
        Grid::from_cells(rows, cols, cells, 2).unwrap()
    }

    #[test]
    fn grid_validation() {
        assert!(Grid::from_cells(2, 2, vec![0, 1, 1, 0], 2).is_ok());
        assert!(Grid::from_cells(2, 2, vec![0, 1, 1], 2).is_err());
        assert!(Grid::from_cells(0, 2, vec![], 2).is_err());
        assert!(Grid::from_cells(2, 2, vec![0, 1, 5, 0], 2).is_err());
        assert!(Grid::from_cells(1, 1, vec![0], 1).is_err());
    }

    #[test]
    fn integral_image_counts_match_direct() {
        let grid = checkered(5, 7);
        let gc = GridCounts::build(&grid);
        for r1 in 0..5 {
            for r2 in r1..=5 {
                for c1 in 0..7 {
                    for c2 in c1..=7 {
                        let mut direct = [0u32; 2];
                        for r in r1..r2 {
                            for c in c1..c2 {
                                direct[grid.cell(r, c) as usize] += 1;
                            }
                        }
                        for (ch, &want) in direct.iter().enumerate() {
                            assert_eq!(
                                gc.count(ch, r1, r2, c1, c2),
                                want,
                                "char {ch} rect ({r1},{r2})x({c1},{c2})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn pruned_matches_trivial_on_random_grids() {
        let model = Model::uniform(2).unwrap();
        for seed in 0..6u64 {
            let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(99);
            let cells: Vec<u8> = (0..8 * 9)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    (x & 1) as u8
                })
                .collect();
            let grid = Grid::from_cells(8, 9, cells, 2).unwrap();
            let fast = find_mss_2d(&grid, &model).unwrap();
            let slow = trivial_mss_2d(&grid, &model).unwrap();
            assert!(
                (fast.best.chi_square - slow.best.chi_square).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                fast.best.chi_square,
                slow.best.chi_square
            );
            assert!(fast.stats.examined <= slow.stats.examined);
        }
    }

    #[test]
    fn finds_injected_hot_block() {
        // Checkered background with a solid block of ones.
        let mut grid = checkered(10, 10);
        for r in 3..7 {
            for c in 2..8 {
                grid.cells[r * 10 + c] = 1;
            }
        }
        let model = Model::uniform(2).unwrap();
        let r = find_mss_2d(&grid, &model).unwrap();
        // The block [3,7)×[2,8) must be (contained in) the winner.
        assert!(r.best.row_start <= 3 && r.best.row_end >= 6);
        assert!(r.best.col_start <= 3 && r.best.col_end >= 7);
        assert!(r.best.chi_square >= 20.0);
    }

    #[test]
    fn pruning_fires_on_flat_grids() {
        let grid = checkered(12, 12);
        let model = Model::uniform(2).unwrap();
        let fast = find_mss_2d(&grid, &model).unwrap();
        assert!(
            fast.stats.skipped > 0,
            "expected column pruning on a flat grid"
        );
    }

    #[test]
    fn area_and_accessors() {
        let s = Scored2D {
            row_start: 1,
            row_end: 4,
            col_start: 2,
            col_end: 7,
            chi_square: 1.0,
        };
        assert_eq!(s.area(), 15);
        let g = checkered(3, 4);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 4);
        assert_eq!(g.k(), 2);
    }

    #[test]
    fn alphabet_mismatch_rejected() {
        let grid = checkered(3, 3);
        let model = Model::uniform(3).unwrap();
        assert!(find_mss_2d(&grid, &model).is_err());
        assert!(trivial_mss_2d(&grid, &model).is_err());
    }
}
