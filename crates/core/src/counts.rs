//! Prefix count arrays — `O(1)` substring count vectors.
//!
//! The paper (§2) notes that `X²` needs only the character counts of a
//! substring, obtainable in `O(1)` from `k` precomputed count arrays where
//! entry `i` stores the number of occurrences of the character in the first
//! `i` positions. This module is that structure, laid out as one flat
//! row-major table for cache friendliness.

use crate::seq::Sequence;

/// Prefix counts of a sequence: `count(c, i, j)` in `O(1)`.
#[derive(Debug, Clone)]
pub struct PrefixCounts {
    /// Row-major `k × (n + 1)` table; `table[c][i]` = occurrences of `c`
    /// in `S[0..i)`.
    table: Vec<u32>,
    n: usize,
    k: usize,
}

impl PrefixCounts {
    /// Build the table in `O(k·n)` time and space.
    pub fn build(seq: &Sequence) -> Self {
        let n = seq.len();
        let k = seq.k();
        let mut table = vec![0u32; k * (n + 1)];
        for (i, &s) in seq.symbols().iter().enumerate() {
            // Copy column i to column i+1 row by row, bumping the row of s.
            for c in 0..k {
                table[c * (n + 1) + i + 1] = table[c * (n + 1) + i] + (c == s as usize) as u32;
            }
        }
        Self { table, n, k }
    }

    /// Sequence length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of occurrences of character `c` in `S[start..end)`.
    ///
    /// Panics (in debug builds) when the range or character is invalid.
    #[inline]
    pub fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        debug_assert!(c < self.k && start <= end && end <= self.n);
        let row = c * (self.n + 1);
        self.table[row + end] - self.table[row + start]
    }

    /// Fill `buf` (length `k`) with the count vector of `S[start..end)`.
    #[inline]
    pub fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n);
        for (c, slot) in buf.iter_mut().enumerate() {
            let row = c * (self.n + 1);
            *slot = self.table[row + end] - self.table[row + start];
        }
    }

    /// The count vector of `S[start..end)` as a fresh vector.
    pub fn count_vector(&self, start: usize, end: usize) -> Vec<u32> {
        let mut buf = vec![0u32; self.k];
        self.fill_counts(start, end, &mut buf);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Sequence;

    fn demo_seq() -> Sequence {
        // 0 1 1 2 0 2 2 1
        Sequence::from_symbols(vec![0, 1, 1, 2, 0, 2, 2, 1], 3).unwrap()
    }

    #[test]
    fn counts_match_direct_counting() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.n(), 8);
        assert_eq!(pc.k(), 3);
        for start in 0..=seq.len() {
            for end in start..=seq.len() {
                let direct = seq.count_vector(start, end);
                let via_prefix = pc.count_vector(start, end);
                assert_eq!(direct, via_prefix, "range {start}..{end}");
            }
        }
    }

    #[test]
    fn individual_count_queries() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.count(0, 0, 8), 2);
        assert_eq!(pc.count(1, 0, 8), 3);
        assert_eq!(pc.count(2, 0, 8), 3);
        assert_eq!(pc.count(2, 3, 4), 1);
        assert_eq!(pc.count(2, 4, 4), 0);
        assert_eq!(pc.count(0, 1, 4), 0);
    }

    #[test]
    fn counts_sum_to_range_length() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        for start in 0..seq.len() {
            for end in start..=seq.len() {
                let total: u32 = pc.count_vector(start, end).iter().sum();
                assert_eq!(total as usize, end - start);
            }
        }
    }

    #[test]
    fn fill_counts_reuses_buffer() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        let mut buf = vec![99u32; 3];
        pc.fill_counts(2, 6, &mut buf);
        assert_eq!(buf, vec![1, 1, 2]);
    }
}
