//! Prefix count structures — `O(1)` substring count vectors.
//!
//! The paper (§2) notes that `X²` needs only the character counts of a
//! substring, obtainable in `O(1)` from `k` precomputed count arrays where
//! entry `i` stores the number of occurrences of the character in the first
//! `i` positions.
//!
//! Two interchangeable layouts implement that primitive behind the
//! [`CountSource`] trait:
//!
//! * [`PrefixCounts`] — the *flat* table: one `u32` per `(position,
//!   character)`, column-major. Fastest per lookup, `4·k` bytes per
//!   position (1.6 GB for a 100M-symbol DNA sequence).
//! * [`BlockedCounts`] — the *two-level* table: `u32` superblock absolutes
//!   every `B` positions plus byte-packed per-position deltas, answering
//!   every query bit-identically in `~(k − 1) + 4k/B` bytes per position —
//!   a 4–8× reduction that keeps the index cache-resident on inputs where
//!   the flat table falls out of the last-level cache.
//!
//! # Flat layout
//!
//! The flat table is stored **column-major** (`table[i·k + c]`): all `k`
//! prefix counts of one position are adjacent. The pruned scan jumps
//! hundreds of positions per step on average, so every prefix lookup is a
//! cache miss — with this layout a full `k`-count resync touches one or
//! two cache lines instead of `k` distant rows (which halves the scan's
//! memory traffic at `k = 2` and cuts it ~4× at `k = 8`).
//!
//! # Two-level layout
//!
//! [`BlockedCounts`] splits each prefix count into a superblock absolute
//! and an in-block delta: `prefix(c, i) = super[i/B][c] + delta[i][c]`,
//! where `delta[i][c]` counts occurrences of `c` inside the current block
//! prefix `S[⌊i/B⌋·B .. i)`. Deltas are bounded by `B − 1`, so they pack
//! into one byte when `B ≤ 256` (a `u16` escape tier covers larger
//! blocks). Two further tricks shrink and speed it up:
//!
//! * only `k − 1` delta columns are stored — the deltas of one position
//!   sum to the in-block offset `i mod B`, so the last character's delta
//!   is derived with one subtraction;
//! * the superblock array is `(n/B + 1)·4k` bytes — at the default
//!   `B = 256` it is ~256× smaller than the flat table and stays resident
//!   in L2/LLC, so a post-skip resync costs one delta-row cache line plus
//!   an (almost always cached) superblock row.

use crate::error::{Error, Result};
use crate::seq::Sequence;

/// Backing storage for one count-index section: an owned heap vector (the
/// build and bulk-read paths) or a typed view into a shared snapshot
/// mapping (the zero-copy loader). Dereferences to `[T]`, so every lookup
/// path is identical either way — the variant is decided once at load
/// time, never consulted in the hot loop.
#[derive(Debug, Clone)]
pub(crate) enum Store<T: Copy> {
    /// A plain heap vector.
    Owned(Vec<T>),
    /// A borrowed view into a snapshot mapping. The pointer is computed
    /// (and bounds/alignment-checked) once at construction; the `Arc`
    /// keeps the mapping alive for as long as any view exists.
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    Mapped {
        _map: std::sync::Arc<crate::mmap::MmapFile>,
        ptr: *const T,
        len: usize,
    },
}

// SAFETY: the `Mapped` pointer targets a read-only private mapping owned
// by the `Arc`'d `MmapFile` (itself `Send + Sync`); the memory is
// immutable for the mapping's lifetime, so sharing views across threads
// is sound. `Owned` is a `Vec<T>` of a `Copy` type.
unsafe impl<T: Copy + Send> Send for Store<T> {}
unsafe impl<T: Copy + Sync> Sync for Store<T> {}

impl<T: Copy> Store<T> {
    /// A view of `len` elements at byte `offset` inside `map` (alignment
    /// and bounds validated here, once).
    #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
    pub(crate) fn mapped(
        map: std::sync::Arc<crate::mmap::MmapFile>,
        offset: usize,
        len: usize,
    ) -> Self {
        let ptr = map.slice::<T>(offset, len).as_ptr();
        Store::Mapped {
            _map: map,
            ptr,
            len,
        }
    }
}

impl<T: Copy> std::ops::Deref for Store<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        match self {
            Store::Owned(v) => v,
            #[cfg(all(unix, target_pointer_width = "64", target_endian = "little"))]
            // SAFETY: `ptr`/`len` were validated against the mapping at
            // construction and the `Arc` keeps the mapping alive.
            Store::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

impl<T: Copy> From<Vec<T>> for Store<T> {
    fn from(v: Vec<T>) -> Self {
        Store::Owned(v)
    }
}

/// A source of `O(1)` substring count vectors over a fixed symbol string.
///
/// Implemented by the flat [`PrefixCounts`], the two-level
/// [`BlockedCounts`], the append-only [`GrowableCounts`] and the layout-
/// erased [`CountsIndex`]. The scan kernels are generic over this trait
/// and monomorphize per implementation, so the dispatch happens once per
/// scan call, never inside the hot loop.
///
/// All implementations answer **bit-identically**: counts are exact
/// integers, so every layout feeds the same `u32` vectors into the same
/// canonical scoring accumulation.
pub trait CountSource {
    /// Sequence length `n`.
    fn n(&self) -> usize;

    /// Alphabet size `k`.
    fn k(&self) -> usize;

    /// The underlying symbol string (for `O(1)` single-step advances).
    fn symbols(&self) -> &[u8];

    /// Number of occurrences of character `c` in `S[start..end)`.
    fn count(&self, c: usize, start: usize, end: usize) -> u32;

    /// Fill `buf` (length `k`) with the count vector of `S[start..end)`.
    fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]);

    /// Add the count vector of `S[start..end)` into `buf` (length `k`) —
    /// the scan kernels' post-skip resync.
    fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]);

    /// Bytes held by the count index itself (tables only — the shared
    /// symbol string is accounted separately).
    fn index_bytes(&self) -> usize;
}

/// Which count-index layout to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CountsLayout {
    /// The flat `u32` table ([`PrefixCounts`]): fastest lookups, `4k`
    /// bytes per position.
    Flat,
    /// The two-level table ([`BlockedCounts`]): `~k` bytes per position,
    /// bit-identical answers.
    Blocked,
    /// Pick automatically: [`Flat`](CountsLayout::Flat) while the flat
    /// table stays under [`AUTO_BLOCKED_THRESHOLD_BYTES`],
    /// [`Blocked`](CountsLayout::Blocked) above it.
    #[default]
    Auto,
}

/// Flat-table byte footprint above which [`CountsLayout::Auto`] switches
/// to the blocked layout (32 MiB — roughly where the flat table stops
/// fitting a contemporary last-level cache and the scan turns
/// memory-bandwidth-bound).
pub const AUTO_BLOCKED_THRESHOLD_BYTES: usize = 32 << 20;

impl CountsLayout {
    /// Canonical lower-case name (`"flat"` / `"blocked"` / `"auto"`) —
    /// the single string table shared by the CLI and the corpus
    /// manifest.
    pub fn name(self) -> &'static str {
        match self {
            CountsLayout::Flat => "flat",
            CountsLayout::Blocked => "blocked",
            CountsLayout::Auto => "auto",
        }
    }

    /// Parse a canonical layout name (the inverse of
    /// [`CountsLayout::name`]).
    pub fn parse(s: &str) -> Option<CountsLayout> {
        match s {
            "flat" => Some(CountsLayout::Flat),
            "blocked" => Some(CountsLayout::Blocked),
            "auto" => Some(CountsLayout::Auto),
            _ => None,
        }
    }

    /// Resolve `Auto` for a sequence of length `n` over alphabet `k`:
    /// returns `Flat` or `Blocked`, never `Auto`.
    pub fn resolve(self, n: usize, k: usize) -> CountsLayout {
        match self {
            CountsLayout::Auto => {
                let flat_bytes = 4usize.saturating_mul(k).saturating_mul(n + 1);
                if flat_bytes > AUTO_BLOCKED_THRESHOLD_BYTES {
                    CountsLayout::Blocked
                } else {
                    CountsLayout::Flat
                }
            }
            other => other,
        }
    }
}

/// A built count index in either layout — what [`crate::Engine`] owns.
///
/// Scans dispatch on the variant once per call and run the kernel
/// monomorphized for the concrete layout; the trait impl on this enum
/// itself is for cold paths only.
#[derive(Debug, Clone)]
pub enum CountsIndex {
    /// The flat `u32` table.
    Flat(PrefixCounts),
    /// The two-level superblock + delta table.
    Blocked(BlockedCounts),
}

impl CountsIndex {
    /// Build the index for `seq` in the given layout (`Auto` resolves by
    /// footprint).
    pub fn build(seq: &Sequence, layout: CountsLayout) -> Self {
        match layout.resolve(seq.len(), seq.k()) {
            CountsLayout::Blocked => CountsIndex::Blocked(BlockedCounts::build(seq)),
            _ => CountsIndex::Flat(PrefixCounts::build(seq)),
        }
    }

    /// The layout this index was built in.
    pub fn layout(&self) -> CountsLayout {
        match self {
            CountsIndex::Flat(_) => CountsLayout::Flat,
            CountsIndex::Blocked(_) => CountsLayout::Blocked,
        }
    }
}

/// Bind `$pc` to the concrete layout inside `$index` (an expression
/// evaluating to `&CountsIndex`) and expand `$body` once per variant —
/// the single place the layout dispatch is written. The engine's query
/// methods use it to monomorphize each scan per layout; this module uses
/// it for the trait impl on [`CountsIndex`].
macro_rules! index_delegate {
    ($index:expr, $pc:ident => $body:expr) => {
        match $index {
            CountsIndex::Flat($pc) => $body,
            CountsIndex::Blocked($pc) => $body,
        }
    };
}
pub(crate) use index_delegate;

impl CountSource for CountsIndex {
    fn n(&self) -> usize {
        index_delegate!(self, pc => pc.n())
    }

    fn k(&self) -> usize {
        index_delegate!(self, pc => pc.k())
    }

    fn symbols(&self) -> &[u8] {
        index_delegate!(self, pc => pc.symbols())
    }

    fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        index_delegate!(self, pc => pc.count(c, start, end))
    }

    fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        index_delegate!(self, pc => pc.fill_counts(start, end, buf))
    }

    fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        index_delegate!(self, pc => pc.accumulate_counts(start, end, buf))
    }

    fn index_bytes(&self) -> usize {
        index_delegate!(self, pc => pc.index_bytes())
    }
}

impl From<PrefixCounts> for CountsIndex {
    fn from(pc: PrefixCounts) -> Self {
        CountsIndex::Flat(pc)
    }
}

impl From<BlockedCounts> for CountsIndex {
    fn from(bc: BlockedCounts) -> Self {
        CountsIndex::Blocked(bc)
    }
}

/// Prefix counts of a sequence: `count(c, i, j)` in `O(1)`.
///
/// Also retains a copy of the symbol string itself: the incremental scan
/// kernel advances its count vector by reading single symbols (`O(1)` per
/// step) and only falls back to prefix-table differences to resync after
/// a skip.
#[derive(Debug, Clone)]
pub struct PrefixCounts {
    /// Column-major `(n + 1) × k` table; `table[i·k + c]` = occurrences of
    /// `c` in `S[0..i)`.
    table: Store<u32>,
    /// The symbols themselves (for `O(1)` single-step count updates).
    symbols: Store<u8>,
    n: usize,
    k: usize,
}

impl PrefixCounts {
    /// Build the table in `O(k·n)` time and space.
    pub fn build(seq: &Sequence) -> Self {
        let n = seq.len();
        let k = seq.k();
        let mut table = vec![0u32; k * (n + 1)];
        for (i, &s) in seq.symbols().iter().enumerate() {
            // Copy column i to column i+1, bumping the entry of s.
            let (prev, next) = table[i * k..(i + 2) * k].split_at_mut(k);
            next.copy_from_slice(prev);
            next[s as usize] += 1;
        }
        Self {
            table: table.into(),
            symbols: seq.symbols().to_vec().into(),
            n,
            k,
        }
    }

    /// Sequence length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying symbol string.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// The symbol at `index` (panics when out of bounds).
    pub fn symbol(&self, index: usize) -> u8 {
        self.symbols[index]
    }

    /// Bytes held by the table (the count index proper, excluding the
    /// symbol string both layouts share).
    pub fn index_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Number of occurrences of character `c` in `S[start..end)`.
    ///
    /// Panics (in debug builds) when the range or character is invalid.
    #[inline]
    pub fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        debug_assert!(c < self.k && start <= end && end <= self.n);
        self.table[end * self.k + c] - self.table[start * self.k + c]
    }

    /// Fill `buf` (length `k`) with the count vector of `S[start..end)`.
    ///
    /// Both endpoint rows are contiguous `k`-slices, so for `k ≥ 8` the
    /// diff runs through the vectorized [`crate::simd`] kernel (exact
    /// integer arithmetic — bit-identical to the scalar loop); smaller
    /// alphabets stay scalar, where the fixed-trip loop already unrolls.
    #[inline]
    pub fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n);
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        if k >= 8 {
            crate::simd::fill_diff_u32(buf, to, from);
            return;
        }
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot = hi - lo;
        }
    }

    /// Add the count vector of `S[start..end)` into `buf` (length `k`) —
    /// the scan kernels' post-skip resync. Vectorized for `k ≥ 8` (see
    /// [`PrefixCounts::fill_counts`]).
    #[inline]
    pub fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n);
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        if k >= 8 {
            crate::simd::accumulate_diff_u32(buf, to, from);
            return;
        }
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot += hi - lo;
        }
    }

    /// The raw column-major table — the snapshot writer's section view.
    pub(crate) fn table(&self) -> &[u32] {
        &self.table
    }

    /// Reassemble from snapshot sections: the raw table plus the symbol
    /// string (owned vectors from the bulk-read loader, or mapped views
    /// from the zero-copy loader). Validates only shape
    /// (`table.len() == (n + 1)·k`); payload integrity is the snapshot
    /// checksums' job.
    pub(crate) fn from_sections(table: Store<u32>, symbols: Store<u8>, k: usize) -> Result<Self> {
        let n = symbols.len();
        if table.len() != (n + 1) * k {
            return Err(Error::Snapshot {
                details: format!(
                    "flat count table holds {} entries, expected (n + 1)·k = {}",
                    table.len(),
                    (n + 1) * k
                ),
            });
        }
        Ok(Self {
            table,
            symbols,
            n,
            k,
        })
    }

    /// The count vector of `S[start..end)` as a fresh vector.
    ///
    /// Allocates per call — test/diagnostic convenience only. Warm paths
    /// must use [`PrefixCounts::fill_counts`] with a recycled buffer (the
    /// engine's scratch arena hands one out).
    #[doc(hidden)]
    pub fn count_vector(&self, start: usize, end: usize) -> Vec<u32> {
        let mut buf = vec![0u32; self.k];
        self.fill_counts(start, end, &mut buf);
        buf
    }
}

impl CountSource for PrefixCounts {
    #[inline]
    fn n(&self) -> usize {
        PrefixCounts::n(self)
    }

    #[inline]
    fn k(&self) -> usize {
        PrefixCounts::k(self)
    }

    #[inline]
    fn symbols(&self) -> &[u8] {
        PrefixCounts::symbols(self)
    }

    #[inline]
    fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        PrefixCounts::count(self, c, start, end)
    }

    #[inline]
    fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        PrefixCounts::fill_counts(self, start, end, buf)
    }

    #[inline]
    fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        PrefixCounts::accumulate_counts(self, start, end, buf)
    }

    #[inline]
    fn index_bytes(&self) -> usize {
        PrefixCounts::index_bytes(self)
    }
}

// ---------------------------------------------------------------------------
// The two-level blocked layout.
// ---------------------------------------------------------------------------

/// Default superblock spacing: deltas stay `< 256` and pack into one byte,
/// while the superblock array is 256× smaller than the flat table.
pub const DEFAULT_BLOCK: usize = 256;

/// Largest supported superblock spacing (deltas must fit the `u16` escape
/// tier).
pub const MAX_BLOCK: usize = 1 << 16;

/// Spacings are powers of two so the hot resync path computes superblock
/// index and in-block offset with a shift and a mask instead of a
/// hardware division (which would otherwise dominate the sweep at
/// cache-resident sizes).
const fn is_valid_block(block: usize) -> bool {
    block != 0 && block <= MAX_BLOCK && block.is_power_of_two()
}

/// The per-position delta storage: `u8` when the block spacing allows it,
/// `u16` escape tier otherwise. Chosen once at build time.
#[derive(Debug, Clone)]
pub(crate) enum DeltaTier {
    U8(Store<u8>),
    U16(Store<u16>),
}

impl DeltaTier {
    fn bytes(&self) -> usize {
        match self {
            DeltaTier::U8(v) => v.len(),
            DeltaTier::U16(v) => v.len() * 2,
        }
    }
}

/// Two-level prefix counts: `u32` superblock absolutes every `block`
/// positions plus byte-packed in-block deltas.
///
/// Answers [`count`](CountSource::count) /
/// [`fill_counts`](CountSource::fill_counts) /
/// [`accumulate_counts`](CountSource::accumulate_counts) **bit-identically**
/// to [`PrefixCounts`] while occupying `~(k − 1) + 4k/B` bytes per
/// position instead of `4k` (4–8× smaller for `k ≤ 64`; see the module
/// docs for the layout). Only `k − 1` delta columns are stored: the
/// deltas of one position sum to its in-block offset, so the last
/// character's delta is derived with one subtraction.
#[derive(Debug, Clone)]
pub struct BlockedCounts {
    /// Column-major superblock absolutes: `supers[j·k + c]` = occurrences
    /// of `c` in `S[0 .. j·block)`.
    supers: Store<u32>,
    /// Row-per-position deltas, `stored_k = k − 1` columns:
    /// `deltas[i·stored_k + c]` = occurrences of `c` in
    /// `S[⌊i/block⌋·block .. i)`.
    deltas: DeltaTier,
    /// The symbols themselves (for `O(1)` single-step count updates).
    symbols: Store<u8>,
    n: usize,
    k: usize,
    /// `k − 1`: the number of delta columns actually stored.
    stored_k: usize,
    /// `log2` of the superblock spacing `B` (spacings are powers of two —
    /// the resync path shifts and masks instead of dividing).
    block_shift: u32,
}

impl BlockedCounts {
    /// Build the two-level table with the default superblock spacing
    /// ([`DEFAULT_BLOCK`]) in `O(k·n)` time, `O(k·n)` bytes.
    pub fn build(seq: &Sequence) -> Self {
        Self::from_symbols_vec(seq.symbols().to_vec(), seq.k(), DEFAULT_BLOCK)
            .expect("default block spacing is always valid")
    }

    /// Build with an explicit superblock spacing `block` (a power of two
    /// up to [`MAX_BLOCK`]). The delta tier is chosen from the spacing:
    /// one byte per entry when `block ≤ 256`, the `u16` escape tier
    /// above.
    ///
    /// # Errors
    ///
    /// Fails when `block` is zero, not a power of two, or exceeds
    /// [`MAX_BLOCK`].
    pub fn with_block(seq: &Sequence, block: usize) -> Result<Self> {
        Self::from_symbols_vec(seq.symbols().to_vec(), seq.k(), block)
    }

    /// Build from an owned symbol vector (the caller guarantees every
    /// symbol is `< k`) — the allocation-free freeze path from
    /// [`GrowableCounts`].
    pub(crate) fn from_symbols_vec(symbols: Vec<u8>, k: usize, block: usize) -> Result<Self> {
        if !is_valid_block(block) {
            return Err(Error::InvalidParameter {
                what: "block",
                details: format!(
                    "superblock spacing must be a power of two in 1..={MAX_BLOCK}, got {block}"
                ),
            });
        }
        let n = symbols.len();
        let stored_k = k - 1;
        let num_supers = n / block + 1;
        let mut supers = vec![0u32; num_supers * k];
        let mut running = vec![0u32; k];
        // One pass: record the absolute vector at each superblock
        // boundary, and the (absolute − superblock) delta at every
        // position.
        let deltas = if block <= 256 {
            let mut deltas = vec![0u8; (n + 1) * stored_k];
            build_pass(&symbols, k, block, &mut supers, &mut running, |i, c, d| {
                debug_assert!(d < 256);
                deltas[i * stored_k + c] = d as u8;
            });
            DeltaTier::U8(deltas.into())
        } else {
            let mut deltas = vec![0u16; (n + 1) * stored_k];
            build_pass(&symbols, k, block, &mut supers, &mut running, |i, c, d| {
                debug_assert!(d < (1 << 16));
                deltas[i * stored_k + c] = d as u16;
            });
            DeltaTier::U16(deltas.into())
        };
        Ok(Self {
            supers: supers.into(),
            deltas,
            symbols: symbols.into(),
            n,
            k,
            stored_k,
            block_shift: block.trailing_zeros(),
        })
    }

    /// Sequence length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying symbol string.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// The symbol at `index` (panics when out of bounds).
    pub fn symbol(&self, index: usize) -> u8 {
        self.symbols[index]
    }

    /// Superblock spacing `B`.
    pub fn block(&self) -> usize {
        1 << self.block_shift
    }

    /// Bytes held by the two-level table (superblocks + deltas, excluding
    /// the symbol string both layouts share).
    pub fn index_bytes(&self) -> usize {
        self.supers.len() * std::mem::size_of::<u32>() + self.deltas.bytes()
    }

    /// The raw superblock absolutes — the snapshot writer's section view.
    pub(crate) fn supers(&self) -> &[u32] {
        &self.supers
    }

    /// The raw delta tier — the snapshot writer's section view.
    pub(crate) fn deltas(&self) -> &DeltaTier {
        &self.deltas
    }

    /// Reassemble from snapshot sections: superblock absolutes, the delta
    /// tier, and the symbol string (owned vectors from the bulk-read
    /// loader, or mapped views from the zero-copy loader). Validates
    /// shape (section lengths and block spacing); payload integrity is
    /// the snapshot checksums' job.
    pub(crate) fn from_sections(
        supers: Store<u32>,
        deltas: DeltaTier,
        symbols: Store<u8>,
        k: usize,
        block: usize,
    ) -> Result<Self> {
        if !is_valid_block(block) {
            return Err(Error::Snapshot {
                details: format!(
                    "superblock spacing {block} is not a power of two in 1..={MAX_BLOCK}"
                ),
            });
        }
        let expected_tier = if block <= 256 { 1usize } else { 2 };
        let actual_tier = match &deltas {
            DeltaTier::U8(_) => 1,
            DeltaTier::U16(_) => 2,
        };
        if expected_tier != actual_tier {
            return Err(Error::Snapshot {
                details: format!(
                    "delta tier width {actual_tier} does not match block spacing {block} \
                     (expected width {expected_tier})"
                ),
            });
        }
        let n = symbols.len();
        let stored_k = k - 1;
        let num_supers = n / block + 1;
        if supers.len() != num_supers * k {
            return Err(Error::Snapshot {
                details: format!(
                    "superblock table holds {} entries, expected (n/B + 1)·k = {}",
                    supers.len(),
                    num_supers * k
                ),
            });
        }
        let delta_entries = match &deltas {
            DeltaTier::U8(v) => v.len(),
            DeltaTier::U16(v) => v.len(),
        };
        if delta_entries != (n + 1) * stored_k {
            return Err(Error::Snapshot {
                details: format!(
                    "delta table holds {delta_entries} entries, expected (n + 1)·(k − 1) = {}",
                    (n + 1) * stored_k
                ),
            });
        }
        Ok(Self {
            supers,
            deltas,
            symbols,
            n,
            k,
            stored_k,
            block_shift: block.trailing_zeros(),
        })
    }

    /// Number of occurrences of character `c` in `S[start..end)`.
    #[inline]
    pub fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        debug_assert!(c < self.k && start <= end && end <= self.n);
        if c < self.stored_k {
            self.absolute_stored(c, end) - self.absolute_stored(c, start)
        } else {
            // Last character: derive from the in-block offsets and the
            // stored columns' sums.
            self.absolute_last(end) - self.absolute_last(start)
        }
    }

    /// `prefix(c, i)` for a stored column `c < k − 1`.
    #[inline]
    fn absolute_stored(&self, c: usize, i: usize) -> u32 {
        let sup = self.supers[(i >> self.block_shift) * self.k + c];
        let d = match &self.deltas {
            DeltaTier::U8(v) => u32::from(v[i * self.stored_k + c]),
            DeltaTier::U16(v) => u32::from(v[i * self.stored_k + c]),
        };
        sup + d
    }

    /// `prefix(k − 1, i)`: superblock absolute plus the derived delta
    /// (in-block offset minus the stored columns' deltas).
    #[inline]
    fn absolute_last(&self, i: usize) -> u32 {
        let sb = i >> self.block_shift;
        let sup = self.supers[sb * self.k + (self.k - 1)];
        let offset = (i - (sb << self.block_shift)) as u32;
        let row = i * self.stored_k;
        let stored_sum: u32 = match &self.deltas {
            DeltaTier::U8(v) => v[row..row + self.stored_k]
                .iter()
                .map(|&d| u32::from(d))
                .sum(),
            DeltaTier::U16(v) => v[row..row + self.stored_k]
                .iter()
                .map(|&d| u32::from(d))
                .sum(),
        };
        sup + (offset - stored_sum)
    }

    /// Fill `buf` (length `k`) with the count vector of `S[start..end)`.
    #[inline]
    pub fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        buf.fill(0);
        self.accumulate_counts(start, end, buf);
    }

    /// Add the count vector of `S[start..end)` into `buf` (length `k`) —
    /// the scan kernels' post-skip resync: two superblock rows (almost
    /// always cache-resident) plus two byte-packed delta rows, swept in
    /// one unrolled pass that derives the last character from the in-block
    /// offsets.
    #[inline]
    pub fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n);
        match &self.deltas {
            DeltaTier::U8(v) => self.accumulate_impl(&v[..], start, end, buf),
            DeltaTier::U16(v) => self.accumulate_impl(&v[..], start, end, buf),
        }
    }

    /// The tier-generic resync sweep (monomorphized per delta width).
    ///
    /// For `stored_k ≥ 8` the stored-column sweep runs through the
    /// vectorized widening kernel in [`crate::simd`] (AVX2 `u8`/`u16` →
    /// `u32` lane widening; exact integer arithmetic, bit-identical to
    /// the scalar loop in any lane order).
    #[inline(always)]
    fn accumulate_impl<T: Copy + Into<u32> + crate::simd::WidenRow>(
        &self,
        deltas: &[T],
        start: usize,
        end: usize,
        buf: &mut [u32],
    ) {
        let k = self.k;
        let stored_k = self.stored_k;
        let sb_s = start >> self.block_shift;
        let sb_e = end >> self.block_shift;
        let sup_s = &self.supers[sb_s * k..sb_s * k + k];
        let sup_e = &self.supers[sb_e * k..sb_e * k + k];
        let row_s = &deltas[start * stored_k..start * stored_k + stored_k];
        let row_e = &deltas[end * stored_k..end * stored_k + stored_k];
        let (sum_s, sum_e) = if stored_k >= 8 {
            crate::simd::blocked_stored_diff(&mut buf[..stored_k], sup_s, sup_e, row_s, row_e)
        } else {
            let mut sum_s = 0u32;
            let mut sum_e = 0u32;
            for c in 0..stored_k {
                let ds: u32 = row_s[c].into();
                let de: u32 = row_e[c].into();
                sum_s += ds;
                sum_e += de;
                buf[c] += (sup_e[c] + de) - (sup_s[c] + ds);
            }
            (sum_s, sum_e)
        };
        let off_s = (start - (sb_s << self.block_shift)) as u32;
        let off_e = (end - (sb_e << self.block_shift)) as u32;
        let abs_s = sup_s[stored_k] + (off_s - sum_s);
        let abs_e = sup_e[stored_k] + (off_e - sum_e);
        buf[stored_k] += abs_e - abs_s;
    }
}

/// The shared build sweep: walk the symbols once, snapshotting the running
/// absolute vector at each superblock boundary and emitting the per-
/// position stored-column deltas through `emit(position, column, delta)`.
fn build_pass(
    symbols: &[u8],
    k: usize,
    block: usize,
    supers: &mut [u32],
    running: &mut [u32],
    mut emit: impl FnMut(usize, usize, u32),
) {
    let stored_k = k - 1;
    for i in 0..=symbols.len() {
        let sb = i / block;
        if i % block == 0 {
            supers[sb * k..sb * k + k].copy_from_slice(running);
        }
        let base = &supers[sb * k..sb * k + k];
        for c in 0..stored_k {
            emit(i, c, running[c] - base[c]);
        }
        if i < symbols.len() {
            running[symbols[i] as usize] += 1;
        }
    }
}

impl CountSource for BlockedCounts {
    #[inline]
    fn n(&self) -> usize {
        BlockedCounts::n(self)
    }

    #[inline]
    fn k(&self) -> usize {
        BlockedCounts::k(self)
    }

    #[inline]
    fn symbols(&self) -> &[u8] {
        BlockedCounts::symbols(self)
    }

    #[inline]
    fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        BlockedCounts::count(self, c, start, end)
    }

    #[inline]
    fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        BlockedCounts::fill_counts(self, start, end, buf)
    }

    #[inline]
    fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        BlockedCounts::accumulate_counts(self, start, end, buf)
    }

    #[inline]
    fn index_bytes(&self) -> usize {
        BlockedCounts::index_bytes(self)
    }
}

// ---------------------------------------------------------------------------
// The growable (streaming) layout.
// ---------------------------------------------------------------------------

/// Growable column-major prefix counts — the append-only sibling of
/// [`PrefixCounts`], shared by the streaming miner and anything else that
/// consumes symbols one at a time.
///
/// Same layout (`table[i·k + c]`, all `k` counts of one position
/// adjacent), same cache behaviour: a resync after a pruning jump touches
/// one or two cache lines instead of `k` distant rows. Appending one
/// symbol copies the last column and bumps one entry — `O(k)`, amortized
/// `O(1)` reallocations. A fully-consumed stream freezes into either
/// offline layout ([`GrowableCounts::into_index`]).
#[derive(Debug, Clone)]
pub struct GrowableCounts {
    /// Column-major `(n + 1) × k` table; `table[i·k + c]` = occurrences of
    /// `c` in the first `i` symbols.
    table: Vec<u32>,
    /// The symbols themselves (for `O(1)` single-step count updates).
    symbols: Vec<u8>,
    k: usize,
}

impl GrowableCounts {
    /// An empty table over an alphabet of size `k`.
    pub fn new(k: usize) -> Self {
        Self {
            table: vec![0u32; k],
            symbols: Vec::new(),
            k,
        }
    }

    /// Number of symbols consumed.
    pub fn n(&self) -> usize {
        self.symbols.len()
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether no symbol has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols consumed so far.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Bytes held by the growable table.
    pub fn index_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Append one symbol (the caller guarantees `symbol < k`).
    pub fn push(&mut self, symbol: u8) {
        debug_assert!((symbol as usize) < self.k);
        let n = self.symbols.len();
        let k = self.k;
        // Copy column n to column n+1, bumping the entry of `symbol`.
        self.table.extend_from_within(n * k..(n + 1) * k);
        self.table[(n + 1) * k + symbol as usize] += 1;
        self.symbols.push(symbol);
    }

    /// Number of occurrences of character `c` in the range `[start, end)`.
    #[inline]
    pub fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        debug_assert!(c < self.k && start <= end && end <= self.n());
        self.table[end * self.k + c] - self.table[start * self.k + c]
    }

    /// Fill `buf` (length `k`) with the count vector of `[start, end)`.
    #[inline]
    pub fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n());
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot = hi - lo;
        }
    }

    /// Add the count vector of `[start, end)` into `buf` (length `k`) —
    /// the streaming scan's post-skip resync.
    #[inline]
    pub fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n());
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot += hi - lo;
        }
    }

    /// Freeze into a [`PrefixCounts`] (same layout — a pair of moves), so
    /// a fully-consumed stream can be handed to an offline
    /// [`crate::Engine`] without rebuilding the table.
    pub fn into_prefix_counts(self) -> PrefixCounts {
        let n = self.symbols.len();
        PrefixCounts {
            table: self.table.into(),
            symbols: self.symbols.into(),
            n,
            k: self.k,
        }
    }

    /// Freeze into a [`BlockedCounts`] (rebuilds the two-level table from
    /// the consumed symbols in one `O(k·n)` pass, then drops the 4×
    /// larger growable table).
    pub fn into_blocked_counts(self) -> BlockedCounts {
        BlockedCounts::from_symbols_vec(self.symbols, self.k, DEFAULT_BLOCK)
            .expect("default block spacing is always valid")
    }

    /// Freeze into a [`CountsIndex`] in the requested layout (`Auto`
    /// resolves by footprint, exactly as [`CountsIndex::build`] does).
    ///
    /// The flat path freezes **in place**: the already-built column-major
    /// table and symbol vector move into the index untouched — no copy,
    /// no reallocation, even when the vectors carry amortized-growth
    /// slack capacity (pinned by `growable_flat_freeze_is_in_place`).
    pub fn into_index(self, layout: CountsLayout) -> CountsIndex {
        match layout.resolve(self.n(), self.k) {
            CountsLayout::Blocked => CountsIndex::Blocked(self.into_blocked_counts()),
            _ => CountsIndex::Flat(self.into_prefix_counts()),
        }
    }

    /// Freeze a point-in-time snapshot **without ending ingestion**: the
    /// returned index owns exact-capacity copies of the consumed stream
    /// (no amortized-growth slack is carried into the frozen snapshot),
    /// and `self` keeps appending. This is the live-document freeze path:
    /// one call per snapshot generation while the appender keeps going.
    pub fn freeze_index(&self, layout: CountsLayout) -> CountsIndex {
        let n = self.symbols.len();
        match layout.resolve(n, self.k) {
            CountsLayout::Blocked => CountsIndex::Blocked(
                BlockedCounts::from_symbols_vec(
                    self.symbols.as_slice().to_vec(),
                    self.k,
                    DEFAULT_BLOCK,
                )
                .expect("default block spacing is always valid"),
            ),
            _ => CountsIndex::Flat(PrefixCounts {
                table: self.table.as_slice().to_vec().into(),
                symbols: self.symbols.as_slice().to_vec().into(),
                n,
                k: self.k,
            }),
        }
    }
}

impl CountSource for GrowableCounts {
    #[inline]
    fn n(&self) -> usize {
        GrowableCounts::n(self)
    }

    #[inline]
    fn k(&self) -> usize {
        GrowableCounts::k(self)
    }

    #[inline]
    fn symbols(&self) -> &[u8] {
        GrowableCounts::symbols(self)
    }

    #[inline]
    fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        GrowableCounts::count(self, c, start, end)
    }

    #[inline]
    fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        GrowableCounts::fill_counts(self, start, end, buf)
    }

    #[inline]
    fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        GrowableCounts::accumulate_counts(self, start, end, buf)
    }

    #[inline]
    fn index_bytes(&self) -> usize {
        GrowableCounts::index_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Sequence;

    fn demo_seq() -> Sequence {
        // 0 1 1 2 0 2 2 1
        Sequence::from_symbols(vec![0, 1, 1, 2, 0, 2, 2, 1], 3).unwrap()
    }

    fn pseudo_random_symbols(n: usize, k: usize, seed: u64) -> Vec<u8> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % k as u64) as u8
            })
            .collect()
    }

    #[test]
    fn counts_match_direct_counting() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.n(), 8);
        assert_eq!(pc.k(), 3);
        for start in 0..=seq.len() {
            for end in start..=seq.len() {
                let direct = seq.count_vector(start, end);
                let via_prefix = pc.count_vector(start, end);
                assert_eq!(direct, via_prefix, "range {start}..{end}");
            }
        }
    }

    #[test]
    fn individual_count_queries() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.count(0, 0, 8), 2);
        assert_eq!(pc.count(1, 0, 8), 3);
        assert_eq!(pc.count(2, 0, 8), 3);
        assert_eq!(pc.count(2, 3, 4), 1);
        assert_eq!(pc.count(2, 4, 4), 0);
        assert_eq!(pc.count(0, 1, 4), 0);
    }

    #[test]
    fn counts_sum_to_range_length() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        for start in 0..seq.len() {
            for end in start..=seq.len() {
                let total: u32 = pc.count_vector(start, end).iter().sum();
                assert_eq!(total as usize, end - start);
            }
        }
    }

    #[test]
    fn retains_symbols() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.symbols(), seq.symbols());
        assert_eq!(pc.symbol(3), 2);
    }

    #[test]
    fn fill_counts_reuses_buffer() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        let mut buf = vec![99u32; 3];
        pc.fill_counts(2, 6, &mut buf);
        assert_eq!(buf, vec![1, 1, 2]);
    }

    #[test]
    fn accumulate_adds_range_deltas() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        let mut buf = vec![0u32; 3];
        pc.fill_counts(1, 3, &mut buf);
        pc.accumulate_counts(3, 6, &mut buf);
        assert_eq!(buf, pc.count_vector(1, 6));
    }

    #[test]
    fn blocked_matches_flat_on_every_range() {
        for &block in &[1usize, 2, 4, 8, 32, 256, 512, 1024] {
            let symbols = pseudo_random_symbols(600, 3, 0xB10C ^ block as u64);
            let seq = Sequence::from_symbols(symbols, 3).unwrap();
            let pc = PrefixCounts::build(&seq);
            let bc = BlockedCounts::with_block(&seq, block).unwrap();
            assert_eq!(bc.n(), pc.n());
            assert_eq!(bc.k(), pc.k());
            assert_eq!(bc.block(), block);
            assert_eq!(bc.symbols(), pc.symbols());
            let mut fb = vec![0u32; 3];
            let mut bb = vec![0u32; 3];
            for start in (0..=seq.len()).step_by(7) {
                for end in (start..=seq.len()).step_by(5) {
                    for c in 0..3 {
                        assert_eq!(
                            bc.count(c, start, end),
                            pc.count(c, start, end),
                            "block {block}: count({c}, {start}, {end})"
                        );
                    }
                    pc.fill_counts(start, end, &mut fb);
                    bc.fill_counts(start, end, &mut bb);
                    assert_eq!(fb, bb, "block {block}: fill({start}, {end})");
                }
            }
        }
    }

    #[test]
    fn blocked_accumulate_matches_flat() {
        let symbols = pseudo_random_symbols(500, 4, 0xACC);
        let seq = Sequence::from_symbols(symbols, 4).unwrap();
        let pc = PrefixCounts::build(&seq);
        let bc = BlockedCounts::with_block(&seq, 64).unwrap();
        let mut fb = vec![0u32; 4];
        let mut bb = vec![0u32; 4];
        pc.fill_counts(3, 90, &mut fb);
        bc.fill_counts(3, 90, &mut bb);
        pc.accumulate_counts(90, 411, &mut fb);
        bc.accumulate_counts(90, 411, &mut bb);
        assert_eq!(fb, bb);
        assert_eq!(fb, pc.count_vector(3, 411));
    }

    #[test]
    fn blocked_u16_escape_tier() {
        let symbols = pseudo_random_symbols(3000, 2, 0xE5C);
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let bc = BlockedCounts::with_block(&seq, 2048).unwrap();
        for start in (0..=seq.len()).step_by(101) {
            for end in (start..=seq.len()).step_by(67) {
                for c in 0..2 {
                    assert_eq!(bc.count(c, start, end), pc.count(c, start, end));
                }
            }
        }
        // u16 tier: ~2(k−1) bytes per position plus superblocks.
        assert!(bc.index_bytes() < pc.index_bytes());
    }

    #[test]
    fn blocked_rejects_bad_block_sizes() {
        let seq = demo_seq();
        assert!(BlockedCounts::with_block(&seq, 0).is_err());
        assert!(BlockedCounts::with_block(&seq, 3).is_err());
        assert!(BlockedCounts::with_block(&seq, 300).is_err());
        assert!(BlockedCounts::with_block(&seq, 2 * MAX_BLOCK).is_err());
        assert!(BlockedCounts::with_block(&seq, MAX_BLOCK).is_ok());
    }

    #[test]
    fn blocked_footprint_is_at_least_4x_smaller() {
        // k = 4 (DNA): flat is 16 B/pos, blocked ~3.06 B/pos → >5×.
        let symbols = pseudo_random_symbols(100_000, 4, 0xF00);
        let seq = Sequence::from_symbols(symbols, 4).unwrap();
        let pc = PrefixCounts::build(&seq);
        let bc = BlockedCounts::build(&seq);
        let ratio = pc.index_bytes() as f64 / bc.index_bytes() as f64;
        assert!(ratio >= 4.0, "footprint ratio {ratio}");
        // k = 2: flat 8 B/pos, blocked ~1.03 B/pos → >7×.
        let symbols = pseudo_random_symbols(100_000, 2, 0xF01);
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        let ratio = PrefixCounts::build(&seq).index_bytes() as f64
            / BlockedCounts::build(&seq).index_bytes() as f64;
        assert!(ratio >= 7.0, "k=2 footprint ratio {ratio}");
    }

    #[test]
    fn layout_auto_resolves_by_footprint() {
        assert_eq!(CountsLayout::Flat.resolve(1 << 30, 4), CountsLayout::Flat);
        assert_eq!(CountsLayout::Blocked.resolve(10, 2), CountsLayout::Blocked);
        assert_eq!(CountsLayout::Auto.resolve(1000, 4), CountsLayout::Flat);
        assert_eq!(
            CountsLayout::Auto.resolve(AUTO_BLOCKED_THRESHOLD_BYTES, 4),
            CountsLayout::Blocked
        );
    }

    #[test]
    fn counts_index_delegates_both_layouts() {
        let seq = demo_seq();
        for layout in [CountsLayout::Flat, CountsLayout::Blocked] {
            let index = CountsIndex::build(&seq, layout);
            assert_eq!(index.layout(), layout);
            assert_eq!(CountSource::n(&index), 8);
            assert_eq!(CountSource::k(&index), 3);
            assert_eq!(CountSource::symbols(&index), seq.symbols());
            assert_eq!(CountSource::count(&index, 2, 3, 4), 1);
            let mut buf = vec![0u32; 3];
            index.fill_counts(2, 6, &mut buf);
            assert_eq!(buf, vec![1, 1, 2]);
            index.accumulate_counts(6, 8, &mut buf);
            assert_eq!(buf, vec![1, 2, 3]);
            assert!(index.index_bytes() > 0);
        }
        // Auto on a tiny sequence resolves flat.
        assert_eq!(
            CountsIndex::build(&seq, CountsLayout::Auto).layout(),
            CountsLayout::Flat
        );
    }

    #[test]
    fn growable_matches_static_table_after_every_push() {
        let seq = demo_seq();
        let mut gc = GrowableCounts::new(3);
        assert!(gc.is_empty());
        for (t, &s) in seq.symbols().iter().enumerate() {
            gc.push(s);
            assert_eq!(gc.n(), t + 1);
            let frozen = Sequence::from_symbols(seq.symbols()[..=t].to_vec(), 3).unwrap();
            let pc = PrefixCounts::build(&frozen);
            for start in 0..=gc.n() {
                for end in start..=gc.n() {
                    for c in 0..3 {
                        assert_eq!(gc.count(c, start, end), pc.count(c, start, end));
                    }
                }
            }
        }
        assert_eq!(gc.symbols(), seq.symbols());
    }

    #[test]
    fn growable_fill_and_accumulate() {
        let seq = demo_seq();
        let mut gc = GrowableCounts::new(3);
        for &s in seq.symbols() {
            gc.push(s);
        }
        let pc = PrefixCounts::build(&seq);
        let mut a = vec![0u32; 3];
        let mut b = vec![0u32; 3];
        gc.fill_counts(2, 5, &mut a);
        pc.fill_counts(2, 5, &mut b);
        assert_eq!(a, b);
        gc.accumulate_counts(5, 8, &mut a);
        assert_eq!(a, pc.count_vector(2, 8));
    }

    #[test]
    fn growable_freezes_into_prefix_counts() {
        let seq = demo_seq();
        let mut gc = GrowableCounts::new(3);
        for &s in seq.symbols() {
            gc.push(s);
        }
        let frozen = gc.into_prefix_counts();
        let built = PrefixCounts::build(&seq);
        assert_eq!(frozen.n(), built.n());
        assert_eq!(frozen.k(), built.k());
        assert_eq!(frozen.symbols(), built.symbols());
        for start in 0..=seq.len() {
            for end in start..=seq.len() {
                assert_eq!(
                    frozen.count_vector(start, end),
                    built.count_vector(start, end)
                );
            }
        }
    }

    #[test]
    fn growable_freezes_into_blocked_counts() {
        let seq = demo_seq();
        let mut gc = GrowableCounts::new(3);
        for &s in seq.symbols() {
            gc.push(s);
        }
        let frozen = gc.into_blocked_counts();
        let built = PrefixCounts::build(&seq);
        assert_eq!(frozen.n(), built.n());
        assert_eq!(frozen.symbols(), built.symbols());
        for start in 0..=seq.len() {
            for end in start..=seq.len() {
                for c in 0..3 {
                    assert_eq!(frozen.count(c, start, end), built.count(c, start, end));
                }
            }
        }
    }

    #[test]
    fn growable_into_index_resolves_layout() {
        let mut gc = GrowableCounts::new(2);
        for s in [0u8, 1, 1, 0, 1] {
            gc.push(s);
        }
        assert_eq!(
            gc.clone().into_index(CountsLayout::Flat).layout(),
            CountsLayout::Flat
        );
        assert_eq!(
            gc.clone().into_index(CountsLayout::Blocked).layout(),
            CountsLayout::Blocked
        );
        // Tiny stream: Auto stays flat (a pure move).
        assert_eq!(
            gc.into_index(CountsLayout::Auto).layout(),
            CountsLayout::Flat
        );
    }

    #[test]
    fn growable_flat_freeze_is_in_place() {
        // The flat freeze must hand over the already-built buffers — no
        // copy, no reallocation — even though amortized growth left the
        // vectors with slack capacity. Pin with pointer identity.
        let mut gc = GrowableCounts::new(3);
        for &s in pseudo_random_symbols(257, 3, 0xF00D).iter() {
            gc.push(s);
        }
        assert!(
            gc.table.capacity() > gc.table.len(),
            "growth slack expected for this test to be meaningful"
        );
        let table_ptr = gc.table.as_ptr();
        let symbols_ptr = gc.symbols.as_ptr();
        match gc.into_index(CountsLayout::Flat) {
            CountsIndex::Flat(pc) => {
                assert_eq!(pc.table.as_ptr(), table_ptr, "table was reallocated");
                assert_eq!(pc.symbols.as_ptr(), symbols_ptr, "symbols were reallocated");
            }
            other => panic!("flat freeze produced {:?} layout", other.layout()),
        }
    }

    #[test]
    fn growable_freeze_index_snapshots_without_consuming() {
        // freeze_index leaves the growable usable for further appends,
        // and the snapshot agrees with a from-scratch build — in both
        // layouts, with exact (slack-free) capacity on the flat path.
        let symbols = pseudo_random_symbols(200, 3, 0xBEEF);
        let mut gc = GrowableCounts::new(3);
        for &s in &symbols[..150] {
            gc.push(s);
        }
        for &layout in &[CountsLayout::Flat, CountsLayout::Blocked] {
            let snap = gc.freeze_index(layout);
            assert_eq!(snap.layout(), layout);
            assert_eq!(snap.n(), 150);
            let frozen = Sequence::from_symbols(symbols[..150].to_vec(), 3).unwrap();
            let built = PrefixCounts::build(&frozen);
            for start in (0..=150).step_by(7) {
                for end in (start..=150).step_by(11) {
                    for c in 0..3 {
                        assert_eq!(snap.count(c, start, end), built.count(c, start, end));
                    }
                }
            }
        }
        if let CountsIndex::Flat(pc) = gc.freeze_index(CountsLayout::Flat) {
            if let Store::Owned(v) = &pc.table {
                assert_eq!(v.capacity(), v.len(), "snapshot carries growth slack");
            }
        }
        // The stream keeps appending after each snapshot.
        for &s in &symbols[150..] {
            gc.push(s);
        }
        assert_eq!(gc.n(), 200);
        let full = Sequence::from_symbols(symbols.clone(), 3).unwrap();
        let built = PrefixCounts::build(&full);
        for c in 0..3 {
            assert_eq!(gc.count(c, 0, 200), built.count(c, 0, 200));
        }
    }
}
