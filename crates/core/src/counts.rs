//! Prefix count arrays — `O(1)` substring count vectors.
//!
//! The paper (§2) notes that `X²` needs only the character counts of a
//! substring, obtainable in `O(1)` from `k` precomputed count arrays where
//! entry `i` stores the number of occurrences of the character in the first
//! `i` positions.
//!
//! # Layout
//!
//! The table is stored **column-major** (`table[i·k + c]`): all `k`
//! prefix counts of one position are adjacent. The pruned scan jumps
//! hundreds of positions per step on average, so every prefix lookup is a
//! cache miss — with this layout a full `k`-count resync touches one or
//! two cache lines instead of `k` distant rows (which halves the scan's
//! memory traffic at `k = 2` and cuts it ~4× at `k = 8`).

use crate::seq::Sequence;

/// Prefix counts of a sequence: `count(c, i, j)` in `O(1)`.
///
/// Also retains a copy of the symbol string itself: the incremental scan
/// kernel advances its count vector by reading single symbols (`O(1)` per
/// step) and only falls back to prefix-table differences to resync after
/// a skip.
#[derive(Debug, Clone)]
pub struct PrefixCounts {
    /// Column-major `(n + 1) × k` table; `table[i·k + c]` = occurrences of
    /// `c` in `S[0..i)`.
    table: Vec<u32>,
    /// The symbols themselves (for `O(1)` single-step count updates).
    symbols: Vec<u8>,
    n: usize,
    k: usize,
}

impl PrefixCounts {
    /// Build the table in `O(k·n)` time and space.
    pub fn build(seq: &Sequence) -> Self {
        let n = seq.len();
        let k = seq.k();
        let mut table = vec![0u32; k * (n + 1)];
        for (i, &s) in seq.symbols().iter().enumerate() {
            // Copy column i to column i+1, bumping the entry of s.
            let (prev, next) = table[i * k..(i + 2) * k].split_at_mut(k);
            next.copy_from_slice(prev);
            next[s as usize] += 1;
        }
        Self {
            table,
            symbols: seq.symbols().to_vec(),
            n,
            k,
        }
    }

    /// Sequence length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying symbol string.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// The symbol at `index` (panics when out of bounds).
    pub fn symbol(&self, index: usize) -> u8 {
        self.symbols[index]
    }

    /// Number of occurrences of character `c` in `S[start..end)`.
    ///
    /// Panics (in debug builds) when the range or character is invalid.
    #[inline]
    pub fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        debug_assert!(c < self.k && start <= end && end <= self.n);
        self.table[end * self.k + c] - self.table[start * self.k + c]
    }

    /// Fill `buf` (length `k`) with the count vector of `S[start..end)`.
    #[inline]
    pub fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n);
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot = hi - lo;
        }
    }

    /// Add the count vector of `S[start..end)` into `buf` (length `k`) —
    /// the scan kernels' post-skip resync.
    #[inline]
    pub fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n);
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot += hi - lo;
        }
    }

    /// The count vector of `S[start..end)` as a fresh vector.
    pub fn count_vector(&self, start: usize, end: usize) -> Vec<u32> {
        let mut buf = vec![0u32; self.k];
        self.fill_counts(start, end, &mut buf);
        buf
    }
}

/// Growable column-major prefix counts — the append-only sibling of
/// [`PrefixCounts`], shared by the streaming miner and anything else that
/// consumes symbols one at a time.
///
/// Same layout (`table[i·k + c]`, all `k` counts of one position
/// adjacent), same cache behaviour: a resync after a pruning jump touches
/// one or two cache lines instead of `k` distant rows. Appending one
/// symbol copies the last column and bumps one entry — `O(k)`, amortized
/// `O(1)` reallocations.
#[derive(Debug, Clone)]
pub struct GrowableCounts {
    /// Column-major `(n + 1) × k` table; `table[i·k + c]` = occurrences of
    /// `c` in the first `i` symbols.
    table: Vec<u32>,
    /// The symbols themselves (for `O(1)` single-step count updates).
    symbols: Vec<u8>,
    k: usize,
}

impl GrowableCounts {
    /// An empty table over an alphabet of size `k`.
    pub fn new(k: usize) -> Self {
        Self {
            table: vec![0u32; k],
            symbols: Vec::new(),
            k,
        }
    }

    /// Number of symbols consumed.
    pub fn n(&self) -> usize {
        self.symbols.len()
    }

    /// Alphabet size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether no symbol has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// The symbols consumed so far.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// Append one symbol (the caller guarantees `symbol < k`).
    pub fn push(&mut self, symbol: u8) {
        debug_assert!((symbol as usize) < self.k);
        let n = self.symbols.len();
        let k = self.k;
        // Copy column n to column n+1, bumping the entry of `symbol`.
        self.table.extend_from_within(n * k..(n + 1) * k);
        self.table[(n + 1) * k + symbol as usize] += 1;
        self.symbols.push(symbol);
    }

    /// Number of occurrences of character `c` in the range `[start, end)`.
    #[inline]
    pub fn count(&self, c: usize, start: usize, end: usize) -> u32 {
        debug_assert!(c < self.k && start <= end && end <= self.n());
        self.table[end * self.k + c] - self.table[start * self.k + c]
    }

    /// Fill `buf` (length `k`) with the count vector of `[start, end)`.
    #[inline]
    pub fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n());
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot = hi - lo;
        }
    }

    /// Add the count vector of `[start, end)` into `buf` (length `k`) —
    /// the streaming scan's post-skip resync.
    #[inline]
    pub fn accumulate_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        debug_assert!(start <= end && end <= self.n());
        let k = self.k;
        let from = &self.table[start * k..start * k + k];
        let to = &self.table[end * k..end * k + k];
        for ((slot, &hi), &lo) in buf.iter_mut().zip(to).zip(from) {
            *slot += hi - lo;
        }
    }

    /// Freeze into a [`PrefixCounts`] (same layout — a pair of moves), so
    /// a fully-consumed stream can be handed to an offline
    /// [`crate::Engine`] without rebuilding the table.
    pub fn into_prefix_counts(self) -> PrefixCounts {
        let n = self.symbols.len();
        PrefixCounts {
            table: self.table,
            symbols: self.symbols,
            n,
            k: self.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Sequence;

    fn demo_seq() -> Sequence {
        // 0 1 1 2 0 2 2 1
        Sequence::from_symbols(vec![0, 1, 1, 2, 0, 2, 2, 1], 3).unwrap()
    }

    #[test]
    fn counts_match_direct_counting() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.n(), 8);
        assert_eq!(pc.k(), 3);
        for start in 0..=seq.len() {
            for end in start..=seq.len() {
                let direct = seq.count_vector(start, end);
                let via_prefix = pc.count_vector(start, end);
                assert_eq!(direct, via_prefix, "range {start}..{end}");
            }
        }
    }

    #[test]
    fn individual_count_queries() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.count(0, 0, 8), 2);
        assert_eq!(pc.count(1, 0, 8), 3);
        assert_eq!(pc.count(2, 0, 8), 3);
        assert_eq!(pc.count(2, 3, 4), 1);
        assert_eq!(pc.count(2, 4, 4), 0);
        assert_eq!(pc.count(0, 1, 4), 0);
    }

    #[test]
    fn counts_sum_to_range_length() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        for start in 0..seq.len() {
            for end in start..=seq.len() {
                let total: u32 = pc.count_vector(start, end).iter().sum();
                assert_eq!(total as usize, end - start);
            }
        }
    }

    #[test]
    fn retains_symbols() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        assert_eq!(pc.symbols(), seq.symbols());
        assert_eq!(pc.symbol(3), 2);
    }

    #[test]
    fn fill_counts_reuses_buffer() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        let mut buf = vec![99u32; 3];
        pc.fill_counts(2, 6, &mut buf);
        assert_eq!(buf, vec![1, 1, 2]);
    }

    #[test]
    fn accumulate_adds_range_deltas() {
        let seq = demo_seq();
        let pc = PrefixCounts::build(&seq);
        let mut buf = vec![0u32; 3];
        pc.fill_counts(1, 3, &mut buf);
        pc.accumulate_counts(3, 6, &mut buf);
        assert_eq!(buf, pc.count_vector(1, 6));
    }

    #[test]
    fn growable_matches_static_table_after_every_push() {
        let seq = demo_seq();
        let mut gc = GrowableCounts::new(3);
        assert!(gc.is_empty());
        for (t, &s) in seq.symbols().iter().enumerate() {
            gc.push(s);
            assert_eq!(gc.n(), t + 1);
            let frozen = Sequence::from_symbols(seq.symbols()[..=t].to_vec(), 3).unwrap();
            let pc = PrefixCounts::build(&frozen);
            for start in 0..=gc.n() {
                for end in start..=gc.n() {
                    for c in 0..3 {
                        assert_eq!(gc.count(c, start, end), pc.count(c, start, end));
                    }
                }
            }
        }
        assert_eq!(gc.symbols(), seq.symbols());
    }

    #[test]
    fn growable_fill_and_accumulate() {
        let seq = demo_seq();
        let mut gc = GrowableCounts::new(3);
        for &s in seq.symbols() {
            gc.push(s);
        }
        let pc = PrefixCounts::build(&seq);
        let mut a = vec![0u32; 3];
        let mut b = vec![0u32; 3];
        gc.fill_counts(2, 5, &mut a);
        pc.fill_counts(2, 5, &mut b);
        assert_eq!(a, b);
        gc.accumulate_counts(5, 8, &mut a);
        assert_eq!(a, pc.count_vector(2, 8));
    }

    #[test]
    fn growable_freezes_into_prefix_counts() {
        let seq = demo_seq();
        let mut gc = GrowableCounts::new(3);
        for &s in seq.symbols() {
            gc.push(s);
        }
        let frozen = gc.into_prefix_counts();
        let built = PrefixCounts::build(&seq);
        assert_eq!(frozen.n(), built.n());
        assert_eq!(frozen.k(), built.k());
        assert_eq!(frozen.symbols(), built.symbols());
        for start in 0..=seq.len() {
            for end in start..=seq.len() {
                assert_eq!(
                    frozen.count_vector(start, end),
                    built.count_vector(start, end)
                );
            }
        }
    }
}
