//! Chi-square scoring of substrings (paper Eq. 5) and the [`Scored`]
//! result type.

use crate::counts::CountSource;
use crate::model::Model;

/// Pearson's `X²` of a count vector under a model, in the simplified form
/// of paper Eq. 5: `X² = Σ Y_i² / (l·p_i) − l` where `l = Σ Y_i`.
///
/// Returns 0 for the empty configuration.
#[inline]
pub fn chi_square_counts(counts: &[u32], model: &Model) -> f64 {
    debug_assert_eq!(counts.len(), model.k());
    let l: u32 = counts.iter().sum();
    chi_square_counts_with_len(counts, model.inv_probs(), f64::from(l))
}

/// The weighted square sum `Σ Y_i²/p_i` — the shared accumulation every
/// scoring path is built on.
///
/// The summation order is fixed (index-ascending), so every caller —
/// kernels, baselines, the engine — observes the same floating-point
/// value for the same count vector. Kernels also use this sum directly
/// for the division-free budget pre-filter.
#[inline(always)]
pub fn weighted_square_sum(counts: &[u32], inv_probs: &[f64]) -> f64 {
    debug_assert_eq!(counts.len(), inv_probs.len());
    let mut weighted_sq = 0.0;
    for (&y, &inv_p) in counts.iter().zip(inv_probs) {
        let yf = f64::from(y);
        weighted_sq += yf * yf * inv_p;
    }
    weighted_sq
}

/// The canonical scoring primitive shared by every scan kernel: `X²` from
/// a count vector, the reciprocal-probability table and the (known)
/// substring length.
///
/// All kernels — trivial, generic, alphabet-specialized and parallel —
/// route through this one fixed-order accumulation
/// ([`weighted_square_sum`]), which is what makes their reported `X²`
/// values **bit-identical** for the same substring regardless of the scan
/// path that reached it (see `DESIGN.md`).
#[inline(always)]
pub fn chi_square_counts_with_len(counts: &[u32], inv_probs: &[f64], lf: f64) -> f64 {
    if lf == 0.0 {
        return 0.0;
    }
    weighted_square_sum(counts, inv_probs) / lf - lf
}

/// `X²` of the substring `S[start..end)` via any count index — `O(k)`.
///
/// Allocation-free for `k ≤ 64` (a stack buffer); larger alphabets pay
/// one short-lived heap allocation.
pub fn chi_square_range<C: CountSource>(pc: &C, start: usize, end: usize, model: &Model) -> f64 {
    let k = model.k();
    if k <= 64 {
        let mut buf = [0u32; 64];
        pc.fill_counts(start, end, &mut buf[..k]);
        chi_square_counts(&buf[..k], model)
    } else {
        let mut buf = vec![0u32; k];
        pc.fill_counts(start, end, &mut buf);
        chi_square_counts(&buf, model)
    }
}

/// Incremental scorer: maintains the count vector and the weighted square
/// sum `Σ Y_i²/p_i` so appending one character updates `X²` in `O(1)`
/// (used by the trivial baseline's inner loop and by Lemma-2-style
/// constructions).
#[derive(Debug, Clone)]
pub struct ScoreState {
    counts: Vec<u32>,
    weighted_sq: f64,
    len: u32,
}

impl ScoreState {
    /// Empty state over an alphabet of size `k`.
    pub fn new(k: usize) -> Self {
        Self {
            counts: vec![0; k],
            weighted_sq: 0.0,
            len: 0,
        }
    }

    /// Reset to the empty configuration (reusing the allocation).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.weighted_sq = 0.0;
        self.len = 0;
    }

    /// Append one character: `Σ Y²/p` gains `(2Y_c + 1)/p_c`.
    #[inline]
    pub fn push(&mut self, c: u8, model: &Model) {
        let idx = c as usize;
        let y = f64::from(self.counts[idx]);
        self.weighted_sq += (2.0 * y + 1.0) * model.inv_probs()[idx];
        self.counts[idx] += 1;
        self.len += 1;
    }

    /// Current substring length.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether no character has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current count vector.
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    /// Current `X²` (0 when empty).
    #[inline]
    pub fn chi_square(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let lf = f64::from(self.len);
        self.weighted_sq / lf - lf
    }
}

/// A scored substring: the half-open range `start..end` and its `X²`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Scored {
    /// Start index (inclusive).
    pub start: usize,
    /// End index (exclusive).
    pub end: usize,
    /// Pearson chi-square statistic of the substring.
    pub chi_square: f64,
}

impl Scored {
    /// Length of the substring.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// P-value of the substring's `X²` under the `χ²(k − 1)` approximation
    /// (paper Theorem 3). `k` is the alphabet size.
    pub fn p_value(&self, k: usize) -> f64 {
        sigstr_stats::pearson::chi_square_p_value(self.chi_square, k)
    }
}

/// Total order on scored substrings: by `X²` (ascending), then by start and
/// end for determinism. Used by heaps and sorting; `NaN` orders via
/// `f64::total_cmp`.
pub fn scored_cmp(a: &Scored, b: &Scored) -> std::cmp::Ordering {
    a.chi_square
        .total_cmp(&b.chi_square)
        .then_with(|| b.start.cmp(&a.start)) // earlier start = "larger" on ties
        .then_with(|| b.end.cmp(&a.end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::PrefixCounts;
    use crate::seq::Sequence;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + b.abs()),
            "left = {a}, right = {b}"
        );
    }

    #[test]
    fn eq5_matches_definition() {
        // X² = Σ (Y − lp)²/(lp) computed longhand.
        let model = Model::from_probs(vec![0.2, 0.3, 0.5]).unwrap();
        let counts = [4u32, 1, 3];
        let l = 8.0;
        let mut direct = 0.0;
        for (c, &y) in counts.iter().enumerate() {
            let e = l * model.p(c);
            direct += (f64::from(y) - e) * (f64::from(y) - e) / e;
        }
        assert_close(chi_square_counts(&counts, &model), direct, 1e-12);
    }

    #[test]
    fn zero_length_scores_zero() {
        let model = Model::uniform(2).unwrap();
        assert_eq!(chi_square_counts(&[0, 0], &model), 0.0);
        assert_eq!(ScoreState::new(2).chi_square(), 0.0);
    }

    #[test]
    fn expected_counts_score_zero() {
        let model = Model::uniform(4).unwrap();
        assert_close(chi_square_counts(&[5, 5, 5, 5], &model), 0.0, 1e-12);
    }

    #[test]
    fn incremental_matches_batch() {
        let model = Model::from_probs(vec![0.1, 0.4, 0.5]).unwrap();
        let symbols = [0u8, 1, 1, 2, 0, 2, 2, 1, 0, 0];
        let mut state = ScoreState::new(3);
        let mut counts = vec![0u32; 3];
        for (i, &s) in symbols.iter().enumerate() {
            state.push(s, &model);
            counts[s as usize] += 1;
            assert_close(
                state.chi_square(),
                chi_square_counts(&counts, &model),
                1e-10,
            );
            assert_eq!(state.len() as usize, i + 1);
            assert_eq!(state.counts(), counts.as_slice());
        }
    }

    #[test]
    fn clear_resets_state() {
        let model = Model::uniform(2).unwrap();
        let mut state = ScoreState::new(2);
        state.push(0, &model);
        state.push(0, &model);
        assert!(state.chi_square() > 0.0);
        state.clear();
        assert!(state.is_empty());
        assert_eq!(state.chi_square(), 0.0);
    }

    #[test]
    fn range_scoring_matches_count_scoring() {
        let seq = Sequence::from_symbols(vec![0, 1, 0, 0, 1, 1, 0], 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let model = Model::from_probs(vec![0.6, 0.4]).unwrap();
        for start in 0..seq.len() {
            for end in (start + 1)..=seq.len() {
                let counts = seq.count_vector(start, end);
                assert_close(
                    chi_square_range(&pc, start, end, &model),
                    chi_square_counts(&counts, &model),
                    1e-12,
                );
            }
        }
    }

    #[test]
    fn order_independence() {
        // The statistic depends only on counts, not symbol order (paper §1).
        let model = Model::from_probs(vec![0.25, 0.75]).unwrap();
        let a = Sequence::from_symbols(vec![0, 0, 1, 1, 1], 2).unwrap();
        let b = Sequence::from_symbols(vec![1, 0, 1, 0, 1], 2).unwrap();
        let ca = a.count_vector(0, 5);
        let cb = b.count_vector(0, 5);
        assert_close(
            chi_square_counts(&ca, &model),
            chi_square_counts(&cb, &model),
            1e-14,
        );
    }

    #[test]
    fn scored_helpers() {
        let s = Scored {
            start: 3,
            end: 10,
            chi_square: 5.0,
        };
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        let p = s.p_value(2);
        assert!((0.0..=1.0).contains(&p));
        // χ²(1) sf at 5.0 ≈ 0.02535
        assert!((p - 0.02534731867746824).abs() < 1e-9);
    }

    #[test]
    fn scored_ordering_deterministic_on_ties() {
        let a = Scored {
            start: 1,
            end: 4,
            chi_square: 2.0,
        };
        let b = Scored {
            start: 2,
            end: 5,
            chi_square: 2.0,
        };
        // Equal X²: the earlier start compares greater (wins max-selection).
        assert_eq!(scored_cmp(&a, &b), std::cmp::Ordering::Greater);
        let c = Scored {
            start: 1,
            end: 4,
            chi_square: 3.0,
        };
        assert_eq!(scored_cmp(&a, &c), std::cmp::Ordering::Less);
    }
}
