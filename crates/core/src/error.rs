//! Error type for the mining library.

use std::fmt;

/// Errors returned by sequence/model construction and the mining
/// algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The input sequence contains no symbols.
    EmptySequence,
    /// The model's alphabet size does not match the sequence's.
    AlphabetMismatch {
        /// Alphabet size of the model.
        model_k: usize,
        /// Alphabet size of the sequence.
        seq_k: usize,
    },
    /// The alphabet must contain at least two characters for the chi-square
    /// statistic to be meaningful (`χ²(k − 1)` needs `k ≥ 2`).
    AlphabetTooSmall {
        /// Offending alphabet size.
        k: usize,
    },
    /// The alphabet exceeds the supported maximum of 256 characters
    /// (symbols are stored as `u8`).
    AlphabetTooLarge {
        /// Offending alphabet size.
        k: usize,
    },
    /// A symbol is outside the declared alphabet `0..k`.
    SymbolOutOfRange {
        /// The offending symbol value.
        symbol: u8,
        /// The declared alphabet size.
        k: usize,
        /// Position of the offending symbol.
        position: usize,
    },
    /// A model probability is not strictly inside `(0, 1)`.
    InvalidProbability {
        /// Index of the offending probability.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The model probabilities do not sum to 1 (within tolerance).
    NotNormalized {
        /// The actual sum.
        sum: f64,
    },
    /// A character of the alphabet never occurs, so its maximum-likelihood
    /// probability estimate would be zero (disallowed — use smoothing).
    ZeroCount {
        /// The character with no occurrences.
        symbol: u8,
    },
    /// A parameter of a mining call is out of range.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// Why it is invalid.
        details: String,
    },
    /// An I/O operation failed (snapshot read/write). The underlying
    /// `std::io::Error` is stringified so this enum stays `Clone` +
    /// `PartialEq`.
    Io {
        /// What was being done (`"read snapshot"`, `"write snapshot"`, …).
        op: &'static str,
        /// The underlying I/O error message.
        details: String,
    },
    /// A snapshot file is malformed: bad magic, unsupported version,
    /// inconsistent header fields, or a checksum mismatch.
    Snapshot {
        /// What failed validation.
        details: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptySequence => write!(f, "sequence is empty"),
            Error::AlphabetMismatch { model_k, seq_k } => write!(
                f,
                "model alphabet size {model_k} does not match sequence alphabet size {seq_k}"
            ),
            Error::AlphabetTooSmall { k } => {
                write!(f, "alphabet size {k} is too small (need k >= 2)")
            }
            Error::AlphabetTooLarge { k } => write!(
                f,
                "alphabet size {k} exceeds the supported maximum of 256 \
                 (symbols are stored as u8)"
            ),
            Error::SymbolOutOfRange {
                symbol,
                k,
                position,
            } => write!(
                f,
                "symbol {symbol} at position {position} is outside alphabet 0..{k}"
            ),
            Error::InvalidProbability { index, value } => write!(
                f,
                "probability p[{index}] = {value} is not strictly inside (0, 1)"
            ),
            Error::NotNormalized { sum } => {
                write!(f, "model probabilities sum to {sum}, expected 1")
            }
            Error::ZeroCount { symbol } => write!(
                f,
                "character {symbol} never occurs; maximum-likelihood estimate would be 0 \
                 (use a smoothed estimate instead)"
            ),
            Error::InvalidParameter { what, details } => {
                write!(f, "invalid parameter `{what}`: {details}")
            }
            Error::Io { op, details } => write!(f, "cannot {op}: {details}"),
            Error::Snapshot { details } => write!(f, "invalid snapshot: {details}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::EmptySequence, "empty"),
            (
                Error::AlphabetMismatch {
                    model_k: 2,
                    seq_k: 3,
                },
                "does not match",
            ),
            (Error::AlphabetTooSmall { k: 1 }, "too small"),
            (Error::AlphabetTooLarge { k: 300 }, "maximum of 256"),
            (
                Error::SymbolOutOfRange {
                    symbol: 9,
                    k: 4,
                    position: 17,
                },
                "position 17",
            ),
            (
                Error::InvalidProbability {
                    index: 1,
                    value: 0.0,
                },
                "p[1]",
            ),
            (Error::NotNormalized { sum: 0.8 }, "0.8"),
            (Error::ZeroCount { symbol: 2 }, "never occurs"),
            (
                Error::InvalidParameter {
                    what: "t",
                    details: "zero".into(),
                },
                "`t`",
            ),
            (
                Error::Io {
                    op: "read snapshot",
                    details: "permission denied".into(),
                },
                "read snapshot",
            ),
            (
                Error::Snapshot {
                    details: "bad magic".into(),
                },
                "bad magic",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&Error::EmptySequence);
    }
}
