//! The pruned scanning engine shared by all four problem variants.
//!
//! Algorithm 1/2/3 and the min-length variant of the paper differ only in
//! (a) the pruning *budget* (running max, top-t floor, or the constant
//! `α₀`) and (b) what they record. The engine factors the common skeleton:
//! iterate start positions right-to-left (the paper's order — the budget
//! warms up on the suffix), scan end positions left-to-right, and after
//! each examined substring jump forward by the Theorem-1 safe skip.

use crate::counts::PrefixCounts;
use crate::model::Model;
use crate::score::{chi_square_counts, Scored};
use crate::skip::max_safe_skip;

/// Instrumentation of a scan.
///
/// `examined` is the paper's "number of iterations" metric (Figs. 1, 4, 6,
/// 7): how many substrings the algorithm actually evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScanStats {
    /// Substrings whose `X²` was computed.
    pub examined: u64,
    /// Number of non-zero skip events.
    pub skips: u64,
    /// Total end positions skipped (substrings pruned without evaluation).
    pub skipped: u64,
}

impl ScanStats {
    /// Merge another stats record into this one (used by the parallel
    /// scan).
    pub fn merge(&mut self, other: &ScanStats) {
        self.examined += other.examined;
        self.skips += other.skips;
        self.skipped += other.skipped;
    }
}

/// A pruning policy: observes every examined substring and exposes the
/// current budget (substrings whose Theorem-1 cover bound stays at or
/// below the budget can be skipped).
pub(crate) trait Policy {
    /// Record an examined substring.
    fn observe(&mut self, scored: Scored);
    /// Current pruning budget.
    fn budget(&self) -> f64;
}

/// Run the pruned scan over all substrings of length ≥ `min_len` starting
/// in `starts` (an iterator of start indices, visited in the given order).
///
/// The caller guarantees `min_len ≥ 1` and that every start `i` satisfies
/// `i + min_len ≤ n`.
pub(crate) fn scan_policy<P: Policy>(
    pc: &PrefixCounts,
    model: &Model,
    min_len: usize,
    starts: impl Iterator<Item = usize>,
    policy: &mut P,
) -> ScanStats {
    let n = pc.n();
    let k = model.k();
    let mut counts = vec![0u32; k];
    let mut stats = ScanStats::default();
    for i in starts {
        debug_assert!(i + min_len <= n);
        let mut end = i + min_len;
        while end <= n {
            pc.fill_counts(i, end, &mut counts);
            let l = end - i;
            let x2 = chi_square_counts(&counts, model);
            stats.examined += 1;
            policy.observe(Scored { start: i, end, chi_square: x2 });
            let budget = policy.budget();
            let skip = max_safe_skip(&counts, l, x2, budget, model).min(n - end);
            if skip > 0 {
                stats.skips += 1;
                stats.skipped += skip as u64;
            }
            end += skip + 1;
        }
    }
    stats
}

/// Max-tracking policy (Problem 1 and Problem 4).
#[derive(Debug, Default)]
pub(crate) struct MaxPolicy {
    pub best: Option<Scored>,
}

impl Policy for MaxPolicy {
    fn observe(&mut self, scored: Scored) {
        match &self.best {
            Some(b) if crate::score::scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
            _ => self.best = Some(scored),
        }
    }

    fn budget(&self) -> f64 {
        self.best.map_or(0.0, |b| b.chi_square)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::Sequence;

    #[test]
    fn max_policy_tracks_running_maximum() {
        let mut p = MaxPolicy::default();
        assert_eq!(p.budget(), 0.0);
        p.observe(Scored { start: 0, end: 1, chi_square: 2.0 });
        p.observe(Scored { start: 0, end: 2, chi_square: 1.0 });
        assert_eq!(p.budget(), 2.0);
        p.observe(Scored { start: 1, end: 3, chi_square: 5.5 });
        assert_eq!(p.budget(), 5.5);
        assert_eq!(p.best.unwrap().start, 1);
    }

    #[test]
    fn max_policy_tie_break_prefers_earlier_start() {
        let mut p = MaxPolicy::default();
        p.observe(Scored { start: 5, end: 7, chi_square: 2.0 });
        p.observe(Scored { start: 1, end: 3, chi_square: 2.0 });
        assert_eq!(p.best.unwrap().start, 1);
        // But an equal, later observation does not replace it.
        p.observe(Scored { start: 4, end: 6, chi_square: 2.0 });
        assert_eq!(p.best.unwrap().start, 1);
    }

    #[test]
    fn scan_examines_each_start_at_least_once() {
        let seq = Sequence::from_symbols(vec![0, 1, 0, 1, 1, 0, 0, 1], 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let model = Model::uniform(2).unwrap();
        let mut policy = MaxPolicy::default();
        let n = seq.len();
        let stats = scan_policy(&pc, &model, 1, (0..n).rev(), &mut policy);
        assert!(stats.examined >= n as u64);
        assert!(policy.best.is_some());
        // Every substring is either examined or skipped.
        let total = n as u64 * (n as u64 + 1) / 2;
        assert_eq!(stats.examined + stats.skipped, total);
    }

    #[test]
    fn scan_respects_min_len() {
        let seq = Sequence::from_symbols(vec![0, 1, 0, 0, 1, 1], 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let model = Model::uniform(2).unwrap();
        let mut policy = MaxPolicy::default();
        let min_len = 4;
        let n = seq.len();
        scan_policy(&pc, &model, min_len, (0..=(n - min_len)).rev(), &mut policy);
        assert!(policy.best.unwrap().len() >= min_len);
    }
}
