//! The pruned scanning engine shared by all four problem variants.
//!
//! Algorithm 1/2/3 and the min-length variant of the paper differ only in
//! (a) the pruning *budget* (running max, top-t floor, or the constant
//! `α₀`) and (b) what they record. The engine factors the common skeleton:
//! iterate start positions right-to-left (the paper's order — the budget
//! warms up on the suffix), scan end positions left-to-right, and after
//! each examined substring jump forward by the Theorem-1 safe skip.
//!
//! # Kernel architecture (see `DESIGN.md`)
//!
//! The inner loop is *incremental* and *allocation-free*: the count vector
//! of the current substring lives in registers / on the stack and is
//! advanced by reading **one symbol** from the sequence when the skip is
//! zero, falling back to an `O(k)` prefix-table diff only to resync after
//! a jump. Scores always come from the canonical
//! [`chi_square_counts_with_len`] accumulation, so every kernel reports
//! bit-identical `X²` for the same substring regardless of scan path.
//!
//! Three monomorphized kernels share the skeleton:
//!
//! | Kernel | Alphabet | Count storage |
//! |---|---|---|
//! | `scan_starts_fixed::<2>` | binary (stock up/down, win/loss) | `[u32; 2]` |
//! | `scan_starts_fixed::<4>` | quaternary (DNA) | `[u32; 4]` |
//! | `scan_starts_dyn` | any `k ≤ 256` | one `Vec` per scan call |
//!
//! All three kernels are generic over [`CountSource`], so each
//! monomorphizes once for the flat `PrefixCounts` table and once for the
//! two-level `BlockedCounts` table: with the blocked index the post-skip
//! resync reads one byte-packed delta row per endpoint plus a superblock
//! row that is almost always cache-resident, instead of a full `u32`
//! column — the layout dispatch happens before the loop, never inside it.
//!
//! [`scan_policy`] dispatches on `model.k()` at runtime. The pre-rewrite
//! engine (per-substring `fill_counts` + full square-root skip solve) is
//! kept as [`scan_policy_reference`] so benches and tests can measure the
//! specialization win against a stable baseline.

use crate::counts::CountSource;
use crate::model::Model;
use crate::score::{chi_square_counts, chi_square_counts_with_len, weighted_square_sum, Scored};
use crate::skip::{skip_from_ws, skip_from_ws_fixed, SkipTables};

/// Instrumentation of a scan.
///
/// `examined` is the paper's "number of iterations" metric (Figs. 1, 4, 6,
/// 7): how many substrings the algorithm actually evaluated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScanStats {
    /// Substrings whose `X²` was computed.
    pub examined: u64,
    /// Number of non-zero skip events.
    pub skips: u64,
    /// Total end positions skipped (substrings pruned without evaluation).
    pub skipped: u64,
}

impl ScanStats {
    /// Merge another stats record into this one (used by the parallel
    /// scan).
    pub fn merge(&mut self, other: &ScanStats) {
        self.examined += other.examined;
        self.skips += other.skips;
        self.skipped += other.skipped;
    }
}

/// A pruning policy: observes every examined substring and exposes the
/// current budget (substrings whose Theorem-1 cover bound stays at or
/// below the budget can be skipped).
pub(crate) trait Policy {
    /// Record an examined substring.
    fn observe(&mut self, scored: Scored);
    /// Current pruning budget.
    fn budget(&self) -> f64;
}

/// Run the pruned scan over all substrings with length in
/// `min_len..=window` starting in `starts` (an iterator of start indices,
/// visited in the given order) and ending at or before `limit`.
///
/// The caller guarantees `1 ≤ min_len ≤ window` and that every start `i`
/// satisfies `i + min_len ≤ limit ≤ n`. Pass `window = usize::MAX` for
/// the length-unconstrained variants and `limit = n` for the
/// range-unrestricted ones; the engine's range queries pass the
/// (exclusive) right edge of the restricted range as `limit`.
///
/// `scratch` is the generic kernel's count buffer — one-shot callers pass
/// a fresh `Vec`, the engine recycles buffers from its arena. The
/// alphabet-specialized kernels keep their counts on the stack and leave
/// it untouched.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_policy<C: CountSource, P: Policy>(
    pc: &C,
    model: &Model,
    min_len: usize,
    window: usize,
    limit: usize,
    starts: impl Iterator<Item = usize>,
    policy: &mut P,
    scratch: &mut Vec<u32>,
) -> ScanStats {
    debug_assert!(min_len >= 1 && min_len <= window);
    debug_assert!(limit <= pc.n());
    // Dispatch once per scan call: `SIMD = true` threads the packed-root
    // skip solver and the four-candidate survivor-mask lookahead through
    // the specialized kernels. Both backends are bit-identical (see
    // `simd`), so the branch only picks an instruction mix.
    let simd = crate::simd::active();
    match (model.k(), simd) {
        (2, true) => {
            scan_starts_fixed::<2, true, C, P>(pc, model, min_len, window, limit, starts, policy)
        }
        (2, false) => {
            scan_starts_fixed::<2, false, C, P>(pc, model, min_len, window, limit, starts, policy)
        }
        (4, true) => {
            scan_starts_fixed::<4, true, C, P>(pc, model, min_len, window, limit, starts, policy)
        }
        (4, false) => {
            scan_starts_fixed::<4, false, C, P>(pc, model, min_len, window, limit, starts, policy)
        }
        _ => scan_starts_dyn(pc, model, min_len, window, limit, starts, policy, scratch),
    }
}

/// Number of candidate ends the SIMD lookahead pre-evaluates per batch.
const LOOKAHEAD: usize = 4;

/// One start position's in-flight scan state inside the specialized
/// kernel.
struct Lane<const K: usize> {
    start: usize,
    end: usize,
    window_end: usize,
    counts: [u32; K],
    /// SIMD lookahead memo: how many upcoming candidate ends are
    /// pre-confirmed to fail the budget pre-filter and admit no skip
    /// (always 0 on the scalar path).
    pending: u8,
    /// Exact budget bits the pending verdicts were computed under; the
    /// memo is discarded if the policy's budget has moved since, which
    /// makes the batched stream provably identical to the unbatched one.
    pending_budget: f64,
}

/// Pull the next start off the iterator and initialize its lane.
#[inline]
fn next_lane<const K: usize, C: CountSource>(
    pc: &C,
    min_len: usize,
    window: usize,
    limit: usize,
    starts: &mut impl Iterator<Item = usize>,
) -> Option<Lane<K>> {
    for i in starts {
        debug_assert!(i + min_len <= limit);
        let window_end = limit.min(i.saturating_add(window));
        let end = i + min_len;
        if end > window_end {
            continue;
        }
        let mut counts = [0u32; K];
        pc.fill_counts(i, end, &mut counts);
        return Some(Lane {
            start: i,
            end,
            window_end,
            counts,
            pending: 0,
            pending_budget: 0.0,
        });
    }
    None
}

/// Advance one lane by one examined substring. Returns `false` when the
/// lane's scan is finished.
///
/// On the SIMD path the step first consumes the lookahead memo: a
/// candidate pre-confirmed (under the *current* budget bits — stale memos
/// are discarded) to fail the budget pre-filter and admit no skip is
/// committed with a one-symbol count bump and no floating-point work at
/// all. The memo is exactly the verdict the scalar body below would reach
/// for that candidate, so consuming it leaves the examined/observed/skip
/// stream bit-identical to the unbatched scan.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn lane_step<const K: usize, const SIMD: bool, C: CountSource, P: Policy>(
    lane: &mut Lane<K>,
    pc: &C,
    symbols: &[u8],
    inv_p: &[f64; K],
    tables: &SkipTables<'_>,
    policy: &mut P,
    stats: &mut ScanStats,
) -> bool {
    if SIMD && lane.pending > 0 {
        if policy.budget().to_bits() == lane.pending_budget.to_bits() {
            lane.pending -= 1;
            stats.examined += 1;
            lane.counts[symbols[lane.end] as usize] += 1;
            lane.end += 1;
            debug_assert!(lane.end <= lane.window_end);
            return true;
        }
        lane.pending = 0;
    }
    let l = lane.end - lane.start;
    let lf = l as f64;
    // Weighted square sum Σ Y²/p in the canonical fixed order; the
    // division that finishes the statistic is deferred behind the budget
    // pre-filter below, so the common (pruned) case never divides.
    let ws = weighted_square_sum(&lane.counts, inv_p);
    stats.examined += 1;
    let mut budget = policy.budget();
    // Budget pre-filter: a substring with X² strictly below the budget
    // cannot affect any policy (that is what makes skipping safe at all),
    // so only candidates at or above it — with a generous margin for the
    // product's rounding — pay the division and the observe call.
    if ws >= (budget + lf) * lf * (1.0 - 1e-12) {
        let x2 = chi_square_counts_with_len(&lane.counts, inv_p, lf);
        policy.observe(Scored {
            start: lane.start,
            end: lane.end,
            chi_square: x2,
        });
        budget = policy.budget();
    }
    let raw = skip_from_ws_fixed::<K, SIMD>(&lane.counts, lf, ws, budget, tables);
    advance_lane::<K, SIMD, C>(lane, raw, pc, symbols, inv_p, tables, budget, stats)
}

/// Commit one solved skip to a lane: clamp to the window, record the skip
/// stats, bump or resync the count vector, and (on the SIMD path) arm the
/// lookahead memo on dense stretches. Shared verbatim by [`lane_step`] and
/// the packed group round, so both entry points leave an identical stream. Returns
/// `false` when the lane's scan is finished.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn advance_lane<const K: usize, const SIMD: bool, C: CountSource>(
    lane: &mut Lane<K>,
    raw: usize,
    pc: &C,
    symbols: &[u8],
    inv_p: &[f64; K],
    tables: &SkipTables<'_>,
    budget: f64,
    stats: &mut ScanStats,
) -> bool {
    let skip = raw.min(lane.window_end - lane.end);
    if skip > 0 {
        stats.skips += 1;
        stats.skipped += skip as u64;
    }
    let next = lane.end + skip + 1;
    if next > lane.window_end {
        return false;
    }
    if skip == 0 {
        // Zero skip: the scan advances by one — push the single symbol,
        // O(1).
        lane.counts[symbols[lane.end] as usize] += 1;
    } else {
        // Resync after a jump: one O(k) bulk diff over the skipped region
        // (a single pair of adjacent table columns).
        pc.accumulate_counts(lane.end, next, &mut lane.counts);
    }
    lane.end = next;
    // Dense stretch (no skip possible, positive finite budget): evaluate
    // the next four candidate ends in f64 lanes and memoize how many of
    // them provably fail the pre-filter and admit no skip.
    if SIMD
        && skip == 0
        && budget > 0.0
        && budget.is_finite()
        && lane.end + LOOKAHEAD <= lane.window_end
    {
        let next3 = [
            symbols[lane.end],
            symbols[lane.end + 1],
            symbols[lane.end + 2],
        ];
        lane.pending = crate::simd::lookahead4::<K>(
            &lane.counts,
            &next3,
            lane.end - lane.start,
            budget,
            tables.p,
            inv_p,
            tables.four_pa,
            tables.half_inv_a,
        ) as u8;
        lane.pending_budget = budget;
    }
    true
}

/// Number of start positions scanned in interleaved *lanes* by the
/// specialized kernel (shared with the packed group examine — see
/// [`crate::simd::GROUP_LANES`]). The per-step dependency chain
/// (count load → score → skip solve → next count load) is latency-bound,
/// so running this many independent chains in one loop keeps the core's
/// out-of-order window full. Budgets only ever grow, so any interleaving
/// of observations is as safe as the sequential order, and the best result
/// is independent of the interleave (the scoring order is total).
const LANES: usize = crate::simd::GROUP_LANES;

/// Alphabet-specialized kernel: `K` is a compile-time constant, so the
/// count vector and the model tables are fixed-size stack arrays and every
/// per-character loop unrolls to a straight-line sequence.
///
/// The canonical stream visits the [`LANES`] lane slots round-robin; an
/// empty slot pulls the next start position right before its visit. Both
/// dispatch modes implement exactly this order, so their candidate streams
/// — and therefore every answer and every statistic — are identical.
///
/// `SIMD` selects the vector backend for the skip-root solve, arms the
/// lookahead memo (see [`lane_step`]), and — for `K = 2` on AVX2 —
/// dispatches whole rounds to the packed group examine whenever no lane
/// holds a memo and none can observe (every lane failing the budget
/// pre-filter pins the shared budget, making the round order-free). Both
/// values of the flag produce bit-identical results, pinned by the
/// `kernel_equivalence` suite.
fn scan_starts_fixed<const K: usize, const SIMD: bool, C: CountSource, P: Policy>(
    pc: &C,
    model: &Model,
    min_len: usize,
    window: usize,
    limit: usize,
    starts: impl Iterator<Item = usize>,
    policy: &mut P,
) -> ScanStats {
    debug_assert_eq!(model.k(), K);
    let symbols = pc.symbols();
    let mut p = [0.0f64; K];
    let mut inv_p = [0.0f64; K];
    let mut one_minus = [0.0f64; K];
    let mut half_inv_a = [0.0f64; K];
    let mut four_pa = [0.0f64; K];
    p.copy_from_slice(model.probs());
    inv_p.copy_from_slice(model.inv_probs());
    one_minus.copy_from_slice(model.one_minus_probs());
    half_inv_a.copy_from_slice(model.half_inv_one_minus());
    four_pa.copy_from_slice(model.four_p_one_minus());
    let tables = SkipTables {
        p: &p,
        inv_p: &inv_p,
        one_minus: &one_minus,
        half_inv_a: &half_inv_a,
        four_pa: &four_pa,
    };
    let mut stats = ScanStats::default();
    let mut starts = starts;
    let mut lanes: [Option<Lane<K>>; LANES] = std::array::from_fn(|_| None);
    // The packed group examine needs exact i32 → f64 count converts.
    let group_ok = SIMD && K == 2 && crate::simd::group2_available() && pc.n() < (1 << 31);
    loop {
        // Refill phase: empty slots pull the next start, in slot order.
        let mut any_live = false;
        for slot in lanes.iter_mut() {
            if slot.is_none() {
                *slot = next_lane::<K, C>(pc, min_len, window, limit, &mut starts);
            }
            any_live |= slot.is_some();
        }
        if !any_live {
            break;
        }
        // Group fast path: every lane live with no lookahead memo, and —
        // checked inside the packed examine — every lane failing the
        // budget pre-filter. No lane observes, so the budget is pinned for
        // the whole round and the packed round is bit-identical to the
        // sequential one below.
        if group_ok
            && lanes
                .iter()
                .all(|slot| slot.as_ref().is_some_and(|l| l.pending == 0))
        {
            let budget = policy.budget();
            if budget > 0.0 && budget.is_finite() {
                let mut cnts = [[0u32; 2]; LANES];
                let mut lfs = [0.0f64; LANES];
                for (i, slot) in lanes.iter().enumerate() {
                    let l = slot.as_ref().unwrap();
                    cnts[i] = [l.counts[0], l.counts[1]];
                    lfs[i] = (l.end - l.start) as f64;
                }
                if let Some(skips) = crate::simd::group_examine2(&cnts, &lfs, budget, &tables) {
                    stats.examined += LANES as u64;
                    for (i, slot) in lanes.iter_mut().enumerate() {
                        let l = slot.as_mut().unwrap();
                        if !advance_lane::<K, SIMD, C>(
                            l, skips[i], pc, symbols, &inv_p, &tables, budget, &mut stats,
                        ) {
                            *slot = None;
                        }
                    }
                    continue;
                }
            }
        }
        // Sequential round: step each live lane in slot order.
        for slot in lanes.iter_mut() {
            if let Some(l) = slot {
                if !lane_step::<K, SIMD, C, P>(l, pc, symbols, &inv_p, &tables, policy, &mut stats)
                {
                    *slot = None;
                }
            }
        }
    }
    stats
}

/// Generic-alphabet kernel: identical skeleton with a caller-provided
/// count buffer (still allocation-free per substring, and allocation-free
/// per scan call when the buffer comes from the engine's arena).
#[allow(clippy::too_many_arguments)]
fn scan_starts_dyn<C: CountSource, P: Policy>(
    pc: &C,
    model: &Model,
    min_len: usize,
    window: usize,
    limit: usize,
    starts: impl Iterator<Item = usize>,
    policy: &mut P,
    scratch: &mut Vec<u32>,
) -> ScanStats {
    let k = model.k();
    let symbols = pc.symbols();
    let inv_p = model.inv_probs();
    let tables = SkipTables::from_model(model);
    scratch.clear();
    scratch.resize(k, 0);
    let counts = &mut scratch[..];
    let mut stats = ScanStats::default();
    for i in starts {
        debug_assert!(i + min_len <= limit);
        let window_end = limit.min(i.saturating_add(window));
        let mut end = i + min_len;
        if end > window_end {
            continue;
        }
        pc.fill_counts(i, end, counts);
        loop {
            let l = end - i;
            let lf = l as f64;
            let ws = weighted_square_sum(counts, inv_p);
            stats.examined += 1;
            let mut budget = policy.budget();
            // Budget pre-filter — see `lane_step` for the argument.
            if ws >= (budget + lf) * lf * (1.0 - 1e-12) {
                let x2 = chi_square_counts_with_len(counts, inv_p, lf);
                policy.observe(Scored {
                    start: i,
                    end,
                    chi_square: x2,
                });
                budget = policy.budget();
            }
            let skip = skip_from_ws(counts, lf, ws, budget, &tables).min(window_end - end);
            if skip > 0 {
                stats.skips += 1;
                stats.skipped += skip as u64;
            }
            let next = end + skip + 1;
            if next > window_end {
                break;
            }
            if skip == 0 {
                counts[symbols[end] as usize] += 1;
            } else {
                pc.accumulate_counts(end, next, counts);
            }
            end = next;
        }
    }
    stats
}

/// The pre-rewrite prefix-count substrate, row-major exactly as the old
/// `PrefixCounts` laid it out (the production table has been column-major
/// since the kernel rewrite). Kept so [`scan_policy_reference`] measures
/// the true pre-rewrite configuration, memory layout included.
pub(crate) struct ReferenceCounts {
    /// Row-major `k × (n + 1)` table; `table[c][i]` = occurrences of `c`
    /// in `S[0..i)`.
    table: Vec<u32>,
    n: usize,
    k: usize,
}

impl ReferenceCounts {
    /// Build the row-major table in `O(k·n)` time and space.
    pub(crate) fn build(seq: &crate::seq::Sequence) -> Self {
        let n = seq.len();
        let k = seq.k();
        let mut table = vec![0u32; k * (n + 1)];
        for (i, &s) in seq.symbols().iter().enumerate() {
            for c in 0..k {
                table[c * (n + 1) + i + 1] = table[c * (n + 1) + i] + (c == s as usize) as u32;
            }
        }
        Self { table, n, k }
    }

    fn fill_counts(&self, start: usize, end: usize, buf: &mut [u32]) {
        debug_assert_eq!(buf.len(), self.k);
        for (c, slot) in buf.iter_mut().enumerate() {
            let row = c * (self.n + 1);
            *slot = self.table[row + end] - self.table[row + start];
        }
    }
}

/// The pre-rewrite engine: reconstruct all `k` counts from the row-major
/// prefix table and re-sum the score for **every** examined substring, and
/// solve the skip quadratic with [`reference_max_safe_skip`] —
/// per-character coefficient recomputation, a division and square root per
/// character.
///
/// Kept verbatim as the regression baseline the criterion benches compare
/// the specialized kernels against (`mss_scaling/reference`,
/// `bench_smoke`).
pub(crate) fn scan_policy_reference<P: Policy>(
    rc: &ReferenceCounts,
    model: &Model,
    min_len: usize,
    starts: impl Iterator<Item = usize>,
    policy: &mut P,
) -> ScanStats {
    let n = rc.n;
    let k = model.k();
    let mut counts = vec![0u32; k];
    let mut stats = ScanStats::default();
    for i in starts {
        debug_assert!(i + min_len <= n);
        let mut end = i + min_len;
        while end <= n {
            rc.fill_counts(i, end, &mut counts);
            let l = end - i;
            let x2 = chi_square_counts(&counts, model);
            stats.examined += 1;
            policy.observe(Scored {
                start: i,
                end,
                chi_square: x2,
            });
            let budget = policy.budget();
            let skip = reference_max_safe_skip(&counts, l, x2, budget, model).min(n - end);
            if skip > 0 {
                stats.skips += 1;
                stats.skipped += skip as u64;
            }
            end += skip + 1;
        }
    }
    stats
}

/// The pre-rewrite skip solver, kept for the reference engine only: it
/// recomputes `1 − p` and both quadratic coefficients per character per
/// substring and takes a division plus square root for **every**
/// character. [`crate::skip::max_safe_skip`] is the optimized production
/// solver.
fn reference_max_safe_skip(
    counts: &[u32],
    l: usize,
    x2_l: f64,
    budget: f64,
    model: &Model,
) -> usize {
    if !budget.is_finite() || budget <= 0.0 {
        return 0;
    }
    let lf = l as f64;
    let quadratic_at = |y: f64, p: f64, x: f64| -> f64 {
        let a = 1.0 - p;
        let b = 2.0 * y - 2.0 * lf * p - p * budget;
        let c = (x2_l - budget) * lf * p;
        (a * x + b) * x + c
    };
    let mut lo = 0.0f64;
    let mut hi = f64::INFINITY;
    for (&y, &p) in counts.iter().zip(model.probs()) {
        let yf = f64::from(y);
        let a = 1.0 - p;
        let b = 2.0 * yf - 2.0 * lf * p - p * budget;
        let c = (x2_l - budget) * lf * p;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return 0;
        }
        let sqrt_disc = disc.sqrt();
        let r2 = (-b + sqrt_disc) / (2.0 * a);
        let r1 = (-b - sqrt_disc) / (2.0 * a);
        hi = hi.min(r2);
        lo = lo.max(r1);
        if hi < 1.0 || lo > hi {
            return 0;
        }
    }
    let mut x = hi.floor();
    if x < 1.0 || x < lo {
        return 0;
    }
    for _ in 0..2 {
        if x < 1.0 || x < lo {
            return 0;
        }
        let ok = counts
            .iter()
            .zip(model.probs())
            .all(|(&y, &p)| quadratic_at(f64::from(y), p, x) <= 1e-9 * (1.0 + budget.abs() * lf));
        if ok {
            return x as usize;
        }
        x -= 1.0;
    }
    0
}

/// Max-tracking policy (Problem 1 and Problem 4).
#[derive(Debug, Default)]
pub(crate) struct MaxPolicy {
    pub best: Option<Scored>,
}

impl Policy for MaxPolicy {
    fn observe(&mut self, scored: Scored) {
        match &self.best {
            Some(b) if crate::score::scored_cmp(&scored, b) != std::cmp::Ordering::Greater => {}
            _ => self.best = Some(scored),
        }
    }

    fn budget(&self) -> f64 {
        self.best.map_or(0.0, |b| b.chi_square)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counts::PrefixCounts;
    use crate::seq::Sequence;

    #[test]
    fn max_policy_tracks_running_maximum() {
        let mut p = MaxPolicy::default();
        assert_eq!(p.budget(), 0.0);
        p.observe(Scored {
            start: 0,
            end: 1,
            chi_square: 2.0,
        });
        p.observe(Scored {
            start: 0,
            end: 2,
            chi_square: 1.0,
        });
        assert_eq!(p.budget(), 2.0);
        p.observe(Scored {
            start: 1,
            end: 3,
            chi_square: 5.5,
        });
        assert_eq!(p.budget(), 5.5);
        assert_eq!(p.best.unwrap().start, 1);
    }

    #[test]
    fn max_policy_tie_break_prefers_earlier_start() {
        let mut p = MaxPolicy::default();
        p.observe(Scored {
            start: 5,
            end: 7,
            chi_square: 2.0,
        });
        p.observe(Scored {
            start: 1,
            end: 3,
            chi_square: 2.0,
        });
        assert_eq!(p.best.unwrap().start, 1);
        // But an equal, later observation does not replace it.
        p.observe(Scored {
            start: 4,
            end: 6,
            chi_square: 2.0,
        });
        assert_eq!(p.best.unwrap().start, 1);
    }

    #[test]
    fn scan_examines_each_start_at_least_once() {
        let seq = Sequence::from_symbols(vec![0, 1, 0, 1, 1, 0, 0, 1], 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let model = Model::uniform(2).unwrap();
        let mut policy = MaxPolicy::default();
        let n = seq.len();
        let stats = scan_policy(
            &pc,
            &model,
            1,
            usize::MAX,
            n,
            (0..n).rev(),
            &mut policy,
            &mut Vec::new(),
        );
        assert!(stats.examined >= n as u64);
        assert!(policy.best.is_some());
        // Every substring is either examined or skipped.
        let total = n as u64 * (n as u64 + 1) / 2;
        assert_eq!(stats.examined + stats.skipped, total);
    }

    #[test]
    fn scan_respects_min_len() {
        let seq = Sequence::from_symbols(vec![0, 1, 0, 0, 1, 1], 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let model = Model::uniform(2).unwrap();
        let mut policy = MaxPolicy::default();
        let min_len = 4;
        let n = seq.len();
        scan_policy(
            &pc,
            &model,
            min_len,
            usize::MAX,
            n,
            (0..=(n - min_len)).rev(),
            &mut policy,
            &mut Vec::new(),
        );
        assert!(policy.best.unwrap().len() >= min_len);
    }

    #[test]
    fn scan_respects_window() {
        let seq = Sequence::from_symbols(vec![0, 1, 1, 1, 1, 1, 1, 0], 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let model = Model::uniform(2).unwrap();
        let n = seq.len();
        for window in 1..=n {
            let mut examined_max = 0usize;
            let mut observed = 0u64;
            struct Probe<'a> {
                max_len: &'a mut usize,
                observed: &'a mut u64,
            }
            impl Policy for Probe<'_> {
                fn observe(&mut self, scored: Scored) {
                    *self.max_len = (*self.max_len).max(scored.len());
                    *self.observed += 1;
                }
                fn budget(&self) -> f64 {
                    // Zero budget: skips are disabled (the solver needs a
                    // positive budget) AND every substring clears the
                    // kernel's budget pre-filter, so observe() sees all
                    // window-admissible substrings.
                    0.0
                }
            }
            let mut probe = Probe {
                max_len: &mut examined_max,
                observed: &mut observed,
            };
            let stats = scan_policy(
                &pc,
                &model,
                1,
                window,
                n,
                (0..n).rev(),
                &mut probe,
                &mut Vec::new(),
            );
            assert!(
                examined_max <= window,
                "window {window}: saw len {examined_max}"
            );
            // Exactly the substrings of length 1..=window exist per start.
            let expected: u64 = (0..n).map(|i| window.min(n - i) as u64).sum();
            assert_eq!(observed, expected, "window {window}");
            assert_eq!(stats.examined, expected, "window {window}");
        }
    }

    /// The SIMD and scalar instantiations of the specialized kernels must
    /// produce the same best substring (positions included) *and* the
    /// same scan stats — the lookahead memo is a pure memoization of the
    /// scalar stream (broader k/layout/offset coverage lives in
    /// `kernel_equivalence`).
    #[test]
    fn simd_and_scalar_fixed_kernels_are_bit_identical() {
        let symbols2: Vec<u8> = (0..800u32)
            .map(|i| (((i * 13 + i / 7) ^ (i >> 3)) % 2) as u8)
            .collect();
        let seq = Sequence::from_symbols(symbols2, 2).unwrap();
        let pc = PrefixCounts::build(&seq);
        let model = Model::from_probs(vec![0.35, 0.65]).unwrap();
        let n = seq.len();
        let mut simd = MaxPolicy::default();
        let s_simd = scan_starts_fixed::<2, true, _, _>(
            &pc,
            &model,
            1,
            usize::MAX,
            n,
            (0..n).rev(),
            &mut simd,
        );
        let mut scalar = MaxPolicy::default();
        let s_scalar = scan_starts_fixed::<2, false, _, _>(
            &pc,
            &model,
            1,
            usize::MAX,
            n,
            (0..n).rev(),
            &mut scalar,
        );
        assert_eq!(s_simd, s_scalar, "stats must match");
        let (a, b) = (simd.best.unwrap(), scalar.best.unwrap());
        assert_eq!((a.start, a.end), (b.start, b.end));
        assert_eq!(a.chi_square.to_bits(), b.chi_square.to_bits());

        let symbols4: Vec<u8> = (0..900u32)
            .map(|i| (((i * 7) ^ (i >> 2)) % 4) as u8)
            .collect();
        let seq4 = Sequence::from_symbols(symbols4, 4).unwrap();
        let pc4 = PrefixCounts::build(&seq4);
        let model4 = Model::from_probs(vec![0.1, 0.2, 0.3, 0.4]).unwrap();
        let n4 = seq4.len();
        let mut simd4 = MaxPolicy::default();
        let s_simd4 = scan_starts_fixed::<4, true, _, _>(
            &pc4,
            &model4,
            1,
            usize::MAX,
            n4,
            (0..n4).rev(),
            &mut simd4,
        );
        let mut scalar4 = MaxPolicy::default();
        let s_scalar4 = scan_starts_fixed::<4, false, _, _>(
            &pc4,
            &model4,
            1,
            usize::MAX,
            n4,
            (0..n4).rev(),
            &mut scalar4,
        );
        assert_eq!(s_simd4, s_scalar4, "k=4 stats must match");
        let (a4, b4) = (simd4.best.unwrap(), scalar4.best.unwrap());
        assert_eq!((a4.start, a4.end), (b4.start, b4.end));
        assert_eq!(a4.chi_square.to_bits(), b4.chi_square.to_bits());
    }

    /// The three kernels and the reference engine agree on the examined
    /// stream's final max for all small alphabets.
    #[test]
    fn kernels_agree_with_reference_engine() {
        for k in [2usize, 3, 4, 5] {
            let symbols: Vec<u8> = (0..120u32)
                .map(|i| ((i * 7 + i / 5) % k as u32) as u8)
                .collect();
            let seq = Sequence::from_symbols(symbols, k).unwrap();
            let pc = PrefixCounts::build(&seq);
            let model = Model::uniform(k).unwrap();
            let n = seq.len();
            let mut fast = MaxPolicy::default();
            scan_policy(
                &pc,
                &model,
                1,
                usize::MAX,
                n,
                (0..n).rev(),
                &mut fast,
                &mut Vec::new(),
            );
            let rc = ReferenceCounts::build(&seq);
            let mut reference = MaxPolicy::default();
            scan_policy_reference(&rc, &model, 1, (0..n).rev(), &mut reference);
            let f = fast.best.unwrap();
            let r = reference.best.unwrap();
            assert_eq!(
                f.chi_square.to_bits(),
                r.chi_square.to_bits(),
                "k = {k}: fast {f:?} vs reference {r:?}"
            );
        }
    }
}
