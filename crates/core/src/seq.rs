//! Symbol sequences over a finite alphabet.
//!
//! A [`Sequence`] is the string `S` of the paper: symbols are dense small
//! integers `0..k` (the alphabet `Σ = {a_1, …, a_k}` mapped to indices),
//! which keeps count arrays flat and scoring branch-free.

use crate::error::{Error, Result};

/// A validated string over the alphabet `0..k`.
///
/// Symbols are stored as `u8`, so alphabets up to 256 characters are
/// supported (the paper treats `k` as a constant; its experiments use
/// `k ≤ 10`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sequence {
    symbols: Vec<u8>,
    k: usize,
}

impl Sequence {
    /// Create a sequence from raw symbols with a declared alphabet size.
    ///
    /// Every symbol must satisfy `symbol < k`, `k` must be in `2..=256`,
    /// and the sequence must be non-empty.
    pub fn from_symbols(symbols: Vec<u8>, k: usize) -> Result<Self> {
        if k < 2 {
            return Err(Error::AlphabetTooSmall { k });
        }
        if k > crate::model::MAX_ALPHABET {
            return Err(Error::AlphabetTooLarge { k });
        }
        if symbols.is_empty() {
            return Err(Error::EmptySequence);
        }
        for (position, &symbol) in symbols.iter().enumerate() {
            if symbol as usize >= k {
                return Err(Error::SymbolOutOfRange {
                    symbol,
                    k,
                    position,
                });
            }
        }
        Ok(Self { symbols, k })
    }

    /// Create a binary sequence from booleans (`true → 1`).
    pub fn from_bools(bits: &[bool]) -> Result<Self> {
        Self::from_symbols(bits.iter().map(|&b| b as u8).collect(), 2)
    }

    /// Create a sequence from text, mapping each distinct byte to a dense
    /// symbol in first-appearance order. Returns the sequence together with
    /// the byte-to-symbol alphabet (indexed by symbol).
    ///
    /// Fails when the text is empty or has fewer than 2 (or more than 256)
    /// distinct bytes.
    pub fn from_text(text: &[u8]) -> Result<(Self, Vec<u8>)> {
        let mut mapping = [u8::MAX; 256];
        let mut alphabet = Vec::new();
        let mut symbols = Vec::with_capacity(text.len());
        for &byte in text {
            let slot = &mut mapping[byte as usize];
            if *slot == u8::MAX && !alphabet.contains(&byte) {
                if alphabet.len() == crate::model::MAX_ALPHABET {
                    return Err(Error::AlphabetTooLarge { k: 257 });
                }
                *slot = alphabet.len() as u8;
                alphabet.push(byte);
            }
            symbols.push(mapping[byte as usize]);
        }
        let k = alphabet.len();
        let seq = Self::from_symbols(symbols, k)?;
        Ok((seq, alphabet))
    }

    /// Length of the sequence (`n` in the paper).
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the sequence is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Alphabet size (`k` in the paper).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The raw symbols.
    pub fn symbols(&self) -> &[u8] {
        &self.symbols
    }

    /// The symbol at `index` (panics when out of bounds, like slice
    /// indexing).
    pub fn symbol(&self, index: usize) -> u8 {
        self.symbols[index]
    }

    /// Count vector of a subrange — `O(len)`; prefer
    /// [`PrefixCounts`](crate::counts::PrefixCounts) for repeated queries.
    pub fn count_vector(&self, start: usize, end: usize) -> Vec<u32> {
        let mut counts = vec![0u32; self.k];
        for &s in &self.symbols[start..end] {
            counts[s as usize] += 1;
        }
        counts
    }
}

impl std::fmt::Display for Sequence {
    /// Renders symbols as digits / letters (`0-9a-z…`) for small alphabets,
    /// falling back to a dotted decimal form for large ones.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.k <= 36 {
            for &s in &self.symbols {
                let c = std::char::from_digit(s as u32, 36).expect("checked k <= 36");
                write!(f, "{c}")?;
            }
            Ok(())
        } else {
            let parts: Vec<String> = self.symbols.iter().map(|s| s.to_string()).collect();
            write!(f, "{}", parts.join("."))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let s = Sequence::from_symbols(vec![0, 1, 2, 1, 0], 3).unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(s.k(), 3);
        assert_eq!(s.symbol(2), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Sequence::from_symbols(vec![], 2), Err(Error::EmptySequence));
    }

    #[test]
    fn rejects_small_and_huge_alphabets() {
        assert!(matches!(
            Sequence::from_symbols(vec![0], 1),
            Err(Error::AlphabetTooSmall { k: 1 })
        ));
        assert!(matches!(
            Sequence::from_symbols(vec![0], 0),
            Err(Error::AlphabetTooSmall { k: 0 })
        ));
        assert!(matches!(
            Sequence::from_symbols(vec![0], 257),
            Err(Error::AlphabetTooLarge { k: 257 })
        ));
    }

    #[test]
    fn rejects_out_of_range_symbol() {
        let err = Sequence::from_symbols(vec![0, 1, 5, 1], 3).unwrap_err();
        assert_eq!(
            err,
            Error::SymbolOutOfRange {
                symbol: 5,
                k: 3,
                position: 2
            }
        );
    }

    #[test]
    fn from_bools_maps_to_binary() {
        let s = Sequence::from_bools(&[true, false, true, true]).unwrap();
        assert_eq!(s.symbols(), &[1, 0, 1, 1]);
        assert_eq!(s.k(), 2);
    }

    #[test]
    fn from_text_dense_mapping() {
        let (s, alphabet) = Sequence::from_text(b"abca").unwrap();
        assert_eq!(alphabet, vec![b'a', b'b', b'c']);
        assert_eq!(s.symbols(), &[0, 1, 2, 0]);
        assert_eq!(s.k(), 3);
    }

    #[test]
    fn from_text_needs_two_distinct_bytes() {
        assert!(Sequence::from_text(b"aaaa").is_err());
        assert!(Sequence::from_text(b"").is_err());
    }

    #[test]
    fn count_vector_counts() {
        let s = Sequence::from_symbols(vec![0, 1, 1, 2, 1], 3).unwrap();
        assert_eq!(s.count_vector(0, 5), vec![1, 3, 1]);
        assert_eq!(s.count_vector(1, 3), vec![0, 2, 0]);
        assert_eq!(s.count_vector(2, 2), vec![0, 0, 0]);
    }

    #[test]
    fn display_small_alphabet() {
        let s = Sequence::from_symbols(vec![0, 1, 2, 10], 11).unwrap();
        assert_eq!(s.to_string(), "012a");
    }
}
