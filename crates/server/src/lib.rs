//! `sigstr-server` — a std-only HTTP/1.1 query service over a
//! [`sigstr_corpus::Corpus`].
//!
//! PRs 1–4 built the fast scan kernel, the reusable engine, the compact
//! count index and the snapshot-backed corpus — but reached them only
//! through one-shot CLI processes that throw the warm-engine cache away
//! on exit. This crate is the missing serving layer: a long-lived
//! daemon that keeps engines resident and answers concurrent queries
//! over plain HTTP, with **no dependencies beyond `std`** (the
//! workspace's offline policy), in the repo's style of self-contained
//! subsystems.
//!
//! # Architecture
//!
//! ```text
//!              ┌──────────┐   bounded queue    ┌─────────┐
//!  clients ──▶ │ acceptor │ ──────────────────▶│ worker  │──▶ Corpus
//!              │  thread  │  (overload: 503 +  │  pool   │    (warm
//!              └──────────┘    Retry-After)    └─────────┘    engines)
//! ```
//!
//! * **Admission control**: the acceptor pushes each accepted
//!   connection into a bounded queue; when the queue is full the
//!   connection is answered `503` with `Retry-After` immediately
//!   instead of queueing without bound. Overload degrades loudly and
//!   recoverably — it never corrupts or starves connections already
//!   being served.
//! * **Fixed worker pool**: `threads` workers each own one connection
//!   at a time and run its keep-alive loop (sequential requests; *pipelined*
//!   requests and chunked bodies are rejected with `501` — see
//!   [`http`]).
//! * **Graceful shutdown**: [`ServerHandle::shutdown`] stops the
//!   acceptor, lets every in-flight request complete (a request whose
//!   bytes have arrived is always answered), closes idle keep-alive
//!   connections, and joins the workers. [`Server::run`] then returns a
//!   [`ServeSummary`].
//!
//! # Routes
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /healthz` | `ok` (liveness) |
//! | `GET /metrics` | text counters: traffic, status classes, latency histogram, queue depth, corpus cache stats |
//! | `GET /v1/documents` | the corpus manifest |
//! | `POST /v1/query` | one document, any [`Query`] (incl. range-restricted) |
//! | `POST /v1/batch` | many `(doc, query)` jobs through [`Corpus::run_batch`], sharing warm engines and the pool |
//! | `GET /v1/merged/top?t=` | deterministic corpus-wide top-t merge |
//! | `GET /v1/merged/threshold?alpha=` | corpus-wide threshold set in document order |
//!
//! Answers are JSON with **bit-exact** scores: the wire format
//! ([`wire`]) rides on a round-trip-exact JSON layer ([`json`]), so an
//! HTTP client decodes the same `f64` bits the engine computed.
//!
//! # Example
//!
//! ```no_run
//! use sigstr_corpus::Corpus;
//! use sigstr_server::{Server, ServerConfig};
//!
//! let corpus = Corpus::open("corpus-dir").unwrap();
//! let server = Server::bind(
//!     corpus,
//!     ServerConfig {
//!         addr: "127.0.0.1:0".into(),
//!         ..ServerConfig::default()
//!     },
//! )
//! .unwrap();
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // call handle.shutdown() from anywhere
//! let summary = server.run().unwrap();
//! println!("served {} requests", summary.requests);
//! # let _ = handle;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod wire;

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sigstr_core::Query;
use sigstr_corpus::{Corpus, CorpusError};

use http::{Conn, Limits, RecvError, Request, Response};
use json::Json;
use metrics::Metrics;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Admission queue bound: connections accepted but not yet claimed
    /// by a worker. Beyond it, new connections get `503` +
    /// `Retry-After`.
    pub queue_depth: usize,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive: Duration,
    /// Request size limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            threads: 0,
            queue_depth: 64,
            keep_alive: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// What [`Server::run`] reports after a graceful shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests fully parsed and answered.
    pub requests: u64,
    /// Connections turned away at admission with `503`.
    pub rejected: u64,
}

/// State shared by the acceptor, the workers and every
/// [`ServerHandle`].
struct Shared {
    corpus: Corpus,
    metrics: Metrics,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
    config: ServerConfig,
}

impl Shared {
    fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn queue_depth(&self) -> usize {
        self.queue.lock().expect("admission queue poisoned").len()
    }
}

/// A bound server, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

/// A cloneable handle that can stop a running server from any thread
/// (or a signal watcher).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, finish in-flight
    /// requests, close idle connections. Idempotent; returns
    /// immediately ([`Server::run`] returns once the drain completes).
    pub fn shutdown(&self) {
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the acceptor out of its blocking accept. The
            // connection is recognized post-flag and dropped.
            let _ = TcpStream::connect(self.addr);
        }
        self.shared.available.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.is_shutting_down()
    }

    /// The server's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Server {
    /// Bind the listener and assemble the shared state. The server does
    /// not accept connections until [`Server::run`].
    pub fn bind(corpus: Corpus, config: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            corpus,
            metrics: Metrics::default(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            config,
        });
        Ok(Server {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (the real port, when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serve until [`ServerHandle::shutdown`]: spawns the worker pool,
    /// runs the accept/admission loop on the calling thread, then
    /// drains and joins everything.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let threads = if self.shared.config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.shared.config.threads
        };
        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("sigstr-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();

        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(_) => {
                    if self.shared.is_shutting_down() {
                        break;
                    }
                    // Persistent accept errors (fd exhaustion under
                    // overload, transient ENOBUFS) must not hot-spin
                    // the acceptor at 100% CPU — back off briefly.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.shared.is_shutting_down() {
                // The wake-up connection (or a client racing shutdown).
                break;
            }
            self.admit(stream);
        }
        // Stop accepting *now* — connects after this refuse instead of
        // hanging in the backlog.
        drop(self.listener);
        self.shared.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(ServeSummary {
            requests: self.shared.metrics.requests(),
            rejected: self.shared.metrics.rejected(),
        })
    }

    /// Admission control: enqueue within the bound, `503` beyond it.
    fn admit(&self, mut stream: TcpStream) {
        let mut queue = self.shared.queue.lock().expect("admission queue poisoned");
        if queue.len() >= self.shared.config.queue_depth {
            drop(queue);
            self.shared.metrics.record_rejected();
            http::reject_overloaded(&mut stream);
            return;
        }
        queue.push_back(stream);
        drop(queue);
        self.shared.available.notify_one();
    }
}

/// Worker: claim connections until shutdown *and* the queue is drained.
fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("admission queue poisoned");
            loop {
                if let Some(stream) = queue.pop_front() {
                    break Some(stream);
                }
                if shared.is_shutting_down() {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .expect("admission queue poisoned");
            }
        };
        match stream {
            Some(stream) => serve_connection(shared, stream),
            None => return,
        }
    }
}

/// One connection's keep-alive loop.
fn serve_connection(shared: &Shared, stream: TcpStream) {
    let Ok(mut conn) = Conn::new(stream) else {
        return;
    };
    loop {
        let request =
            match conn.read_request(&shared.config.limits, shared.config.keep_alive, &|| {
                shared.is_shutting_down()
            }) {
                Ok(request) => request,
                Err(RecvError::Closed | RecvError::IdleTimeout | RecvError::Shutdown) => return,
                Err(RecvError::Io(_)) => return,
                Err(RecvError::TooLarge(status, message)) => {
                    respond_error(shared, &mut conn, status, message);
                    return;
                }
                Err(RecvError::Malformed(message)) => {
                    respond_error(shared, &mut conn, 400, message);
                    return;
                }
                Err(RecvError::Unsupported(message)) => {
                    respond_error(shared, &mut conn, 501, message);
                    return;
                }
            };
        let start = Instant::now();
        let mut response = route(shared, &request);
        let keep_alive = request.keep_alive && response.keep_alive && !shared.is_shutting_down();
        response.keep_alive = keep_alive;
        shared.metrics.observe(response.status, start.elapsed());
        if conn.write_response(&response).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Write a closing error response for input that never became a
/// routable request. Counted as a protocol error (status class only) —
/// not in `requests` and not in the latency histogram, whose semantics
/// are "requests fully parsed and routed".
fn respond_error(shared: &Shared, conn: &mut Conn, status: u16, message: &str) {
    shared.metrics.record_protocol_error(status);
    let _ = conn.write_response(&json_response(status, wire::error_json(message)).closing());
}

// ---------------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------------

fn json_response(status: u16, body: Json) -> Response {
    match body.encode() {
        Ok(mut text) => {
            text.push('\n');
            Response::new(status, "application/json", text.into_bytes())
        }
        // A non-finite float slipped into an answer: refuse to emit it
        // silently (the documented policy), fail the request instead.
        Err(e) => Response::new(
            500,
            "application/json",
            format!("{{\"error\":\"unencodable response: {e}\"}}\n").into_bytes(),
        ),
    }
}

fn text_response(status: u16, body: String) -> Response {
    Response::new(status, "text/plain; charset=utf-8", body.into_bytes())
}

/// Map a corpus error onto an HTTP status: unknown documents are `404`,
/// invalid query parameters are `400`, everything else (I/O, corrupt
/// snapshots, manifest trouble) is a `500`.
fn corpus_error_status(error: &CorpusError) -> u16 {
    match error {
        CorpusError::UnknownDocument { .. } => 404,
        CorpusError::Core(sigstr_core::Error::InvalidParameter { .. }) => 400,
        CorpusError::InvalidName { .. } | CorpusError::DuplicateDocument { .. } => 400,
        _ => 500,
    }
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => text_response(200, "ok\n".into()),
        ("GET", "/metrics") => text_response(
            200,
            shared
                .metrics
                .render(shared.queue_depth(), &shared.corpus.cache_stats()),
        ),
        ("GET", "/v1/documents") => handle_documents(shared),
        ("POST", "/v1/query") => handle_query(shared, request),
        ("POST", "/v1/batch") => handle_batch(shared, request),
        ("GET", "/v1/merged/top") => handle_merged_top(shared, request),
        ("GET", "/v1/merged/threshold") => handle_merged_threshold(shared, request),
        (
            _,
            "/healthz" | "/metrics" | "/v1/documents" | "/v1/merged/top" | "/v1/merged/threshold",
        ) => json_response(405, wire::error_json("method not allowed")).with_header("Allow", "GET"),
        (_, "/v1/query" | "/v1/batch") => {
            json_response(405, wire::error_json("method not allowed")).with_header("Allow", "POST")
        }
        _ => json_response(
            404,
            wire::error_json(&format!("no route for {}", request.path)),
        ),
    }
}

/// Decode a JSON request body, mapping every failure to a `400`.
fn body_json(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| json_response(400, wire::error_json("request body is not UTF-8")))?;
    Json::decode(text).map_err(|e| json_response(400, wire::error_json(&e.to_string())))
}

fn handle_documents(shared: &Shared) -> Response {
    let documents: Vec<Json> = shared
        .corpus
        .entries()
        .iter()
        .map(wire::document_to_json)
        .collect();
    json_response(
        200,
        Json::Obj(vec![("documents".into(), Json::Arr(documents))]),
    )
}

fn handle_query(shared: &Shared, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(doc) = json.get("doc").and_then(Json::as_str) else {
        return json_response(400, wire::error_json("missing string field `doc`"));
    };
    let query = match json
        .get("query")
        .ok_or_else(|| "missing field `query`".to_string())
        .and_then(wire::query_from_json)
    {
        Ok(query) => query,
        Err(message) => return json_response(400, wire::error_json(&message)),
    };
    match shared.corpus.query(doc, &query) {
        Ok(answer) => json_response(
            200,
            Json::Obj(vec![
                ("doc".into(), Json::Str(doc.to_string())),
                ("answer".into(), wire::answer_to_json(&answer)),
            ]),
        ),
        Err(e) => json_response(corpus_error_status(&e), wire::error_json(&e.to_string())),
    }
}

fn handle_batch(shared: &Shared, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(jobs) = json.get("jobs").and_then(Json::as_array) else {
        return json_response(400, wire::error_json("missing array field `jobs`"));
    };
    let mut parsed: Vec<(String, Query)> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let Some(doc) = job.get("doc").and_then(Json::as_str) else {
            return json_response(
                400,
                wire::error_json(&format!("job {i}: missing string field `doc`")),
            );
        };
        let query = match job
            .get("query")
            .ok_or_else(|| "missing field `query`".to_string())
            .and_then(wire::query_from_json)
        {
            Ok(query) => query,
            Err(message) => {
                return json_response(400, wire::error_json(&format!("job {i}: {message}")))
            }
        };
        parsed.push((doc.to_string(), query));
    }
    // Fan out through the corpus batch driver: every job in this request
    // (and in concurrent requests) shares the warm-engine cache and the
    // one persistent worker pool.
    let borrowed: Vec<(&str, Query)> = parsed.iter().map(|(d, q)| (d.as_str(), *q)).collect();
    let answers = shared.corpus.run_batch(&borrowed);
    let results: Vec<Json> = answers
        .into_iter()
        .zip(&parsed)
        .map(|(answer, (doc, _))| match answer {
            Ok(answer) => Json::Obj(vec![
                ("doc".into(), Json::Str(doc.clone())),
                ("answer".into(), wire::answer_to_json(&answer)),
            ]),
            Err(e) => Json::Obj(vec![
                ("doc".into(), Json::Str(doc.clone())),
                (
                    "status".into(),
                    Json::Int(u64::from(corpus_error_status(&e))),
                ),
                ("error".into(), Json::Str(e.to_string())),
            ]),
        })
        .collect();
    json_response(200, Json::Obj(vec![("results".into(), Json::Arr(results))]))
}

fn handle_merged_top(shared: &Shared, request: &Request) -> Response {
    let Some(t) = request
        .query_param("t")
        .and_then(|t| t.parse::<usize>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `t`"),
        );
    };
    match shared.corpus.top_t_merged(t) {
        Ok(hits) => json_response(
            200,
            Json::Obj(vec![
                ("t".into(), Json::Int(t as u64)),
                (
                    "hits".into(),
                    Json::Arr(hits.iter().map(wire::hit_to_json).collect()),
                ),
            ]),
        ),
        Err(e) => json_response(corpus_error_status(&e), wire::error_json(&e.to_string())),
    }
}

fn handle_merged_threshold(shared: &Shared, request: &Request) -> Response {
    let Some(alpha) = request
        .query_param("alpha")
        .and_then(|a| a.parse::<f64>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `alpha`"),
        );
    };
    if !alpha.is_finite() {
        return json_response(400, wire::error_json("`alpha` must be finite"));
    }
    match shared.corpus.above_threshold_merged(alpha) {
        Ok(hits) => json_response(
            200,
            Json::Obj(vec![
                ("alpha".into(), Json::Num(alpha)),
                ("count".into(), Json::Int(hits.len() as u64)),
                (
                    "hits".into(),
                    Json::Arr(hits.iter().map(wire::hit_to_json).collect()),
                ),
            ]),
        ),
        Err(e) => json_response(corpus_error_status(&e), wire::error_json(&e.to_string())),
    }
}

// ---------------------------------------------------------------------------
// Compile-time thread-safety contract.
// ---------------------------------------------------------------------------

// The server hands `&Shared` (and through it `&Corpus` and
// `Arc<Engine>`) to every worker thread. These assertions turn a future
// accidental `!Sync` field — a `Cell`, an `Rc`, a raw pointer — into a
// build error here instead of a trait-bound error somewhere deep in a
// spawn call (or worse, a design that quietly stops being shareable).
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<sigstr_core::Engine>();
    require_send_sync::<std::sync::Arc<sigstr_core::Engine>>();
    require_send_sync::<sigstr_corpus::Corpus>();
    require_send_sync::<Shared>();
    require_send_sync::<ServerHandle>();
    require_send_sync::<Metrics>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sigstr_core::{CountsLayout, Model, Sequence};

    fn test_corpus(tag: &str) -> Corpus {
        let dir = std::env::temp_dir().join(format!(
            "sigstr-server-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut corpus = Corpus::create(&dir).unwrap();
        let symbols: Vec<u8> = (0..120u32).map(|i| ((i / 7) % 2) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        corpus
            .add_document("d0", &seq, Model::uniform(2).unwrap(), CountsLayout::Flat)
            .unwrap();
        corpus
    }

    fn shared(tag: &str) -> Shared {
        Shared {
            corpus: test_corpus(tag),
            metrics: Metrics::default(),
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            config: ServerConfig::default(),
        }
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
        }
    }

    #[test]
    fn router_statuses() {
        let shared = shared("router");
        assert_eq!(route(&shared, &get("/healthz", &[])).status, 200);
        assert_eq!(route(&shared, &get("/metrics", &[])).status, 200);
        assert_eq!(route(&shared, &get("/v1/documents", &[])).status, 200);
        assert_eq!(route(&shared, &get("/no/such/route", &[])).status, 404);
        // Wrong method → 405 with an Allow header.
        let r = route(&shared, &post("/healthz", ""));
        assert_eq!(r.status, 405);
        assert!(r.extra_headers.iter().any(|(k, _)| *k == "Allow"));
        assert_eq!(route(&shared, &get("/v1/query", &[])).status, 405);
    }

    #[test]
    fn query_route_validates_input() {
        let shared = shared("validate");
        assert_eq!(route(&shared, &post("/v1/query", "not json")).status, 400);
        assert_eq!(route(&shared, &post("/v1/query", "{}")).status, 400);
        assert_eq!(
            route(
                &shared,
                &post("/v1/query", r#"{"doc":"d0","query":{"kind":"nope"}}"#)
            )
            .status,
            400
        );
        assert_eq!(
            route(
                &shared,
                &post("/v1/query", r#"{"doc":"ghost","query":{"kind":"mss"}}"#)
            )
            .status,
            404
        );
        let ok = route(
            &shared,
            &post("/v1/query", r#"{"doc":"d0","query":{"kind":"mss"}}"#),
        );
        assert_eq!(ok.status, 200);
        let body = Json::decode(std::str::from_utf8(&ok.body).unwrap().trim()).unwrap();
        assert_eq!(body.get("doc").unwrap().as_str(), Some("d0"));
        assert!(body.get("answer").is_some());
        // Out-of-range restriction → 400 (engine InvalidParameter).
        assert_eq!(
            route(
                &shared,
                &post(
                    "/v1/query",
                    r#"{"doc":"d0","query":{"kind":"mss","range":[0,100000]}}"#
                )
            )
            .status,
            400
        );
    }

    #[test]
    fn merged_routes_validate_parameters() {
        let shared = shared("merged");
        assert_eq!(route(&shared, &get("/v1/merged/top", &[])).status, 400);
        assert_eq!(
            route(&shared, &get("/v1/merged/top", &[("t", "x")])).status,
            400
        );
        assert_eq!(
            route(&shared, &get("/v1/merged/top", &[("t", "0")])).status,
            400
        );
        assert_eq!(
            route(&shared, &get("/v1/merged/top", &[("t", "3")])).status,
            200
        );
        assert_eq!(
            route(&shared, &get("/v1/merged/threshold", &[])).status,
            400
        );
        assert_eq!(
            route(&shared, &get("/v1/merged/threshold", &[("alpha", "inf")])).status,
            400
        );
        assert_eq!(
            route(&shared, &get("/v1/merged/threshold", &[("alpha", "2.5")])).status,
            200
        );
    }

    #[test]
    fn batch_route_answers_per_job() {
        let shared = shared("batch");
        let body = r#"{"jobs":[
            {"doc":"d0","query":{"kind":"mss"}},
            {"doc":"ghost","query":{"kind":"mss"}},
            {"doc":"d0","query":{"kind":"top","t":2}}
        ]}"#;
        let response = route(&shared, &post("/v1/batch", body));
        assert_eq!(response.status, 200);
        let json = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
        let results = json.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0].get("answer").is_some());
        assert!(results[1].get("error").is_some());
        assert_eq!(results[1].get("status").unwrap().as_u64(), Some(404));
        assert!(results[2].get("answer").is_some());
        // A malformed job fails the whole request with its index.
        let bad = r#"{"jobs":[{"doc":"d0"}]}"#;
        let response = route(&shared, &post("/v1/batch", bad));
        assert_eq!(response.status, 400);
        assert!(std::str::from_utf8(&response.body)
            .unwrap()
            .contains("job 0"));
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert_eq!(config.threads, 0);
        assert!(config.queue_depth > 0);
        assert!(config.keep_alive > Duration::from_millis(100));
    }
}
