//! `sigstr-server` — a std-only HTTP/1.1 query service over a
//! [`sigstr_corpus::Corpus`].
//!
//! PRs 1–4 built the fast scan kernel, the reusable engine, the compact
//! count index and the snapshot-backed corpus — but reached them only
//! through one-shot CLI processes that throw the warm-engine cache away
//! on exit. This crate is the missing serving layer: a long-lived
//! daemon that keeps engines resident and answers concurrent queries
//! over plain HTTP, with **no dependencies beyond `std`** (the
//! workspace's offline policy), in the repo's style of self-contained
//! subsystems.
//!
//! # Architecture
//!
//! The accept/admission/worker-pool/drain skeleton lives in [`service`]
//! (it is shared with the scatter-gather router in `sigstr-router`);
//! this crate contributes the corpus [`Handler`] — routing, wire
//! encoding, and the corpus-specific `/metrics` lines:
//!
//! ```text
//!              ┌──────────┐   bounded queue    ┌─────────┐
//!  clients ──▶ │ acceptor │ ──────────────────▶│ worker  │──▶ Corpus
//!              │  thread  │  (overload: 503 +  │  pool   │    (warm
//!              └──────────┘    Retry-After)    └─────────┘    engines)
//! ```
//!
//! # Routes
//!
//! | Route | Answer |
//! |---|---|
//! | `GET /healthz` | readiness JSON: `status`, manifest `generation`, `documents`; `503` + `Retry-After` while draining |
//! | `GET /metrics` | text counters: traffic, status classes, latency histogram, queue depth, corpus cache stats |
//! | `GET /v1/documents` | the corpus manifest plus its placement `generation` |
//! | `POST /v1/query` | one document, any [`Query`] (incl. range-restricted) |
//! | `POST /v1/batch` | many `(doc, query)` jobs through [`Corpus::run_batch`], sharing warm engines and the pool |
//! | `GET /v1/merged/top?t=` | deterministic corpus-wide top-t merge |
//! | `GET /v1/merged/threshold?alpha=` | corpus-wide threshold set in document order |
//! | `POST /v1/documents/{name}/append` | append to a **live** document; alerts from its watches ride back |
//! | `POST /v1/watch` | register a sliding-window watch on a live document |
//! | `DELETE /v1/watch?doc=&watch=` | remove a watch |
//! | `GET /v1/watch?doc=&since=&timeout_ms=` | long-poll for alerts past the `since` cursor |
//! | `GET /v1/live` | per-document live status (generation, tail, counters) |
//!
//! Live documents accumulate appends in an in-memory tail that stays
//! *invisible* to queries until a background freezer (or the tail-size
//! threshold) rolls it into the next snapshot generation — so a query
//! racing an append always answers bit-identically to some fully-frozen
//! generation, never a half-updated index.
//!
//! Every corpus-touching route adopts externally-rewritten manifests
//! (a live `sigstr rebalance` committing documents in or out) via
//! [`Corpus::refresh`], and a query for a document this shard *used to*
//! hold answers `410 Gone` — the router's signal to re-fetch the
//! placement directory and re-route, distinct from a true `404`.
//!
//! Answers are JSON with **bit-exact** scores: the wire format
//! ([`wire`]) rides on a round-trip-exact JSON layer ([`json`]), so an
//! HTTP client decodes the same `f64` bits the engine computed.
//!
//! # Example
//!
//! ```no_run
//! use sigstr_corpus::Corpus;
//! use sigstr_server::{Server, ServerConfig};
//!
//! let corpus = Corpus::open("corpus-dir").unwrap();
//! let server = Server::bind(
//!     corpus,
//!     ServerConfig {
//!         addr: "127.0.0.1:0".into(),
//!         ..ServerConfig::default()
//!     },
//! )
//! .unwrap();
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // call handle.shutdown() from anywhere
//! let summary = server.run().unwrap();
//! println!("served {} requests", summary.requests);
//! # let _ = handle;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod client;
pub mod http;
pub mod json;
pub mod metrics;
pub mod service;
pub mod wire;

use std::net::SocketAddr;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sigstr_core::Query;
use sigstr_corpus::{Corpus, CorpusError};

use http::{Request, Response};
use json::Json;
use service::{json_response, text_response, Handler, Service, ServiceCore};

pub use service::{ServeSummary, ServiceConfig, ServiceHandle};

/// Server configuration (an alias of the shared [`ServiceConfig`]).
pub type ServerConfig = ServiceConfig;

/// A cloneable shutdown handle (an alias of the shared
/// [`ServiceHandle`]).
pub type ServerHandle = ServiceHandle;

/// A bound corpus server, ready to [`run`](Server::run).
pub struct Server {
    inner: Service<CorpusHandler>,
}

impl Server {
    /// Bind the listener and assemble the shared state. The server does
    /// not accept connections until [`Server::run`]. A background
    /// freezer thread starts here: it periodically rolls every live
    /// document's aged tail into the next snapshot generation, so
    /// slow-trickle appends become queryable within
    /// [`sigstr_corpus::LiveOptions::freeze_age`] even when no single
    /// append crosses the size threshold.
    pub fn bind(corpus: Corpus, config: ServerConfig) -> std::io::Result<Server> {
        let corpus = Arc::new(corpus);
        let freezer = Freezer::start(Arc::clone(&corpus));
        Ok(Server {
            inner: Service::bind(CorpusHandler { corpus, freezer }, config)?,
        })
    }

    /// The bound address (the real port, when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local_addr()
    }

    /// A shutdown handle for this server.
    pub fn handle(&self) -> ServerHandle {
        self.inner.handle()
    }

    /// Serve until [`ServerHandle::shutdown`], then drain and report.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        self.inner.run()
    }
}

/// The corpus-serving [`Handler`]: routes requests onto a [`Corpus`].
/// The corpus rides in an `Arc` because the freezer thread holds a
/// second reference alongside the worker pool.
struct CorpusHandler {
    corpus: Arc<Corpus>,
    freezer: Freezer,
}

impl Handler for CorpusHandler {
    fn handle(&self, request: &Request, core: &ServiceCore) -> Response {
        route(self, request, core)
    }

    fn on_shutdown(&self) {
        self.freezer.stop();
    }
}

/// How often the freezer checks for age-due tails. Much finer than any
/// sane `freeze_age`, so the age policy (not the tick) bounds staleness.
const FREEZE_TICK: Duration = Duration::from_millis(50);

/// The background freeze ticker: one thread parked on a condvar that
/// wakes every [`FREEZE_TICK`] to call [`Corpus::freeze_due`]. Stopped
/// (and joined) by [`Handler::on_shutdown`] — or by drop, so a failed
/// `Service::bind` doesn't leak a ticking thread.
struct Freezer {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Freezer {
    fn start(corpus: Arc<Corpus>) -> Freezer {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let pair = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("sigstr-freezer".into())
            .spawn(move || {
                let (flag, wake) = &*pair;
                let mut stopped = flag.lock().expect("freezer flag poisoned");
                loop {
                    if *stopped {
                        return;
                    }
                    let (guard, timeout) = wake
                        .wait_timeout(stopped, FREEZE_TICK)
                        .expect("freezer flag poisoned");
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if timeout.timed_out() {
                        // Tick without holding the flag: a freeze writes
                        // a snapshot and must not block shutdown's stop
                        // signal (it re-checks the flag next loop).
                        drop(stopped);
                        corpus.freeze_due();
                        stopped = flag.lock().expect("freezer flag poisoned");
                    }
                }
            })
            .expect("spawn freezer thread");
        Freezer {
            stop,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// A freezer that never ticks (handler-level unit tests drive
    /// freezes explicitly through appends).
    #[cfg(test)]
    fn disabled() -> Freezer {
        Freezer {
            stop: Arc::new((Mutex::new(true), Condvar::new())),
            thread: Mutex::new(None),
        }
    }

    /// Signal the thread and join it. Idempotent.
    fn stop(&self) {
        let (flag, wake) = &*self.stop;
        *flag.lock().expect("freezer flag poisoned") = true;
        wake.notify_all();
        let thread = self.thread.lock().expect("freezer thread poisoned").take();
        if let Some(thread) = thread {
            let _ = thread.join();
        }
    }
}

impl Drop for Freezer {
    fn drop(&mut self) {
        self.stop();
    }
}

// ---------------------------------------------------------------------------
// Routing.
// ---------------------------------------------------------------------------

/// Map a corpus error onto an HTTP status: unknown documents are `404`,
/// invalid query parameters are `400`, everything else (I/O, corrupt
/// snapshots, manifest trouble) is a `500`.
fn corpus_error_status(error: &CorpusError) -> u16 {
    match error {
        CorpusError::UnknownDocument { .. } => 404,
        CorpusError::Core(sigstr_core::Error::InvalidParameter { .. }) => 400,
        CorpusError::InvalidName { .. } | CorpusError::DuplicateDocument { .. } => 400,
        CorpusError::NotLive { .. } | CorpusError::InvalidAppend { .. } => 400,
        _ => 500,
    }
}

/// [`corpus_error_status`] refined with departure knowledge: a document
/// this shard *used to* hold (released by a live rebalance) answers
/// `410 Gone` rather than `404 Not Found`. The distinction is the
/// directory-refresh signal — a router holding a stale placement treats
/// `410` as "re-fetch the directory and re-route", while a true `404`
/// means the document never existed anywhere.
fn document_error_status(handler: &CorpusHandler, doc: &str, error: &CorpusError) -> u16 {
    if matches!(error, CorpusError::UnknownDocument { .. })
        && handler.corpus.departed(doc).is_some()
    {
        410
    } else {
        corpus_error_status(error)
    }
}

/// The error response for a single-document failure (`410` carries the
/// placement generation at which the document departed, so a client can
/// tell which membership view it is behind).
fn document_error_response(handler: &CorpusHandler, doc: &str, error: &CorpusError) -> Response {
    if matches!(error, CorpusError::UnknownDocument { .. }) {
        if let Some(generation) = handler.corpus.departed(doc) {
            return json_response(
                410,
                Json::Obj(vec![
                    (
                        "error".into(),
                        Json::Str(format!("document `{doc}` moved to another shard")),
                    ),
                    ("generation".into(), Json::Int(generation)),
                ]),
            );
        }
    }
    json_response(
        corpus_error_status(error),
        wire::error_json(&error.to_string()),
    )
}

/// The document name from a live-append path
/// (`/v1/documents/{name}/append`).
fn append_route_doc(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/documents/")?
        .strip_suffix("/append")
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

fn route(handler: &CorpusHandler, request: &Request, core: &ServiceCore) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(handler, core),
        ("GET", "/metrics") => {
            let mut text = core.metrics().render_http(core.queue_depth());
            metrics::render_cache(&mut text, &handler.corpus.cache_stats());
            metrics::render_trace(&mut text, core.recorder());
            metrics::render_live(&mut text, &handler.corpus.live_stats());
            text_response(200, text)
        }
        ("GET", "/debug/traces") => service::traces_response(core, request),
        ("GET", "/v1/documents") => handle_documents(handler),
        ("POST", "/v1/query") => handle_query(handler, request),
        ("POST", "/v1/batch") => handle_batch(handler, request),
        ("GET", "/v1/merged/top") => handle_merged_top(handler, request),
        ("GET", "/v1/merged/threshold") => handle_merged_threshold(handler, request),
        ("POST", path) if append_route_doc(path).is_some() => {
            handle_append(handler, request, append_route_doc(path).expect("guarded"))
        }
        ("POST", "/v1/watch") => handle_watch_register(handler, request),
        ("DELETE", "/v1/watch") => handle_watch_remove(handler, request),
        ("GET", "/v1/watch") => handle_watch_poll(handler, request, core),
        ("GET", "/v1/live") => handle_live_status(handler),
        (
            _,
            "/healthz"
            | "/metrics"
            | "/v1/documents"
            | "/v1/merged/top"
            | "/v1/merged/threshold"
            | "/v1/live",
        ) => json_response(405, wire::error_json("method not allowed")).with_header("Allow", "GET"),
        (_, "/v1/query" | "/v1/batch") => {
            json_response(405, wire::error_json("method not allowed")).with_header("Allow", "POST")
        }
        (_, "/v1/watch") => json_response(405, wire::error_json("method not allowed"))
            .with_header("Allow", "GET, POST, DELETE"),
        (_, path) if append_route_doc(path).is_some() => {
            json_response(405, wire::error_json("method not allowed")).with_header("Allow", "POST")
        }
        _ => json_response(
            404,
            wire::error_json(&format!("no route for {}", request.path)),
        ),
    }
}

/// `/healthz` separates liveness from readiness: any answer at all
/// means the process is alive, but only `200 {"status":"ok"}` means it
/// should receive traffic. During a shutdown drain the route keeps
/// answering (in-flight keep-alive connections stay valid) with `503` +
/// `Retry-After`, so a routing tier's health checker stops sending new
/// work to a draining shard. The body reports the corpus manifest
/// generation and document count, so a router can notice membership
/// changes without fetching the whole manifest.
fn handle_healthz(handler: &CorpusHandler, core: &ServiceCore) -> Response {
    // Adopt an externally-rewritten manifest (live rebalance) before
    // reporting: health probes are the routers' generation-change
    // detection point, so the generation here must be the on-disk one.
    handler.corpus.refresh().ok();
    let draining = core.is_shutting_down();
    let body = Json::Obj(vec![
        (
            "status".into(),
            Json::Str(if draining { "draining" } else { "ok" }.into()),
        ),
        ("generation".into(), Json::Int(handler.corpus.generation())),
        ("documents".into(), Json::Int(handler.corpus.len() as u64)),
    ]);
    if draining {
        json_response(503, body).with_header("Retry-After", "1")
    } else {
        json_response(200, body)
    }
}

/// Decode a JSON request body, mapping every failure to a `400`.
fn body_json(request: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| json_response(400, wire::error_json("request body is not UTF-8")))?;
    Json::decode(text).map_err(|e| json_response(400, wire::error_json(&e.to_string())))
}

fn handle_documents(handler: &CorpusHandler) -> Response {
    handler.corpus.refresh().ok();
    let documents: Vec<Json> = handler
        .corpus
        .entries()
        .iter()
        .map(wire::document_to_json)
        .collect();
    // The placement generation rides along so a router can pair the
    // membership list with the generation it reflects (and skip
    // re-fetching when a later health probe reports the same one).
    json_response(
        200,
        Json::Obj(vec![
            ("generation".into(), Json::Int(handler.corpus.generation())),
            ("documents".into(), Json::Arr(documents)),
        ]),
    )
}

fn handle_query(handler: &CorpusHandler, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(doc) = json.get("doc").and_then(Json::as_str) else {
        return json_response(400, wire::error_json("missing string field `doc`"));
    };
    let query = match json
        .get("query")
        .ok_or_else(|| "missing field `query`".to_string())
        .and_then(wire::query_from_json)
    {
        Ok(query) => query,
        Err(message) => return json_response(400, wire::error_json(&message)),
    };
    let mut result = handler.corpus.query(doc, &query);
    // A failure against stale membership may resolve itself on disk: the
    // document may have just *arrived* (a rebalance committed it to this
    // shard's manifest after our last refresh) or just *departed* (its
    // snapshot already deleted, surfacing as an I/O error through the
    // old manifest entry). Adopt the on-disk membership and retry once
    // before answering — only then is 404/410/500 the true state.
    if result.is_err() && handler.corpus.refresh().unwrap_or(false) {
        result = handler.corpus.query(doc, &query);
    }
    match result {
        Ok(answer) => json_response(
            200,
            Json::Obj(vec![
                ("doc".into(), Json::Str(doc.to_string())),
                ("answer".into(), wire::answer_to_json(&answer)),
            ]),
        ),
        Err(e) => document_error_response(handler, doc, &e),
    }
}

fn handle_batch(handler: &CorpusHandler, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(jobs) = json.get("jobs").and_then(Json::as_array) else {
        return json_response(400, wire::error_json("missing array field `jobs`"));
    };
    let mut parsed: Vec<(String, Query)> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let Some(doc) = job.get("doc").and_then(Json::as_str) else {
            return json_response(
                400,
                wire::error_json(&format!("job {i}: missing string field `doc`")),
            );
        };
        let query = match job
            .get("query")
            .ok_or_else(|| "missing field `query`".to_string())
            .and_then(wire::query_from_json)
        {
            Ok(query) => query,
            Err(message) => {
                return json_response(400, wire::error_json(&format!("job {i}: {message}")))
            }
        };
        parsed.push((doc.to_string(), query));
    }
    // Fan out through the corpus batch driver: every job in this request
    // (and in concurrent requests) shares the warm-engine cache and the
    // one persistent worker pool.
    let borrowed: Vec<(&str, Query)> = parsed.iter().map(|(d, q)| (d.as_str(), *q)).collect();
    let mut answers = handler.corpus.run_batch(&borrowed);
    // Same stale-membership race as the single-query route: if any job
    // failed and the on-disk membership has moved on, retry once.
    if answers.iter().any(Result::is_err) && handler.corpus.refresh().unwrap_or(false) {
        answers = handler.corpus.run_batch(&borrowed);
    }
    let results: Vec<Json> = answers
        .into_iter()
        .zip(&parsed)
        .map(|(answer, (doc, _))| match answer {
            Ok(answer) => Json::Obj(vec![
                ("doc".into(), Json::Str(doc.clone())),
                ("answer".into(), wire::answer_to_json(&answer)),
            ]),
            Err(e) => Json::Obj(vec![
                ("doc".into(), Json::Str(doc.clone())),
                (
                    "status".into(),
                    Json::Int(u64::from(document_error_status(handler, doc, &e))),
                ),
                ("error".into(), Json::Str(e.to_string())),
            ]),
        })
        .collect();
    json_response(200, Json::Obj(vec![("results".into(), Json::Arr(results))]))
}

fn handle_merged_top(handler: &CorpusHandler, request: &Request) -> Response {
    let Some(t) = request
        .query_param("t")
        .and_then(|t| t.parse::<usize>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `t`"),
        );
    };
    // Merged answers cover "every document on this shard" — adopt any
    // externally-committed membership change before deciding what that
    // set is, and retry once if a removal lands between the refresh and
    // the run (the batch itself snapshots membership exactly once and
    // completes against it).
    handler.corpus.refresh().ok();
    let mut result = handler.corpus.top_t_merged(t);
    if result.is_err() && handler.corpus.refresh().unwrap_or(false) {
        result = handler.corpus.top_t_merged(t);
    }
    match result {
        Ok(hits) => json_response(
            200,
            Json::Obj(vec![
                ("t".into(), Json::Int(t as u64)),
                (
                    "hits".into(),
                    Json::Arr(hits.iter().map(wire::hit_to_json).collect()),
                ),
            ]),
        ),
        Err(e) => json_response(corpus_error_status(&e), wire::error_json(&e.to_string())),
    }
}

fn handle_merged_threshold(handler: &CorpusHandler, request: &Request) -> Response {
    let Some(alpha) = request
        .query_param("alpha")
        .and_then(|a| a.parse::<f64>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `alpha`"),
        );
    };
    if !alpha.is_finite() {
        return json_response(400, wire::error_json("`alpha` must be finite"));
    }
    handler.corpus.refresh().ok();
    let mut result = handler.corpus.above_threshold_merged(alpha);
    if result.is_err() && handler.corpus.refresh().unwrap_or(false) {
        result = handler.corpus.above_threshold_merged(alpha);
    }
    match result {
        Ok(hits) => json_response(
            200,
            Json::Obj(vec![
                ("alpha".into(), Json::Num(alpha)),
                ("count".into(), Json::Int(hits.len() as u64)),
                (
                    "hits".into(),
                    Json::Arr(hits.iter().map(wire::hit_to_json).collect()),
                ),
            ]),
        ),
        Err(e) => json_response(corpus_error_status(&e), wire::error_json(&e.to_string())),
    }
}

// ---------------------------------------------------------------------------
// Live documents: append, watches, long-poll, status.
// ---------------------------------------------------------------------------

/// `POST /v1/documents/{name}/append` — body `{"data": "..."}`. The
/// data's non-whitespace bytes are appended to the live document's
/// unfrozen tail; any alerts its watches emitted for this append ride
/// back in the response alongside the new stream geometry.
fn handle_append(handler: &CorpusHandler, request: &Request, doc: &str) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(data) = json.get("data").and_then(Json::as_str) else {
        return json_response(400, wire::error_json("missing string field `data`"));
    };
    let mut result = handler.corpus.append_live(doc, data.as_bytes());
    // Same stale-membership retry as the query route — and just as
    // safe, despite appends not being idempotent: the only retried
    // failures are "this shard doesn't know the document", which
    // reject *before* any state changes. A live document added (or
    // migrated in) by another process becomes appendable on refresh.
    if matches!(
        &result,
        Err(CorpusError::UnknownDocument { .. } | CorpusError::NotLive { .. })
    ) && handler.corpus.refresh().unwrap_or(false)
    {
        result = handler.corpus.append_live(doc, data.as_bytes());
    }
    match result {
        Ok(outcome) => json_response(
            200,
            Json::Obj(vec![
                ("doc".into(), Json::Str(doc.to_string())),
                ("n".into(), Json::Int(outcome.n as u64)),
                ("tail".into(), Json::Int(outcome.tail as u64)),
                ("generation".into(), Json::Int(outcome.generation)),
                ("frozen".into(), Json::Bool(outcome.frozen)),
                (
                    "alerts".into(),
                    Json::Arr(outcome.alerts.iter().map(wire::alert_to_json).collect()),
                ),
            ]),
        ),
        Err(e) => document_error_response(handler, doc, &e),
    }
}

/// `POST /v1/watch` — body `{"doc", "window", "threshold", "top_t"}`.
/// Answers the watch id to pass to `DELETE /v1/watch`.
fn handle_watch_register(handler: &CorpusHandler, request: &Request) -> Response {
    let json = match body_json(request) {
        Ok(json) => json,
        Err(response) => return response,
    };
    let Some(doc) = json.get("doc").and_then(Json::as_str) else {
        return json_response(400, wire::error_json("missing string field `doc`"));
    };
    let spec = match wire::watch_spec_from_json(&json) {
        Ok(spec) => spec,
        Err(message) => return json_response(400, wire::error_json(&message)),
    };
    let mut result = handler.corpus.watch_register(doc, spec);
    if matches!(
        &result,
        Err(CorpusError::UnknownDocument { .. } | CorpusError::NotLive { .. })
    ) && handler.corpus.refresh().unwrap_or(false)
    {
        result = handler.corpus.watch_register(doc, spec);
    }
    match result {
        Ok(id) => json_response(
            200,
            Json::Obj(vec![
                ("doc".into(), Json::Str(doc.to_string())),
                ("watch".into(), Json::Int(id)),
            ]),
        ),
        Err(e) => document_error_response(handler, doc, &e),
    }
}

/// `DELETE /v1/watch?doc=&watch=` — remove a registered watch.
fn handle_watch_remove(handler: &CorpusHandler, request: &Request) -> Response {
    let Some(doc) = request.query_param("doc") else {
        return json_response(400, wire::error_json("missing query parameter `doc`"));
    };
    let Some(watch) = request
        .query_param("watch")
        .and_then(|w| w.parse::<u64>().ok())
    else {
        return json_response(
            400,
            wire::error_json("missing or unparseable query parameter `watch`"),
        );
    };
    match handler.corpus.watch_unregister(doc, watch) {
        Ok(removed) => json_response(
            200,
            Json::Obj(vec![
                ("doc".into(), Json::Str(doc.to_string())),
                ("watch".into(), Json::Int(watch)),
                ("removed".into(), Json::Bool(removed)),
            ]),
        ),
        Err(e) => document_error_response(handler, doc, &e),
    }
}

/// Long-poll holds are sliced so a parked watcher notices a shutdown
/// drain (and the connection's fairness rules) within one slice rather
/// than pinning a worker for the full client timeout.
const WATCH_POLL_SLICE: Duration = Duration::from_millis(150);

/// The default and ceiling for a long-poll's `timeout_ms` (the HTTP
/// layer answers with `Content-Length`, so the hold must resolve well
/// inside any client/proxy idle timeout).
const WATCH_POLL_DEFAULT_MS: u64 = 10_000;
const WATCH_POLL_MAX_MS: u64 = 30_000;

/// `GET /v1/watch?doc=&since=&timeout_ms=` — long-poll for alerts with
/// `seq > since`. Answers immediately when such alerts exist, otherwise
/// holds until one arrives or the timeout elapses (then an empty batch;
/// the client re-polls with the returned `next_since`).
fn handle_watch_poll(handler: &CorpusHandler, request: &Request, core: &ServiceCore) -> Response {
    let Some(doc) = request.query_param("doc") else {
        return json_response(400, wire::error_json("missing query parameter `doc`"));
    };
    let since = match request.query_param("since") {
        None => 0,
        Some(raw) => match raw.parse::<u64>() {
            Ok(since) => since,
            Err(_) => {
                return json_response(
                    400,
                    wire::error_json("query parameter `since` must be a non-negative integer"),
                )
            }
        },
    };
    let timeout_ms = request
        .query_param("timeout_ms")
        .and_then(|t| t.parse::<u64>().ok())
        .unwrap_or(WATCH_POLL_DEFAULT_MS)
        .min(WATCH_POLL_MAX_MS);
    let deadline = Instant::now() + Duration::from_millis(timeout_ms);
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let batch = match handler
            .corpus
            .watch_poll(doc, since, remaining.min(WATCH_POLL_SLICE))
        {
            Ok(batch) => batch,
            Err(e) => return document_error_response(handler, doc, &e),
        };
        if !batch.alerts.is_empty() || remaining <= WATCH_POLL_SLICE || core.is_shutting_down() {
            return json_response(
                200,
                Json::Obj(vec![
                    ("doc".into(), Json::Str(doc.to_string())),
                    (
                        "alerts".into(),
                        Json::Arr(batch.alerts.iter().map(wire::alert_to_json).collect()),
                    ),
                    ("next_since".into(), Json::Int(batch.next_since)),
                    ("generation".into(), Json::Int(batch.generation)),
                    ("n".into(), Json::Int(batch.n as u64)),
                ]),
            );
        }
    }
}

/// `GET /v1/live` — every live document's status, in name order.
fn handle_live_status(handler: &CorpusHandler) -> Response {
    handler.corpus.refresh().ok();
    let docs: Vec<Json> = handler
        .corpus
        .live_status()
        .iter()
        .map(wire::live_status_to_json)
        .collect();
    json_response(200, Json::Obj(vec![("docs".into(), Json::Arr(docs))]))
}

// ---------------------------------------------------------------------------
// Compile-time thread-safety contract.
// ---------------------------------------------------------------------------

// The service hands the handler (and through it `&Corpus` and
// `Arc<Engine>`) to every worker thread. These assertions turn a future
// accidental `!Sync` field — a `Cell`, an `Rc`, a raw pointer — into a
// build error here instead of a trait-bound error somewhere deep in a
// spawn call (or worse, a design that quietly stops being shareable).
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<sigstr_core::Engine>();
    require_send_sync::<std::sync::Arc<sigstr_core::Engine>>();
    require_send_sync::<sigstr_corpus::Corpus>();
    require_send_sync::<CorpusHandler>();
    require_send_sync::<ServerHandle>();
    require_send_sync::<metrics::Metrics>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use sigstr_core::{CountsLayout, Model, Sequence};
    use std::time::Duration;

    fn test_corpus(tag: &str) -> Corpus {
        let dir = std::env::temp_dir().join(format!(
            "sigstr-server-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut corpus = Corpus::create(&dir).unwrap();
        let symbols: Vec<u8> = (0..120u32).map(|i| ((i / 7) % 2) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        corpus
            .add_document("d0", &seq, Model::uniform(2).unwrap(), CountsLayout::Flat)
            .unwrap();
        corpus
    }

    fn handler_for(corpus: Corpus) -> CorpusHandler {
        CorpusHandler {
            corpus: Arc::new(corpus),
            freezer: Freezer::disabled(),
        }
    }

    fn fixture(tag: &str) -> (CorpusHandler, ServiceCore) {
        (
            handler_for(test_corpus(tag)),
            ServiceCore::new(ServerConfig::default()),
        )
    }

    fn get(path: &str, query: &[(&str, &str)]) -> Request {
        Request {
            method: "GET".into(),
            path: path.into(),
            query: query
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
            recv_us: 0,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".into(),
            path: path.into(),
            query: Vec::new(),
            headers: Vec::new(),
            body: body.as_bytes().to_vec(),
            keep_alive: true,
            recv_us: 0,
        }
    }

    #[test]
    fn router_statuses() {
        let (handler, core) = fixture("router");
        assert_eq!(route(&handler, &get("/healthz", &[]), &core).status, 200);
        assert_eq!(route(&handler, &get("/metrics", &[]), &core).status, 200);
        assert_eq!(
            route(&handler, &get("/v1/documents", &[]), &core).status,
            200
        );
        assert_eq!(
            route(&handler, &get("/no/such/route", &[]), &core).status,
            404
        );
        // Wrong method → 405 with an Allow header.
        let r = route(&handler, &post("/healthz", ""), &core);
        assert_eq!(r.status, 405);
        assert!(r.extra_headers.iter().any(|(k, _)| *k == "Allow"));
        assert_eq!(route(&handler, &get("/v1/query", &[]), &core).status, 405);
    }

    #[test]
    fn healthz_reports_readiness_and_generation() {
        let (handler, core) = fixture("healthz");
        let response = route(&handler, &get("/healthz", &[]), &core);
        assert_eq!(response.status, 200);
        let body = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
        assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            body.get("generation").unwrap().as_u64(),
            Some(handler.corpus.generation())
        );
        assert_eq!(body.get("documents").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn query_route_validates_input() {
        let (handler, core) = fixture("validate");
        assert_eq!(
            route(&handler, &post("/v1/query", "not json"), &core).status,
            400
        );
        assert_eq!(route(&handler, &post("/v1/query", "{}"), &core).status, 400);
        assert_eq!(
            route(
                &handler,
                &post("/v1/query", r#"{"doc":"d0","query":{"kind":"nope"}}"#),
                &core
            )
            .status,
            400
        );
        assert_eq!(
            route(
                &handler,
                &post("/v1/query", r#"{"doc":"ghost","query":{"kind":"mss"}}"#),
                &core
            )
            .status,
            404
        );
        let ok = route(
            &handler,
            &post("/v1/query", r#"{"doc":"d0","query":{"kind":"mss"}}"#),
            &core,
        );
        assert_eq!(ok.status, 200);
        let body = Json::decode(std::str::from_utf8(&ok.body).unwrap().trim()).unwrap();
        assert_eq!(body.get("doc").unwrap().as_str(), Some("d0"));
        assert!(body.get("answer").is_some());
        // Out-of-range restriction → 400 (engine InvalidParameter).
        assert_eq!(
            route(
                &handler,
                &post(
                    "/v1/query",
                    r#"{"doc":"d0","query":{"kind":"mss","range":[0,100000]}}"#
                ),
                &core
            )
            .status,
            400
        );
    }

    #[test]
    fn merged_routes_validate_parameters() {
        let (handler, core) = fixture("merged");
        assert_eq!(
            route(&handler, &get("/v1/merged/top", &[]), &core).status,
            400
        );
        assert_eq!(
            route(&handler, &get("/v1/merged/top", &[("t", "x")]), &core).status,
            400
        );
        assert_eq!(
            route(&handler, &get("/v1/merged/top", &[("t", "0")]), &core).status,
            400
        );
        assert_eq!(
            route(&handler, &get("/v1/merged/top", &[("t", "3")]), &core).status,
            200
        );
        assert_eq!(
            route(&handler, &get("/v1/merged/threshold", &[]), &core).status,
            400
        );
        assert_eq!(
            route(
                &handler,
                &get("/v1/merged/threshold", &[("alpha", "inf")]),
                &core
            )
            .status,
            400
        );
        assert_eq!(
            route(
                &handler,
                &get("/v1/merged/threshold", &[("alpha", "2.5")]),
                &core
            )
            .status,
            200
        );
    }

    #[test]
    fn batch_route_answers_per_job() {
        let (handler, core) = fixture("batch");
        let body = r#"{"jobs":[
            {"doc":"d0","query":{"kind":"mss"}},
            {"doc":"ghost","query":{"kind":"mss"}},
            {"doc":"d0","query":{"kind":"top","t":2}}
        ]}"#;
        let response = route(&handler, &post("/v1/batch", body), &core);
        assert_eq!(response.status, 200);
        let json = Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap();
        let results = json.get("results").unwrap().as_array().unwrap();
        assert_eq!(results.len(), 3);
        assert!(results[0].get("answer").is_some());
        assert!(results[1].get("error").is_some());
        assert_eq!(results[1].get("status").unwrap().as_u64(), Some(404));
        assert!(results[2].get("answer").is_some());
        // A malformed job fails the whole request with its index.
        let bad = r#"{"jobs":[{"doc":"d0"}]}"#;
        let response = route(&handler, &post("/v1/batch", bad), &core);
        assert_eq!(response.status, 400);
        assert!(std::str::from_utf8(&response.body)
            .unwrap()
            .contains("job 0"));
    }

    /// The live-rebalance serving protocol: a handler whose corpus is
    /// externally rewritten (document removed by a rebalance) adopts
    /// the change on the next touch, reports the bumped generation, and
    /// answers `410 Gone` (not `404`) for the departed document.
    #[test]
    fn externally_removed_documents_answer_410_gone() {
        let dir = std::env::temp_dir().join(format!(
            "sigstr-server-unit-gone-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut writer = Corpus::create(&dir).unwrap();
        let symbols: Vec<u8> = (0..120u32).map(|i| ((i / 7) % 2) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        for name in ["d0", "d1"] {
            writer
                .add_document(name, &seq, Model::uniform(2).unwrap(), CountsLayout::Flat)
                .unwrap();
        }
        let handler = handler_for(Corpus::open(&dir).unwrap());
        let core = ServiceCore::new(ServerConfig::default());
        let before = handler.corpus.generation();

        // Another process (the rebalance tool) releases d1.
        writer.remove_document("d1").unwrap();

        // healthz adopts the new membership and reports the bump.
        let health = route(&handler, &get("/healthz", &[]), &core);
        let body = Json::decode(std::str::from_utf8(&health.body).unwrap().trim()).unwrap();
        assert_eq!(body.get("generation").unwrap().as_u64(), Some(before + 1));
        assert_eq!(body.get("documents").unwrap().as_u64(), Some(1));

        // The departed document is 410, a never-existed one stays 404,
        // and the surviving one still answers.
        let gone = route(
            &handler,
            &post("/v1/query", r#"{"doc":"d1","query":{"kind":"mss"}}"#),
            &core,
        );
        assert_eq!(gone.status, 410);
        let gone_body = Json::decode(std::str::from_utf8(&gone.body).unwrap().trim()).unwrap();
        assert_eq!(
            gone_body.get("generation").unwrap().as_u64(),
            Some(before + 1)
        );
        assert_eq!(
            route(
                &handler,
                &post("/v1/query", r#"{"doc":"ghost","query":{"kind":"mss"}}"#),
                &core
            )
            .status,
            404
        );
        assert_eq!(
            route(
                &handler,
                &post("/v1/query", r#"{"doc":"d0","query":{"kind":"mss"}}"#),
                &core
            )
            .status,
            200
        );

        // Batch slots carry the same distinction.
        let batch = route(
            &handler,
            &post(
                "/v1/batch",
                r#"{"jobs":[{"doc":"d1","query":{"kind":"mss"}},{"doc":"d0","query":{"kind":"mss"}}]}"#,
            ),
            &core,
        );
        assert_eq!(batch.status, 200);
        let results = Json::decode(std::str::from_utf8(&batch.body).unwrap().trim()).unwrap();
        let results = results.get("results").unwrap().as_array().unwrap();
        assert_eq!(results[0].get("status").unwrap().as_u64(), Some(410));
        assert!(results[1].get("answer").is_some());

        // /v1/documents reflects the new membership and generation.
        let documents = route(&handler, &get("/v1/documents", &[]), &core);
        let body = Json::decode(std::str::from_utf8(&documents.body).unwrap().trim()).unwrap();
        assert_eq!(body.get("generation").unwrap().as_u64(), Some(before + 1));
        assert_eq!(body.get("documents").unwrap().as_array().unwrap().len(), 1);

        std::fs::remove_dir_all(&dir).ok();
    }

    /// A corpus with one static document (`d0`) and one live document
    /// (`log`, alphabet `{a, b}`) for the live-route tests.
    fn live_fixture(tag: &str) -> (CorpusHandler, ServiceCore) {
        let dir = std::env::temp_dir().join(format!(
            "sigstr-server-unit-live-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let mut corpus = Corpus::create(&dir).unwrap();
        let symbols: Vec<u8> = (0..120u32).map(|i| ((i / 7) % 2) as u8).collect();
        let seq = Sequence::from_symbols(symbols, 2).unwrap();
        corpus
            .add_document("d0", &seq, Model::uniform(2).unwrap(), CountsLayout::Flat)
            .unwrap();
        let (live_seq, alphabet) =
            Sequence::from_text(b"abababababababababababababababab").unwrap();
        let model = Model::estimate(&live_seq).unwrap();
        corpus
            .add_live_document("log", &live_seq, &alphabet, model, CountsLayout::Flat)
            .unwrap();
        (
            handler_for(corpus),
            ServiceCore::new(ServerConfig::default()),
        )
    }

    fn decode(response: &Response) -> Json {
        Json::decode(std::str::from_utf8(&response.body).unwrap().trim()).unwrap()
    }

    #[test]
    fn append_route_doc_parses_only_append_paths() {
        assert_eq!(append_route_doc("/v1/documents/log/append"), Some("log"));
        assert_eq!(
            append_route_doc("/v1/documents/a.b-c_d/append"),
            Some("a.b-c_d")
        );
        assert_eq!(append_route_doc("/v1/documents//append"), None);
        assert_eq!(append_route_doc("/v1/documents/a/b/append"), None);
        assert_eq!(append_route_doc("/v1/documents/log"), None);
        assert_eq!(append_route_doc("/v1/query"), None);
    }

    #[test]
    fn append_route_appends_and_reports_geometry() {
        let (handler, core) = live_fixture("append");
        let before = handler.corpus.live_doc_status("log").unwrap();
        let response = route(
            &handler,
            &post("/v1/documents/log/append", r#"{"data":"abab abab"}"#),
            &core,
        );
        assert_eq!(response.status, 200);
        let body = decode(&response);
        assert_eq!(body.get("doc").unwrap().as_str(), Some("log"));
        // Whitespace is skipped: 8 symbols landed, none frozen yet.
        assert_eq!(body.get("n").unwrap().as_u64(), Some(before.n as u64 + 8));
        assert_eq!(body.get("tail").unwrap().as_u64(), Some(8));
        assert_eq!(body.get("frozen"), Some(&Json::Bool(false)));
        assert_eq!(body.get("alerts").unwrap().as_array().unwrap().len(), 0);

        // Bad shapes and bad targets.
        assert_eq!(
            route(&handler, &post("/v1/documents/log/append", "{}"), &core).status,
            400
        );
        assert_eq!(
            route(
                &handler,
                &post("/v1/documents/log/append", r#"{"data":"xyz"}"#),
                &core
            )
            .status,
            400,
            "out-of-alphabet bytes are rejected"
        );
        assert_eq!(
            route(
                &handler,
                &post("/v1/documents/d0/append", r#"{"data":"ab"}"#),
                &core
            )
            .status,
            400,
            "static documents are not appendable"
        );
        assert_eq!(
            route(
                &handler,
                &post("/v1/documents/ghost/append", r#"{"data":"ab"}"#),
                &core
            )
            .status,
            404
        );
        // Wrong method on the append path → 405 + Allow.
        let r = route(&handler, &get("/v1/documents/log/append", &[]), &core);
        assert_eq!(r.status, 405);
        assert!(r
            .extra_headers
            .iter()
            .any(|(k, v)| *k == "Allow" && *v == "POST"));
    }

    #[test]
    fn watch_routes_register_alert_and_remove() {
        let (handler, core) = live_fixture("watch");
        // Register: the response carries the watch id.
        let registered = route(
            &handler,
            &post(
                "/v1/watch",
                r#"{"doc":"log","window":16,"threshold":12.0,"top_t":4}"#,
            ),
            &core,
        );
        assert_eq!(registered.status, 200);
        let watch = decode(&registered).get("watch").unwrap().as_u64().unwrap();

        // Degenerate specs and unknown documents are rejected.
        assert_eq!(
            route(
                &handler,
                &post(
                    "/v1/watch",
                    r#"{"doc":"log","window":0,"threshold":12.0,"top_t":4}"#
                ),
                &core
            )
            .status,
            400
        );
        assert_eq!(
            route(
                &handler,
                &post(
                    "/v1/watch",
                    r#"{"doc":"ghost","window":8,"threshold":1.0,"top_t":1}"#
                ),
                &core
            )
            .status,
            404
        );

        // A calm append raises nothing; an anomalous run alerts.
        let calm = route(
            &handler,
            &post("/v1/documents/log/append", r#"{"data":"abababab"}"#),
            &core,
        );
        assert_eq!(
            decode(&calm)
                .get("alerts")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            0
        );
        let anomaly = route(
            &handler,
            &post("/v1/documents/log/append", r#"{"data":"bbbbbbbbbbbbbbbb"}"#),
            &core,
        );
        let alerts = decode(&anomaly);
        let alerts = alerts.get("alerts").unwrap().as_array().unwrap();
        assert!(
            !alerts.is_empty(),
            "16 b's against a ~uniform model must alert"
        );
        assert_eq!(alerts[0].get("watch").unwrap().as_u64(), Some(watch));

        // The long-poll sees the same alerts from cursor 0, and the
        // returned cursor silences a re-poll (timeout_ms=0 → immediate).
        let polled = route(
            &handler,
            &get("/v1/watch", &[("doc", "log"), ("since", "0")]),
            &core,
        );
        assert_eq!(polled.status, 200);
        let body = decode(&polled);
        assert_eq!(
            body.get("alerts").unwrap().as_array().unwrap().len(),
            alerts.len()
        );
        let next_since = body.get("next_since").unwrap().as_u64().unwrap();
        assert!(next_since >= alerts.len() as u64);
        let drained = route(
            &handler,
            &get(
                "/v1/watch",
                &[
                    ("doc", "log"),
                    ("since", &next_since.to_string()),
                    ("timeout_ms", "0"),
                ],
            ),
            &core,
        );
        let drained = decode(&drained);
        assert_eq!(drained.get("alerts").unwrap().as_array().unwrap().len(), 0);

        // Remove the watch; a second removal reports removed=false.
        let removed = route(
            &handler,
            &Request {
                method: "DELETE".into(),
                path: "/v1/watch".into(),
                query: vec![
                    ("doc".into(), "log".into()),
                    ("watch".into(), watch.to_string()),
                ],
                headers: Vec::new(),
                body: Vec::new(),
                keep_alive: true,
                recv_us: 0,
            },
            &core,
        );
        assert_eq!(removed.status, 200);
        assert_eq!(decode(&removed).get("removed"), Some(&Json::Bool(true)));

        // Poll validation.
        assert_eq!(route(&handler, &get("/v1/watch", &[]), &core).status, 400);
        assert_eq!(
            route(
                &handler,
                &get("/v1/watch", &[("doc", "log"), ("since", "x")]),
                &core
            )
            .status,
            400
        );
        assert_eq!(
            route(
                &handler,
                &get("/v1/watch", &[("doc", "ghost"), ("timeout_ms", "0")]),
                &core
            )
            .status,
            404
        );
        // Wrong method → 405 listing all three verbs.
        let r = route(
            &handler,
            &Request {
                method: "PUT".into(),
                path: "/v1/watch".into(),
                query: Vec::new(),
                headers: Vec::new(),
                body: Vec::new(),
                keep_alive: true,
                recv_us: 0,
            },
            &core,
        );
        assert_eq!(r.status, 405);
    }

    #[test]
    fn live_status_and_metrics_report_live_documents() {
        let (handler, core) = live_fixture("status");
        route(
            &handler,
            &post("/v1/documents/log/append", r#"{"data":"abab"}"#),
            &core,
        );
        let status = route(&handler, &get("/v1/live", &[]), &core);
        assert_eq!(status.status, 200);
        let body = decode(&status);
        let docs = body.get("docs").unwrap().as_array().unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].get("name").unwrap().as_str(), Some("log"));
        assert_eq!(docs[0].get("tail").unwrap().as_u64(), Some(4));
        assert_eq!(docs[0].get("appends").unwrap().as_u64(), Some(1));

        let metrics = route(&handler, &get("/metrics", &[]), &core);
        let text = std::str::from_utf8(&metrics.body).unwrap();
        assert!(text.contains("sigstr_live_documents 1"), "{text}");
        assert!(text.contains("sigstr_live_generation{doc=\"log\"} 1"));
        assert!(text.contains("sigstr_live_tail_symbols{doc=\"log\"} 4"));
        assert!(text.contains("sigstr_live_freeze_duration_us_count 0"));
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert_eq!(config.threads, 0);
        assert!(config.queue_depth > 0);
        assert!(config.keep_alive > Duration::from_millis(100));
    }
}
