//! The wire format: JSON shapes for [`Query`], [`Answer`] and the
//! corpus types, with encode **and** decode for every shape so clients
//! (and the fidelity tests) can reconstruct the exact in-process
//! structs.
//!
//! Query (the same vocabulary as the CLI's `--query` specs):
//!
//! ```json
//! {"kind": "mss"}
//! {"kind": "top", "t": 5}
//! {"kind": "thresh", "alpha": 4.5}
//! {"kind": "minlen", "gamma": 3}
//! {"kind": "maxlen", "w": 8}
//! {"kind": "mss", "range": [10, 90]}
//! ```
//!
//! Answer (tagged by result shape):
//!
//! ```json
//! {"type": "best", "best": {"start": 3, "end": 9, "chi_square": 6.0},
//!  "stats": {"examined": 42, "skips": 3, "skipped": 17}}
//! {"type": "top", "items": [...], "stats": {...}}
//! {"type": "threshold", "items": [...], "stats": {...}}
//! ```
//!
//! Positions and counters ride as exact integers, scores as
//! round-trip-exact floats (see [`crate::json`]), so a decoded answer
//! compares **bit-identical** to the in-process one.

use sigstr_core::ThresholdResult;
use sigstr_core::{Answer, MssResult, Query, QueryKind, ScanStats, Scored, TopTResult};
use sigstr_corpus::{Alert, DocHit, DocumentEntry, LiveDocStatus, WatchSpec};

use crate::json::Json;

/// Decode-side errors are plain messages (they all become a `400` with
/// the message in the body).
pub type WireResult<T> = Result<T, String>;

fn field<'j>(json: &'j Json, key: &str) -> WireResult<&'j Json> {
    json.get(key)
        .ok_or_else(|| format!("missing field `{key}`"))
}

fn usize_field(json: &Json, key: &str) -> WireResult<usize> {
    field(json, key)?
        .as_usize()
        .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

fn u64_field(json: &Json, key: &str) -> WireResult<u64> {
    field(json, key)?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` must be a non-negative integer"))
}

fn f64_field(json: &Json, key: &str) -> WireResult<f64> {
    field(json, key)?
        .as_f64()
        .ok_or_else(|| format!("field `{key}` must be a number"))
}

// ---------------------------------------------------------------------------
// Scored + ScanStats.
// ---------------------------------------------------------------------------

/// `Scored` → `{"start": .., "end": .., "chi_square": ..}`.
pub fn scored_to_json(item: &Scored) -> Json {
    Json::Obj(vec![
        ("start".into(), Json::Int(item.start as u64)),
        ("end".into(), Json::Int(item.end as u64)),
        ("chi_square".into(), Json::Num(item.chi_square)),
    ])
}

/// Inverse of [`scored_to_json`].
pub fn scored_from_json(json: &Json) -> WireResult<Scored> {
    Ok(Scored {
        start: usize_field(json, "start")?,
        end: usize_field(json, "end")?,
        chi_square: f64_field(json, "chi_square")?,
    })
}

/// `ScanStats` → `{"examined": .., "skips": .., "skipped": ..}`.
pub fn stats_to_json(stats: &ScanStats) -> Json {
    Json::Obj(vec![
        ("examined".into(), Json::Int(stats.examined)),
        ("skips".into(), Json::Int(stats.skips)),
        ("skipped".into(), Json::Int(stats.skipped)),
    ])
}

/// Inverse of [`stats_to_json`].
pub fn stats_from_json(json: &Json) -> WireResult<ScanStats> {
    Ok(ScanStats {
        examined: u64_field(json, "examined")?,
        skips: u64_field(json, "skips")?,
        skipped: u64_field(json, "skipped")?,
    })
}

// ---------------------------------------------------------------------------
// Query.
// ---------------------------------------------------------------------------

/// `Query` → its JSON shape (see the module docs).
pub fn query_to_json(query: &Query) -> Json {
    let mut pairs: Vec<(String, Json)> = match query.kind {
        QueryKind::Mss => vec![("kind".into(), Json::Str("mss".into()))],
        QueryKind::TopT(t) => vec![
            ("kind".into(), Json::Str("top".into())),
            ("t".into(), Json::Int(t as u64)),
        ],
        QueryKind::AboveThreshold(alpha) => vec![
            ("kind".into(), Json::Str("thresh".into())),
            ("alpha".into(), Json::Num(alpha)),
        ],
        QueryKind::MssMinLength(gamma) => vec![
            ("kind".into(), Json::Str("minlen".into())),
            ("gamma".into(), Json::Int(gamma as u64)),
        ],
        QueryKind::MssMaxLength(w) => vec![
            ("kind".into(), Json::Str("maxlen".into())),
            ("w".into(), Json::Int(w as u64)),
        ],
    };
    if let Some((l, r)) = query.range {
        pairs.push((
            "range".into(),
            Json::Arr(vec![Json::Int(l as u64), Json::Int(r as u64)]),
        ));
    }
    Json::Obj(pairs)
}

/// Inverse of [`query_to_json`].
pub fn query_from_json(json: &Json) -> WireResult<Query> {
    let kind = field(json, "kind")?
        .as_str()
        .ok_or("field `kind` must be a string")?;
    let query = match kind {
        "mss" => Query::mss(),
        "top" => Query::top_t(usize_field(json, "t")?),
        "thresh" => Query::above_threshold(f64_field(json, "alpha")?),
        "minlen" => Query::mss_min_length(usize_field(json, "gamma")?),
        "maxlen" => Query::mss_max_length(usize_field(json, "w")?),
        other => {
            return Err(format!(
                "unknown query kind `{other}` (expected mss|top|thresh|minlen|maxlen)"
            ))
        }
    };
    match json.get("range") {
        None | Some(Json::Null) => Ok(query),
        Some(range) => {
            let items = range.as_array().ok_or("field `range` must be [l, r]")?;
            let (l, r) = match items {
                [l, r] => (
                    l.as_usize().ok_or("range start must be an integer")?,
                    r.as_usize().ok_or("range end must be an integer")?,
                ),
                _ => return Err("field `range` must have exactly two elements".into()),
            };
            Ok(query.in_range(l, r))
        }
    }
}

// ---------------------------------------------------------------------------
// Answer.
// ---------------------------------------------------------------------------

/// `Answer` → its tagged JSON shape (see the module docs).
pub fn answer_to_json(answer: &Answer) -> Json {
    match answer {
        Answer::Best(r) => Json::Obj(vec![
            ("type".into(), Json::Str("best".into())),
            ("best".into(), scored_to_json(&r.best)),
            ("stats".into(), stats_to_json(&r.stats)),
        ]),
        Answer::Top(r) => Json::Obj(vec![
            ("type".into(), Json::Str("top".into())),
            (
                "items".into(),
                Json::Arr(r.items.iter().map(scored_to_json).collect()),
            ),
            ("stats".into(), stats_to_json(&r.stats)),
        ]),
        Answer::Threshold(r) => Json::Obj(vec![
            ("type".into(), Json::Str("threshold".into())),
            (
                "items".into(),
                Json::Arr(r.items.iter().map(scored_to_json).collect()),
            ),
            ("stats".into(), stats_to_json(&r.stats)),
        ]),
    }
}

fn items_field(json: &Json) -> WireResult<Vec<Scored>> {
    field(json, "items")?
        .as_array()
        .ok_or("field `items` must be an array")?
        .iter()
        .map(scored_from_json)
        .collect()
}

/// Inverse of [`answer_to_json`].
pub fn answer_from_json(json: &Json) -> WireResult<Answer> {
    let tag = field(json, "type")?
        .as_str()
        .ok_or("field `type` must be a string")?;
    let stats = stats_from_json(field(json, "stats")?)?;
    match tag {
        "best" => Ok(Answer::Best(MssResult {
            best: scored_from_json(field(json, "best")?)?,
            stats,
        })),
        "top" => Ok(Answer::Top(TopTResult {
            items: items_field(json)?,
            stats,
        })),
        "threshold" => Ok(Answer::Threshold(ThresholdResult {
            items: items_field(json)?,
            stats,
        })),
        other => Err(format!("unknown answer type `{other}`")),
    }
}

// ---------------------------------------------------------------------------
// Corpus types.
// ---------------------------------------------------------------------------

/// `DocumentEntry` → `{"name", "file", "n", "k", "layout"}`.
pub fn document_to_json(entry: &DocumentEntry) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(entry.name.clone())),
        ("file".into(), Json::Str(entry.file.clone())),
        ("n".into(), Json::Int(entry.n as u64)),
        ("k".into(), Json::Int(entry.k as u64)),
        ("layout".into(), Json::Str(entry.layout.name().into())),
    ])
}

/// `DocHit` → `{"doc": index, "name": .., "item": {scored}}`.
pub fn hit_to_json(hit: &DocHit) -> Json {
    Json::Obj(vec![
        ("doc".into(), Json::Int(hit.doc as u64)),
        ("name".into(), Json::Str(hit.name.clone())),
        ("item".into(), scored_to_json(&hit.item)),
    ])
}

/// Inverse of [`hit_to_json`].
pub fn hit_from_json(json: &Json) -> WireResult<DocHit> {
    Ok(DocHit {
        doc: usize_field(json, "doc")?,
        name: field(json, "name")?
            .as_str()
            .ok_or("field `name` must be a string")?
            .to_string(),
        item: scored_from_json(field(json, "item")?)?,
    })
}

// ---------------------------------------------------------------------------
// Live documents.
// ---------------------------------------------------------------------------

/// `Alert` → `{"seq", "watch", "generation", "item": {scored}}`.
pub fn alert_to_json(alert: &Alert) -> Json {
    Json::Obj(vec![
        ("seq".into(), Json::Int(alert.seq)),
        ("watch".into(), Json::Int(alert.watch)),
        ("generation".into(), Json::Int(alert.generation)),
        ("item".into(), scored_to_json(&alert.item)),
    ])
}

/// Inverse of [`alert_to_json`].
pub fn alert_from_json(json: &Json) -> WireResult<Alert> {
    Ok(Alert {
        seq: u64_field(json, "seq")?,
        watch: u64_field(json, "watch")?,
        generation: u64_field(json, "generation")?,
        item: scored_from_json(field(json, "item")?)?,
    })
}

/// Decode a watch registration body: `{"window", "threshold", "top_t"}`
/// (the `doc` field is the caller's concern). Validation of the values
/// themselves happens in the corpus, so the server and the CLI reject
/// degenerate specs identically.
pub fn watch_spec_from_json(json: &Json) -> WireResult<WatchSpec> {
    Ok(WatchSpec {
        window: usize_field(json, "window")?,
        threshold: f64_field(json, "threshold")?,
        top_t: usize_field(json, "top_t")?,
    })
}

/// `WatchSpec` → `{"window", "threshold", "top_t"}`.
pub fn watch_spec_to_json(spec: &WatchSpec) -> Json {
    Json::Obj(vec![
        ("window".into(), Json::Int(spec.window as u64)),
        ("threshold".into(), Json::Num(spec.threshold)),
        ("top_t".into(), Json::Int(spec.top_t as u64)),
    ])
}

/// `LiveDocStatus` → a flat JSON object (all counters as integers).
pub fn live_status_to_json(status: &LiveDocStatus) -> Json {
    Json::Obj(vec![
        ("name".into(), Json::Str(status.name.clone())),
        ("generation".into(), Json::Int(status.generation)),
        ("n".into(), Json::Int(status.n as u64)),
        ("tail".into(), Json::Int(status.tail as u64)),
        ("appends".into(), Json::Int(status.appends)),
        (
            "appended_symbols".into(),
            Json::Int(status.appended_symbols),
        ),
        ("freezes".into(), Json::Int(status.freezes)),
        ("watches".into(), Json::Int(status.watches as u64)),
        ("alerts_emitted".into(), Json::Int(status.alerts_emitted)),
        (
            "alerts_delivered".into(),
            Json::Int(status.alerts_delivered),
        ),
        ("live_bytes".into(), Json::Int(status.live_bytes as u64)),
    ])
}

/// The standard error body: `{"error": "..."}`.
pub fn error_json(message: &str) -> Json {
    Json::Obj(vec![("error".into(), Json::Str(message.to_string()))])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_query(query: Query) {
        let json = query_to_json(&query);
        let text = json.encode().unwrap();
        let back = query_from_json(&Json::decode(&text).unwrap()).unwrap();
        assert_eq!(back, query, "{text}");
    }

    #[test]
    fn queries_roundtrip() {
        roundtrip_query(Query::mss());
        roundtrip_query(Query::top_t(7));
        roundtrip_query(Query::above_threshold(4.25));
        roundtrip_query(Query::mss_min_length(3));
        roundtrip_query(Query::mss_max_length(9));
        roundtrip_query(Query::mss().in_range(10, 90));
        roundtrip_query(Query::above_threshold(0.1).in_range(0, 5));
    }

    #[test]
    fn query_decode_rejects_bad_shapes() {
        for bad in [
            r#"{}"#,
            r#"{"kind":"bogus"}"#,
            r#"{"kind":"top"}"#,
            r#"{"kind":"top","t":-1}"#,
            r#"{"kind":"top","t":"3"}"#,
            r#"{"kind":"thresh"}"#,
            r#"{"kind":"mss","range":[1]}"#,
            r#"{"kind":"mss","range":[1,2,3]}"#,
            r#"{"kind":"mss","range":"1..2"}"#,
        ] {
            let json = Json::decode(bad).unwrap();
            assert!(query_from_json(&json).is_err(), "{bad}");
        }
        // An integer alpha is fine (5 == 5.0).
        let json = Json::decode(r#"{"kind":"thresh","alpha":5}"#).unwrap();
        assert_eq!(query_from_json(&json).unwrap(), Query::above_threshold(5.0));
    }

    #[test]
    fn answers_roundtrip_bit_identically() {
        let scored = |start, end, x2| Scored {
            start,
            end,
            chi_square: x2,
        };
        let stats = ScanStats {
            examined: u64::MAX - 3,
            skips: 17,
            skipped: 1 << 60,
        };
        let answers = [
            Answer::Best(MssResult {
                best: scored(3, 9, 0.1 + 0.2), // a classic non-representable sum
                stats,
            }),
            Answer::Top(TopTResult {
                items: vec![scored(0, 4, 12.5), scored(7, 20, f64::MIN_POSITIVE)],
                stats,
            }),
            Answer::Threshold(ThresholdResult {
                items: vec![],
                stats,
            }),
        ];
        for answer in &answers {
            let text = answer_to_json(answer).encode().unwrap();
            let back = answer_from_json(&Json::decode(&text).unwrap()).unwrap();
            assert_eq!(&back, answer, "{text}");
            for (a, b) in answer.items().iter().zip(back.items()) {
                assert_eq!(a.chi_square.to_bits(), b.chi_square.to_bits());
            }
        }
    }

    #[test]
    fn hits_roundtrip() {
        let hit = DocHit {
            doc: 2,
            name: "doc-2".into(),
            item: Scored {
                start: 5,
                end: 11,
                chi_square: 42.0625,
            },
        };
        let text = hit_to_json(&hit).encode().unwrap();
        let back = hit_from_json(&Json::decode(&text).unwrap()).unwrap();
        assert_eq!(back, hit);
    }

    #[test]
    fn alerts_roundtrip_bit_identically() {
        let alert = Alert {
            seq: u64::MAX - 1,
            watch: 3,
            generation: 17,
            item: Scored {
                start: 100,
                end: 116,
                chi_square: 0.1 + 0.2,
            },
        };
        let text = alert_to_json(&alert).encode().unwrap();
        let back = alert_from_json(&Json::decode(&text).unwrap()).unwrap();
        assert_eq!(back, alert);
        assert_eq!(
            back.item.chi_square.to_bits(),
            alert.item.chi_square.to_bits()
        );
    }

    #[test]
    fn watch_specs_roundtrip_and_reject_bad_shapes() {
        let spec = WatchSpec {
            window: 64,
            threshold: 12.25,
            top_t: 4,
        };
        let text = watch_spec_to_json(&spec).encode().unwrap();
        let back = watch_spec_from_json(&Json::decode(&text).unwrap()).unwrap();
        assert_eq!(back, spec);
        for bad in [
            r#"{}"#,
            r#"{"window":8,"threshold":1.0}"#,
            r#"{"window":"8","threshold":1.0,"top_t":2}"#,
        ] {
            let json = Json::decode(bad).unwrap();
            assert!(watch_spec_from_json(&json).is_err(), "{bad}");
        }
    }

    #[test]
    fn error_body_shape() {
        let text = error_json("no such document `x`").encode().unwrap();
        assert_eq!(text, r#"{"error":"no such document `x`"}"#);
    }
}
