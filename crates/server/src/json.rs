//! Minimal JSON for the server's wire types: encode + decode, nothing
//! else.
//!
//! The offline build carries no serde, and the server needs exactly one
//! thing from a JSON layer: **round-trip-exact** transport of the query
//! and answer types. This module provides a small document model
//! ([`Json`]) with an encoder and a strict recursive-descent decoder,
//! tuned for that contract:
//!
//! * **`f64` values round-trip bit-exactly.** Floats are encoded with
//!   Rust's shortest-round-trip formatting; integral floats gain a
//!   trailing `.0` so the decoder can tell [`Json::Num`] from
//!   [`Json::Int`] and `encode → decode` is the identity on the document
//!   model, not merely value-preserving. A chi-square score crosses the
//!   wire without losing a single bit.
//! * **Unsigned integers are their own variant.** Positions and scan
//!   counters are `usize`/`u64`; [`Json::Int`] holds the full `u64`
//!   range exactly (a plain `f64` number would silently round above
//!   2⁵³). Negative or fractional literals decode as [`Json::Num`].
//! * **Non-finite floats are an error, never `null`.** Encoding
//!   `NaN`/`±inf` fails with [`JsonError::NonFinite`] — a score that
//!   somehow goes non-finite must fail loudly at the boundary, not
//!   arrive at a client as a silent `null` that decodes into 0.0
//!   downstream. (JSON itself has no non-finite literals, so the decoder
//!   rejects them for free.)
//! * **Strings are fully escaped.** Control characters encode as
//!   `\uXXXX` (with the `\n`-style shorthands), and the decoder handles
//!   the full escape set including surrogate pairs for astral-plane
//!   code points.
//!
//! Objects preserve insertion order and duplicate keys (they are a
//! `Vec<(String, Json)>`), which keeps `decode(encode(x)) == x` exact
//! for the document model; [`Json::get`] returns the first match like
//! every mainstream parser.

use std::fmt::Write as _;

/// Maximum nesting depth the decoder accepts (arrays + objects). The
/// wire types are at most a handful of levels deep; the limit exists so
/// a hostile `[[[[…` body cannot overflow the stack.
pub const MAX_DEPTH: usize = 128;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal with no fraction or exponent
    /// (exact over the full `u64` range).
    Int(u64),
    /// Any other number (finite; non-finite values refuse to encode).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// Errors of the JSON layer.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// Refused to encode a non-finite float (the documented policy:
    /// error, never a silent `null`).
    NonFinite,
    /// The input text is not valid JSON.
    Syntax {
        /// Byte offset of the problem.
        offset: usize,
        /// What went wrong.
        details: String,
    },
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonError::NonFinite => {
                write!(f, "refusing to encode a non-finite float (NaN or infinity)")
            }
            JsonError::Syntax { offset, details } => {
                write!(f, "invalid JSON at byte {offset}: {details}")
            }
        }
    }
}

impl std::error::Error for JsonError {}

/// Format a finite `f64` so that `parse::<f64>()` returns the exact same
/// bits and the text is unambiguously a float (a trailing `.0` is added
/// to integral values, so `5.0` never collapses into the integer `5`).
///
/// # Errors
///
/// [`JsonError::NonFinite`] for `NaN` and `±inf`.
pub fn format_f64(value: f64) -> Result<String, JsonError> {
    if !value.is_finite() {
        return Err(JsonError::NonFinite);
    }
    // Rust's `Display` for f64 is the shortest decimal string that
    // round-trips to the same bits (and never uses exponent notation).
    let mut text = format!("{value}");
    if !text.contains('.') {
        text.push_str(".0");
    }
    Ok(text)
}

fn escape_into(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Json {
    /// Encode to compact JSON text.
    ///
    /// # Errors
    ///
    /// [`JsonError::NonFinite`] if any [`Json::Num`] in the document is
    /// `NaN` or `±inf`.
    pub fn encode(&self) -> Result<String, JsonError> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), JsonError> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(x) => out.push_str(&format_f64(*x)?),
            Json::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_into(key, out);
                    out.push_str("\":");
                    value.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Decode JSON text (a single document; trailing non-whitespace is
    /// an error).
    ///
    /// # Errors
    ///
    /// [`JsonError::Syntax`] with a byte offset on any malformed input.
    pub fn decode(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            text,
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after the document"));
        }
        Ok(value)
    }

    // -- Accessors (used by the wire layer; strict by design) --------------

    /// The string value, if this is a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value, if this is a [`Json::Int`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer value as `usize`, if this is a [`Json::Int`] that
    /// fits.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|i| usize::try_from(i).ok())
    }

    /// The numeric value ([`Json::Num`] directly; [`Json::Int`] values
    /// convert — a client is free to send `"alpha": 5`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The boolean value, if this is a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is a [`Json::Arr`].
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// First value under `key`, if this is a [`Json::Obj`] containing
    /// it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Decoder.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, details: impl Into<String>) -> JsonError {
        JsonError::Syntax {
            offset: self.pos,
            details: details.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut out = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected four hex digits after \\u")),
            };
            out = out * 16 + digit;
            self.pos += 1;
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[run_start..self.pos]);
                    self.pos += 1;
                    let escaped = match self.peek() {
                        Some(b'"') => '"',
                        Some(b'\\') => '\\',
                        Some(b'/') => '/',
                        Some(b'b') => '\u{08}',
                        Some(b'f') => '\u{0C}',
                        Some(b'n') => '\n',
                        Some(b'r') => '\r',
                        Some(b't') => '\t',
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&unit) {
                                // High surrogate: a low surrogate must
                                // follow for an astral-plane code point.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else if (0xDC00..0xE000).contains(&unit) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(unit)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(ch);
                            run_start = self.pos;
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    };
                    out.push(escaped);
                    self.pos += 1;
                    run_start = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(_) => {
                    // Any other byte (including UTF-8 continuation
                    // bytes) is part of a literal run, copied whole.
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digits in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let literal = &self.text[start..self.pos];
        if integral && !negative {
            if let Ok(value) = literal.parse::<u64>() {
                return Ok(Json::Int(value));
            }
            // Falls through: wider than u64, carried as a float.
        }
        literal
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("unparseable number `{literal}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Json) -> Json {
        Json::decode(&value.encode().unwrap()).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for value in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(u64::MAX),
            Json::Int(1 << 53),
            Json::Num(0.1),
            Json::Num(-0.0),
            Json::Num(f64::MAX),
            Json::Num(f64::MIN_POSITIVE),
            Json::Num(5e-324), // smallest subnormal
            Json::Num(1.0 / 3.0),
            Json::Str(String::new()),
            Json::Str("héllo \"wörld\"\n\t\u{1F600}\u{0}".into()),
        ] {
            assert_eq!(roundtrip(&value), value, "{value:?}");
        }
    }

    #[test]
    fn floats_keep_their_bits_and_their_dot() {
        let encoded = Json::Num(5.0).encode().unwrap();
        assert_eq!(encoded, "5.0");
        match Json::decode(&encoded).unwrap() {
            Json::Num(x) => assert_eq!(x.to_bits(), 5.0f64.to_bits()),
            other => panic!("decoded {other:?}"),
        }
        // -0.0 survives with its sign bit.
        match roundtrip(&Json::Num(-0.0)) {
            Json::Num(x) => assert_eq!(x.to_bits(), (-0.0f64).to_bits()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn non_finite_floats_refuse_to_encode() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(Json::Num(bad).encode(), Err(JsonError::NonFinite));
            // Nested occurrences fail too — never a silent null.
            let nested = Json::Obj(vec![("x".into(), Json::Arr(vec![Json::Num(bad)]))]);
            assert_eq!(nested.encode(), Err(JsonError::NonFinite));
        }
    }

    #[test]
    fn structures_roundtrip() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("doc-1".into())),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Int(3),
                    Json::Num(2.5),
                    Json::Null,
                    Json::Obj(vec![("k".into(), Json::Bool(false))]),
                ]),
            ),
        ]);
        assert_eq!(roundtrip(&doc), doc);
        assert_eq!(doc.get("name").unwrap().as_str(), Some("doc-1"));
        assert_eq!(doc.get("items").unwrap().as_array().unwrap().len(), 4);
        assert!(doc.get("missing").is_none());
    }

    #[test]
    fn decoder_handles_escapes_and_surrogates() {
        assert_eq!(
            Json::decode(r#""aA\n\t\"\\\/ é""#).unwrap(),
            Json::Str("aA\n\t\"\\/ é".into())
        );
        // Astral plane via surrogate pair.
        assert_eq!(
            Json::decode(r#""😀""#).unwrap(),
            Json::Str("\u{1F600}".into())
        );
        assert!(Json::decode(r#""\ud83d""#).is_err()); // lone high
        assert!(Json::decode(r#""\ude00""#).is_err()); // lone low
        assert!(Json::decode("\"raw\u{01}control\"").is_err());
    }

    #[test]
    fn decoder_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "nul", "tru", "01", "1.", "1e", "--1", "\"x", "[1]]",
            "1 2", "{'a':1}", "+1", "NaN", "Infinity",
        ] {
            assert!(Json::decode(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb: graceful error, no stack overflow.
        let deep = "[".repeat(100_000);
        assert!(Json::decode(&deep).is_err());
    }

    #[test]
    fn integers_and_floats_are_distinct_variants() {
        assert_eq!(Json::decode("5").unwrap(), Json::Int(5));
        assert_eq!(Json::decode("5.0").unwrap(), Json::Num(5.0));
        assert_eq!(Json::decode("-5").unwrap(), Json::Num(-5.0));
        assert_eq!(Json::decode("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(
            Json::decode("18446744073709551615").unwrap(),
            Json::Int(u64::MAX)
        );
        // One past u64::MAX: carried as a float, not an error.
        assert!(matches!(
            Json::decode("18446744073709551616").unwrap(),
            Json::Num(_)
        ));
        assert_eq!(Json::Int(7).as_f64(), Some(7.0));
        assert_eq!(Json::Num(7.5).as_u64(), None);
    }

    #[test]
    fn whitespace_is_tolerated() {
        let doc = Json::decode(" {\n\t\"a\" : [ 1 , 2 ] , \"b\" : null }\r\n").unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b"), Some(&Json::Null));
    }
}
