//! Hand-rolled HTTP/1.1 connection handling: request parsing and
//! response writing over a `TcpStream`.
//!
//! The server speaks the minimal dialect a JSON query service needs —
//! request line, headers, `Content-Length` bodies, keep-alive — and
//! rejects everything outside it loudly instead of guessing:
//!
//! * `Transfer-Encoding` (chunked or otherwise) → `501`,
//! * pipelined requests (bytes of a second request arriving before the
//!   first one's response) → `501`,
//! * HTTP versions other than 1.0/1.1 → `501`,
//! * malformed request lines / headers / lengths → `400`,
//! * oversized headers or bodies → `431` / `413`.
//!
//! Reads poll with a short socket timeout so a worker blocked on an idle
//! keep-alive connection notices the shutdown flag within
//! [`POLL_INTERVAL`] without dropping a request whose bytes are already
//! in flight: shutdown only aborts the read **between** requests, never
//! once the first byte of a request has arrived.

use std::io::Read as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Socket read timeout: the granularity at which blocked reads re-check
/// the idle deadline and the shutdown flag.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Size limits for one request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_header_bytes: usize,
    /// Maximum `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_header_bytes: 16 * 1024,
            max_body_bytes: 4 * 1024 * 1024,
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path (`/v1/query`), without the query string.
    pub path: String,
    /// Query-string parameters in order of appearance (no
    /// percent-decoding — the server's parameters are names and
    /// numbers).
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (`Content-Length` bytes; empty without one).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open
    /// (HTTP/1.1 default, overridden by a `Connection` header).
    pub keep_alive: bool,
    /// Microseconds from the request's first byte arriving to the
    /// request being fully parsed — the tracing layer's `parse` span
    /// (receive + parse, excluding any idle keep-alive wait).
    pub recv_us: u64,
}

impl Request {
    /// First header value under `name` (lower-case).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First query-string parameter under `name`.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why [`Conn::read_request`] did not produce a request.
#[derive(Debug)]
pub enum RecvError {
    /// Clean close (EOF or reset before any byte of a request).
    Closed,
    /// No request started within the keep-alive window.
    IdleTimeout,
    /// Shutdown was requested while the connection sat idle.
    Shutdown,
    /// Header block or body over the configured limit. The payload is
    /// the response status to send (`431` or `413`).
    TooLarge(u16, &'static str),
    /// Unparseable request (`400`).
    Malformed(&'static str),
    /// A feature this server deliberately does not implement (`501`):
    /// chunked transfer encoding, pipelining, exotic HTTP versions.
    Unsupported(&'static str),
    /// The connection broke mid-request.
    Io(String),
}

/// One server-side connection: the stream plus a read buffer that
/// carries bytes across reads (and exposes pipelined bytes, which are
/// rejected).
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

impl Conn {
    /// Wrap an accepted stream: disables Nagle (responses are one small
    /// write) and arms the polling read timeout.
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        Ok(Self {
            stream,
            buf: Vec::new(),
        })
    }

    /// Pull more bytes into the buffer. `Ok(0)` is EOF; timeouts map to
    /// `Ok(None)`-style `false` (no progress).
    fn fill(&mut self) -> Result<FillOutcome, RecvError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(0) => Ok(FillOutcome::Eof),
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(FillOutcome::Data)
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(FillOutcome::Timeout)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(FillOutcome::Timeout),
            Err(e) => Err(RecvError::Io(e.to_string())),
        }
    }

    /// Read and parse one request.
    ///
    /// `idle` bounds how long the connection may sit without a request
    /// starting; `abort` is polled while idle (the graceful-shutdown
    /// hook). Once the first byte of a request has arrived the request
    /// is read to completion — the header block within the `idle`
    /// window, the body under a progress-based deadline (refreshed per
    /// chunk, hard-capped at ten windows) — so shutdown never truncates
    /// an in-flight request and a legal slow upload is not killed by
    /// the residue of the keep-alive window.
    pub fn read_request(
        &mut self,
        limits: &Limits,
        idle: Duration,
        abort: &dyn Fn() -> bool,
    ) -> Result<Request, RecvError> {
        let deadline = Instant::now() + idle;
        // When the request's first byte arrived (bytes already buffered
        // count as "now": between requests the buffer is empty, so this
        // only triggers for bytes that raced the previous drain).
        let mut first_byte: Option<Instant> = (!self.buf.is_empty()).then(Instant::now);
        // -- Header block ---------------------------------------------------
        let header_end = loop {
            if let Some(pos) = find_blank_line(&self.buf) {
                if pos > limits.max_header_bytes {
                    return Err(RecvError::TooLarge(431, "header block too large"));
                }
                break pos;
            }
            if self.buf.len() > limits.max_header_bytes {
                return Err(RecvError::TooLarge(431, "header block too large"));
            }
            if Instant::now() >= deadline {
                return if self.buf.is_empty() {
                    Err(RecvError::IdleTimeout)
                } else {
                    Err(RecvError::Io("timed out mid-request".into()))
                };
            }
            match self.fill()? {
                FillOutcome::Eof => {
                    return if self.buf.is_empty() {
                        Err(RecvError::Closed)
                    } else {
                        Err(RecvError::Io("connection closed mid-request".into()))
                    };
                }
                FillOutcome::Data => {
                    first_byte.get_or_insert_with(Instant::now);
                    continue;
                }
                FillOutcome::Timeout => {
                    // Only an *idle* connection honors the shutdown
                    // flag: bytes already in flight always win, so a
                    // drain never truncates a request the client has
                    // sent.
                    if self.buf.is_empty() && abort() {
                        return Err(RecvError::Shutdown);
                    }
                    continue;
                }
            }
        };
        let header_text = std::str::from_utf8(&self.buf[..header_end])
            .map_err(|_| RecvError::Malformed("headers are not valid UTF-8"))?
            .to_string();
        let body_start = header_end + 4;

        let mut lines = header_text.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split(' ');
        let method = parts
            .next()
            .filter(|m| !m.is_empty())
            .ok_or(RecvError::Malformed("empty request line"))?
            .to_ascii_uppercase();
        let target = parts
            .next()
            .ok_or(RecvError::Malformed("request line has no target"))?;
        let version = parts
            .next()
            .ok_or(RecvError::Malformed("request line has no version"))?;
        if parts.next().is_some() {
            return Err(RecvError::Malformed("request line has extra fields"));
        }
        let mut keep_alive = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            _ => return Err(RecvError::Unsupported("unsupported HTTP version")),
        };

        let mut headers: Vec<(String, String)> = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or(RecvError::Malformed("header line has no colon"))?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        let mut content_length = 0usize;
        let mut saw_length = false;
        for (name, value) in &headers {
            match name.as_str() {
                "transfer-encoding" => {
                    return Err(RecvError::Unsupported(
                        "transfer-encoding (chunked bodies) is not implemented",
                    ));
                }
                "content-length" => {
                    if saw_length {
                        return Err(RecvError::Malformed("multiple content-length headers"));
                    }
                    saw_length = true;
                    content_length = value
                        .parse()
                        .map_err(|_| RecvError::Malformed("unparseable content-length"))?;
                }
                "connection" => {
                    let value = value.to_ascii_lowercase();
                    if value.split(',').any(|t| t.trim() == "close") {
                        keep_alive = false;
                    } else if value.split(',').any(|t| t.trim() == "keep-alive") {
                        keep_alive = true;
                    }
                }
                _ => {}
            }
        }
        if content_length > limits.max_body_bytes {
            return Err(RecvError::TooLarge(413, "body larger than the limit"));
        }

        // -- Body -----------------------------------------------------------
        // The body gets its own progress-based window instead of the
        // residue of the idle deadline: a legal slow upload of a large
        // batch body refreshes its deadline on every chunk received,
        // while a byte-trickling client is still cut off by the hard
        // cap (10 idle windows for the whole body).
        let mut body_deadline = Instant::now() + idle;
        let body_hard_cap = Instant::now() + idle.saturating_mul(10);
        while self.buf.len() < body_start + content_length {
            let now = Instant::now();
            if now >= body_deadline || now >= body_hard_cap {
                return Err(RecvError::Io("timed out reading body".into()));
            }
            match self.fill()? {
                FillOutcome::Eof => {
                    return Err(RecvError::Io("connection closed mid-body".into()));
                }
                FillOutcome::Data => body_deadline = Instant::now() + idle,
                FillOutcome::Timeout => {}
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        if !self.buf.is_empty() {
            // Bytes of a second request arrived before this one was
            // answered: the client is pipelining, which this server
            // deliberately rejects rather than half-supports.
            return Err(RecvError::Unsupported("pipelined requests"));
        }

        let (path, raw_query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), q),
            None => (target.to_string(), ""),
        };
        let query = raw_query
            .split('&')
            .filter(|pair| !pair.is_empty())
            .map(|pair| match pair.split_once('=') {
                Some((k, v)) => (k.to_string(), v.to_string()),
                None => (pair.to_string(), String::new()),
            })
            .collect();

        Ok(Request {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
            recv_us: first_byte
                .map(|t| u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX))
                .unwrap_or(0),
        })
    }

    /// Write one response and flush it.
    pub fn write_response(&mut self, response: &Response) -> std::io::Result<()> {
        write_response_to(&mut self.stream, response)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FillOutcome {
    Data,
    Timeout,
    Eof,
}

/// A response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Whether to advertise (and honor) keep-alive.
    pub keep_alive: bool,
    /// Extra headers (`Retry-After`, `Allow`, …).
    pub extra_headers: Vec<(&'static str, String)>,
}

impl Response {
    /// A response with no extra headers.
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Self {
            status,
            content_type,
            body,
            keep_alive: true,
            extra_headers: Vec::new(),
        }
    }

    /// Add an extra header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Mark the connection for closing after this response.
    pub fn closing(mut self) -> Self {
        self.keep_alive = false;
        self
    }
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// Serialize a response onto any writer (used by the worker loop and by
/// the acceptor's overload rejection, which never constructs a
/// [`Conn`]).
pub fn write_response_to<W: std::io::Write>(
    writer: &mut W,
    response: &Response,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if response.keep_alive {
            "keep-alive"
        } else {
            "close"
        },
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

/// Reject an accepted-but-unqueued stream with `503` + `Retry-After`
/// (the admission-control path; failures are ignored — the client is
/// being turned away either way).
pub fn reject_overloaded(stream: &mut TcpStream) {
    let response = Response::new(
        503,
        "application/json",
        b"{\"error\":\"server overloaded, retry shortly\"}".to_vec(),
    )
    .closing()
    .with_header("Retry-After", "1");
    let _ = stream.set_nodelay(true);
    let _ = write_response_to(stream, &response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::TcpListener;

    /// Run the parser against raw client bytes via a real socket pair.
    fn parse_raw(raw: &[u8]) -> Result<Request, RecvError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw).unwrap();
        client.flush().unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server_side).unwrap();
        conn.read_request(&Limits::default(), Duration::from_secs(2), &|| false)
    }

    #[test]
    fn parses_get_with_query_string() {
        let req = parse_raw(b"GET /v1/merged/top?t=5&x=a HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/merged/top");
        assert_eq!(req.query_param("t"), Some("5"));
        assert_eq!(req.query_param("x"), Some("a"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.keep_alive);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse_raw(
            b"POST /v1/query HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 11\r\n\r\n{\"a\":\"b\\n\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"{\"a\":\"b\\n\"}");
        assert_eq!(req.header("content-type"), Some("application/json"));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse_raw(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse_raw(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse_raw(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn rejects_chunked_and_pipelined_with_unsupported() {
        assert!(matches!(
            parse_raw(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RecvError::Unsupported(_))
        ));
        // Two complete requests in one burst = pipelining.
        assert!(matches!(
            parse_raw(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n"),
            Err(RecvError::Unsupported(_))
        ));
        assert!(matches!(
            parse_raw(b"GET / HTTP/2.0\r\n\r\n"),
            Err(RecvError::Unsupported(_))
        ));
    }

    #[test]
    fn rejects_malformed_requests() {
        for raw in [
            &b"\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET /\r\n\r\n",
            b"GET / HTTP/1.1 extra\r\n\r\n",
            b"GET / HTTP/1.1\r\nbad header line\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: x\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nab",
        ] {
            assert!(
                matches!(parse_raw(raw), Err(RecvError::Malformed(_))),
                "{:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn rejects_oversized_header_and_body() {
        let limits = Limits {
            max_header_bytes: 64,
            max_body_bytes: 8,
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let long = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(200));
        client.write_all(long.as_bytes()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server_side).unwrap();
        assert!(matches!(
            conn.read_request(&limits, Duration::from_secs(2), &|| false),
            Err(RecvError::TooLarge(431, _))
        ));

        let mut client = TcpStream::connect(addr).unwrap();
        client
            .write_all(b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n")
            .unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server_side).unwrap();
        assert!(matches!(
            conn.read_request(&limits, Duration::from_secs(2), &|| false),
            Err(RecvError::TooLarge(413, _))
        ));
    }

    #[test]
    fn clean_close_and_idle_and_shutdown_are_distinct() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // Client connects and closes without sending anything.
        let client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        drop(client);
        let mut conn = Conn::new(server_side).unwrap();
        assert!(matches!(
            conn.read_request(&Limits::default(), Duration::from_secs(2), &|| false),
            Err(RecvError::Closed)
        ));

        // Client connects and stays silent: idle timeout.
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server_side).unwrap();
        assert!(matches!(
            conn.read_request(&Limits::default(), Duration::from_millis(120), &|| false),
            Err(RecvError::IdleTimeout)
        ));

        // Abort hook fires while idle: shutdown.
        let _client2 = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut conn = Conn::new(server_side).unwrap();
        assert!(matches!(
            conn.read_request(&Limits::default(), Duration::from_secs(5), &|| true),
            Err(RecvError::Shutdown)
        ));
    }

    #[test]
    fn response_serialization() {
        let mut out = Vec::new();
        let response = Response::new(200, "application/json", b"{}".to_vec());
        write_response_to(&mut out, &response).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        let response = Response::new(503, "text/plain", b"busy".to_vec())
            .closing()
            .with_header("Retry-After", "1");
        write_response_to(&mut out, &response).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("503 Service Unavailable"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
    }
}
