//! Server observability: request counters, the fleet-shared latency
//! histogram, and a Prometheus text-exposition rendering for
//! `GET /metrics`.
//!
//! Everything is lock-free atomics — the metrics path must never add a
//! lock to the request path. The render borrows the corpus
//! [`CacheStats`] and the live queue depth at scrape time, so the
//! endpoint is one place to watch both the HTTP layer (traffic, errors,
//! latency, admission rejections) and the serving layer (warm-engine
//! hits/loads/evictions, resident bytes).
//!
//! Every metric follows `sigstr_<subsystem>_<name>_<unit>` and is
//! declared with a `# TYPE` line before its samples; the exposition
//! lint ([`sigstr_obs::lint`]) pins both in tests. The histogram type
//! and its bucket bounds live in [`sigstr_obs::hist`], shared with the
//! router so the two tiers' latency series compare bucket-for-bucket.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use sigstr_corpus::{CacheStats, LiveStats, FREEZE_BUCKETS_US};
use sigstr_obs::hist::Histogram;
use sigstr_obs::FlightRecorder;

pub use sigstr_obs::hist::LATENCY_BUCKETS_US;

/// Request/response counters (all monotonic except the queue-depth
/// gauge, which the service core samples at render time).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Requests fully parsed and routed.
    requests: AtomicU64,
    /// Responses by status class.
    class_2xx: AtomicU64,
    class_4xx: AtomicU64,
    class_5xx: AtomicU64,
    /// Connections turned away at admission (`503` before any request
    /// was parsed; not counted in `requests`).
    rejected: AtomicU64,
    /// Latency of routed requests (fleet-shared buckets).
    latency: Histogram,
}

impl Metrics {
    /// Record one routed request and its response status + latency.
    pub fn observe(&self, status: u16, elapsed: Duration) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.class_2xx,
            400..=499 => &self.class_4xx,
            _ => &self.class_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
        self.latency
            .observe_us(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Record one admission rejection (connection refused with `503`).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a protocol-level error response (malformed, unsupported,
    /// oversized input answered before any request was routed): counts
    /// toward its status class but not toward `requests` or the latency
    /// histogram — those track requests fully parsed and routed.
    pub fn record_protocol_error(&self, status: u16) {
        let class = match status {
            200..=299 => &self.class_2xx,
            400..=499 => &self.class_4xx,
            _ => &self.class_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests fully parsed and routed so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connections turned away at admission so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Render the `GET /metrics` text body: the HTTP-layer lines plus
    /// the corpus cache lines.
    pub fn render(&self, queue_depth: usize, cache: &CacheStats) -> String {
        let mut out = self.render_http(queue_depth);
        render_cache(&mut out, cache);
        out
    }

    /// Render only the HTTP-layer lines (traffic, status classes,
    /// admission, queue depth, latency histogram). The corpus server
    /// appends cache lines with [`render_cache`]; the router appends
    /// its per-shard health/retry/hedge lines instead.
    pub fn render_http(&self, queue_depth: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# TYPE sigstr_http_requests_total counter\nsigstr_http_requests_total {}",
            self.requests()
        );
        let _ = writeln!(out, "# TYPE sigstr_http_responses_total counter");
        for (class, counter) in [
            ("2xx", &self.class_2xx),
            ("4xx", &self.class_4xx),
            ("5xx", &self.class_5xx),
        ] {
            let _ = writeln!(
                out,
                "sigstr_http_responses_total{{class=\"{class}\"}} {}",
                counter.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# TYPE sigstr_http_admission_rejected_total counter\nsigstr_http_admission_rejected_total {}",
            self.rejected()
        );
        let _ = writeln!(
            out,
            "# TYPE sigstr_http_queue_depth gauge\nsigstr_http_queue_depth {queue_depth}"
        );
        let _ = writeln!(out, "# TYPE sigstr_http_request_latency_us histogram");
        self.latency
            .render(&mut out, "sigstr_http_request_latency_us", "");
        out
    }
}

/// Append the flight-recorder lines to a metrics body.
pub fn render_trace(out: &mut String, recorder: &FlightRecorder) {
    let _ = writeln!(
        out,
        "# TYPE sigstr_trace_recorded_total counter\nsigstr_trace_recorded_total {}",
        recorder.recorded()
    );
    let _ = writeln!(
        out,
        "# TYPE sigstr_trace_slow_total counter\nsigstr_trace_slow_total {}",
        recorder.slow()
    );
    let _ = writeln!(
        out,
        "# TYPE sigstr_trace_resident_traces gauge\nsigstr_trace_resident_traces {}",
        recorder.len()
    );
}

/// Append the warm-engine cache lines to a metrics body.
pub fn render_cache(out: &mut String, cache: &CacheStats) {
    let _ = writeln!(
        out,
        "# TYPE sigstr_cache_hits_total counter\nsigstr_cache_hits_total {}",
        cache.hits
    );
    let _ = writeln!(out, "# TYPE sigstr_cache_loads_total counter");
    let _ = writeln!(out, "sigstr_cache_loads_total {}", cache.loads);
    let _ = writeln!(
        out,
        "sigstr_cache_loads_total{{loader=\"mmap\"}} {}",
        cache.mmap_loads
    );
    let _ = writeln!(
        out,
        "sigstr_cache_loads_total{{loader=\"read\"}} {}",
        cache.read_loads
    );
    let _ = writeln!(
        out,
        "# TYPE sigstr_cache_evictions_total counter\nsigstr_cache_evictions_total {}",
        cache.evictions
    );
    let _ = writeln!(
        out,
        "# TYPE sigstr_cache_lazy_verifications_total counter\nsigstr_cache_lazy_verifications_total {}",
        cache.lazy_verifications
    );
    let _ = writeln!(
        out,
        "# TYPE sigstr_cache_resident_engines gauge\nsigstr_cache_resident_engines {}",
        cache.resident
    );
    let _ = writeln!(
        out,
        "# TYPE sigstr_cache_resident_bytes gauge\nsigstr_cache_resident_bytes {}",
        cache.resident_bytes
    );
}

/// Append the live-document lines to a metrics body: per-document
/// generation/tail/append/freeze/watch/alert series, the total
/// in-memory tail bytes, and the corpus-wide freeze-pause histogram
/// (the number a dashboard watches to see what appenders pay when a
/// tail freezes into a new snapshot generation). Samples are grouped
/// per metric (not per document) so each `# TYPE` declaration covers
/// every one of its labeled series, as the exposition format requires.
pub fn render_live(out: &mut String, live: &LiveStats) {
    let _ = writeln!(
        out,
        "# TYPE sigstr_live_documents gauge\nsigstr_live_documents {}",
        live.docs.len()
    );
    let _ = writeln!(
        out,
        "# TYPE sigstr_live_tail_bytes gauge\nsigstr_live_tail_bytes {}",
        live.live_bytes
    );
    type DocField = fn(&sigstr_corpus::LiveDocStatus) -> u64;
    let per_doc: [(&str, &str, DocField); 8] = [
        ("sigstr_live_generation", "gauge", |d| d.generation),
        ("sigstr_live_tail_symbols", "gauge", |d| d.tail as u64),
        ("sigstr_live_appends_total", "counter", |d| d.appends),
        ("sigstr_live_appended_symbols_total", "counter", |d| {
            d.appended_symbols
        }),
        ("sigstr_live_freezes_total", "counter", |d| d.freezes),
        ("sigstr_live_watches", "gauge", |d| d.watches as u64),
        ("sigstr_live_alerts_emitted_total", "counter", |d| {
            d.alerts_emitted
        }),
        ("sigstr_live_alerts_delivered_total", "counter", |d| {
            d.alerts_delivered
        }),
    ];
    for (name, kind, pick) in per_doc {
        if live.docs.is_empty() {
            continue;
        }
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for doc in &live.docs {
            let _ = writeln!(out, "{name}{{doc=\"{}\"}} {}", doc.name, pick(doc));
        }
    }
    let _ = writeln!(out, "# TYPE sigstr_live_freeze_duration_us histogram");
    let mut cumulative = 0u64;
    for (i, &bound) in FREEZE_BUCKETS_US.iter().enumerate() {
        cumulative += live.freeze_buckets[i];
        let _ = writeln!(
            out,
            "sigstr_live_freeze_duration_us_bucket{{le=\"{bound}\"}} {cumulative}"
        );
    }
    cumulative += live.freeze_buckets[FREEZE_BUCKETS_US.len()];
    let _ = writeln!(
        out,
        "sigstr_live_freeze_duration_us_bucket{{le=\"+Inf\"}} {cumulative}"
    );
    let _ = writeln!(
        out,
        "sigstr_live_freeze_duration_us_sum {}",
        live.freeze_sum_us
    );
    let _ = writeln!(out, "sigstr_live_freeze_duration_us_count {cumulative}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_buckets_accumulate() {
        let metrics = Metrics::default();
        metrics.observe(200, Duration::from_micros(50));
        metrics.observe(200, Duration::from_micros(400));
        metrics.observe(404, Duration::from_micros(2_000));
        metrics.observe(503, Duration::from_secs(2));
        metrics.record_rejected();
        assert_eq!(metrics.requests(), 4);
        assert_eq!(metrics.rejected(), 1);

        let text = metrics.render(3, &CacheStats::default());
        assert!(text.contains("sigstr_http_requests_total 4"), "{text}");
        assert!(text.contains("class=\"2xx\"} 2"));
        assert!(text.contains("class=\"4xx\"} 1"));
        assert!(text.contains("class=\"5xx\"} 1"));
        assert!(text.contains("sigstr_http_admission_rejected_total 1"));
        assert!(text.contains("sigstr_http_queue_depth 3"));
        // Cumulative: the 50us observation is in every bucket from
        // le=100 up; +Inf covers all four.
        assert!(text.contains("le=\"100\"} 1"));
        assert!(text.contains("le=\"500\"} 2"));
        assert!(text.contains("le=\"5000\"} 3"));
        assert!(text.contains("le=\"+Inf\"} 4"));
        assert!(text.contains("sigstr_http_request_latency_us_count 4"));
    }

    #[test]
    fn protocol_errors_count_their_class_but_not_requests() {
        let metrics = Metrics::default();
        metrics.observe(200, Duration::from_micros(10));
        metrics.record_protocol_error(400);
        metrics.record_protocol_error(501);
        assert_eq!(metrics.requests(), 1);
        let text = metrics.render(0, &CacheStats::default());
        assert!(text.contains("sigstr_http_requests_total 1"), "{text}");
        assert!(text.contains("class=\"4xx\"} 1"), "{text}");
        assert!(text.contains("class=\"5xx\"} 1"), "{text}");
        // The histogram saw only the routed request.
        assert!(
            text.contains("sigstr_http_request_latency_us_count 1"),
            "{text}"
        );
    }

    #[test]
    fn live_stats_are_rendered() {
        use sigstr_corpus::LiveDocStatus;
        let mut buckets = [0u64; FREEZE_BUCKETS_US.len() + 1];
        buckets[1] = 2; // two freezes at or under 500us
        buckets[FREEZE_BUCKETS_US.len()] = 1; // one beyond the last bound
        let live = LiveStats {
            docs: vec![LiveDocStatus {
                name: "log".into(),
                generation: 4,
                n: 5000,
                tail: 120,
                appends: 37,
                appended_symbols: 4100,
                freezes: 3,
                watches: 2,
                alerts_emitted: 9,
                alerts_delivered: 7,
                live_bytes: 2048,
            }],
            freeze_buckets: buckets,
            freeze_count: 3,
            freeze_sum_us: 1234,
            live_bytes: 2048,
        };
        let mut text = String::new();
        render_live(&mut text, &live);
        assert!(text.contains("sigstr_live_documents 1"), "{text}");
        assert!(text.contains("sigstr_live_tail_bytes 2048"));
        assert!(text.contains("sigstr_live_generation{doc=\"log\"} 4"));
        assert!(text.contains("sigstr_live_tail_symbols{doc=\"log\"} 120"));
        assert!(text.contains("sigstr_live_appends_total{doc=\"log\"} 37"));
        assert!(text.contains("sigstr_live_freezes_total{doc=\"log\"} 3"));
        assert!(text.contains("sigstr_live_watches{doc=\"log\"} 2"));
        assert!(text.contains("sigstr_live_alerts_emitted_total{doc=\"log\"} 9"));
        assert!(text.contains("sigstr_live_alerts_delivered_total{doc=\"log\"} 7"));
        // Cumulative histogram: le="500" sees both fast freezes, +Inf
        // adds the overflow one, and the count matches +Inf.
        assert!(text.contains("sigstr_live_freeze_duration_us_bucket{le=\"500\"} 2"));
        assert!(text.contains("sigstr_live_freeze_duration_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("sigstr_live_freeze_duration_us_sum 1234"));
        assert!(text.contains("sigstr_live_freeze_duration_us_count 3"));
    }

    #[test]
    fn cache_stats_are_rendered() {
        let metrics = Metrics::default();
        let cache = CacheStats {
            hits: 7,
            loads: 2,
            mmap_loads: 1,
            read_loads: 1,
            evictions: 1,
            lazy_verifications: 3,
            resident: 1,
            resident_bytes: 4096,
        };
        let text = metrics.render(0, &cache);
        assert!(text.contains("sigstr_cache_hits_total 7"));
        assert!(text.contains("sigstr_cache_loads_total 2"));
        assert!(text.contains("sigstr_cache_loads_total{loader=\"mmap\"} 1"));
        assert!(text.contains("sigstr_cache_loads_total{loader=\"read\"} 1"));
        assert!(text.contains("sigstr_cache_evictions_total 1"));
        assert!(text.contains("sigstr_cache_lazy_verifications_total 3"));
        assert!(text.contains("sigstr_cache_resident_engines 1"));
        assert!(text.contains("sigstr_cache_resident_bytes 4096"));
    }

    #[test]
    fn trace_lines_are_rendered() {
        let recorder = FlightRecorder::default();
        recorder.note_slow();
        let mut text = String::new();
        render_trace(&mut text, &recorder);
        assert!(text.contains("sigstr_trace_recorded_total 0"), "{text}");
        assert!(text.contains("sigstr_trace_slow_total 1"));
        assert!(text.contains("sigstr_trace_resident_traces 0"));
    }

    #[test]
    fn server_page_passes_the_exposition_lint() {
        let metrics = Metrics::default();
        metrics.observe(200, Duration::from_micros(50));
        metrics.record_rejected();
        let mut text = metrics.render(1, &CacheStats::default());
        render_trace(&mut text, &FlightRecorder::default());
        let live = LiveStats {
            docs: vec![sigstr_corpus::LiveDocStatus {
                name: "log".into(),
                generation: 2,
                n: 100,
                tail: 5,
                appends: 1,
                appended_symbols: 5,
                freezes: 1,
                watches: 0,
                alerts_emitted: 0,
                alerts_delivered: 0,
                live_bytes: 64,
            }],
            freeze_buckets: [0; FREEZE_BUCKETS_US.len() + 1],
            freeze_count: 0,
            freeze_sum_us: 0,
            live_bytes: 64,
        };
        render_live(&mut text, &live);
        let violations = sigstr_obs::lint::lint_exposition(&text);
        assert!(violations.is_empty(), "{violations:#?}\n{text}");
    }
}
