//! The reusable HTTP service core: acceptor, bounded admission queue,
//! fixed worker pool, keep-alive loop, graceful drain.
//!
//! PR 5 built this machinery directly into the corpus server; the
//! scatter-gather router needs exactly the same skeleton (same
//! admission semantics, same drain contract, same metrics) around a
//! different request handler. So the skeleton lives here once, generic
//! over a [`Handler`], and both servers are thin handlers on top:
//!
//! ```text
//!              ┌──────────┐   bounded queue    ┌─────────┐
//!  clients ──▶ │ acceptor │ ──────────────────▶│ worker  │──▶ Handler
//!              │  thread  │  (overload: 503 +  │  pool   │
//!              └──────────┘    Retry-After)    └─────────┘
//! ```
//!
//! * **Admission control**: the acceptor pushes each accepted
//!   connection into a bounded queue; when the queue is full the
//!   connection is answered `503` with `Retry-After` immediately
//!   instead of queueing without bound.
//! * **Fixed worker pool**: `threads` workers each own one connection
//!   at a time and run its keep-alive loop (sequential requests;
//!   pipelined requests and chunked bodies are rejected with `501`).
//! * **Graceful shutdown**: [`ServiceHandle::shutdown`] stops the
//!   acceptor, lets every in-flight request complete (a request whose
//!   bytes have arrived is always answered), closes idle keep-alive
//!   connections, joins the workers, and notifies the handler via
//!   [`Handler::on_shutdown`] so it can stop its own background work.

use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use sigstr_obs::{self as obs, ActiveTrace, FlightRecorder, TraceFilter, TraceHandle, TraceId};

use crate::http::{self, Conn, Limits, RecvError, Request, Response};
use crate::json::Json;
use crate::metrics::Metrics;
use crate::wire;

/// Per-request tracing configuration (shared by server and router).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Trace requests at all. Off, the per-request cost is one branch;
    /// `/debug/traces` serves an empty list.
    pub enabled: bool,
    /// Flight-recorder capacity (recent sealed traces kept in memory).
    pub recorder_capacity: usize,
    /// Slow-query log threshold: a sealed trace at or over this
    /// end-to-end latency is emitted as one JSON line on stderr.
    /// `None` disables the log.
    pub slow_us: Option<u64>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            recorder_capacity: sigstr_obs::recorder::DEFAULT_CAPACITY,
            slow_us: None,
        }
    }
}

/// Service configuration (shared by the corpus server and the router).
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads (`0` = all available cores).
    pub threads: usize,
    /// Admission queue bound: connections accepted but not yet claimed
    /// by a worker. Beyond it, new connections get `503` +
    /// `Retry-After`.
    pub queue_depth: usize,
    /// How long an idle keep-alive connection is held open.
    pub keep_alive: Duration,
    /// Request size limits.
    pub limits: Limits,
    /// Per-request tracing and the flight recorder.
    pub trace: TraceConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:8080".into(),
            threads: 0,
            queue_depth: 64,
            keep_alive: Duration::from_secs(5),
            limits: Limits::default(),
            trace: TraceConfig::default(),
        }
    }
}

/// What [`Service::run`] reports after a graceful shutdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Requests fully parsed and answered.
    pub requests: u64,
    /// Connections turned away at admission with `503`.
    pub rejected: u64,
}

/// The request handler a [`Service`] is generic over. One call per
/// parsed request; the handler sees the [`ServiceCore`] for metrics,
/// queue depth and the drain flag (readiness endpoints report `503`
/// during drain).
pub trait Handler: Send + Sync + 'static {
    /// Answer one routed request.
    fn handle(&self, request: &Request, core: &ServiceCore) -> Response;

    /// Called exactly once when shutdown begins (before the drain
    /// completes). Handlers stop background threads here.
    fn on_shutdown(&self) {}
}

/// The non-generic half of the shared state: metrics, admission queue,
/// shutdown flag, config. Handlers receive `&ServiceCore` with every
/// request.
pub struct ServiceCore {
    metrics: Metrics,
    /// Admitted connections, stamped with their admission time so the
    /// first request on each carries a queue-wait span.
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    /// Lock-free mirror of the queue length, updated under the queue
    /// lock on enqueue *and dequeue* (not on completion — the gauge
    /// must read "waiting for a worker", never "in flight"). The hot
    /// paths (per-request fairness check, the idle-poll abort hook)
    /// read this instead of taking the queue lock.
    queued: AtomicUsize,
    available: Condvar,
    shutdown: AtomicBool,
    recorder: FlightRecorder,
    config: ServiceConfig,
}

impl ServiceCore {
    pub(crate) fn new(config: ServiceConfig) -> Self {
        let capacity = if config.trace.enabled {
            config.trace.recorder_capacity
        } else {
            0
        };
        Self {
            metrics: Metrics::default(),
            queue: Mutex::new(VecDeque::new()),
            queued: AtomicUsize::new(0),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            recorder: FlightRecorder::new(capacity),
            config,
        }
    }

    /// Whether a graceful shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Connections admitted but not yet claimed by a worker. Bounded by
    /// `config.queue_depth` at all times: incremented at admission,
    /// decremented the moment a worker dequeues.
    pub fn queue_depth(&self) -> usize {
        self.queued.load(Ordering::Relaxed)
    }

    /// The service's request metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The process's flight recorder (recent sealed request traces).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }
}

struct ServiceShared<H: Handler> {
    core: ServiceCore,
    handler: H,
}

/// Object-safe view of the shared state, so [`ServiceHandle`] stays
/// non-generic (the CLI signal watcher holds handles to either server).
trait ControlOps: Send + Sync {
    fn core(&self) -> &ServiceCore;
    fn handler_shutdown(&self);
}

impl<H: Handler> ControlOps for ServiceShared<H> {
    fn core(&self) -> &ServiceCore {
        &self.core
    }

    fn handler_shutdown(&self) {
        self.handler.on_shutdown();
    }
}

/// A cloneable handle that can stop a running service from any thread
/// (or a signal watcher).
#[derive(Clone)]
pub struct ServiceHandle {
    ops: Arc<dyn ControlOps>,
    addr: SocketAddr,
}

impl ServiceHandle {
    /// Begin a graceful shutdown: stop accepting, finish in-flight
    /// requests, close idle connections. Idempotent; returns
    /// immediately ([`Service::run`] returns once the drain completes).
    pub fn shutdown(&self) {
        let core = self.ops.core();
        if !core.shutdown.swap(true, Ordering::SeqCst) {
            self.ops.handler_shutdown();
            // Wake the acceptor out of its blocking accept. The
            // connection is recognized post-flag and dropped.
            let _ = TcpStream::connect(self.addr);
        }
        core.available.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.ops.core().is_shutting_down()
    }

    /// The service's bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

/// A bound service, ready to [`run`](Service::run).
pub struct Service<H: Handler> {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<ServiceShared<H>>,
}

impl<H: Handler> Service<H> {
    /// Bind the listener and assemble the shared state. The service
    /// does not accept connections until [`Service::run`].
    pub fn bind(handler: H, config: ServiceConfig) -> std::io::Result<Service<H>> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(ServiceShared {
            core: ServiceCore::new(config),
            handler,
        });
        Ok(Service {
            listener,
            addr,
            shared,
        })
    }

    /// The bound address (the real port, when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown handle for this service.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            ops: Arc::clone(&self.shared) as Arc<dyn ControlOps>,
            addr: self.addr,
        }
    }

    /// The handler (for pre-`run` introspection, e.g. document counts).
    pub fn handler(&self) -> &H {
        &self.shared.handler
    }

    /// Serve until [`ServiceHandle::shutdown`]: spawns the worker pool,
    /// runs the accept/admission loop on the calling thread, then
    /// drains and joins everything.
    pub fn run(self) -> std::io::Result<ServeSummary> {
        let threads = if self.shared.core.config.threads == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
        } else {
            self.shared.core.config.threads
        };
        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("sigstr-worker-{i}"))
                    .spawn(move || worker_loop(&*shared))
                    .expect("spawn worker thread")
            })
            .collect();

        loop {
            let stream = match self.listener.accept() {
                Ok((stream, _peer)) => stream,
                Err(_) => {
                    if self.shared.core.is_shutting_down() {
                        break;
                    }
                    // Persistent accept errors (fd exhaustion under
                    // overload, transient ENOBUFS) must not hot-spin
                    // the acceptor at 100% CPU — back off briefly.
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            };
            if self.shared.core.is_shutting_down() {
                // The wake-up connection (or a client racing shutdown).
                break;
            }
            self.admit(stream);
        }
        // Stop accepting *now* — connects after this refuse instead of
        // hanging in the backlog.
        drop(self.listener);
        self.shared.core.available.notify_all();
        for worker in workers {
            let _ = worker.join();
        }
        Ok(ServeSummary {
            requests: self.shared.core.metrics.requests(),
            rejected: self.shared.core.metrics.rejected(),
        })
    }

    /// Admission control: enqueue within the bound, `503` beyond it.
    fn admit(&self, mut stream: TcpStream) {
        let core = &self.shared.core;
        let mut queue = core.queue.lock().expect("admission queue poisoned");
        if queue.len() >= core.config.queue_depth {
            drop(queue);
            core.metrics.record_rejected();
            http::reject_overloaded(&mut stream);
            return;
        }
        queue.push_back((stream, Instant::now()));
        core.queued.store(queue.len(), Ordering::Relaxed);
        drop(queue);
        core.available.notify_one();
    }
}

/// Worker: claim connections until shutdown *and* the queue is drained.
fn worker_loop<H: Handler>(shared: &ServiceShared<H>) {
    let core = &shared.core;
    loop {
        let claimed = {
            let mut queue = core.queue.lock().expect("admission queue poisoned");
            loop {
                if let Some((stream, queued_at)) = queue.pop_front() {
                    core.queued.store(queue.len(), Ordering::Relaxed);
                    break Some((stream, queued_at));
                }
                if core.is_shutting_down() {
                    break None;
                }
                queue = core
                    .available
                    .wait(queue)
                    .expect("admission queue poisoned");
            }
        };
        match claimed {
            Some((stream, queued_at)) => serve_connection(shared, stream, queued_at),
            None => return,
        }
    }
}

/// One connection's keep-alive loop.
fn serve_connection<H: Handler>(shared: &ServiceShared<H>, stream: TcpStream, queued_at: Instant) {
    let core = &shared.core;
    let Ok(mut conn) = Conn::new(stream) else {
        return;
    };
    // The admission wait belongs to the *first* request only — later
    // requests on this keep-alive connection never sat in the queue.
    let mut queue_wait = Some((queued_at, Instant::now()));
    loop {
        // The yield condition doubles as the graceful-shutdown check:
        // an *idle* connection is abandoned both when the service drains
        // and when other connections wait in the admission queue — a
        // worker parked on a silent keep-alive socket while a freshly
        // dialed health probe starves would otherwise hold that probe
        // until its client-side timeout marks this shard down.
        let request = match conn.read_request(&core.config.limits, core.config.keep_alive, &|| {
            core.is_shutting_down() || core.queue_depth() > 0
        }) {
            Ok(request) => request,
            Err(RecvError::Closed | RecvError::IdleTimeout | RecvError::Shutdown) => return,
            Err(RecvError::Io(_)) => return,
            Err(RecvError::TooLarge(status, message)) => {
                respond_error(core, &mut conn, status, message);
                return;
            }
            Err(RecvError::Malformed(message)) => {
                respond_error(core, &mut conn, 400, message);
                return;
            }
            Err(RecvError::Unsupported(message)) => {
                respond_error(core, &mut conn, 501, message);
                return;
            }
        };
        let trace = begin_trace(core, &request, queue_wait.take());
        let start = Instant::now();
        let mut response = {
            // The handler (and everything it calls: corpus cache, scan,
            // the router's hedging coordinator) records spans against
            // the attached trace; a `None` attach costs nothing.
            let _ambient = trace.as_ref().map(|t| obs::attach(Arc::clone(t)));
            shared.handler.handle(&request, core)
        };
        let mut keep_alive = request.keep_alive && response.keep_alive && !core.is_shutting_down();
        // Fairness under worker pinning: with as many live keep-alive
        // peers as workers, every worker sits in this loop and a newly
        // dialed connection — a health probe, a directory fetch, a new
        // client — waits in the admission queue until its own timeout
        // fires. If someone is waiting, close after this response so
        // the worker cycles through all comers; `Connection: close`
        // tells well-behaved clients not to park the socket.
        if keep_alive && core.queue_depth() > 0 {
            keep_alive = false;
        }
        response.keep_alive = keep_alive;
        core.metrics.observe(response.status, start.elapsed());
        let write_ok = match trace {
            Some(trace) => {
                let response = response.with_header(obs::TRACE_HEADER, trace.id().to_hex());
                let write_start = Instant::now();
                let ok = conn.write_response(&response).is_ok();
                trace.record(
                    "write",
                    write_start,
                    Instant::now(),
                    vec![("bytes", response.body.len().to_string())],
                );
                finish_trace(core, &trace, &request, response.status);
                ok
            }
            None => conn.write_response(&response).is_ok(),
        };
        if !write_ok || !keep_alive {
            return;
        }
    }
}

/// Start a trace for one routed request: adopt the ID an upstream
/// router stamped on the hop, or mint one here (this process *is* the
/// edge). Operational routes (`/healthz`, `/metrics`, `/debug/…`) are
/// not traced — probes and scrapes would drown the flight recorder.
fn begin_trace(
    core: &ServiceCore,
    request: &Request,
    queue_wait: Option<(Instant, Instant)>,
) -> Option<TraceHandle> {
    if !core.config.trace.enabled || is_ops_route(&request.path) {
        return None;
    }
    let id = request
        .header(obs::TRACE_HEADER)
        .and_then(TraceId::parse)
        .unwrap_or_else(TraceId::mint);
    let parsed_at = Instant::now();
    let first_byte = parsed_at
        .checked_sub(Duration::from_micros(request.recv_us))
        .unwrap_or(parsed_at);
    // The trace origin is the earliest instant it covers: queue entry
    // for a fresh connection, first request byte for a keep-alive one.
    let origin = queue_wait.map_or(first_byte, |(entered, _)| entered);
    let trace = ActiveTrace::begin_at(id, origin);
    if let Some((entered, claimed)) = queue_wait {
        trace.record("queue", entered, claimed, Vec::new());
    }
    trace.record(
        "parse",
        first_byte,
        parsed_at,
        vec![("bytes", request.body.len().to_string())],
    );
    Some(trace)
}

/// Seal a finished trace into the flight recorder, emitting the
/// slow-query log line first when the request crossed the threshold.
fn finish_trace(core: &ServiceCore, trace: &TraceHandle, request: &Request, status: u16) {
    let sealed = trace.seal(request.path.clone(), status);
    if let Some(threshold) = core.config.trace.slow_us {
        if sealed.total_us >= threshold {
            core.recorder.note_slow();
            eprintln!(
                "{{\"event\":\"slow_query\",\"threshold_us\":{threshold},\"trace\":{}}}",
                sealed.to_json()
            );
        }
    }
    core.recorder.record(sealed);
}

/// Routes excluded from tracing: health probes, metric scrapes, and
/// the trace endpoint itself.
fn is_ops_route(path: &str) -> bool {
    path == "/healthz" || path == "/metrics" || path.starts_with("/debug")
}

/// Parse the `/debug/traces` filter grammar from a request's query
/// string: `id`, `route` (prefix), `status`, `min_us`, `limit`.
pub fn trace_filter_from(request: &Request) -> TraceFilter {
    let mut filter = TraceFilter::default();
    for (key, value) in &request.query {
        match key.as_str() {
            "id" => filter.id = TraceId::parse(value),
            "route" => filter.route_prefix = Some(value.clone()),
            "status" => filter.status = value.parse().ok(),
            "min_us" => filter.min_total_us = value.parse().unwrap_or(0),
            "limit" => {
                if let Ok(limit) = value.parse() {
                    filter.limit = limit;
                }
            }
            _ => {}
        }
    }
    filter
}

/// The stock `/debug/traces` response: matching flight-recorder traces
/// as JSON, newest first. Handlers route `GET /debug/traces` here; the
/// router wraps this to join shard-side traces in.
pub fn traces_response(core: &ServiceCore, request: &Request) -> Response {
    let traces = core.recorder().snapshot(&trace_filter_from(request));
    let rendered: Vec<String> = traces.iter().map(|t| t.to_json()).collect();
    Response::new(
        200,
        "application/json",
        obs::render_traces_body(&rendered).into_bytes(),
    )
}

/// Write a closing error response for input that never became a
/// routable request. Counted as a protocol error (status class only) —
/// not in `requests` and not in the latency histogram, whose semantics
/// are "requests fully parsed and routed".
fn respond_error(core: &ServiceCore, conn: &mut Conn, status: u16, message: &str) {
    core.metrics.record_protocol_error(status);
    let _ = conn.write_response(&json_response(status, wire::error_json(message)).closing());
}

/// Encode a JSON body into a response (trailing newline included).
pub fn json_response(status: u16, body: Json) -> Response {
    match body.encode() {
        Ok(mut text) => {
            text.push('\n');
            Response::new(status, "application/json", text.into_bytes())
        }
        // A non-finite float slipped into an answer: refuse to emit it
        // silently (the documented policy), fail the request instead.
        Err(e) => Response::new(
            500,
            "application/json",
            format!("{{\"error\":\"unencodable response: {e}\"}}\n").into_bytes(),
        ),
    }
}

/// A plain-text response (metrics, liveness probes).
pub fn text_response(status: u16, body: String) -> Response {
    Response::new(status, "text/plain; charset=utf-8", body.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;

    impl Handler for Echo {
        fn handle(&self, request: &Request, _core: &ServiceCore) -> Response {
            text_response(200, format!("{} {}\n", request.method, request.path))
        }
    }

    #[test]
    fn service_serves_a_generic_handler() {
        let service = Service::bind(
            Echo,
            ServiceConfig {
                addr: "127.0.0.1:0".into(),
                threads: 2,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let addr = service.local_addr();
        let handle = service.handle();
        let runner = std::thread::spawn(move || service.run().unwrap());

        let mut conn = crate::client::ClientConn::connect(addr).unwrap();
        let response = conn.request("GET", "/anything", None).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body_str(), "GET /anything\n");

        handle.shutdown();
        let summary = runner.join().unwrap();
        assert_eq!(summary.requests, 1);
    }

    #[test]
    fn on_shutdown_fires_exactly_once() {
        use std::sync::atomic::AtomicU64;

        struct Counting(Arc<AtomicU64>);
        impl Handler for Counting {
            fn handle(&self, _request: &Request, _core: &ServiceCore) -> Response {
                text_response(200, "ok\n".into())
            }
            fn on_shutdown(&self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }

        let fired = Arc::new(AtomicU64::new(0));
        let service = Service::bind(
            Counting(Arc::clone(&fired)),
            ServiceConfig {
                addr: "127.0.0.1:0".into(),
                threads: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let handle = service.handle();
        let runner = std::thread::spawn(move || service.run().unwrap());
        handle.shutdown();
        handle.shutdown();
        runner.join().unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }
}
